//! No-op `Serialize`/`Deserialize` derives for the vendored serde
//! stub: the stub's traits are blanket-implemented, so the derives
//! only need to exist, not to generate code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use proc_macro::TokenStream;

/// Expands to nothing; the stub `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the stub `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
