//! Vendored mini property-testing harness.
//!
//! The build container cannot reach crates-io, so this crate supplies
//! the `proptest` API subset the workspace's property suites use:
//! [`Strategy`] with `prop_map`, integer-range and tuple strategies,
//! [`Just`], `prop_oneof!`, [`ProptestConfig`], and the `proptest!`,
//! `prop_assert!`, `prop_assert_eq!` macros.
//!
//! Differences from upstream: cases are generated from a fixed
//! deterministic seed (reproducible by construction, overridable with
//! `PROPTEST_SEED`), and failing cases are **not shrunk** — the panic
//! message carries the failing case index instead, which together with
//! the deterministic stream is enough to replay.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;

/// Re-exports matching `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Runner configuration; only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value. Deterministic in the state of `rng`.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f` (upstream `Strategy::prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy always yielding a clone of one value (upstream `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed alternative strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds the union; panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        use rand::Rng;
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
}

/// The seed each property's deterministic case stream starts from;
/// override with the `PROPTEST_SEED` environment variable.
pub fn run_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_CA5E_5EED_CA5E)
}

/// Uniform-choice strategy macro, upstream-compatible for unweighted
/// alternatives.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let options: Vec<Box<dyn $crate::Strategy<Value = _>>> =
            vec![$(Box::new($strategy)),+];
        $crate::Union::new(options)
    }};
}

/// Assertion usable inside `proptest!` bodies; aborts the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion usable inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion usable inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ..)`
/// runs `config.cases` deterministic cases of its body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(
                $crate::run_seed(),
            );
            for case in 0..config.cases {
                let run = || {
                    $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    $body
                };
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run));
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest case {case}/{} failed (seed {}); re-run with \
                         PROPTEST_SEED to reproduce",
                        config.cases,
                        $crate::run_seed(),
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_compose() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let s = (0u64..10, 5usize..6).prop_map(|(a, b)| a as usize + b);
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((5..15).contains(&v));
        }
        let u = prop_oneof![Just(1u8), Just(2u8)];
        for _ in 0..50 {
            assert!([1u8, 2].contains(&Strategy::generate(&u, &mut rng)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_runs_and_binds(x in 0u32..100, (a, b) in (0u8..4, 1u8..5)) {
            prop_assert!(x < 100);
            prop_assert!(a < 4 && (1..5).contains(&b));
            prop_assert_eq!(a as u16 + b as u16, (a + b) as u16);
        }
    }
}
