//! Vendored stub of `serde`'s trait surface.
//!
//! The workspace derives `Serialize`/`Deserialize` on its record types
//! so they are ready for wire formats, but no code path currently
//! serializes — and the hermetic build container cannot reach
//! crates-io. This stub keeps the derives compiling: the traits are
//! marker-only and blanket-implemented, and the derive macros expand
//! to nothing. Swapping back to real `serde` is a one-line Cargo
//! change; no source edits required.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    use crate::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize)]
    struct Probe {
        _field: u32,
    }

    fn assert_serialize<T: Serialize>() {}

    #[test]
    fn derives_and_blanket_impls_compose() {
        assert_serialize::<Probe>();
        assert_serialize::<Vec<String>>();
    }
}
