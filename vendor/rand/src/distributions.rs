//! The standard distribution and uniform range sampling.

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample using `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of a type: uniform over all values for
/// integers and booleans, uniform over `[0, 1)` for floats.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Uniform range sampling, the machinery behind `Rng::gen_range`.
pub mod uniform {
    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// A range that can be sampled uniformly.
    pub trait SampleRange<T> {
        /// Draws one value from the range.
        ///
        /// # Panics
        ///
        /// Panics if the range is empty.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! int_range_impls {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                    // Modulo bias is ≤ span/2^64, negligible for the
                    // experiment-scale spans used in this workspace.
                    self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                    if span == 0 {
                        // Full-width inclusive range: every word is valid.
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
        )*};
    }

    int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleRange<f64> for Range<f64> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::uniform::SampleRange;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn signed_ranges_cover_negatives() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut saw_negative = false;
        for _ in 0..200 {
            let x = (-10i64..10).sample_single(&mut rng);
            assert!((-10..10).contains(&x));
            saw_negative |= x < 0;
        }
        assert!(saw_negative);
    }

    #[test]
    fn f64_range_sampling() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..200 {
            let x = (2.0f64..3.0).sample_single(&mut rng);
            assert!((2.0..3.0).contains(&x));
        }
    }
}
