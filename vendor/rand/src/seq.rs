//! Slice shuffling, mirroring `rand::seq` 0.8 semantics.

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Fisher–Yates shuffle of the whole slice.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Shuffles exactly `amount` randomly-chosen elements into the
    /// *end* of the slice (upstream `rand` 0.8 semantics) and returns
    /// `(shuffled_tail, untouched_head)`.
    fn partial_shuffle<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
        amount: usize,
    ) -> (&mut [Self::Item], &mut [Self::Item]);

    /// A uniformly random element, or `None` on an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn partial_shuffle<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
        amount: usize,
    ) -> (&mut [T], &mut [T]) {
        let len = self.len();
        let amount = amount.min(len);
        for i in (len - amount..len).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
        let (head, tail) = self.split_at_mut(len - amount);
        (tail, head)
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn partial_shuffle_returns_requested_amount() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<usize> = (0..20).collect();
        let (picked, rest) = v.partial_shuffle(&mut rng, 5);
        assert_eq!(picked.len(), 5);
        assert_eq!(rest.len(), 15);
        // Oversized requests clamp to the slice length.
        let (all, none) = v.partial_shuffle(&mut rng, 100);
        assert_eq!(all.len(), 20);
        assert!(none.is_empty());
    }

    #[test]
    fn choose_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = [10, 20, 30];
        for _ in 0..50 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
