//! Vendored, API-compatible subset of `rand` 0.8.
//!
//! The reproduction's build container is hermetic: no crates-io
//! registry is reachable, so this crate supplies exactly the surface
//! the workspace uses — [`Rng`], [`SeedableRng`], [`rngs::StdRng`],
//! and [`seq::SliceRandom`] — over a xoshiro256++ generator seeded via
//! SplitMix64 (the same seeding scheme `rand_core` uses for
//! `seed_from_u64`).
//!
//! Streams are deterministic per seed but are **not** bit-compatible
//! with upstream `rand`'s ChaCha12-based `StdRng`; nothing in the
//! workspace depends on upstream byte streams, only on per-seed
//! determinism and reasonable statistical quality.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;
pub mod seq;

use distributions::{Distribution, Standard};

/// The backbone of every generator: a source of raw random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`] (mirroring upstream `rand`).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        let unit: f64 = self.gen();
        unit < p
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// Builds the generator from a `u64` seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn per_seed_determinism() {
        let a: u64 = StdRng::seed_from_u64(7).gen();
        let b: u64 = StdRng::seed_from_u64(7).gen();
        let c: u64 = StdRng::seed_from_u64(8).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u64..=5);
            assert_eq!(y, 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
