//! Vendored micro-benchmark harness exposing the `criterion` API
//! subset the workspace's benches use.
//!
//! The hermetic build container cannot reach crates-io, so this stub
//! keeps `cargo bench` (and the bench targets `cargo test` compiles)
//! working: each benchmark runs `sample_size` timed iterations and
//! prints mean wall-clock time per iteration. No statistics, plots, or
//! outlier analysis — swap back to real criterion for those.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::Instant;

/// Opaque value barrier preventing the optimizer from deleting
/// benchmarked work (`criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from the benchmarked parameter's display form.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }

    /// Builds a `function/parameter` id.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

/// The configured sample count, unless the `CRITERION_SAMPLE_SIZE`
/// environment variable overrides it (CI smoke runs set it to `1` so
/// every bench executes once without paying for statistics).
fn effective_samples(configured: usize) -> usize {
    std::env::var("CRITERION_SAMPLE_SIZE")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(configured)
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
}

impl Bencher {
    /// Times `samples` invocations of `routine` and prints the mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        let mean_ns = elapsed.as_nanos() as f64 / self.samples.max(1) as f64;
        println!("    {:>12.1} ns/iter ({} iters)", mean_ns, self.samples);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Overrides the group's sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark over `input`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        println!("bench: {}/{}", self.name, id.id);
        let mut b = Bencher { samples: effective_samples(self.sample_size) };
        f(&mut b, input);
        self.criterion.ran += 1;
    }

    /// Runs one input-free benchmark in the group.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        println!("bench: {}/{}", self.name, id.id);
        let mut b = Bencher { samples: effective_samples(self.sample_size) };
        f(&mut b);
        self.criterion.ran += 1;
    }

    /// Ends the group (upstream flushes reports here; the stub only
    /// keeps the call-site API intact).
    pub fn finish(self) {}
}

/// The benchmark runner.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    ran: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10, ran: 0 }
    }
}

impl Criterion {
    /// Sets the default sample count for subsequent benchmarks.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Runs a standalone named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("bench: {name}");
        let mut b = Bencher { samples: effective_samples(self.sample_size) };
        f(&mut b);
        self.ran += 1;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { criterion: self, name: name.into(), sample_size }
    }
}

/// Declares a benchmark group: either
/// `criterion_group!(name, target, ...)` or the
/// `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs harness-free bench targets too; honor
            // libtest-style flags by doing nothing under `--test` so
            // test runs stay fast, but still exercise compilation.
            let test_mode = std::env::args().any(|a| a == "--test");
            if !test_mode {
                $($group();)+
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_executes_closures() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0usize;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(2);
            group.bench_with_input(BenchmarkId::from_parameter("p"), &7usize, |b, &x| {
                b.iter(|| {
                    calls += 1;
                    black_box(x * 2)
                })
            });
            group.finish();
        }
        assert_eq!(calls, 2);
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
        assert_eq!(c.ran, 2);
    }
}
