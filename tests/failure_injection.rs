//! Failure-injection tests: every guard rail in the pipeline must
//! actually fire when fed broken inputs, starved budgets, or
//! contract-free oracles.

use pslocal::cfcolor::{CfMulticoloringProblem, CfViolation, Multicoloring};
use pslocal::core::{reduce_cf_to_maxis, ReductionConfig, ReductionError};
use pslocal::graph::generators::classic::{cycle, path};
use pslocal::graph::generators::hyper::{planted_cf_instance, PlantedCfParams};
use pslocal::graph::{Color, IndependentSet, NodeId};
use pslocal::local::{algorithms::LubyMis, Engine, Network};
use pslocal::maxis::{PrecisionOracle, WorstWitnessOracle};
use pslocal::slocal::{GraphProblem, MisProblem, Violation};
use rand::SeedableRng;

fn planted(seed: u64) -> pslocal::graph::Hypergraph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    planted_cf_instance(&mut rng, PlantedCfParams::new(36, 18, 3)).hypergraph
}

#[test]
fn contract_free_oracle_is_refused_without_override() {
    let h = planted(1);
    let err = reduce_cf_to_maxis(&h, &WorstWitnessOracle, ReductionConfig::new(3)).unwrap_err();
    assert_eq!(err, ReductionError::NoLambdaAvailable);
    assert!(err.to_string().contains("no guarantee"));
}

#[test]
fn contract_free_oracle_with_override_can_exhaust_budget() {
    let h = planted(2);
    // One vertex per phase with λ = 1.5 budget: ρ = ⌈1.5·ln 18⌉ + 1 = 6
    // phases, but 18 edges need 18 singleton phases — exhaustion.
    let config = ReductionConfig { lambda_override: Some(1.5), ..ReductionConfig::new(3) };
    let err = reduce_cf_to_maxis(&h, &WorstWitnessOracle, config).unwrap_err();
    match err {
        ReductionError::PhaseBudgetExhausted { rho, remaining_edges } => {
            assert_eq!(rho, ReductionConfig::rho(1.5, 18));
            assert!(remaining_edges > 0);
        }
        other => panic!("expected exhaustion, got {other:?}"),
    }
}

#[test]
fn independent_set_constructor_rejects_corrupt_sets() {
    let g = path(4);
    // Adjacent pair.
    assert!(IndependentSet::new(&g, vec![NodeId::new(1), NodeId::new(2)]).is_err());
    // Out of range.
    assert!(IndependentSet::new(&g, vec![NodeId::new(7)]).is_err());
}

#[test]
fn cf_verifier_catches_every_violation_class() {
    let h = planted(3);
    let problem = CfMulticoloringProblem::with_budget(100);
    // Empty coloring: some edge unhappy.
    let empty = Multicoloring::new(h.node_count());
    assert!(matches!(problem.verify(&h, &empty), Err(CfViolation::UnhappyEdge { .. })));
    // Wrong size.
    let short = Multicoloring::new(1);
    assert!(matches!(problem.verify(&h, &short), Err(CfViolation::SizeMismatch { .. })));
    // Budget overrun: a rainbow coloring is CF but wide.
    let rainbow =
        Multicoloring::from_single(&(0..h.node_count()).map(Color::new).collect::<Vec<_>>());
    let tight = CfMulticoloringProblem::with_budget(2);
    assert!(matches!(tight.verify(&h, &rainbow), Err(CfViolation::TooManyColors { .. })));
}

#[test]
fn engine_round_limit_fires_and_reports_unfinished_nodes() {
    let net = Network::with_identity_ids(cycle(30));
    let err = Engine::new(&net).max_rounds(1).run(&LubyMis).unwrap_err();
    assert_eq!(err.limit, 1);
    assert!(err.unfinished > 0);
}

#[test]
fn mis_verifier_rejects_both_failure_modes() {
    let g = cycle(6);
    let not_independent = vec![NodeId::new(0), NodeId::new(1)];
    let not_maximal = vec![NodeId::new(0)];
    let ok = vec![NodeId::new(0), NodeId::new(2), NodeId::new(4)];
    assert!(matches!(MisProblem.verify(&g, &not_independent), Err(Violation { .. })));
    assert!(MisProblem.verify(&g, &not_maximal).is_err());
    assert!(MisProblem.verify(&g, &ok).is_ok());
}

#[test]
fn precision_oracle_is_exactly_as_weak_as_claimed_in_the_pipeline() {
    let h = planted(4);
    let strong = reduce_cf_to_maxis(&h, &PrecisionOracle::new(1.0), ReductionConfig::new(3))
        .expect("λ = 1 is the exact oracle");
    assert_eq!(strong.phases_used, 1);
    let weak = reduce_cf_to_maxis(&h, &PrecisionOracle::new(6.0), ReductionConfig::new(3))
        .expect("λ = 6 still finishes within its own ρ");
    assert!(weak.phases_used > strong.phases_used);
    assert!(weak.phases_used <= ReductionConfig::rho(6.0, h.edge_count()));
}

#[test]
fn precision_oracle_at_the_budget_envelope_uses_exactly_rho_phases() {
    // Adversarial instance for the phase budget: 8 disjoint 2-vertex
    // edges, against an oracle truncated so hard (λ = 1000 keeps
    // ⌈m_i/1000⌉ = 1 triple) that every phase removes exactly one edge.
    // With the λ = 3 budget override, ρ = ⌈3·ln 8⌉ + 1 = 8 — precisely
    // the 8 phases the run needs, so it completes with zero slack.
    let h = pslocal::graph::Hypergraph::from_edges(
        16,
        (0..8).map(|i| vec![2 * i, 2 * i + 1]).collect::<Vec<_>>(),
    )
    .unwrap();
    let config = ReductionConfig { lambda_override: Some(3.0), ..ReductionConfig::new(2) };
    let out = reduce_cf_to_maxis(&h, &PrecisionOracle::new(1000.0), config).unwrap();
    assert_eq!(out.rho, 8);
    assert_eq!(out.phases_used, out.rho, "completes with zero budget slack");
    for r in &out.records {
        assert_eq!(r.edges_removed, 1, "phase {} must remove exactly one edge", r.phase);
    }
}

#[test]
fn starved_max_phases_cannot_mask_success_reporting() {
    let h = planted(5);
    for budget in 0..3 {
        let config = ReductionConfig {
            lambda_override: Some(4.0),
            max_phases: Some(budget),
            ..ReductionConfig::new(3)
        };
        let result = reduce_cf_to_maxis(&h, &PrecisionOracle::new(4.0), config);
        match result {
            Ok(out) => assert!(out.phases_used <= budget),
            Err(ReductionError::PhaseBudgetExhausted { remaining_edges, .. }) => {
                assert!(remaining_edges > 0)
            }
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }
}
