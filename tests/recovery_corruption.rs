//! Journal corruption tolerance, property-tested.
//!
//! The contract of `pslocal::core::recovery`: resuming from a journal
//! that was bit-flipped, truncated, or replaced with garbage **never
//! panics and never corrupts the output** — the replay falls back to
//! the longest valid prefix (possibly none) and re-runs everything
//! after it, so the final outcome is always byte-identical to an
//! uninterrupted run. Corruption can only ever cost *progress*, never
//! correctness.

use proptest::prelude::*;
use pslocal::core::{
    reduce_cf_to_maxis, reduce_cf_to_maxis_resumable, Checkpointing, PhaseJournal, ReductionConfig,
    ReductionOutcome,
};
use pslocal::graph::generators::hyper::{planted_cf_instance, PlantedCfParams};
use pslocal::graph::Hypergraph;
use pslocal::maxis::PrecisionOracle;
use pslocal::telemetry::Telemetry;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// A fresh, collision-free checkpoint directory per proptest case.
fn ckpt_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "pslocal-corruption-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Fixture {
    h: Hypergraph,
    baseline: ReductionOutcome,
    /// The complete, uncorrupted journal of the baseline run.
    pristine: Vec<u8>,
}

/// One checkpointed multi-phase run, shared by every proptest case —
/// corruption is applied to *copies* of its journal. λ = 4 keeps the
/// run multi-phase, so the journal holds several records to damage.
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let k = 3;
        let mut rng = rand::rngs::StdRng::seed_from_u64(50);
        let h = planted_cf_instance(&mut rng, PlantedCfParams::new(40, 18, k)).hypergraph;
        let oracle = PrecisionOracle::new(4.0);
        let dir = ckpt_dir("fixture");
        let (baseline, _) = reduce_cf_to_maxis_resumable(
            &h,
            &oracle,
            ReductionConfig::new(k),
            &Checkpointing::new(&dir),
            &Telemetry::disabled(),
        )
        .expect("clean checkpointed run succeeds");
        assert!(baseline.phases_used >= 2, "fixture must be multi-phase");
        let pristine = std::fs::read(PhaseJournal::file_path(&dir)).expect("journal exists");
        let _ = std::fs::remove_dir_all(&dir);
        let check = reduce_cf_to_maxis(&h, &oracle, ReductionConfig::new(k)).unwrap();
        assert_eq!(check.records, baseline.records, "checkpointing must not change output");
        Fixture { h, baseline, pristine }
    })
}

/// Writes `journal` into a fresh checkpoint dir and resumes from it.
/// The resume itself must succeed — corruption is tolerated, never an
/// error — and produce the baseline outcome.
fn resume_from(tag: &str, journal: &[u8]) {
    let fx = fixture();
    let dir = ckpt_dir(tag);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(PhaseJournal::file_path(&dir), journal).unwrap();
    let (out, report) = reduce_cf_to_maxis_resumable(
        &fx.h,
        &PrecisionOracle::new(4.0),
        ReductionConfig::new(3),
        &Checkpointing::new(&dir).resuming(),
        &Telemetry::disabled(),
    )
    .expect("corruption must be tolerated, not fatal");
    assert!(report.resumed);
    assert!(
        report.phases_recovered <= fx.baseline.phases_used,
        "cannot recover more phases than were ever run"
    );
    assert_eq!(out.records, fx.baseline.records, "corruption must never change the output");
    assert_eq!(out.coloring, fx.baseline.coloring);
    assert_eq!(out.total_colors, fx.baseline.total_colors);
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_single_bit_flip_is_survived(pos in 0usize..10_000, bit in 0u8..8) {
        let fx = fixture();
        let mut bytes = fx.pristine.clone();
        let pos = pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        resume_from("bitflip", &bytes);
    }

    #[test]
    fn any_truncation_is_survived(cut in 0usize..10_000) {
        let fx = fixture();
        let cut = cut % (fx.pristine.len() + 1);
        resume_from("truncate", &fx.pristine[..cut]);
    }

    #[test]
    fn multi_byte_scribbles_are_survived(
        start in 0usize..10_000,
        len in 1usize..64,
        fill in 0u8..=255,
    ) {
        let fx = fixture();
        let mut bytes = fx.pristine.clone();
        let n = bytes.len();
        for i in 0..len {
            let p = (start + i) % n;
            bytes[p] = fill;
        }
        resume_from("scribble", &bytes);
    }

    #[test]
    fn pure_garbage_journals_are_survived(seed in 0u64..5000, len in 0usize..512) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let garbage: Vec<u8> = (0..len).map(|_| rand::Rng::gen_range(&mut rng, 0..=255u8)).collect();
        resume_from("garbage", &garbage);
    }
}
