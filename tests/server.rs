//! TCP-server equivalence and degradation suite: the socket front end
//! is an execution vehicle, never a semantic one. The same JSONL
//! requests through `pslocal batch` and through a live [`Server`]
//! socket must produce byte-identical result lines once sorted; the
//! cap/queue/deadline degradation paths must answer with their typed
//! lines; and a mid-load drain must deliver a response for every
//! admitted request before any socket closes.

use pslocal::core::{Server, ServerConfig, ServiceConfig};
use pslocal::telemetry::{AggregateSink, Telemetry};
use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::process::{Child, Command, Output, Stdio};
use std::time::Duration;

/// A mixed JSONL batch: dense and sparse instances, fault-injected
/// chains, a pinned kernel — the same shape `tests/batch_service.rs`
/// pins against the serial ground truth.
fn jsonl_batch() -> String {
    [
        r#"{"id":"dense-0","n":96,"m":48,"k":8,"seed":11}"#,
        r#"{"id":"faulty-panic","n":64,"m":32,"k":4,"seed":13,"faults":"panic"}"#,
        r#"{"id":"sparse-0","n":192,"m":96,"k":4,"seed":12}"#,
        r#"{"id":"faulty-mixed","n":80,"m":40,"k":4,"seed":14,"faults":"empty-set,invalid-set"}"#,
        r#"{"id":"chained","n":72,"m":36,"k":3,"seed":15,"oracle":"greedy,exact"}"#,
        r#"{"id":"kernel-pinned","n":64,"m":32,"k":4,"seed":16,"kernel":"bitset","oracle_cache":true}"#,
    ]
    .join("\n")
}

fn run_cli(args: &[&str], stdin: &str) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pslocal"));
    cmd.args(args).stdin(Stdio::piped()).stdout(Stdio::piped()).stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("binary spawns");
    child.stdin.as_mut().unwrap().write_all(stdin.as_bytes()).expect("stdin written");
    child.wait_with_output().expect("binary finishes")
}

fn sorted_lines(text: &str) -> Vec<String> {
    let mut lines: Vec<String> = text.lines().map(String::from).collect();
    lines.sort();
    lines
}

/// Sends `payload` to the server, half-closes, and returns everything
/// the server wrote back before closing the connection.
fn roundtrip(addr: SocketAddr, payload: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.write_all(payload.as_bytes()).expect("send");
    conn.shutdown(Shutdown::Write).expect("half-close");
    let mut out = String::new();
    conn.read_to_string(&mut out).expect("read responses");
    out
}

#[test]
fn server_matches_the_batch_front_end_at_every_worker_count() {
    let batch = jsonl_batch();
    let baseline = run_cli(&["batch", "--workers", "1"], &batch);
    assert!(baseline.status.success(), "stderr: {}", String::from_utf8_lossy(&baseline.stderr));
    let expected = sorted_lines(&String::from_utf8_lossy(&baseline.stdout));
    assert_eq!(expected.len(), 6);
    assert!(expected.iter().all(|l| l.contains("\"outcome\":\"ok\"")), "lines: {expected:?}");

    for workers in [1, 2, 4] {
        let config = ServerConfig::default().with_service(ServiceConfig::new(workers));
        let server =
            Server::start("127.0.0.1:0", config, Telemetry::disabled()).expect("server starts");
        let got = sorted_lines(&roundtrip(server.local_addr(), &batch));
        assert_eq!(got, expected, "workers = {workers}");
        let report = server.shutdown();
        assert!(report.drained.is_empty(), "every response was delivered to its connection");
    }
}

#[test]
fn degradation_paths_answer_with_their_typed_lines() {
    // One worker behind a queue of 1: with three requests on the wire,
    // at least one must be shed as a typed `rejected` line (never
    // buffered past the bound), and every line still carries its id.
    let config = ServerConfig::default().with_service(ServiceConfig::new(1).with_queue_capacity(1));
    let server = Server::start("127.0.0.1:0", config, Telemetry::disabled()).expect("starts");
    let payload = [
        r#"{"id":"q-0","n":96,"m":48,"k":8,"seed":21}"#,
        r#"{"id":"q-1","n":96,"m":48,"k":8,"seed":22}"#,
        r#"{"id":"q-2","n":96,"m":48,"k":8,"seed":23}"#,
        "",
    ]
    .join("\n");
    let lines = sorted_lines(&roundtrip(server.local_addr(), &payload));
    assert_eq!(lines.len(), 3, "one answer per request: {lines:?}");
    for line in &lines {
        assert!(
            line.contains("\"outcome\":\"ok\"") || line.contains("\"outcome\":\"rejected\""),
            "unexpected line: {line}"
        );
    }

    // Deadline passthrough: an already-expired deadline answers
    // `deadline_exceeded` at phase 0, exactly as `pslocal batch` would.
    let expired = roundtrip(
        server.local_addr(),
        "{\"id\":\"doomed\",\"n\":64,\"m\":32,\"k\":4,\"deadline_ms\":0}\n",
    );
    assert_eq!(expired.trim(), r#"{"id":"doomed","outcome":"deadline_exceeded","phase":0}"#);

    // An unparseable line is answered (typed), not dropped, and the
    // connection keeps serving afterwards.
    let garbled = roundtrip(server.local_addr(), "{\"id\":42}\nPING\n");
    let garbled = sorted_lines(&garbled);
    assert_eq!(garbled.len(), 2, "lines: {garbled:?}");
    assert_eq!(garbled[0], "PONG");
    assert!(garbled[1].contains("\"outcome\":\"bad_request\""), "lines: {garbled:?}");

    server.shutdown();
}

#[test]
fn connection_cap_sheds_with_a_typed_overloaded_line() {
    let config = ServerConfig::default().with_max_connections(1);
    let stats = AggregateSink::default();
    let server =
        Server::start("127.0.0.1:0", config, Telemetry::new(stats.clone())).expect("starts");

    // Hold the only slot open, proven registered by a PING round trip.
    let mut holder = TcpStream::connect(server.local_addr()).expect("connect");
    holder.write_all(b"PING\n").expect("send");
    let mut reader = BufReader::new(holder.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    assert_eq!(line.trim(), "PONG");

    // The second connection is shed at accept time: one typed line,
    // then close — nothing needs to be sent to trigger it.
    let mut shed_conn = TcpStream::connect(server.local_addr()).expect("connect");
    let mut shed = String::new();
    shed_conn.read_to_string(&mut shed).expect("read the shed line");
    assert_eq!(shed.trim(), r#"{"outcome":"overloaded","error":"connection limit 1 reached"}"#);

    // STATS over the surviving connection sees both counters live.
    holder.write_all(b"STATS\n").expect("send");
    let mut snapshot = String::new();
    loop {
        let mut stats_line = String::new();
        reader.read_line(&mut stats_line).expect("read stats");
        if stats_line.trim() == "OK" {
            break;
        }
        snapshot.push_str(&stats_line);
    }
    assert!(snapshot.contains("counter connections_accepted 1"), "snapshot: {snapshot}");
    assert!(snapshot.contains("counter connections_refused 1"), "snapshot: {snapshot}");

    drop(reader);
    holder.shutdown(Shutdown::Both).expect("close holder");
    server.shutdown();
    assert_eq!(stats.counter("connections_refused"), 1);
}

#[test]
fn stats_blocks_never_interleave_with_in_flight_results() {
    // Regression: STATS used to write its multi-line snapshot from the
    // reader thread while worker callbacks pushed result lines through
    // the same socket, so a result line could land in the middle of a
    // block. All outbound lines now funnel through the connection's
    // single writer queue, with a whole snapshot as one message.
    let config = ServerConfig::default().with_service(ServiceConfig::new(4));
    let stats = AggregateSink::default();
    let server = Server::start("127.0.0.1:0", config, Telemetry::new(stats)).expect("starts");
    let mut conn = TcpStream::connect(server.local_addr()).expect("connect");

    // Pipeline a STATS poll after every request without reading a byte
    // back, so snapshots render while results are genuinely in flight.
    const REQUESTS: usize = 24;
    for i in 0..REQUESTS {
        let line = format!("{{\"id\":\"mix-{i}\",\"n\":96,\"m\":48,\"k\":8,\"seed\":{i}}}\n");
        conn.write_all(line.as_bytes()).expect("send request");
        conn.write_all(b"STATS\n").expect("send stats");
    }
    conn.shutdown(Shutdown::Write).expect("half-close");
    let mut out = String::new();
    conn.read_to_string(&mut out).expect("read responses");

    // Every snapshot must arrive contiguous: from its `uptime_s` header
    // to its `OK` terminator with only stats item lines in between —
    // never a JSON result line.
    let mut in_block = false;
    let mut blocks = 0usize;
    let mut results = 0usize;
    for line in out.lines() {
        if in_block {
            assert!(!line.starts_with('{'), "result line inside a STATS block: {line}");
            if line == "OK" {
                in_block = false;
            }
        } else if line.starts_with("uptime_s ") {
            in_block = true;
            blocks += 1;
        } else {
            assert!(line.starts_with('{'), "unexpected line outside a STATS block: {line:?}");
            results += 1;
        }
    }
    assert!(!in_block, "unterminated STATS block:\n{out}");
    assert_eq!(blocks, REQUESTS, "one snapshot per poll");
    assert_eq!(results, REQUESTS, "one result line per request");
    for i in 0..REQUESTS {
        assert!(out.contains(&format!("\"id\":\"mix-{i}\"")), "missing result mix-{i}");
    }
    server.shutdown();
}

#[test]
fn mid_load_shutdown_drains_every_admitted_request() {
    let config = ServerConfig::default().with_service(ServiceConfig::new(1));
    let server = Server::start("127.0.0.1:0", config, Telemetry::disabled()).expect("starts");
    let mut conn = TcpStream::connect(server.local_addr()).expect("connect");
    for i in 0..4 {
        let line = format!("{{\"id\":\"load-{i}\",\"n\":96,\"m\":48,\"k\":8,\"seed\":{i}}}\n");
        conn.write_all(line.as_bytes()).expect("send");
    }
    // Leave the write side open — the drain, not an EOF, must end the
    // connection. Give the reader a moment to admit all four.
    std::thread::sleep(Duration::from_millis(200));

    let reader = std::thread::spawn(move || {
        let mut out = String::new();
        conn.read_to_string(&mut out).expect("read until the server closes");
        out
    });
    // Blocks until the acceptor, both connection threads, and the
    // worker pool are joined — i.e. until the drain fully completed.
    let report = server.shutdown();
    assert!(report.drained.is_empty(), "responses deliver to their connection, not the drain");

    let out = reader.join().expect("reader thread");
    let lines = sorted_lines(&out);
    assert_eq!(lines.len(), 4, "a drained server answers every admitted request: {lines:?}");
    for (i, line) in lines.iter().enumerate() {
        assert!(line.contains(&format!("\"id\":\"load-{i}\"")), "lines: {lines:?}");
        assert!(line.contains("\"outcome\":\"ok\""), "lines: {lines:?}");
    }
}

// ---------------------------------------------------------------------
// CLI level: `pslocal serve` + `pslocal client` end to end.
// ---------------------------------------------------------------------

/// Starts `pslocal serve` on an ephemeral port and returns the child
/// plus the resolved address parsed from its `listening on` line.
fn spawn_serve(extra: &[&str]) -> (Child, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pslocal"));
    cmd.args(["serve", "--addr", "127.0.0.1:0"])
        .args(extra)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("serve spawns");
    let stdout = child.stdout.as_mut().expect("stdout piped");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("serve announces its address");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
        .to_string();
    (child, addr)
}

#[test]
fn cli_serve_and_client_round_trip_with_graceful_shutdown() {
    let batch = jsonl_batch();
    let baseline = run_cli(&["batch", "--workers", "1"], &batch);
    assert!(baseline.status.success());
    let expected = sorted_lines(&String::from_utf8_lossy(&baseline.stdout));

    let (child, addr) = spawn_serve(&["--workers", "2"]);

    let ping = run_cli(&["client", "--addr", &addr, "--ping"], "");
    assert!(ping.status.success(), "stderr: {}", String::from_utf8_lossy(&ping.stderr));
    assert_eq!(String::from_utf8_lossy(&ping.stdout).trim(), "PONG");

    let served = run_cli(&["client", "--addr", &addr], &batch);
    assert!(served.status.success(), "stderr: {}", String::from_utf8_lossy(&served.stderr));
    assert_eq!(sorted_lines(&String::from_utf8_lossy(&served.stdout)), expected);

    let bye = run_cli(&["client", "--addr", &addr, "--shutdown"], "");
    assert!(bye.status.success());
    assert_eq!(String::from_utf8_lossy(&bye.stdout).trim(), "DRAINING");

    let out = child.wait_with_output().expect("serve exits after SHUTDOWN");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("drained"), "stderr: {stderr}");
}

#[test]
fn cli_serve_stats_command_reports_live_counters() {
    let (child, addr) = spawn_serve(&["--workers", "1"]);

    let one = run_cli(&["client", "--addr", &addr], "{\"id\":\"one\",\"n\":48,\"m\":24,\"k\":3}");
    assert!(one.status.success());
    assert!(String::from_utf8_lossy(&one.stdout).contains("\"outcome\":\"ok\""));

    let stats = run_cli(&["client", "--addr", &addr, "--stats"], "");
    assert!(stats.status.success());
    let text = String::from_utf8_lossy(&stats.stdout);
    assert!(text.contains("counter connections_accepted"), "stats: {text}");
    assert!(text.contains("counter requests_completed 1"), "stats: {text}");
    assert!(text.contains("span server-request"), "stats: {text}");
    assert!(text.trim_end().ends_with("OK"), "stats: {text}");

    let bye = run_cli(&["client", "--addr", &addr, "--shutdown"], "");
    assert!(bye.status.success());
    let out = child.wait_with_output().expect("serve exits");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
}
