//! Integration test: Theorem 1.1 end to end, across oracles, instance
//! families, and palette sizes.

use pslocal::cfcolor::{checker, CfMulticoloringProblem};
use pslocal::core::{completeness_on_instance, reduce_cf_to_maxis, ConflictGraph, ReductionConfig};
use pslocal::graph::generators::hyper::{planted_cf_instance, PlantedCfParams};
use pslocal::graph::Palette;
use pslocal::maxis::{standard_oracles, DecompositionOracle, ExactOracle, GreedyOracle};
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

#[test]
fn reduction_succeeds_for_every_standard_oracle() {
    let inst = planted_cf_instance(&mut rng(1), PlantedCfParams::new(36, 16, 3));
    for oracle in standard_oracles(7) {
        let out = reduce_cf_to_maxis(&inst.hypergraph, oracle.as_ref(), ReductionConfig::new(3))
            .unwrap_or_else(|e| panic!("oracle {}: {e}", oracle.name()));
        assert!(
            checker::is_conflict_free(&inst.hypergraph, &out.coloring),
            "oracle {} produced a non-CF coloring",
            oracle.name()
        );
        assert!(out.phases_used <= out.rho, "oracle {} blew the ρ budget", oracle.name());
        assert!(out.total_colors <= 3 * out.rho);
    }
}

#[test]
fn reduction_across_palette_sizes() {
    for k in 1..=5usize {
        // Feasibility: n ≥ 4k and enough off-color vertices.
        let n = (8 * k).max(12);
        let inst = planted_cf_instance(&mut rng(k as u64), PlantedCfParams::new(n, 10, k));
        let out =
            reduce_cf_to_maxis(&inst.hypergraph, &GreedyOracle, ReductionConfig::new(k)).unwrap();
        assert!(checker::is_conflict_free(&inst.hypergraph, &out.coloring), "k = {k}");
        // Palette discipline across phases.
        let palettes: Vec<Palette> = (0..out.phases_used).map(|i| Palette::phase(k, i)).collect();
        assert!(out.coloring.uses_only_palettes(&palettes));
    }
}

#[test]
fn phase_budget_matches_paper_formula_under_weak_oracles() {
    // λ-override = 2 forces the paper budget ρ = ⌈2 ln m⌉ + 1; a
    // half-strength oracle is simulated by handing the reduction the
    // greedy oracle but only crediting λ = 2 — the reduction must still
    // finish within ρ because greedy's actual performance beats λ = 2
    // on these dense conflict graphs.
    let inst = planted_cf_instance(&mut rng(5), PlantedCfParams::new(40, 20, 3));
    let config = ReductionConfig { lambda_override: Some(2.0), ..ReductionConfig::new(3) };
    let out = reduce_cf_to_maxis(&inst.hypergraph, &GreedyOracle, config).unwrap();
    assert_eq!(out.rho, ReductionConfig::rho(2.0, 20));
    assert!(out.phases_used <= out.rho);
}

#[test]
fn completeness_report_is_consistent_across_families() {
    for (seed, n, m, k) in [(1u64, 24, 8, 2), (2, 40, 15, 3), (3, 60, 20, 4)] {
        let inst = planted_cf_instance(&mut rng(seed), PlantedCfParams::new(n, m, k));
        let report = completeness_on_instance(&inst, &ExactOracle).unwrap();
        assert!(report.hardness_verified, "hardness failed at n = {n}");
        assert!(report.containment.lambda_verified, "containment failed at n = {n}");
        assert_eq!(report.hardness.phases_used, 1, "exact oracle needs one phase");
    }
}

#[test]
fn alpha_of_conflict_graph_equals_edge_count_on_cf_instances() {
    // The quantitative heart of the hardness proof: G_k of a
    // CF-k-colorable hypergraph has α = m.
    for seed in 0..3 {
        let inst = planted_cf_instance(&mut rng(seed), PlantedCfParams::new(18, 6, 2));
        let cg = ConflictGraph::build(&inst.hypergraph, 2);
        let alpha = ExactOracle.independence_number(cg.graph());
        assert_eq!(alpha, inst.hypergraph.edge_count());
    }
}

#[test]
fn reduction_with_oversized_k_still_works() {
    // Promising a larger palette than planted is sound (a CF k-coloring
    // exists a fortiori); colors grow but correctness holds.
    let inst = planted_cf_instance(&mut rng(9), PlantedCfParams::new(40, 12, 3));
    let out = reduce_cf_to_maxis(&inst.hypergraph, &ExactOracle, ReductionConfig::new(5)).unwrap();
    assert!(checker::is_conflict_free(&inst.hypergraph, &out.coloring));
}

#[test]
fn verifier_accepts_reduction_output_and_rejects_damage() {
    let inst = planted_cf_instance(&mut rng(4), PlantedCfParams::new(30, 12, 3));
    let out = reduce_cf_to_maxis(
        &inst.hypergraph,
        &DecompositionOracle::default(),
        ReductionConfig::new(3),
    )
    .unwrap();
    let problem = CfMulticoloringProblem { max_colors: 3 * out.rho, epsilon: 0.5 };
    problem.verify(&inst.hypergraph, &out.coloring).unwrap();
    // Damage: wipe the coloring — must now fail.
    let empty = pslocal::cfcolor::Multicoloring::new(inst.hypergraph.node_count());
    assert!(problem.verify(&inst.hypergraph, &empty).is_err());
}
