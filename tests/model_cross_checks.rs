//! Cross-model integration tests: the LOCAL and SLOCAL simulators, the
//! oracles, and the problem verifiers agree with each other on shared
//! instances.

use pslocal::graph::generators::classic::{cycle, grid};
use pslocal::graph::generators::random::{gnp, random_tree};
use pslocal::local::algorithms::{LubyMis, MisFromColoring, RandomColorTrial};
use pslocal::local::{Engine, Network};
use pslocal::maxis::{measure_ratio, standard_oracles, DecompositionOracle};
use pslocal::slocal::{
    algorithms::GreedyColoring, algorithms::GreedyMis, carve_decomposition, orders, run,
    GraphProblem, MisProblem, NetworkDecompositionProblem,
};
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

#[test]
fn local_and_slocal_mis_both_pass_the_same_verifier() {
    let g = gnp(&mut rng(1), 80, 0.08);
    let problem = MisProblem;

    let net = Network::with_scrambled_ids(g.clone(), 5);
    let exec = Engine::new(&net).seed(2).run(&LubyMis).unwrap();
    let local_mis = LubyMis::members(&exec.states);
    problem.verify(&g, &local_mis).expect("LOCAL MIS verifies");

    let outcome = run(&g, &GreedyMis, &orders::by_decreasing_degree(&g));
    let slocal_mis = GreedyMis::members(&outcome.states);
    problem.verify(&g, &slocal_mis).expect("SLOCAL MIS verifies");
}

#[test]
fn slocal_coloring_feeds_local_mis_from_coloring() {
    // SLOCAL produces the coloring; the deterministic LOCAL algorithm
    // consumes it — the classic pipeline the P-SLOCAL programme asks
    // to derandomize end to end.
    let g = grid(7, 8);
    let outcome = run(&g, &GreedyColoring, &orders::identity(g.node_count()));
    let coloring = GreedyColoring::colors(&outcome.states);
    assert!(g.is_proper_coloring(&coloring));

    let algo = MisFromColoring::new(coloring);
    let net = Network::with_identity_ids(g.clone());
    let exec = Engine::new(&net).run(&algo).unwrap();
    let mis = MisFromColoring::members(&exec.states);
    MisProblem.verify(&g, &mis).expect("pipeline MIS verifies");
    // Deterministic round bound: #colors rounds.
    assert!(exec.trace.rounds <= algo.schedule_length());
}

#[test]
fn decomposition_passes_problem_verifier_with_paper_budgets() {
    for (seed, n) in [(1u64, 50), (2, 90), (3, 140)] {
        let g = gnp(&mut rng(seed), n, 6.0 / n as f64);
        let d = carve_decomposition(&g);
        let log = ((n.max(2)) as f64).log2().ceil() as usize;
        let problem = NetworkDecompositionProblem { max_colors: log + 1, max_radius: log };
        problem.verify(&g, &d).unwrap_or_else(|e| panic!("n = {n}: {e}"));
    }
}

#[test]
fn randomized_local_coloring_feeds_mis_pipeline() {
    let g = random_tree(&mut rng(4), 60);
    let net = Network::with_identity_ids(g.clone());
    let exec = Engine::new(&net).seed(9).run(&RandomColorTrial).unwrap();
    let coloring = RandomColorTrial::colors(&exec.states);
    assert!(g.is_proper_coloring(&coloring));

    let algo = MisFromColoring::new(coloring);
    let exec2 = Engine::new(&net).run(&algo).unwrap();
    let mis = MisFromColoring::members(&exec2.states);
    assert!(g.is_maximal_independent_set(&mis));
}

#[test]
fn oracle_ratios_never_beat_one() {
    // Realized λ is ≥ 1 by definition (α bound ≥ any independent set);
    // check the measurement plumbing across oracles and families.
    let graphs =
        vec![cycle(30), grid(6, 7), gnp(&mut rng(6), 48, 0.12), random_tree(&mut rng(7), 44)];
    for g in &graphs {
        for oracle in standard_oracles(3) {
            let m = measure_ratio(oracle.as_ref(), g);
            let lambda = m.realized_lambda.expect("nonempty instances");
            assert!(lambda >= 1.0 - 1e-9, "oracle {} claims ratio {lambda} < 1", oracle.name());
        }
    }
}

#[test]
fn decomposition_oracle_class_sizes_sum_consistently() {
    let g = gnp(&mut rng(8), 70, 0.07);
    let solve = DecompositionOracle::default().solve(&g);
    // The winning class is the maximum of the per-class sizes.
    let max = solve.class_sizes.iter().copied().max().unwrap_or(0);
    assert_eq!(solve.independent_set.len(), max);
    // Every class size is at most n.
    assert!(solve.class_sizes.iter().all(|&s| s <= g.node_count()));
}

#[test]
fn slocal_realized_locality_never_exceeds_declared() {
    let g = gnp(&mut rng(9), 64, 0.1);
    let outcome = run(&g, &GreedyMis, &orders::random(&mut rng(10), 64));
    assert!(outcome.trace.realized_locality <= outcome.trace.declared_locality);
    let outcome = run(&g, &GreedyColoring, &orders::identity(64));
    assert!(outcome.trace.realized_locality <= outcome.trace.declared_locality);
}
