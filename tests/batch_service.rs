//! Batch-service equivalence suite: the serving layer is an execution
//! vehicle, never a semantic one. The same requests run serially, via
//! [`Service`] at 1/2/4 workers, and with mid-batch fault injection
//! must produce byte-identical result lines once sorted by request id;
//! a stalled oracle must yield `deadline_exceeded` without poisoning
//! its worker's long-lived workspace for the next request.

use pslocal::core::{
    reduce_cf_resilient, BoxedOracle, RequestOutcome, ResilientConfig, Service, ServiceConfig,
    ServiceRequest,
};
use pslocal::graph::generators::hyper::{planted_cf_instance, PlantedCfParams};
use pslocal::graph::{Graph, Hypergraph, IndependentSet};
use pslocal::maxis::{
    ApproxGuarantee, FaultKind, FaultPlan, FaultyOracle, GreedyOracle, MaxIsOracle, PrecisionOracle,
};
use pslocal::telemetry::Telemetry;
use rand::SeedableRng;
use std::io::Write as _;
use std::process::{Command, Output, Stdio};
use std::time::Duration;

/// One request recipe, replayable into fresh (stateful) oracle chains.
struct Spec {
    id: &'static str,
    n: usize,
    m: usize,
    k: usize,
    seed: u64,
    /// Scripted faults for the primary oracle (`None` = clean run).
    faults: Option<Vec<Option<FaultKind>>>,
}

/// A mixed batch: dense and sparse instances, clean and faulty chains.
/// The faulty scripts stay within the resilient driver's default retry
/// budget (2 retries), so every request still ends `ok`.
fn specs() -> Vec<Spec> {
    use FaultKind::{EmptySet, InvalidSet, Panic, UnderDeliver};
    vec![
        Spec { id: "dense-0", n: 96, m: 48, k: 8, seed: 11, faults: None },
        Spec { id: "sparse-0", n: 192, m: 96, k: 4, seed: 12, faults: None },
        Spec { id: "faulty-panic", n: 64, m: 32, k: 4, seed: 13, faults: Some(vec![Some(Panic)]) },
        Spec {
            id: "faulty-mixed",
            n: 80,
            m: 40,
            k: 4,
            seed: 14,
            faults: Some(vec![Some(EmptySet), Some(InvalidSet)]),
        },
        Spec {
            id: "faulty-late",
            n: 72,
            m: 36,
            k: 3,
            seed: 15,
            faults: Some(vec![None, Some(UnderDeliver)]),
        },
        Spec { id: "dense-1", n: 128, m: 64, k: 8, seed: 16, faults: None },
        Spec { id: "sparse-1", n: 160, m: 80, k: 4, seed: 17, faults: None },
        Spec { id: "tiny", n: 24, m: 10, k: 3, seed: 18, faults: None },
    ]
}

fn instance(spec: &Spec) -> Hypergraph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(spec.seed);
    planted_cf_instance(&mut rng, PlantedCfParams::new(spec.n, spec.m, spec.k)).hypergraph
}

/// Builds a fresh oracle chain for `spec` — fresh because `FaultyOracle`
/// consumes its script per call, so chains cannot be shared across runs.
fn chain(spec: &Spec) -> Vec<BoxedOracle> {
    let greedy: BoxedOracle = Box::new(GreedyOracle);
    match &spec.faults {
        None => vec![greedy],
        Some(script) => {
            vec![Box::new(FaultyOracle::new(greedy, FaultPlan::scripted(script.clone())))]
        }
    }
}

fn request(spec: &Spec) -> ServiceRequest {
    ServiceRequest::new(spec.id, instance(spec), chain(spec), ResilientConfig::new(spec.k))
}

/// The serial ground truth: each spec through the resilient driver
/// directly, no service in sight.
fn serial_outcome(spec: &Spec) -> RequestOutcome {
    let h = instance(spec);
    let boxed = chain(spec);
    let refs: Vec<&dyn MaxIsOracle> =
        boxed.iter().map(|o| o.as_ref() as &dyn MaxIsOracle).collect();
    match reduce_cf_resilient(&h, &refs, ResilientConfig::new(spec.k)) {
        Ok(out) => RequestOutcome::Ok {
            phases: out.reduction.phases_used,
            set_size: out.reduction.records.iter().map(|r| r.independent_set_size).sum(),
            colors: out.reduction.total_colors,
        },
        Err(failure) => RequestOutcome::Failed { error: failure.error.to_string() },
    }
}

/// Runs the whole batch through a service at `workers` and returns
/// `(id, outcome)` pairs sorted by id.
fn batch_outcomes(workers: usize) -> Vec<(String, RequestOutcome)> {
    let specs = specs();
    let service = Service::start(
        ServiceConfig::new(workers).with_queue_capacity(specs.len()),
        Telemetry::disabled(),
    );
    for spec in &specs {
        service.submit(request(spec)).expect("queue sized for the whole batch");
    }
    let mut out: Vec<(String, RequestOutcome)> = (0..specs.len())
        .map(|_| service.recv().expect("worker pool alive"))
        .map(|r| (r.id, r.outcome))
        .collect();
    let report = service.shutdown();
    assert!(report.drained.is_empty(), "all responses were received before shutdown");
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

#[test]
fn service_matches_serial_at_every_worker_count() {
    let mut expected: Vec<(String, RequestOutcome)> =
        specs().iter().map(|s| (s.id.to_string(), serial_outcome(s))).collect();
    expected.sort_by(|a, b| a.0.cmp(&b.0));
    // Every request — including the fault-injected ones — recovers to
    // the exact serial result, at every pool size.
    assert!(expected.iter().all(|(_, o)| matches!(o, RequestOutcome::Ok { .. })));
    for workers in [1, 2, 4] {
        assert_eq!(batch_outcomes(workers), expected, "workers = {workers}");
    }
}

/// A multi-phase oracle that stalls for real wall-clock time on every
/// call — the shape of a slow or partitioned oracle process.
struct SleepyOracle {
    inner: PrecisionOracle,
    sleep: Duration,
}

impl MaxIsOracle for SleepyOracle {
    fn name(&self) -> &'static str {
        "sleepy"
    }

    fn independent_set(&self, graph: &Graph) -> IndependentSet {
        std::thread::sleep(self.sleep);
        self.inner.independent_set(graph)
    }

    fn guarantee(&self) -> ApproxGuarantee {
        self.inner.guarantee()
    }
}

#[test]
fn stalled_oracle_exceeds_deadline_without_poisoning_the_workspace() {
    // PrecisionOracle(4) needs ≥ 2 phases on this instance (pinned
    // below), so a deadline shorter than one oracle call expires at the
    // phase-1 boundary: the run stops cooperatively after a whole
    // committed phase instead of mid-oracle.
    let spec = Spec { id: "stalled", n: 40, m: 18, k: 3, seed: 31, faults: None };
    let h = instance(&spec);
    let multi_phase =
        reduce_cf_resilient(&h, &[&PrecisionOracle::new(4.0)], ResilientConfig::new(spec.k))
            .expect("clean run succeeds");
    assert!(multi_phase.reduction.phases_used >= 2, "need a multi-phase run to stall");

    let service = Service::start(ServiceConfig::new(1), Telemetry::disabled());
    let sleepy: BoxedOracle = Box::new(SleepyOracle {
        inner: PrecisionOracle::new(4.0),
        sleep: Duration::from_millis(80),
    });
    service
        .submit(
            ServiceRequest::new("stalled", h, vec![sleepy], ResilientConfig::new(spec.k))
                .with_deadline(Duration::from_millis(40)),
        )
        .unwrap();
    let stalled = service.recv().expect("one response");
    match stalled.outcome {
        RequestOutcome::DeadlineExceeded { phase } => {
            assert!(phase >= 1, "phase 0 always gets to run (checked at the boundary)")
        }
        other => panic!("expected deadline_exceeded, got {other:?}"),
    }

    // The single worker that just timed out must serve the next request
    // byte-identically to the serial ground truth.
    let clean = &specs()[0];
    service.submit(request(clean)).unwrap();
    let healthy = service.recv().expect("one response");
    service.shutdown();
    assert_eq!(healthy.outcome, serial_outcome(clean));
}

#[test]
fn request_expiring_in_the_queue_drains_as_deadline_exceeded() {
    // A single busy worker: the first request holds it long enough for
    // the second request's deadline to expire while it is still
    // *queued*. The drain must still answer the expired request — with
    // `deadline_exceeded` at phase 0, since nothing of it ever ran —
    // rather than hanging or silently dropping it.
    let service = Service::start(ServiceConfig::new(1), Telemetry::disabled());
    let spec = Spec { id: "blocker", n: 40, m: 18, k: 3, seed: 31, faults: None };
    let blocker: BoxedOracle = Box::new(SleepyOracle {
        inner: PrecisionOracle::new(4.0),
        sleep: Duration::from_millis(120),
    });
    service
        .submit(ServiceRequest::new(
            "blocker",
            instance(&spec),
            vec![blocker],
            ResilientConfig::new(spec.k),
        ))
        .unwrap();
    let doomed = &specs()[0];
    service.submit(request(doomed).with_deadline(Duration::from_millis(10))).unwrap();

    // Shut down without receiving anything: the drain owns both
    // responses and must deliver both.
    let report = service.shutdown();
    assert_eq!(report.drained.len(), 2, "the drain answers every admitted request");
    let expired =
        report.drained.iter().find(|r| r.id == doomed.id).expect("queued request is drained");
    assert_eq!(
        expired.outcome,
        RequestOutcome::DeadlineExceeded { phase: 0 },
        "a request dead on arrival at its worker is answered without running"
    );
    let served = report.drained.iter().find(|r| r.id == "blocker").expect("blocker drained");
    assert!(matches!(served.outcome, RequestOutcome::Ok { .. }), "blocker ran to completion");
}

// ---------------------------------------------------------------------
// CLI-level equivalence: the `pslocal batch` subcommand end to end.
// ---------------------------------------------------------------------

fn run_cli(args: &[&str], stdin: &str) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pslocal"));
    cmd.args(args).stdin(Stdio::piped()).stdout(Stdio::piped()).stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("binary spawns");
    child.stdin.as_mut().unwrap().write_all(stdin.as_bytes()).expect("stdin written");
    child.wait_with_output().expect("binary finishes")
}

/// A mixed JSONL batch mirroring `specs()`, with mid-batch fault
/// injection riding on the `faults` field.
fn jsonl_batch() -> String {
    [
        r#"{"id":"dense-0","n":96,"m":48,"k":8,"seed":11}"#,
        r#"{"id":"faulty-panic","n":64,"m":32,"k":4,"seed":13,"faults":"panic"}"#,
        r#"{"id":"sparse-0","n":192,"m":96,"k":4,"seed":12}"#,
        r#"{"id":"faulty-mixed","n":80,"m":40,"k":4,"seed":14,"faults":"empty-set,invalid-set"}"#,
        r#"{"id":"chained","n":72,"m":36,"k":3,"seed":15,"oracle":"greedy,exact"}"#,
        r#"{"id":"kernel-pinned","n":64,"m":32,"k":4,"seed":16,"kernel":"bitset","oracle_cache":true}"#,
    ]
    .join("\n")
}

fn sorted_result_lines(out: &Output) -> Vec<String> {
    let mut lines: Vec<String> =
        String::from_utf8_lossy(&out.stdout).lines().map(String::from).collect();
    lines.sort();
    lines
}

#[test]
fn cli_batch_is_byte_identical_across_worker_counts() {
    let batch = jsonl_batch();
    let baseline = run_cli(&["batch", "--workers", "1"], &batch);
    assert!(baseline.status.success(), "stderr: {}", String::from_utf8_lossy(&baseline.stderr));
    let expected = sorted_result_lines(&baseline);
    assert_eq!(expected.len(), 6);
    assert!(expected.iter().all(|l| l.contains("\"outcome\":\"ok\"")), "lines: {expected:?}");
    for workers in [2, 4] {
        let out = run_cli(&["batch", "--workers", &workers.to_string()], &batch);
        assert!(out.status.success(), "workers = {workers}");
        assert_eq!(sorted_result_lines(&out), expected, "workers = {workers}");
    }
}

#[test]
fn cli_batch_reports_deadline_and_rejection_outcomes() {
    // Zero-deadline request: cooperative cancellation before phase 0.
    let out = run_cli(
        &["batch", "--workers", "1"],
        r#"{"id":"doomed","n":64,"m":32,"k":4,"deadline_ms":0}"#,
    );
    assert!(out.status.success());
    assert_eq!(
        sorted_result_lines(&out),
        [r#"{"id":"doomed","outcome":"deadline_exceeded","phase":0}"#]
    );

    // A queue of 1 behind a single worker must reject (not buffer) the
    // overflow; exactly one line per request either way.
    let batch = jsonl_batch();
    let out = run_cli(&["batch", "--workers", "1", "--queue", "1"], &batch);
    assert!(out.status.success());
    let lines = sorted_result_lines(&out);
    assert_eq!(lines.len(), 6, "one result line per request: {lines:?}");
    let summary = String::from_utf8_lossy(&out.stderr);
    assert!(summary.contains("6 requests"), "stderr: {summary}");
}

#[test]
fn cli_batch_rejects_malformed_lines_with_the_line_number() {
    let out = run_cli(&["batch"], "{\"id\":\"ok-line\"}\n{\"id\":42}\n");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 2"), "stderr: {stderr}");

    let missing_id = run_cli(&["batch"], "{\"n\":32}\n");
    assert!(!missing_id.status.success());
    assert!(String::from_utf8_lossy(&missing_id.stderr).contains("\"id\""));
}
