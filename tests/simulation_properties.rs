//! Property tests for the SLOCAL→LOCAL simulation and the model
//! runtimes: the derandomization schedule must agree with sequential
//! execution, balls must be genuinely disjoint, and round bills must
//! stay polylogarithmic — across randomized graph families.

use proptest::prelude::*;
use pslocal::graph::generators::random::{gnp, random_tree};
use pslocal::graph::Graph;
use pslocal::slocal::{
    algorithms::{GreedyColoring, GreedyMis},
    interleaving_is_irrelevant, run, simulate_in_local,
};
use rand::SeedableRng;

fn arbitrary_graph() -> impl Strategy<Value = Graph> {
    (0u64..5000, 10usize..60, prop_oneof![Just(true), Just(false)]).prop_map(|(seed, n, tree)| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        if tree {
            random_tree(&mut rng, n)
        } else {
            gnp(&mut rng, n, 6.0 / n as f64)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The simulated run equals the sequential run under the induced
    /// order, and its output is a valid MIS.
    #[test]
    fn simulation_agrees_with_sequential(g in arbitrary_graph()) {
        let sim = simulate_in_local(&g, &GreedyMis);
        let seq = run(&g, &GreedyMis, &sim.induced_order);
        prop_assert_eq!(&sim.states, &seq.states);
        let mis = GreedyMis::members(&sim.states);
        prop_assert!(g.is_maximal_independent_set(&mis));
    }

    /// Same-class clusters of the simulation's decomposition always
    /// have disjoint r-balls (the soundness of the parallel slots).
    #[test]
    fn parallel_slots_are_sound(g in arbitrary_graph()) {
        let sim = simulate_in_local(&g, &GreedyMis);
        prop_assert!(interleaving_is_irrelevant(&g, &sim.decomposition, sim.bill.locality));
    }

    /// The LOCAL bill stays within O(log² n) for locality-1 algorithms.
    #[test]
    fn bill_is_polylog(g in arbitrary_graph()) {
        let n = g.node_count().max(2) as f64;
        let sim = simulate_in_local(&g, &GreedyColoring);
        let budget = 16.0 * (n.log2() + 1.0).powi(2);
        prop_assert!(
            (sim.bill.local_rounds as f64) <= budget,
            "{} rounds > {budget}", sim.bill.local_rounds
        );
        // Colorings coming out of the simulation are proper.
        let colors = GreedyColoring::colors(&sim.states);
        prop_assert!(g.is_proper_coloring(&colors));
    }

    /// The induced order is a permutation of the vertex set.
    #[test]
    fn induced_order_is_a_permutation(g in arbitrary_graph()) {
        let sim = simulate_in_local(&g, &GreedyMis);
        let mut sorted = sim.induced_order.clone();
        sorted.sort_unstable();
        let expect: Vec<_> = g.nodes().collect();
        prop_assert_eq!(sorted, expect);
    }
}
