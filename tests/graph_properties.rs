//! Property tests for the graph substrate: CSR invariants, generator
//! contracts, derived-graph operators, and the text formats.

use proptest::prelude::*;
use pslocal::graph::algo::{bfs_distances, connected_components, UNREACHABLE};
use pslocal::graph::generators::random::{gnm, gnp, random_tree};
use pslocal::graph::io::{read_graph, read_hypergraph, write_graph, write_hypergraph};
use pslocal::graph::ops::{line_graph, power_graph};
use pslocal::graph::{Graph, NodeId};
use rand::SeedableRng;

fn arbitrary_graph() -> impl Strategy<Value = Graph> {
    (0u64..5000, 2usize..50, 0usize..3).prop_map(|(seed, n, kind)| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        match kind {
            0 => gnp(&mut rng, n, 0.15),
            1 => random_tree(&mut rng, n),
            _ => {
                let max = n * (n - 1) / 2;
                gnm(&mut rng, n, (2 * n).min(max))
            }
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSR invariants: neighbor lists sorted & loop-free; degree sums
    /// to 2m; adjacency is symmetric.
    #[test]
    fn csr_invariants(g in arbitrary_graph()) {
        let mut degree_sum = 0usize;
        for v in g.nodes() {
            let ns = g.neighbors(v);
            prop_assert!(ns.windows(2).all(|w| w[0] < w[1]), "unsorted at {v}");
            prop_assert!(!ns.contains(&v), "loop at {v}");
            degree_sum += ns.len();
            for &u in ns {
                prop_assert!(g.has_edge(u, v) && g.has_edge(v, u));
            }
        }
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
    }

    /// BFS distances satisfy the triangle property along edges and
    /// agree with component structure.
    #[test]
    fn bfs_is_metric_consistent(g in arbitrary_graph()) {
        let n = g.node_count();
        let src = NodeId::new(0);
        let dist = bfs_distances(&g, src);
        let (comp, _) = connected_components(&g);
        for v in 0..n {
            prop_assert_eq!(dist[v] != UNREACHABLE, comp[v] == comp[0]);
        }
        for (u, v) in g.edges() {
            let (du, dv) = (dist[u.index()], dist[v.index()]);
            if du != UNREACHABLE {
                prop_assert!(dv != UNREACHABLE && dv <= du + 1 && du <= dv + 1);
            }
        }
    }

    /// Power graph: adjacency ⟺ distance ≤ t (checked for t = 2).
    #[test]
    fn power_graph_matches_distances(g in arbitrary_graph()) {
        let p2 = power_graph(&g, 2);
        for v in g.nodes() {
            let dist = bfs_distances(&g, v);
            for u in g.nodes() {
                if u > v {
                    let close = dist[u.index()] != UNREACHABLE && dist[u.index()] <= 2;
                    prop_assert_eq!(p2.has_edge(u, v), close, "pair ({}, {})", u, v);
                }
            }
        }
    }

    /// Line graph: vertex count = m; degrees equal the number of
    /// adjacent edges (deg(u) + deg(v) − 2).
    #[test]
    fn line_graph_degrees(g in arbitrary_graph()) {
        let (lg, edges) = line_graph(&g);
        prop_assert_eq!(lg.node_count(), g.edge_count());
        for (i, &(u, v)) in edges.iter().enumerate() {
            let expected = g.degree(u) + g.degree(v) - 2;
            prop_assert_eq!(lg.degree(NodeId::new(i)), expected);
        }
    }

    /// Text format round-trips preserve the graph exactly.
    #[test]
    fn io_round_trip(g in arbitrary_graph()) {
        let back = read_graph(&write_graph(&g)).expect("own output parses");
        prop_assert_eq!(back, g);
    }

    /// Hypergraph text round-trips (via planted instances).
    #[test]
    fn hypergraph_io_round_trip(seed in 0u64..2000, k in 2usize..4) {
        use pslocal::graph::generators::hyper::{planted_cf_instance, PlantedCfParams};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let h = planted_cf_instance(&mut rng, PlantedCfParams::new(8 * k, 6, k)).hypergraph;
        let back = read_hypergraph(&write_hypergraph(&h)).expect("own output parses");
        prop_assert_eq!(back, h);
    }

    /// Induced subgraphs preserve adjacency among kept vertices.
    #[test]
    fn induced_subgraph_is_faithful(g in arbitrary_graph(), mask_seed in 0u64..1000) {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(mask_seed);
        let keep: Vec<NodeId> = g.nodes().filter(|_| rng.gen_bool(0.5)).collect();
        let (sub, map) = g.induced_subgraph(&keep);
        prop_assert_eq!(sub.node_count(), keep.len());
        for i in 0..keep.len() {
            for j in (i + 1)..keep.len() {
                prop_assert_eq!(
                    sub.has_edge(NodeId::new(i), NodeId::new(j)),
                    g.has_edge(map[i], map[j])
                );
            }
        }
    }
}
