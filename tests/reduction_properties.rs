//! Property-based tests for the Theorem 1.1 reduction driver: budget,
//! decay, palette discipline, and determinism across randomized
//! instances and oracles.

use proptest::prelude::*;
use pslocal::cfcolor::checker;
use pslocal::core::{reduce_cf_to_maxis, ReductionConfig};
use pslocal::graph::generators::hyper::{planted_cf_instance, PlantedCfInstance, PlantedCfParams};
use pslocal::graph::Palette;
use pslocal::maxis::{ExactOracle, GreedyOracle, LubyOracle, MaxIsOracle};
use rand::SeedableRng;

fn planted() -> impl Strategy<Value = PlantedCfInstance> {
    (0u64..5000, 2usize..4, 4usize..14).prop_map(|(seed, k, m)| {
        let n = 8 * k + (seed as usize % 9);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        planted_cf_instance(&mut rng, PlantedCfParams::new(n, m, k))
    })
}

fn oracle_by_index(i: usize) -> Box<dyn MaxIsOracle> {
    match i % 3 {
        0 => Box::new(ExactOracle),
        1 => Box::new(GreedyOracle),
        _ => Box::new(LubyOracle::new(17)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The reduction terminates within ρ with a conflict-free output of
    /// at most k·phases colors, for every certified oracle.
    #[test]
    fn reduction_invariants(inst in planted(), oracle_idx in 0usize..3) {
        let k = inst.k;
        let oracle = oracle_by_index(oracle_idx);
        let out = reduce_cf_to_maxis(&inst.hypergraph, oracle.as_ref(), ReductionConfig::new(k))
            .expect("certified oracles finish within the paper budget");
        prop_assert!(checker::is_conflict_free(&inst.hypergraph, &out.coloring));
        prop_assert!(out.phases_used <= out.rho);
        prop_assert!(out.total_colors <= k * out.phases_used.max(1));
        let palettes: Vec<Palette> = (0..out.phases_used).map(|i| Palette::phase(k, i)).collect();
        prop_assert!(out.coloring.uses_only_palettes(&palettes));
    }

    /// Per-phase decay: every phase removes at least |I_i| edges and
    /// satisfies |E_{i+1}| ≤ (1 − 1/λ)|E_i| for the certified λ.
    #[test]
    fn per_phase_decay(inst in planted()) {
        let k = inst.k;
        let out = reduce_cf_to_maxis(&inst.hypergraph, &GreedyOracle, ReductionConfig::new(k))
            .unwrap();
        for r in &out.records {
            prop_assert!(r.edges_removed >= r.independent_set_size);
            let allowed = (1.0 - 1.0 / out.lambda) * r.edges_before as f64;
            prop_assert!(
                r.edges_after as f64 <= allowed + 1e-9,
                "phase {}: {} edges after, allowed {:.2}",
                r.phase, r.edges_after, allowed
            );
        }
        // Records chain correctly down to zero.
        let last = out.records.last().unwrap();
        prop_assert_eq!(last.edges_after, 0);
    }

    /// Determinism: identical inputs and oracles give identical outputs.
    #[test]
    fn reduction_is_deterministic(inst in planted()) {
        let k = inst.k;
        let a = reduce_cf_to_maxis(&inst.hypergraph, &LubyOracle::new(3), ReductionConfig::new(k))
            .unwrap();
        let b = reduce_cf_to_maxis(&inst.hypergraph, &LubyOracle::new(3), ReductionConfig::new(k))
            .unwrap();
        prop_assert_eq!(a.coloring, b.coloring);
        prop_assert_eq!(a.records, b.records);
    }

    /// The exact oracle always finishes in exactly one phase on planted
    /// instances (α(G_k) = m ⇒ every edge gets a witness at once).
    #[test]
    fn exact_oracle_is_single_phase(inst in planted()) {
        let out = reduce_cf_to_maxis(&inst.hypergraph, &ExactOracle, ReductionConfig::new(inst.k))
            .unwrap();
        prop_assert_eq!(out.phases_used, 1);
        prop_assert_eq!(out.records[0].independent_set_size, inst.hypergraph.edge_count());
    }

    /// Conflict graphs shrink monotonically across phases.
    #[test]
    fn conflict_graphs_shrink(inst in planted()) {
        let out = reduce_cf_to_maxis(&inst.hypergraph, &GreedyOracle, ReductionConfig::new(inst.k))
            .unwrap();
        for w in out.records.windows(2) {
            prop_assert!(w[1].conflict_nodes <= w[0].conflict_nodes);
            prop_assert!(w[1].edges_before <= w[0].edges_before);
        }
    }
}
