//! End-to-end tests of the `pslocal` CLI binary: generate → stats →
//! reduce/maxis pipelines over the text formats.

use std::io::Write as _;
use std::process::{Command, Output, Stdio};

fn run(args: &[&str], stdin: Option<&str>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pslocal"));
    cmd.args(args).stdout(Stdio::piped()).stderr(Stdio::piped());
    if stdin.is_some() {
        cmd.stdin(Stdio::piped());
    } else {
        cmd.stdin(Stdio::null());
    }
    let mut child = cmd.spawn().expect("binary spawns");
    if let Some(text) = stdin {
        // The binary may exit (e.g. on a bad flag) before reading its
        // stdin; a broken pipe here is fine for those tests.
        let _ = child.stdin.as_mut().unwrap().write_all(text.as_bytes());
    }
    child.wait_with_output().expect("binary finishes")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = run(&["help"], None);
    assert!(out.status.success());
    assert!(stdout(&out).contains("USAGE"));
    let bare = run(&[], None);
    assert!(bare.status.success());
}

#[test]
fn unknown_command_fails_with_message() {
    let out = run(&["frobnicate"], None);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn gen_planted_then_stats_then_reduce() {
    let gen = run(&["gen", "planted", "--n", "36", "--m", "15", "--k", "3", "--seed", "1"], None);
    assert!(gen.status.success());
    let instance = stdout(&gen);
    assert!(instance.contains("p hypergraph 36 15"));

    let stats = run(&["stats"], Some(&instance));
    assert!(stats.status.success());
    assert!(stdout(&stats).contains("hypergraph: n=36 m=15"));
    assert!(stdout(&stats).contains("almost-uniform(0.5): true"));

    let reduce = run(&["reduce", "--k", "3", "--oracle", "exact"], Some(&instance));
    assert!(reduce.status.success(), "stderr: {}", String::from_utf8_lossy(&reduce.stderr));
    let text = stdout(&reduce);
    assert!(text.contains("oracle = exact"));
    assert!(text.contains("phases = 1"));
    // One `v` line per vertex.
    assert_eq!(text.lines().filter(|l| l.starts_with("v ")).count(), 36);
}

#[test]
fn gen_gnp_then_maxis_with_each_oracle() {
    let gen = run(&["gen", "gnp", "--n", "24", "--p", "0.15", "--seed", "2"], None);
    assert!(gen.status.success());
    let graph = stdout(&gen);
    assert!(graph.contains("p graph 24"));
    for oracle in ["exact", "greedy", "luby", "clique-removal", "decomposition"] {
        let out = run(&["maxis", "--oracle", oracle], Some(&graph));
        assert!(out.status.success(), "oracle {oracle}");
        let text = stdout(&out);
        assert!(text.contains("oracle = "), "oracle {oracle}");
        assert!(text.lines().any(|l| l.starts_with("i ")), "oracle {oracle} found nothing");
    }
}

#[test]
fn reduce_requires_k_and_valid_oracle() {
    let gen = run(&["gen", "planted", "--n", "24", "--m", "8", "--k", "2"], None);
    let instance = stdout(&gen);
    let missing_k = run(&["reduce"], Some(&instance));
    assert!(!missing_k.status.success());
    assert!(String::from_utf8_lossy(&missing_k.stderr).contains("--k"));
    let bad_oracle = run(&["reduce", "--k", "2", "--oracle", "psychic"], Some(&instance));
    assert!(!bad_oracle.status.success());
    assert!(String::from_utf8_lossy(&bad_oracle.stderr).contains("unknown oracle"));
}

#[test]
fn trace_report_renders_timeline_and_span_tree() {
    let out = run(&["trace-report", "--n", "128", "--seed", "7"], None);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = stdout(&out);
    assert!(text.contains("trace-report: planted n=128 m=64 k=4"));
    assert!(text.contains("reduction: lambda = "));
    // The per-phase timeline table…
    assert!(text.contains("phase"));
    assert!(text.contains("restrict"));
    assert!(text.contains("total"));
    // …and the flamegraph-style tree with its span names.
    assert!(text.contains("reduction "));
    assert!(text.contains("conflict-graph"));
    assert!(text.contains("oracle"));
    assert!(text.contains("commit"));
}

#[test]
fn reduce_with_trace_and_metrics_out_emits_both() {
    let dir = std::env::temp_dir().join(format!("pslocal-cli-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let metrics = dir.join("metrics.jsonl");
    let metrics_path = metrics.to_str().unwrap();

    let gen = run(&["gen", "planted", "--n", "36", "--m", "15", "--k", "3", "--seed", "1"], None);
    let instance = stdout(&gen);
    let reduce =
        run(&["reduce", "--k", "3", "--trace", "--metrics-out", metrics_path], Some(&instance));
    assert!(reduce.status.success(), "stderr: {}", String::from_utf8_lossy(&reduce.stderr));
    let text = stdout(&reduce);
    // Span tree precedes the normal reduce output, which is intact.
    assert!(text.contains("reduction "));
    assert!(text.contains("phase 0"));
    assert_eq!(text.lines().filter(|l| l.starts_with("v ")).count(), 36);

    let jsonl = std::fs::read_to_string(&metrics).expect("metrics file written");
    assert!(!jsonl.is_empty());
    for line in jsonl.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "not a JSON object: {line}");
    }
    assert!(jsonl.contains("\"event\":\"span_start\""));
    assert!(jsonl.contains("\"name\":\"reduction\""));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stats_rejects_garbage() {
    let out = run(&["stats"], Some("not a graph at all"));
    assert!(!out.status.success());
}

#[test]
fn generation_is_seed_deterministic_across_invocations() {
    let a = run(&["gen", "gnp", "--n", "20", "--p", "0.2", "--seed", "9"], None);
    let b = run(&["gen", "gnp", "--n", "20", "--p", "0.2", "--seed", "9"], None);
    let c = run(&["gen", "gnp", "--n", "20", "--p", "0.2", "--seed", "10"], None);
    assert_eq!(stdout(&a), stdout(&b));
    assert_ne!(stdout(&a), stdout(&c));
}
