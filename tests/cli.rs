//! End-to-end tests of the `pslocal` CLI binary: generate → stats →
//! reduce/maxis pipelines over the text formats.

use std::io::Write as _;
use std::process::{Command, Output, Stdio};

fn run(args: &[&str], stdin: Option<&str>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pslocal"));
    cmd.args(args).stdout(Stdio::piped()).stderr(Stdio::piped());
    if stdin.is_some() {
        cmd.stdin(Stdio::piped());
    } else {
        cmd.stdin(Stdio::null());
    }
    let mut child = cmd.spawn().expect("binary spawns");
    if let Some(text) = stdin {
        // The binary may exit (e.g. on a bad flag) before reading its
        // stdin; a broken pipe here is fine for those tests.
        let _ = child.stdin.as_mut().unwrap().write_all(text.as_bytes());
    }
    child.wait_with_output().expect("binary finishes")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = run(&["help"], None);
    assert!(out.status.success());
    assert!(stdout(&out).contains("USAGE"));
    let bare = run(&[], None);
    assert!(bare.status.success());
}

#[test]
fn unknown_command_fails_with_message() {
    let out = run(&["frobnicate"], None);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn gen_planted_then_stats_then_reduce() {
    let gen = run(&["gen", "planted", "--n", "36", "--m", "15", "--k", "3", "--seed", "1"], None);
    assert!(gen.status.success());
    let instance = stdout(&gen);
    assert!(instance.contains("p hypergraph 36 15"));

    let stats = run(&["stats"], Some(&instance));
    assert!(stats.status.success());
    assert!(stdout(&stats).contains("hypergraph: n=36 m=15"));
    assert!(stdout(&stats).contains("almost-uniform(0.5): true"));

    let reduce = run(&["reduce", "--k", "3", "--oracle", "exact"], Some(&instance));
    assert!(reduce.status.success(), "stderr: {}", String::from_utf8_lossy(&reduce.stderr));
    let text = stdout(&reduce);
    assert!(text.contains("oracle = exact"));
    assert!(text.contains("phases = 1"));
    // One `v` line per vertex.
    assert_eq!(text.lines().filter(|l| l.starts_with("v ")).count(), 36);
}

#[test]
fn gen_gnp_then_maxis_with_each_oracle() {
    let gen = run(&["gen", "gnp", "--n", "24", "--p", "0.15", "--seed", "2"], None);
    assert!(gen.status.success());
    let graph = stdout(&gen);
    assert!(graph.contains("p graph 24"));
    for oracle in ["exact", "greedy", "luby", "clique-removal", "decomposition"] {
        let out = run(&["maxis", "--oracle", oracle], Some(&graph));
        assert!(out.status.success(), "oracle {oracle}");
        let text = stdout(&out);
        assert!(text.contains("oracle = "), "oracle {oracle}");
        assert!(text.lines().any(|l| l.starts_with("i ")), "oracle {oracle} found nothing");
    }
}

#[test]
fn reduce_requires_k_and_valid_oracle() {
    let gen = run(&["gen", "planted", "--n", "24", "--m", "8", "--k", "2"], None);
    let instance = stdout(&gen);
    let missing_k = run(&["reduce"], Some(&instance));
    assert!(!missing_k.status.success());
    assert!(String::from_utf8_lossy(&missing_k.stderr).contains("--k"));
    let bad_oracle = run(&["reduce", "--k", "2", "--oracle", "psychic"], Some(&instance));
    assert!(!bad_oracle.status.success());
    assert!(String::from_utf8_lossy(&bad_oracle.stderr).contains("unknown oracle"));
}

#[test]
fn trace_report_renders_timeline_and_span_tree() {
    let out = run(&["trace-report", "--n", "128", "--seed", "7"], None);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = stdout(&out);
    assert!(text.contains("trace-report: planted n=128 m=64 k=4"));
    assert!(text.contains("reduction: lambda = "));
    // The per-phase timeline table…
    assert!(text.contains("phase"));
    assert!(text.contains("restrict"));
    assert!(text.contains("total"));
    // …and the flamegraph-style tree with its span names.
    assert!(text.contains("reduction "));
    assert!(text.contains("conflict-graph"));
    assert!(text.contains("oracle"));
    assert!(text.contains("commit"));
}

#[test]
fn reduce_with_trace_and_metrics_out_emits_both() {
    let dir = std::env::temp_dir().join(format!("pslocal-cli-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let metrics = dir.join("metrics.jsonl");
    let metrics_path = metrics.to_str().unwrap();

    let gen = run(&["gen", "planted", "--n", "36", "--m", "15", "--k", "3", "--seed", "1"], None);
    let instance = stdout(&gen);
    let reduce =
        run(&["reduce", "--k", "3", "--trace", "--metrics-out", metrics_path], Some(&instance));
    assert!(reduce.status.success(), "stderr: {}", String::from_utf8_lossy(&reduce.stderr));
    let text = stdout(&reduce);
    // Span tree precedes the normal reduce output, which is intact.
    assert!(text.contains("reduction "));
    assert!(text.contains("phase 0"));
    assert_eq!(text.lines().filter(|l| l.starts_with("v ")).count(), 36);

    let jsonl = std::fs::read_to_string(&metrics).expect("metrics file written");
    assert!(!jsonl.is_empty());
    for line in jsonl.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "not a JSON object: {line}");
    }
    assert!(jsonl.contains("\"event\":\"span_start\""));
    assert!(jsonl.contains("\"name\":\"reduction\""));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stats_rejects_garbage() {
    let out = run(&["stats"], Some("not a graph at all"));
    assert!(!out.status.success());
}

#[test]
fn generation_is_seed_deterministic_across_invocations() {
    let a = run(&["gen", "gnp", "--n", "20", "--p", "0.2", "--seed", "9"], None);
    let b = run(&["gen", "gnp", "--n", "20", "--p", "0.2", "--seed", "9"], None);
    let c = run(&["gen", "gnp", "--n", "20", "--p", "0.2", "--seed", "10"], None);
    assert_eq!(stdout(&a), stdout(&b));
    assert_ne!(stdout(&a), stdout(&c));
}

/// A planted instance on which `luby` takes ≥ 2 reduction phases, so a
/// phase-1 kill point is actually reachable.
fn multi_phase_instance() -> String {
    let gen = run(&["gen", "planted", "--n", "80", "--m", "60", "--k", "3", "--seed", "9"], None);
    assert!(gen.status.success());
    stdout(&gen)
}

#[test]
fn killed_process_resumes_byte_identically() {
    // The real subprocess-kill test: `--crash-at` aborts the whole
    // process (SIGABRT, no unwinding, no destructors) at a journal
    // boundary; the rerun with `--resume` must replay the journal and
    // produce stdout byte-identical to an uninterrupted run.
    let dir = std::env::temp_dir().join(format!("pslocal-cli-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let ckpt = dir.to_str().unwrap();
    let instance = multi_phase_instance();
    let reduce_args = ["reduce", "--k", "3", "--oracle", "luby", "--seed", "5"];

    let base = run(&reduce_args, Some(&instance));
    assert!(base.status.success());
    assert!(stdout(&base).lines().filter(|l| l.starts_with("c phase")).count() >= 2);

    let mut crash_args = reduce_args.to_vec();
    crash_args.extend(["--checkpoint-dir", ckpt, "--crash-at", "1:before-journal"]);
    let crashed = run(&crash_args, Some(&instance));
    assert!(!crashed.status.success(), "the injected abort must kill the process");

    let inspect = run(&["checkpoint-inspect", "--checkpoint-dir", ckpt], None);
    assert!(inspect.status.success(), "stderr: {}", String::from_utf8_lossy(&inspect.stderr));
    let text = stdout(&inspect);
    assert!(text.contains("driver = trusting"));
    assert!(text.contains("phase 0:"), "phase 0 must have been journaled before the kill");
    assert!(!text.contains("phase 1:"), "the kill fired before phase 1's append");

    let mut resume_args = reduce_args.to_vec();
    resume_args.extend(["--checkpoint-dir", ckpt, "--resume"]);
    let resumed = run(&resume_args, Some(&instance));
    assert!(resumed.status.success(), "stderr: {}", String::from_utf8_lossy(&resumed.stderr));
    assert_eq!(stdout(&resumed), stdout(&base), "resumed stdout must be byte-identical");
    // The recovery summary goes to stderr, keeping stdout diffable.
    assert!(String::from_utf8_lossy(&resumed.stderr).contains("resumed: 1 phase(s) recovered"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_journal_still_resumes_to_the_same_output() {
    let dir = std::env::temp_dir().join(format!("pslocal-cli-corrupt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let ckpt = dir.to_str().unwrap();
    let instance = multi_phase_instance();
    let reduce_args = ["reduce", "--k", "3", "--oracle", "luby", "--seed", "5"];

    let mut ckpt_args = reduce_args.to_vec();
    ckpt_args.extend(["--checkpoint-dir", ckpt]);
    let base = run(&ckpt_args, Some(&instance));
    assert!(base.status.success(), "stderr: {}", String::from_utf8_lossy(&base.stderr));

    // Flip one byte in the journal's final record.
    let journal = dir.join("journal.psj");
    let mut bytes = std::fs::read(&journal).expect("journal written");
    let last = bytes.len() - 10;
    bytes[last] ^= 0xFF;
    std::fs::write(&journal, &bytes).unwrap();

    let mut resume_args = reduce_args.to_vec();
    resume_args.extend(["--checkpoint-dir", ckpt, "--resume"]);
    let resumed = run(&resume_args, Some(&instance));
    assert!(resumed.status.success(), "stderr: {}", String::from_utf8_lossy(&resumed.stderr));
    assert_eq!(stdout(&resumed), stdout(&base), "corruption must not change the output");
    assert!(
        String::from_utf8_lossy(&resumed.stderr).contains("discarded"),
        "the recovery summary must mention the discarded record"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_checkpoint_dir_fails_cleanly() {
    let dir = std::env::temp_dir().join(format!("pslocal-cli-badckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    // A checkpoint path *under a regular file* cannot be created.
    let blocker = dir.join("blocker");
    std::fs::write(&blocker, b"not a directory").unwrap();
    let bad = blocker.join("sub");
    let instance = multi_phase_instance();
    let out =
        run(&["reduce", "--k", "3", "--checkpoint-dir", bad.to_str().unwrap()], Some(&instance));
    assert!(!out.status.success(), "bad checkpoint dir must be a clean nonzero exit");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("checkpointing failed"), "stderr: {err}");

    // `--resume` / `--crash-at` without `--checkpoint-dir` are refused.
    let orphan = run(&["reduce", "--k", "3", "--resume"], Some(&instance));
    assert!(!orphan.status.success());
    assert!(String::from_utf8_lossy(&orphan.stderr).contains("requires --checkpoint-dir"));
    let bad_spec = run(
        &["reduce", "--k", "3", "--checkpoint-dir", dir.to_str().unwrap(), "--crash-at", "zap"],
        Some(&instance),
    );
    assert!(!bad_spec.status.success());
    assert!(String::from_utf8_lossy(&bad_spec.stderr).contains("cannot parse --crash-at"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_inspect_requires_a_journal() {
    let dir = std::env::temp_dir().join(format!("pslocal-cli-noinspect-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = run(&["checkpoint-inspect", "--checkpoint-dir", dir.to_str().unwrap()], None);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no journal"));
    let missing = run(&["checkpoint-inspect"], None);
    assert!(!missing.status.success());
    assert!(String::from_utf8_lossy(&missing.stderr).contains("--checkpoint-dir"));
}
