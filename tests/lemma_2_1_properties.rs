//! Property-based tests (proptest) for the Lemma 2.1 correspondence
//! and the conflict-graph construction — the workspace's core
//! invariants under randomized instance generation.

use proptest::prelude::*;
use pslocal::core::{
    coloring_to_independent_set, independent_set_to_coloring, lemma_2_1_quota, lemma_2_1a,
    lemma_2_1b, total_coloring_as_indices, ConflictGraph,
};
use pslocal::graph::generators::hyper::{planted_cf_instance, PlantedCfInstance, PlantedCfParams};
use pslocal::graph::{IndependentSet, NodeId};
use rand::SeedableRng;

/// Strategy: a planted CF instance plus its conflict graph, sizes kept
/// small enough for exhaustive-ish checks.
fn planted_instance() -> impl Strategy<Value = (PlantedCfInstance, ConflictGraph)> {
    (0u64..5000, 2usize..4, 3usize..12).prop_map(|(seed, k, m)| {
        let n = 8 * k + (seed as usize % 7);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let inst = planted_cf_instance(&mut rng, PlantedCfParams::new(n, m, k));
        let cg = ConflictGraph::build(&inst.hypergraph, k);
        (inst, cg)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lemma 2.1 a): the planted coloring induces an independent set of
    /// size exactly m.
    #[test]
    fn lemma_a_on_planted_colorings((inst, cg) in planted_instance()) {
        let coloring = total_coloring_as_indices(&inst.planted_coloring);
        let set = lemma_2_1a(&cg, &coloring);
        prop_assert_eq!(set.len(), inst.hypergraph.edge_count());
        // Every member triple's color matches the planted coloring.
        for node in set.iter() {
            let t = cg.triple_of(node);
            prop_assert_eq!(
                inst.planted_coloring[t.vertex.index()].index(),
                t.color
            );
        }
    }

    /// Lemma 2.1 b): greedily sampled maximal independent sets induce
    /// well-defined colorings with happy(f_I) ≥ |I|.
    #[test]
    fn lemma_b_on_random_maximal_sets((_inst, cg) in planted_instance(), pick_seed in 0u64..1000) {
        // Sample a random maximal independent set of G_k.
        let g = cg.graph();
        let mut order: Vec<NodeId> = g.nodes().collect();
        use rand::seq::SliceRandom;
        let mut rng = rand::rngs::StdRng::seed_from_u64(pick_seed);
        order.shuffle(&mut rng);
        let mut members = Vec::new();
        let mut blocked = vec![false; g.node_count()];
        for v in order {
            if !blocked[v.index()] {
                members.push(v);
                blocked[v.index()] = true;
                for &u in g.neighbors(v) {
                    blocked[u.index()] = true;
                }
            }
        }
        let set = IndependentSet::new(g, members).expect("greedy maximal set is independent");
        let out = lemma_2_1b(&cg, &set);
        prop_assert!(out.happy_edges >= set.len());
        // f_I is a partial single-coloring with ≤ |I| colored vertices.
        prop_assert!(out.coloring.colored_count() <= set.len());
    }

    /// No independent set of G_k exceeds m (the E_edge cliques cap it).
    #[test]
    fn no_independent_set_beats_m((inst, cg) in planted_instance()) {
        let greedy = pslocal::maxis::GreedyOracle;
        use pslocal::maxis::MaxIsOracle;
        let set = greedy.independent_set(cg.graph());
        prop_assert!(set.len() <= inst.hypergraph.edge_count());
    }

    /// Round trip: f → I_f → f_{I_f} makes every edge happy again.
    #[test]
    fn round_trip_restores_all_happiness((inst, cg) in planted_instance()) {
        let coloring = total_coloring_as_indices(&inst.planted_coloring);
        let set = lemma_2_1a(&cg, &coloring);
        let out = independent_set_to_coloring(&cg, &set);
        prop_assert_eq!(out.happy_edges, inst.hypergraph.edge_count());
    }

    /// The conflict graph has no self loops and exactly k·Σ|e| nodes,
    /// and every built edge satisfies at least one family predicate.
    #[test]
    fn conflict_graph_structural_invariants((inst, cg) in planted_instance()) {
        prop_assert_eq!(
            cg.graph().node_count(),
            ConflictGraph::expected_node_count(&inst.hypergraph, cg.k())
        );
        for (x, y) in cg.graph().edges() {
            prop_assert!(x != y, "self loop");
            let (a, b) = (cg.triple_of(x), cg.triple_of(y));
            prop_assert!(
                cg.in_vertex_family(a, b)
                    || cg.in_edge_family(a, b)
                    || cg.in_color_family(a, b),
                "edge in no family"
            );
        }
    }

    /// The Lemma 2.1 quota ⌈edges/λ⌉ matches exact rational arithmetic
    /// for every dyadic λ = p/8 (exactly representable in f64, so the
    /// reference ⌈8·edges/p⌉ over u128 is the ground truth) — including
    /// edge counts past 2^53, where the old `edges as f64` fractional
    /// path lost bits and could under-count by 1.
    #[test]
    fn quota_matches_exact_rational_for_dyadic_lambda(
        p in 8u64..100_000,
        edges in prop_oneof![
            0usize..10_000,
            ((1usize << 53) - 4)..=((1usize << 53) + 4),
            (usize::MAX - 8)..=usize::MAX,
        ],
    ) {
        let lambda = p as f64 / 8.0;
        let expected = (edges as u128 * 8).div_ceil(p as u128) as usize;
        prop_assert_eq!(lemma_2_1_quota(edges, lambda), expected,
            "edges = {}, λ = {}/8", edges, p);
        // The quota is monotone in the edge count at fixed λ.
        if edges > 0 {
            prop_assert!(lemma_2_1_quota(edges - 1, lambda) <= expected);
        }
    }

    /// Partial colorings: direction a) never claims a witness for an
    /// edge whose members are all uncolored.
    #[test]
    fn direction_a_respects_partiality((inst, cg) in planted_instance(), mask_seed in 0u64..1000) {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(mask_seed);
        let partial: Vec<Option<usize>> = inst
            .planted_coloring
            .iter()
            .map(|c| rng.gen_bool(0.5).then(|| c.index()))
            .collect();
        let out = coloring_to_independent_set(&cg, &partial);
        // Happy edges (with witness) + unhappy edges = m.
        prop_assert_eq!(
            out.independent_set.len() + out.unhappy_edges.len(),
            inst.hypergraph.edge_count()
        );
        // Every unhappy edge genuinely has no uniquely-colored member.
        for &e in &out.unhappy_edges {
            let members = inst.hypergraph.edge(e);
            let has_witness = members.iter().any(|&v| {
                partial[v.index()].is_some_and(|c| {
                    members.iter().filter(|&&u| partial[u.index()] == Some(c)).count() == 1
                })
            });
            prop_assert!(!has_witness);
        }
    }
}
