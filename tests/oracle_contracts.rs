//! Systematic contract tests for every MaxIS oracle across instance
//! families: outputs are independent sets, never exceed the optimum,
//! and meet their declared guarantee wherever the optimum is
//! computable.

use pslocal::graph::generators::classic::{
    cluster_graph, complete, complete_bipartite, cycle, grid, path, star,
};
use pslocal::graph::generators::random::{gnp, random_regular, random_tree};
use pslocal::graph::Graph;
use pslocal::maxis::{
    standard_oracles, ExactOracle, GreedyOracle, LocalSearchOracle, MaxIsOracle, PrecisionOracle,
};
use rand::SeedableRng;

fn small_families() -> Vec<(&'static str, Graph)> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(20);
    vec![
        ("path", path(17)),
        ("cycle", cycle(14)),
        ("complete", complete(8)),
        ("star", star(11)),
        ("bipartite", complete_bipartite(4, 6)),
        ("cluster", cluster_graph(4, 4)),
        ("grid", grid(4, 5)),
        ("gnp", gnp(&mut rng, 26, 0.2)),
        ("regular", random_regular(&mut rng, 20, 3)),
        ("tree", random_tree(&mut rng, 24)),
        ("empty", Graph::empty(6)),
    ]
}

#[test]
fn every_oracle_returns_an_independent_set_on_every_family() {
    for (family, g) in small_families() {
        for oracle in standard_oracles(4) {
            let set = oracle.independent_set(&g);
            assert!(g.is_independent_set(set.vertices()), "{} on {family}", oracle.name());
        }
        let ls = LocalSearchOracle::new(GreedyOracle);
        assert!(g.is_independent_set(ls.independent_set(&g).vertices()), "ls on {family}");
    }
}

#[test]
fn no_oracle_exceeds_the_exact_optimum() {
    for (family, g) in small_families() {
        let alpha = ExactOracle.independence_number(&g);
        for oracle in standard_oracles(5) {
            let size = oracle.independent_set(&g).len();
            assert!(size <= alpha, "{} found {size} > α = {alpha} on {family}", oracle.name());
        }
    }
}

#[test]
fn declared_guarantees_hold_against_exact() {
    for (family, g) in small_families() {
        let alpha = ExactOracle.independence_number(&g);
        for oracle in standard_oracles(6) {
            // Skip guarantees whose certification is conditional (the
            // decomposition oracle may fall back to greedy per cluster;
            // clique removal's constant is asymptotic) — those are
            // covered by dedicated unit tests and measured in T5/T7.
            let name = oracle.name();
            if name == "decomposition" || name == "clique-removal" {
                continue;
            }
            if let Some(lambda) = oracle.lambda_for(&g) {
                let size = oracle.independent_set(&g).len() as f64;
                assert!(
                    size + 1e-9 >= alpha as f64 / lambda,
                    "{name} on {family}: {size} < {alpha}/{lambda}"
                );
            }
        }
    }
}

#[test]
fn precision_oracles_interpolate_between_exact_and_singleton() {
    for (family, g) in small_families() {
        if g.node_count() == 0 {
            continue;
        }
        let alpha = ExactOracle.independence_number(&g);
        let mut last = usize::MAX;
        for lambda in [1.0, 2.0, 4.0, 1e9] {
            let size = PrecisionOracle::new(lambda).independent_set(&g).len();
            assert!(size <= last, "sizes must be monotone in λ on {family}");
            assert_eq!(size, ((alpha as f64) / lambda).ceil().max(1.0) as usize);
            last = size;
        }
    }
}

#[test]
fn local_search_dominates_its_inner_oracle() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    for _ in 0..5 {
        let g = gnp(&mut rng, 36, 0.18);
        let inner = GreedyOracle.independent_set(&g).len();
        let polished = LocalSearchOracle::new(GreedyOracle).independent_set(&g).len();
        assert!(polished >= inner);
    }
}
