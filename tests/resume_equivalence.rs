//! Resume equivalence: a reduction killed at **any** kill point of any
//! phase and then resumed must produce output byte-identical to the
//! uninterrupted run — same `PhaseRecord`s, same coloring, same color
//! count — on both drivers and for serial and component-parallel
//! execution alike.
//!
//! The kill points (`pslocal::core::recovery::CrashPlan`) bracket every
//! durability boundary of a phase: mid-oracle, after the set is
//! acquired but before commit, before the journal append, and after
//! it. Crashing *after* the append and re-running the phase is the
//! idempotence case; crashing *before* loses the phase and re-derives
//! it.

// `ResilientFailure` deliberately carries the salvaged partial outcome.
#![allow(clippy::result_large_err)]

use pslocal::core::{
    reduce_cf_resilient, reduce_cf_resilient_resumable, reduce_cf_to_maxis,
    reduce_cf_to_maxis_resumable, Checkpointing, CrashPlan, ReductionConfig, ResilientConfig,
};
use pslocal::graph::generators::hyper::{
    multi_component_cf_instance, planted_cf_instance, PlantedCfParams,
};
use pslocal::graph::Hypergraph;
use pslocal::maxis::{
    CrashPoint, CrashSignal, FaultKind, FaultPlan, FaultyOracle, PrecisionOracle,
};
use pslocal::telemetry::Telemetry;
use rand::SeedableRng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A fresh, collision-free checkpoint directory per crash scenario.
fn ckpt_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "pslocal-resume-eq-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const KILL_POINTS: [CrashPoint; 4] = [
    CrashPoint::MidOracle,
    CrashPoint::AfterOracle,
    CrashPoint::BeforeJournal,
    CrashPoint::AfterJournal,
];

/// λ = 4 keeps every run here multi-phase: a 4-approximation of MaxIS
/// on the conflict graph can only retire about a quarter of the edges
/// per phase.
fn weak_oracle() -> PrecisionOracle {
    PrecisionOracle::new(4.0)
}

fn planted(seed: u64, n: usize, m: usize, k: usize) -> Hypergraph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    planted_cf_instance(&mut rng, PlantedCfParams::new(n, m, k)).hypergraph
}

fn multi_component(seed: u64, copies: usize, k: usize) -> Hypergraph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    multi_component_cf_instance(&mut rng, PlantedCfParams::new(24, 10, k), copies).hypergraph
}

#[test]
fn trusting_driver_resumes_identically_from_every_kill_point() {
    let k = 3;
    for (tag, threads, h) in
        [("serial", 1usize, planted(40, 40, 18, k)), ("parallel", 4, multi_component(41, 4, k))]
    {
        let oracle = weak_oracle();
        let config = ReductionConfig::new(k).with_threads(threads);
        let base = reduce_cf_to_maxis(&h, &oracle, config).unwrap();
        assert!(base.phases_used >= 2, "{tag}: need a multi-phase run to interrupt");
        let tel = Telemetry::disabled();
        for phase in 0..base.phases_used {
            for point in KILL_POINTS {
                let dir = ckpt_dir(tag);
                let ckpt = Checkpointing::new(&dir).with_crash(CrashPlan::panicking(phase, point));
                let died = catch_unwind(AssertUnwindSafe(|| {
                    reduce_cf_to_maxis_resumable(&h, &oracle, config, &ckpt, &tel)
                }))
                .expect_err("kill point fires");
                assert!(
                    died.downcast_ref::<CrashSignal>().is_some(),
                    "{tag}: phase {phase} {point}: expected an injected crash"
                );
                let (out, report) = reduce_cf_to_maxis_resumable(
                    &h,
                    &oracle,
                    config,
                    &Checkpointing::new(&dir).resuming(),
                    &tel,
                )
                .unwrap_or_else(|e| panic!("{tag}: phase {phase} {point}: resume failed: {e}"));
                assert!(report.resumed);
                // Phases journaled strictly before the kill survive;
                // AfterJournal also keeps the killed phase itself.
                let expected = if point == CrashPoint::AfterJournal { phase + 1 } else { phase };
                assert_eq!(
                    report.phases_recovered, expected,
                    "{tag}: phase {phase} {point}: wrong number of phases recovered"
                );
                assert_eq!(out.records, base.records, "{tag}: phase {phase} {point}");
                assert_eq!(out.coloring, base.coloring, "{tag}: phase {phase} {point}");
                assert_eq!(out.total_colors, base.total_colors);
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
}

#[test]
fn resilient_driver_resumes_identically_from_every_kill_point() {
    let k = 3;
    for (tag, threads, h) in
        [("serial", 1usize, planted(42, 40, 18, k)), ("parallel", 4, multi_component(43, 4, k))]
    {
        let oracle = weak_oracle();
        let chain: &[&dyn pslocal::maxis::MaxIsOracle] = &[&oracle];
        let config = ResilientConfig {
            base: ReductionConfig::new(k).with_threads(threads),
            ..ResilientConfig::new(k)
        };
        let base = reduce_cf_resilient(&h, chain, config).unwrap();
        assert!(base.reduction.phases_used >= 2, "{tag}: need phases to interrupt");
        let tel = Telemetry::disabled();
        for phase in 0..base.reduction.phases_used {
            for point in KILL_POINTS {
                let dir = ckpt_dir(tag);
                let ckpt = Checkpointing::new(&dir).with_crash(CrashPlan::panicking(phase, point));
                let died = catch_unwind(AssertUnwindSafe(|| {
                    reduce_cf_resilient_resumable(&h, chain, config, &ckpt, &tel)
                }))
                .expect_err("kill point fires");
                assert!(
                    died.downcast_ref::<CrashSignal>().is_some(),
                    "{tag}: phase {phase} {point}: expected an injected crash"
                );
                let (out, report) = reduce_cf_resilient_resumable(
                    &h,
                    chain,
                    config,
                    &Checkpointing::new(&dir).resuming(),
                    &tel,
                )
                .unwrap_or_else(|e| {
                    panic!("{tag}: phase {phase} {point}: resume failed: {}", e.error)
                });
                assert!(report.resumed);
                assert_eq!(out.reduction.records, base.reduction.records, "{tag} {phase} {point}");
                assert_eq!(
                    out.reduction.coloring, base.reduction.coloring,
                    "{tag} {phase} {point}"
                );
                assert_eq!(out.fault_log, base.fault_log, "{tag} {phase} {point}");
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
}

#[test]
fn a_crash_inside_the_oracle_itself_kills_the_run_and_resumes_cleanly() {
    // `FaultKind::CrashAt` panics with a `CrashSignal` from *inside* an
    // oracle call — the resilient driver must re-raise it (a process
    // death is not a retryable fault), and the resumed run must realign
    // the surviving fault schedule via `resume_at`.
    let k = 3;
    let h = planted(44, 40, 18, k);
    let plan = || {
        FaultPlan::scripted(vec![
            None,
            Some(FaultKind::Panic), // survivable: burns one retry in phase 1
            None,
            None,
            None,
            None,
        ])
    };
    let config = ResilientConfig::new(k);
    let base = {
        let flaky = FaultyOracle::new(weak_oracle(), plan());
        reduce_cf_resilient(&h, &[&flaky], config).unwrap()
    };
    assert!(base.reduction.phases_used >= 2);
    assert_eq!(base.retries, 1, "the scripted panic must fire");
    let tel = Telemetry::disabled();
    // Now the same schedule, but the 4th call (phase 2's attempt) is a
    // process crash instead of a survivable fault.
    let crashing_plan = FaultPlan::scripted(vec![
        None,
        Some(FaultKind::Panic),
        None,
        Some(FaultKind::CrashAt { phase: 2, point: CrashPoint::MidOracle }),
        None,
        None,
    ]);
    let dir = ckpt_dir("oracle-crash");
    {
        let flaky = FaultyOracle::new(weak_oracle(), crashing_plan);
        let ckpt = Checkpointing::new(&dir);
        let died = catch_unwind(AssertUnwindSafe(|| {
            reduce_cf_resilient_resumable(&h, &[&flaky], config, &ckpt, &tel)
        }))
        .expect_err("the in-oracle crash escapes the retry loop");
        assert!(died.downcast_ref::<CrashSignal>().is_some());
    }
    // Resume with a fresh copy of the *clean-tail* schedule: calls 0-2
    // already happened before the crash, and `resume_at` fast-forwards
    // past them, so the resumed run draws from position 3 onward.
    let flaky = FaultyOracle::new(weak_oracle(), plan());
    let (out, report) = reduce_cf_resilient_resumable(
        &h,
        &[&flaky],
        config,
        &Checkpointing::new(&dir).resuming(),
        &tel,
    )
    .unwrap();
    assert!(report.resumed);
    assert_eq!(report.phases_recovered, 2, "phases 0 and 1 were journaled before the crash");
    assert_eq!(out.reduction.records, base.reduction.records);
    assert_eq!(out.reduction.coloring, base.reduction.coloring);
    assert_eq!(out.retries, base.retries);
    assert_eq!(out.fault_log, base.fault_log);
    let _ = std::fs::remove_dir_all(&dir);
}
