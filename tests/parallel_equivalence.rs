//! Serial/parallel equivalence of component-parallel phase execution.
//!
//! The contract under test (see `pslocal::core::components`): the
//! number of worker threads is an *execution* parameter, never a
//! *semantic* one. For every instance and every thread count, both
//! drivers produce byte-identical outcomes to their serial runs —
//! same `PhaseRecord`s, same coloring, same color budget.
//!
//! Two regression guards ride along: graphs that do not decompose
//! (single-component or empty conflict graphs) must take the serial
//! fast path even when threads are requested — verified through
//! telemetry, which records no `component` spans and no decomposition
//! counters on the fast path.

use proptest::prelude::*;
use pslocal::cfcolor::checker;
use pslocal::core::{
    reduce_cf_resilient, reduce_cf_to_maxis, reduce_cf_to_maxis_traced, ReductionConfig,
    ResilientConfig,
};
use pslocal::graph::generators::hyper::{
    multi_component_cf_instance, PlantedCfInstance, PlantedCfParams,
};
use pslocal::graph::{HypergraphBuilder, NodeId};
use pslocal::maxis::{GreedyOracle, MaxIsOracle};
use pslocal::telemetry::{names, Counter, MemorySink, Telemetry};
use rand::SeedableRng;

/// The thread counts the acceptance criterion sweeps.
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Vertex-disjoint planted copies, so `G_k` has ≥ `copies` components.
fn multi() -> impl Strategy<Value = PlantedCfInstance> {
    (0u64..5000, 2usize..5, 2usize..4, 4usize..8).prop_map(|(seed, copies, k, m)| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        multi_component_cf_instance(&mut rng, PlantedCfParams::new(8 * k, m, k), copies)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Trusting driver: every thread count reproduces the serial run
    /// byte-for-byte on multi-component instances.
    #[test]
    fn trusting_driver_is_thread_count_invariant(inst in multi()) {
        let serial = reduce_cf_to_maxis(
            &inst.hypergraph,
            &GreedyOracle,
            ReductionConfig::new(inst.k),
        ).expect("greedy completes on planted instances");
        prop_assert!(checker::is_conflict_free(&inst.hypergraph, &serial.coloring));
        for &threads in &THREADS {
            let par = reduce_cf_to_maxis(
                &inst.hypergraph,
                &GreedyOracle,
                ReductionConfig::new(inst.k).with_threads(threads),
            ).expect("parallel run completes whenever serial does");
            prop_assert_eq!(&par.records, &serial.records, "records differ at {} threads", threads);
            prop_assert_eq!(&par.coloring, &serial.coloring, "coloring differs at {} threads", threads);
            prop_assert_eq!(par.lambda, serial.lambda);
            prop_assert_eq!(par.rho, serial.rho);
            prop_assert_eq!(par.phases_used, serial.phases_used);
            prop_assert_eq!(par.total_colors, serial.total_colors);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Resilient driver (clean oracle): every thread count reproduces
    /// the serial run — same reduction, empty fault log, zero retries.
    #[test]
    fn resilient_driver_is_thread_count_invariant(inst in multi()) {
        let chain: Vec<&dyn MaxIsOracle> = vec![&GreedyOracle];
        let serial = reduce_cf_resilient(
            &inst.hypergraph,
            &chain,
            ResilientConfig::new(inst.k),
        ).expect("clean serial run completes");
        for &threads in &THREADS {
            let mut config = ResilientConfig::new(inst.k);
            config.base = config.base.with_threads(threads);
            let par = reduce_cf_resilient(&inst.hypergraph, &chain, config)
                .expect("clean parallel run completes");
            prop_assert_eq!(&par.reduction.records, &serial.reduction.records);
            prop_assert_eq!(&par.reduction.coloring, &serial.reduction.coloring);
            prop_assert_eq!(par.reduction.total_colors, serial.reduction.total_colors);
            prop_assert!(par.fault_log.is_empty());
            prop_assert_eq!(par.retries, 0);
            prop_assert_eq!(par.fallbacks_engaged, 0);
        }
    }
}

/// Asserts the telemetry of a run that must have taken the serial fast
/// path: no `component` spans, no decomposition counters. (This is the
/// machine-checkable proxy for "no worker threads were spawned" — the
/// decomposed path always records both.)
fn assert_serial_fast_path(sink: &MemorySink) {
    assert!(sink.open_spans().is_empty());
    assert!(
        !sink.spans().iter().any(|s| s.name == names::COMPONENT),
        "fast path must not open component spans"
    );
    assert_eq!(sink.counter_total(Counter::Components), 0);
    assert_eq!(sink.counter_total(Counter::ParallelOracleCalls), 0);
}

/// A single hyperedge's conflict-graph block is an `E_edge` clique, so
/// `G_k` is connected: requesting 8 threads must hit the
/// single-component fast path and match the serial run exactly.
#[test]
fn single_component_takes_the_serial_fast_path() {
    let mut b = HypergraphBuilder::new(3);
    b.add_edge([NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
    let h = b.build();
    let k = 3;

    let serial_sink = Telemetry::new(MemorySink::new());
    let serial =
        reduce_cf_to_maxis_traced(&h, &GreedyOracle, ReductionConfig::new(k), &serial_sink)
            .expect("serial run completes");

    let par_sink = Telemetry::new(MemorySink::new());
    let par = reduce_cf_to_maxis_traced(
        &h,
        &GreedyOracle,
        ReductionConfig::new(k).with_threads(8),
        &par_sink,
    )
    .expect("parallel run completes");

    assert_eq!(par.records, serial.records);
    assert_eq!(par.coloring, serial.coloring);
    assert_serial_fast_path(par_sink.sink());
    // And the span trees agree shape-for-shape with the serial run.
    assert_eq!(par_sink.sink().spans().len(), serial_sink.sink().spans().len());
}

/// An edgeless hypergraph reduces in zero phases; with threads
/// requested, nothing decomposes and nothing spawns.
#[test]
fn empty_graph_takes_the_serial_fast_path() {
    let h = HypergraphBuilder::new(4).build();
    let sink = Telemetry::new(MemorySink::new());
    let out = reduce_cf_to_maxis_traced(
        &h,
        &GreedyOracle,
        ReductionConfig::new(2).with_threads(8),
        &sink,
    )
    .expect("empty instance is trivially done");
    assert_eq!(out.phases_used, 0);
    assert_eq!(out.total_colors, 0);
    assert_serial_fast_path(sink.sink());
}

/// The resilient driver's fast path mirrors the trusting one: a
/// connected instance with threads requested records the serial span
/// shape and a clean outcome.
#[test]
fn resilient_single_component_takes_the_serial_fast_path() {
    let mut b = HypergraphBuilder::new(3);
    b.add_edge([NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
    let h = b.build();

    let mut config = ResilientConfig::new(3);
    config.base = config.base.with_threads(8);
    let chain: Vec<&dyn MaxIsOracle> = vec![&GreedyOracle];
    let sink = Telemetry::new(MemorySink::new());
    let out = pslocal::core::reduce_cf_resilient_traced(&h, &chain, config, &sink)
        .expect("clean run completes");
    assert!(out.fault_log.is_empty());
    assert!(checker::is_conflict_free(&h, &out.reduction.coloring));
    assert_serial_fast_path(sink.sink());
}
