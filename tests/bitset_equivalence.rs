//! Bitset-kernel equivalence suite.
//!
//! The dense (word-parallel) pipeline must be a pure cost knob: the
//! direct bit-row conflict-graph build, the dense greedy oracle route,
//! and a phase loop running through a reused [`PhaseWorkspace`] all
//! have to reproduce the CSR reference **byte-for-byte** — same
//! adjacency, same phase records, same coloring. These properties are
//! what lets `KernelStrategy::Auto` switch routes per graph without
//! anyone downstream noticing.

use proptest::prelude::*;
use pslocal::core::{
    reduce_cf_to_maxis, reduce_cf_to_maxis_with_workspace, BuildStrategy, ConflictGraph,
    ConflictGraphOptions, PhaseWorkspace, ReductionConfig,
};
use pslocal::graph::bitset::{BITSET_MAX_NODES, BITSET_MIN_AVG_DEGREE};
use pslocal::graph::generators::hyper::{planted_cf_instance, PlantedCfParams};
use pslocal::graph::{BitsetGraph, BitsetScratch, Hypergraph, KernelStrategy};
use pslocal::maxis::{GreedyOracle, MaxIsOracle};
use pslocal::telemetry::Telemetry;
use rand::{Rng, SeedableRng};

/// A random hypergraph: `m` edges of 1–4 distinct vertices over `n ≤ 40`
/// vertices (sizes and members seeded, so failures replay exactly).
fn random_hypergraph(seed: u64, n: usize, m: usize) -> Hypergraph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let size = rng.gen_range(1..=4usize.min(n));
        let mut members: Vec<usize> = Vec::new();
        while members.len() < size {
            let v = rng.gen_range(0..n);
            if !members.contains(&v) {
                members.push(v);
            }
        }
        edges.push(members);
    }
    Hypergraph::from_edges(n, edges).expect("generated edges are valid")
}

fn instance() -> impl Strategy<Value = (Hypergraph, usize)> {
    (0u64..10_000, 2usize..=40, 1usize..=12, 1usize..=5)
        .prop_map(|(seed, n, m, k)| (random_hypergraph(seed, n, m), k))
}

fn kernel_options(literal_ecolor: bool, kernel: KernelStrategy) -> ConflictGraphOptions {
    ConflictGraphOptions { literal_ecolor, strategy: BuildStrategy::Auto, kernel }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The direct bit-row build equals the CSR reference converted to
    /// bit rows, and its lazily materialized CSR equals the reference
    /// CSR — in both `E_color` readings. This is the structural half of
    /// kernel equivalence: everything downstream reads one of these two
    /// representations.
    #[test]
    fn dense_build_matches_csr_reference((h, k) in instance(), literal_bit in 0u8..2) {
        let literal = literal_bit == 1;
        let reference = ConflictGraph::build_with_options(
            &h, k, ConflictGraphOptions {
                literal_ecolor: literal,
                strategy: BuildStrategy::Reference,
                kernel: KernelStrategy::Csr,
            });
        let dense = ConflictGraph::build_with_options(
            &h, k, kernel_options(literal, KernelStrategy::Bitset));
        let bits = dense.bitset().expect("forced bitset kernel builds bit rows");
        prop_assert_eq!(bits, &reference.graph().to_bitset());
        prop_assert_eq!(dense.node_count(), reference.node_count());
        prop_assert_eq!(dense.edge_count(), reference.edge_count());
        prop_assert_eq!(dense.fingerprint(), reference.fingerprint());
        // Materializing the CSR on demand reproduces the reference CSR.
        prop_assert_eq!(dense.graph(), reference.graph());
    }

    /// The dense greedy route picks the identical vertex sequence as
    /// the CSR route on arbitrary graphs, and reports the same λ.
    #[test]
    fn dense_greedy_matches_csr_greedy(seed in 0u64..10_000, n in 1usize..60, p_pct in 5u32..60) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = pslocal::graph::generators::random::gnp(&mut rng, n, f64::from(p_pct) / 100.0);
        let bits = BitsetGraph::from_graph(&g);
        let mut scratch = BitsetScratch::default();
        let dense = GreedyOracle.independent_set_dense(&bits, &mut scratch);
        let csr = GreedyOracle.independent_set(&g);
        prop_assert_eq!(dense.vertices(), csr.vertices());
        prop_assert_eq!(
            GreedyOracle.lambda_for_dense(&bits),
            GreedyOracle.lambda_for(&g)
        );
    }

    /// End-to-end: forcing `Csr`, forcing `Bitset`, and letting `Auto`
    /// decide all produce the identical reduction — records, coloring,
    /// color count.
    #[test]
    fn reduction_is_kernel_invariant((h, k) in instance()) {
        let run = |kernel| {
            let mut config = ReductionConfig::new(k);
            config.kernel = kernel;
            reduce_cf_to_maxis(&h, &GreedyOracle, config).unwrap()
        };
        let csr = run(KernelStrategy::Csr);
        let bitset = run(KernelStrategy::Bitset);
        let auto = run(KernelStrategy::Auto);
        prop_assert_eq!(&csr.records, &bitset.records);
        prop_assert_eq!(&csr.coloring, &bitset.coloring);
        prop_assert_eq!(csr.total_colors, bitset.total_colors);
        prop_assert_eq!(&csr.records, &auto.records);
        prop_assert_eq!(&csr.coloring, &auto.coloring);
    }

    /// A `PhaseWorkspace` carries no semantic state: running instance B
    /// through a workspace warmed by instance A equals running B fresh.
    #[test]
    fn workspace_reuse_is_byte_identical(
        (ha, ka) in instance(),
        (hb, kb) in instance(),
    ) {
        let tel = Telemetry::disabled();
        let mut ws = PhaseWorkspace::new();
        let warm_a = reduce_cf_to_maxis_with_workspace(
            &ha, &GreedyOracle, ReductionConfig::new(ka), &tel, &mut ws).unwrap();
        let warm_b = reduce_cf_to_maxis_with_workspace(
            &hb, &GreedyOracle, ReductionConfig::new(kb), &tel, &mut ws).unwrap();
        let fresh_a = reduce_cf_to_maxis(&ha, &GreedyOracle, ReductionConfig::new(ka)).unwrap();
        let fresh_b = reduce_cf_to_maxis(&hb, &GreedyOracle, ReductionConfig::new(kb)).unwrap();
        prop_assert_eq!(&warm_a.records, &fresh_a.records);
        prop_assert_eq!(&warm_a.coloring, &fresh_a.coloring);
        prop_assert_eq!(&warm_b.records, &fresh_b.records);
        prop_assert_eq!(&warm_b.coloring, &fresh_b.coloring);
    }
}

/// `Auto`'s crossover: dense only when the graph is both small enough
/// for quadratic bit rows and dense enough for word scans to win —
/// where "dense enough" scales with the row length (`⌈n/64⌉` words)
/// once the flat degree floor is cleared.
#[test]
fn auto_crossover_boundaries() {
    let auto = KernelStrategy::Auto;
    let threshold = BITSET_MIN_AVG_DEGREE / 2;
    // Dense and small: bitset (16 row words, so the flat floor rules).
    assert!(auto.use_bitset(1000, 1000 * threshold));
    // Too sparse at the same size: CSR.
    assert!(!auto.use_bitset(1000, 1000 * threshold - 1000));
    // Dense but past the node cap: CSR.
    assert!(!auto.use_bitset(BITSET_MAX_NODES + 1, (BITSET_MAX_NODES + 1) * threshold));
    // At the node cap the scaling condition governs: 512 row words
    // demand average degree ≥ 256, not just the flat floor.
    assert!(!auto.use_bitset(BITSET_MAX_NODES, BITSET_MAX_NODES * threshold));
    assert!(auto.use_bitset(BITSET_MAX_NODES, BITSET_MAX_NODES * 256));
    // Degenerate empty graph: CSR.
    assert!(!auto.use_bitset(0, 0));
    // Forced strategies ignore the heuristic entirely.
    assert!(!KernelStrategy::Csr.use_bitset(1000, 1000 * threshold));
    assert!(KernelStrategy::Bitset.use_bitset(3, 0));
}

/// The dense bench configuration (`n128/m64/k8`, the planted instance
/// the perf work targets) actually crosses the `Auto` threshold — the
/// 2× speedup claim rides on this graph taking the bitset route.
#[test]
fn bench_instance_takes_the_dense_route() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let inst = planted_cf_instance(&mut rng, PlantedCfParams::new(128, 64, 8));
    let cg = ConflictGraph::build_with_options(
        &inst.hypergraph,
        8,
        kernel_options(false, KernelStrategy::Auto),
    );
    assert!(cg.bitset().is_some(), "dense bench instance must resolve to the bitset kernel");
}
