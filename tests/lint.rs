//! Self-test of the `pslocal-analysis` lint engine against the real
//! tree and against a fixture tree with one seeded violation per pass.
//!
//! These are the acceptance checks behind the CI `lint` gate: the
//! repository itself must be clean (so `pslocal lint --deny` exits 0),
//! and every pass must actually fire on a tree that violates it (so a
//! regression that silently disables a pass fails here, not in
//! production).

use pslocal_analysis::{analyze, render_text};
use std::collections::BTreeSet;
use std::path::Path;

/// The tree this test file lives in.
fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn repo_tree_is_lint_clean() {
    let analysis = analyze(repo_root()).expect("workspace tree walks");
    assert!(
        analysis.findings.is_empty(),
        "lint findings on the repo tree — `pslocal lint --fix-hints` for details:\n{}",
        render_text(&analysis.findings, true)
    );
    assert!(analysis.files_scanned > 50, "scanned only {} files", analysis.files_scanned);
    assert!(analysis.suppressed > 0, "the tree documents its waivers inline");
}

#[test]
fn lock_audit_covers_the_concurrency_surface_and_is_acyclic() {
    let analysis = analyze(repo_root()).expect("workspace tree walks");
    let report = &analysis.lock_report;
    assert!(report.cycles.is_empty(), "lock graph has cycles: {:?}", report.cycles);
    let names: BTreeSet<&str> = report.locks.iter().map(|l| l.name.as_str()).collect();
    for lock in
        ["state", "available", "results", "connections", "counters", "histograms", "spans", "open"]
    {
        assert!(names.contains(lock), "lock `{lock}` missing from inventory {names:?}");
    }
    // Every mutex node appears in the canonical order exactly once.
    let canonical: BTreeSet<&str> = report.canonical.iter().map(String::as_str).collect();
    assert_eq!(canonical.len(), report.canonical.len(), "canonical order repeats a node");
    for lock in ["connections", "state", "results", "counters", "histograms", "spans", "open"] {
        assert!(canonical.contains(lock), "`{lock}` missing from canonical order");
    }
    // The condvar wait association ties `available` to `state`.
    assert!(
        report.waits.iter().any(|w| w.condvar == "available" && w.mutex == "state"),
        "missing available/state wait association: {:?}",
        report.waits
    );
}

#[test]
fn fixture_tree_trips_every_pass() {
    let root = repo_root().join("crates/analysis/fixtures/violations");
    let analysis = analyze(&root).expect("fixture tree walks");
    let lints: BTreeSet<&str> = analysis.findings.iter().map(|f| f.lint).collect();
    for lint in [
        "lock-order",
        "panic-path",
        "stdout-purity",
        "codec-drift",
        "hygiene",
        "unsafe-ffi",
        "doc-coverage",
    ] {
        assert!(lints.contains(lint), "fixture did not trip `{lint}`; tripped: {lints:?}");
    }
    assert!(
        !analysis.lock_report.cycles.is_empty(),
        "fixture a/b deadlock not detected as a cycle"
    );
}
