//! Chaos tests: the resilient reduction driver against randomized
//! fault schedules.
//!
//! The invariant under test (see `pslocal::core::resilient`):
//!
//! > For **every** fault schedule, `reduce_cf_resilient` either returns
//! > a verified conflict-free multicoloring or a typed error with a
//! > salvageable partial outcome. It never panics and never returns an
//! > invalid coloring.
//!
//! Plus two determinism obligations: identical seeds produce identical
//! fault logs and outcomes, and a fault rate of 0 reproduces the
//! trusting driver `reduce_cf_to_maxis` byte-for-byte (`PhaseRecord`s
//! and coloring).
//!
//! Every schedule runs with telemetry enabled (an in-memory sink), and
//! the recorded span tree is cross-checked against the `FaultEvent`
//! log: one `oracle` span per attempt, phase indices matching the
//! records, no orphaned spans even after a caught oracle panic.

// `ResilientFailure` is deliberately large: it carries the salvaged
// partial outcome, which these tests inspect.
#![allow(clippy::result_large_err)]

use proptest::prelude::*;
use pslocal::cfcolor::checker;
use pslocal::core::{
    reduce_cf_resilient, reduce_cf_resilient_traced, reduce_cf_to_maxis, ComponentPartition,
    ConflictGraph, FaultEvent, FaultEventKind, ReductionConfig, ReductionError, ResilientConfig,
    ResilientFailure, ResilientOutcome,
};
use pslocal::graph::generators::hyper::{
    multi_component_cf_instance, planted_cf_instance, PlantedCfInstance, PlantedCfParams,
};
use pslocal::graph::Hypergraph;
use pslocal::maxis::{FaultKind, FaultPlan, FaultyOracle, GreedyOracle, MaxIsOracle};
use pslocal::telemetry::{names, Counter, MemorySink, Telemetry};
use rand::SeedableRng;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn planted() -> impl Strategy<Value = PlantedCfInstance> {
    (0u64..5000, 2usize..4, 4usize..12).prop_map(|(seed, k, m)| {
        let n = 8 * k + (seed as usize % 9);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        planted_cf_instance(&mut rng, PlantedCfParams::new(n, m, k))
    })
}

/// The fault rates the robustness experiment sweeps; index 0 is the
/// clean baseline.
const RATES: [f64; 4] = [0.0, 0.1, 0.25, 0.5];

/// Is this fault-log entry one rejected oracle attempt? (`Fallback
/// Engaged` / `RetriesExhausted` are bookkeeping, not attempts.)
fn is_rejected_attempt(event: &FaultEvent) -> bool {
    matches!(
        event.kind,
        FaultEventKind::OraclePanicked
            | FaultEventKind::OracleInvalidOutput
            | FaultEventKind::OracleUnderDelivered { .. }
            | FaultEventKind::OracleStalled { .. }
    )
}

/// Cross-checks the recorded span tree against the driver's fault log:
///
/// * no orphaned spans (guards close even across a caught panic);
/// * the `fault_events` counter equals the log length;
/// * phase spans are indexed `0..p` contiguously, all under one
///   `reduction` root, where `p` is `committed` or `committed + 1`
///   (a final phase that failed before committing);
/// * each phase holds exactly one `oracle` span per attempt — the
///   rejected ones logged as faults, plus the accepted one iff the
///   phase committed — indexed `0..attempts` in order.
fn assert_telemetry_consistent(sink: &MemorySink, fault_log: &[FaultEvent], committed: usize) {
    assert!(sink.open_spans().is_empty(), "orphaned spans after the run");
    assert_eq!(
        sink.counter_total(Counter::FaultEvents),
        fault_log.len() as u64,
        "fault_events counter must mirror the fault log"
    );
    let spans = sink.spans();
    let roots: Vec<_> = spans.iter().filter(|s| s.name == names::REDUCTION).collect();
    assert_eq!(roots.len(), 1, "exactly one reduction root span");
    let root_id = roots[0].id;

    let phase_spans: Vec<_> = spans.iter().filter(|s| s.name == names::PHASE).collect();
    for (i, p) in phase_spans.iter().enumerate() {
        assert_eq!(p.parent, Some(root_id), "phase spans hang off the root");
        assert_eq!(p.index, Some(i as u64), "phase spans indexed 0..p in order");
    }
    assert!(
        phase_spans.len() == committed || phase_spans.len() == committed + 1,
        "{} phase spans for {committed} committed phases",
        phase_spans.len()
    );

    for (i, p) in phase_spans.iter().enumerate() {
        let oracle_indices: Vec<u64> = spans
            .iter()
            .filter(|s| s.name == names::ORACLE && s.parent == Some(p.id))
            .map(|s| s.index.expect("oracle spans are attempt-indexed"))
            .collect();
        let rejected = fault_log.iter().filter(|e| e.phase == i && is_rejected_attempt(e)).count();
        let attempts = rejected + usize::from(i < committed);
        assert_eq!(
            oracle_indices,
            (0..attempts as u64).collect::<Vec<_>>(),
            "phase {i}: one oracle span per attempt, in order"
        );
    }
}

/// Runs the resilient driver under a seeded fault plan — telemetry
/// enabled on every run — and asserts the full chaos invariant on
/// whatever comes back, including span-tree/fault-log consistency.
fn assert_invariant(
    h: &Hypergraph,
    k: usize,
    fault_seed: u64,
    rate: f64,
    with_fallback: bool,
) -> Result<ResilientOutcome, ResilientFailure> {
    let faulty = FaultyOracle::new(GreedyOracle, FaultPlan::seeded(fault_seed, rate));
    let chain: Vec<&dyn MaxIsOracle> =
        if with_fallback { vec![&faulty, &GreedyOracle] } else { vec![&faulty] };
    let config = ResilientConfig::new(k);

    // Never a panic — injected oracle panics must be isolated inside
    // the driver, not escape to the caller.
    let tel = Telemetry::new(MemorySink::new());
    let result =
        catch_unwind(AssertUnwindSafe(|| reduce_cf_resilient_traced(h, &chain, config, &tel)))
            .unwrap_or_else(|_| {
                panic!("driver panicked (seed {fault_seed}, rate {rate}) — invariant broken")
            });

    let (fault_log, committed) = match &result {
        Ok(out) => (&out.fault_log, out.reduction.phases_used),
        Err(fail) => (&fail.fault_log, fail.partial.records.len()),
    };
    assert_telemetry_consistent(tel.sink(), fault_log, committed);

    match &result {
        Ok(out) => {
            // Never an invalid coloring.
            assert!(
                checker::is_conflict_free(h, &out.reduction.coloring),
                "driver returned a non-conflict-free coloring (seed {fault_seed}, rate {rate})"
            );
            assert!(out.reduction.phases_used <= out.reduction.rho);
            assert!(
                out.reduction.total_colors <= k * out.reduction.phases_used.max(1),
                "color bound k·phases violated"
            );
            // Records chain down to zero residual edges.
            let mut prev = h.edge_count();
            for r in &out.reduction.records {
                assert_eq!(r.edges_before, prev);
                assert_eq!(r.edges_before - r.edges_removed, r.edges_after);
                prev = r.edges_after;
            }
            assert_eq!(prev, 0);
        }
        Err(fail) => {
            // Typed error...
            assert!(matches!(
                fail.error,
                ReductionError::RetriesExhausted { .. }
                    | ReductionError::PhaseBudgetExhausted { .. }
                    | ReductionError::DecayViolated { .. }
                    | ReductionError::NoLambdaAvailable
            ));
            // ...with salvageable, *verified* partial progress: every
            // edge outside the residual is happy under the partial
            // coloring, every residual edge is not.
            for e in h.edge_ids() {
                let happy = checker::is_edge_happy(h, &fail.partial.coloring, e);
                let residual = fail.partial.residual_edges.contains(&e);
                assert_eq!(happy, !residual, "salvage misclassifies edge {e:?}");
            }
            for (i, r) in fail.partial.records.iter().enumerate() {
                assert_eq!(r.phase, i, "one record per committed phase, in order");
            }
        }
    }
    result
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The chaos invariant across 256+ randomized (instance, seed,
    /// rate, chain-shape) cases.
    #[test]
    fn resilient_driver_survives_every_fault_schedule(
        inst in planted(),
        fault_seed in 0u64..1_000_000,
        rate_idx in 0usize..RATES.len(),
        fallback_bit in 0usize..2,
    ) {
        let _ = assert_invariant(
            &inst.hypergraph,
            inst.k,
            fault_seed,
            RATES[rate_idx],
            fallback_bit == 1,
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With a clean fallback in the chain, the run always succeeds —
    /// the fallback rescues any primary misbehavior.
    #[test]
    fn clean_fallback_always_rescues(
        inst in planted(),
        fault_seed in 0u64..1_000_000,
        rate_idx in 0usize..RATES.len(),
    ) {
        let out = assert_invariant(
            &inst.hypergraph,
            inst.k,
            fault_seed,
            RATES[rate_idx],
            true,
        );
        prop_assert!(out.is_ok(), "clean greedy fallback must carry every run");
    }

    /// Determinism: the same (instance, fault seed, rate) twice gives
    /// identical outcomes AND identical fault logs, both the driver's
    /// `FaultEvent` log and the wrapper's `InjectedFault` log.
    #[test]
    fn fault_schedules_are_deterministic(
        inst in planted(),
        fault_seed in 0u64..1_000_000,
        rate_idx in 1usize..RATES.len(), // nonzero rates: logs non-trivial
    ) {
        let rate = RATES[rate_idx];
        let config = ResilientConfig::new(inst.k);
        let run = || {
            let faulty = FaultyOracle::new(GreedyOracle, FaultPlan::seeded(fault_seed, rate));
            let result = reduce_cf_resilient(&inst.hypergraph, &[&faulty], config);
            (result, faulty.fault_log(), faulty.calls())
        };
        let (a, log_a, calls_a) = run();
        let (b, log_b, calls_b) = run();
        prop_assert_eq!(log_a, log_b, "injected-fault logs must be identical");
        prop_assert_eq!(calls_a, calls_b);
        match (a, b) {
            (Ok(x), Ok(y)) => {
                prop_assert_eq!(x.reduction.coloring, y.reduction.coloring);
                prop_assert_eq!(x.reduction.records, y.reduction.records);
                prop_assert_eq!(x.fault_log, y.fault_log);
                prop_assert_eq!(x.retries, y.retries);
                prop_assert_eq!(x.fallbacks_engaged, y.fallbacks_engaged);
            }
            (Err(x), Err(y)) => {
                prop_assert_eq!(x.error, y.error);
                prop_assert_eq!(x.fault_log, y.fault_log);
                prop_assert_eq!(x.partial.coloring, y.partial.coloring);
                prop_assert_eq!(x.partial.residual_edges, y.partial.residual_edges);
            }
            _ => prop_assert!(false, "one run succeeded, the other failed"),
        }
    }

    /// Fault rate 0 is byte-identical to the trusting driver: same
    /// `PhaseRecord`s, same coloring, same budget, empty fault log.
    #[test]
    fn rate_zero_reproduces_trusting_driver(inst in planted(), fault_seed in 0u64..1_000_000) {
        let base = reduce_cf_to_maxis(
            &inst.hypergraph,
            &GreedyOracle,
            ReductionConfig::new(inst.k),
        ).expect("greedy completes on planted instances");
        let faulty = FaultyOracle::new(GreedyOracle, FaultPlan::seeded(fault_seed, 0.0));
        let out = reduce_cf_resilient(
            &inst.hypergraph,
            &[&faulty],
            ResilientConfig::new(inst.k),
        ).expect("rate 0 behaves exactly like the trusting driver");
        prop_assert_eq!(out.reduction.records, base.records);
        prop_assert_eq!(out.reduction.coloring, base.coloring);
        prop_assert_eq!(out.reduction.lambda, base.lambda);
        prop_assert_eq!(out.reduction.rho, base.rho);
        prop_assert_eq!(out.reduction.phases_used, base.phases_used);
        prop_assert_eq!(out.reduction.total_colors, base.total_colors);
        prop_assert!(out.fault_log.is_empty());
        prop_assert_eq!(out.retries, 0);
        prop_assert_eq!(out.fallbacks_engaged, 0);
        prop_assert!(faulty.fault_log().is_empty());
    }
}

// ---------------------------------------------------------------------------
// Component-parallel chaos: faults on the decomposed path stay local.
// ---------------------------------------------------------------------------

/// Span-shape check for *parallel* phases (the serial
/// [`assert_telemetry_consistent`] shape — oracle spans directly under
/// phase spans — does not apply once phases decompose):
///
/// * no orphaned spans;
/// * every `component` span hangs off a `phase` span;
/// * every `oracle` span hangs off either a `component` span (decomposed
///   phase) or a `phase` span (serial fast-path phase), and at least one
///   of the former exists;
/// * the `components` counter was emitted.
fn assert_parallel_span_shape(sink: &MemorySink) {
    assert!(sink.open_spans().is_empty(), "orphaned spans after the run");
    let spans = sink.spans();
    let phase_ids: std::collections::HashSet<_> =
        spans.iter().filter(|s| s.name == names::PHASE).map(|s| s.id).collect();
    let comp_spans: Vec<_> = spans.iter().filter(|s| s.name == names::COMPONENT).collect();
    assert!(!comp_spans.is_empty(), "a decomposed run must record component spans");
    for c in &comp_spans {
        assert!(
            c.parent.is_some_and(|p| phase_ids.contains(&p)),
            "component spans hang off phase spans"
        );
    }
    let comp_ids: std::collections::HashSet<_> = comp_spans.iter().map(|s| s.id).collect();
    let mut under_component = 0usize;
    for o in spans.iter().filter(|s| s.name == names::ORACLE) {
        let parent = o.parent.expect("oracle spans are never roots");
        assert!(
            comp_ids.contains(&parent) || phase_ids.contains(&parent),
            "oracle spans hang off component or phase spans"
        );
        under_component += usize::from(comp_ids.contains(&parent));
    }
    assert!(under_component > 0, "decomposed phases record oracle spans under components");
    assert!(sink.counter_total(Counter::Components) > 0, "components counter emitted");
}

/// One scripted panic against a multi-component instance on the
/// parallel resilient path: the fault is isolated to the component it
/// hit. Exactly ONE extra oracle call happens (that component's retry —
/// not a whole-phase redo), the fault log carries the component id, and
/// the outcome is byte-identical to a clean parallel run.
#[test]
fn component_fault_retries_only_its_component() {
    let k = 3usize;
    let mut rng = rand::rngs::StdRng::seed_from_u64(21);
    let inst = multi_component_cf_instance(&mut rng, PlantedCfParams::new(24, 6, k), 4);
    let parts = ComponentPartition::of(ConflictGraph::build(&inst.hypergraph, k).graph()).len();
    assert!(parts >= 4, "disjoint copies must yield ≥ 4 components, got {parts}");

    let mut config = ResilientConfig::new(k);
    config.base = config.base.with_threads(2);

    // Clean parallel baseline: how many oracle calls does the run make,
    // and what does it produce?
    let clean = FaultyOracle::new(GreedyOracle, FaultPlan::none());
    let base = reduce_cf_resilient(&inst.hypergraph, &[&clean], config)
        .expect("clean parallel run completes");
    let baseline_calls = clean.calls();
    assert!(baseline_calls >= parts, "phase 0 alone solves each component");

    // Same run, but the first oracle call (whichever component's worker
    // claims it) panics.
    let faulty = FaultyOracle::new(GreedyOracle, FaultPlan::scripted(vec![Some(FaultKind::Panic)]));
    let tel = Telemetry::new(MemorySink::new());
    let out = reduce_cf_resilient_traced(&inst.hypergraph, &[&faulty], config, &tel)
        .expect("one panicking component must not sink the run");

    // Isolation: exactly one extra call — the faulted component was
    // re-solved alone, the other components' results were kept.
    assert_eq!(faulty.calls(), baseline_calls + 1, "only the faulted component may be retried");
    assert_eq!(out.retries, 1, "one component retry, not a phase redo");
    assert_eq!(out.fallbacks_engaged, 0);

    // The fault log pins the event to a component.
    assert_eq!(out.fault_log.len(), 1);
    let event = &out.fault_log[0];
    assert_eq!(event.kind, FaultEventKind::OraclePanicked);
    assert_eq!(event.phase, 0);
    assert!(event.component.is_some(), "parallel-path faults carry their component id");
    assert!(event.component.unwrap() < parts);

    // Recovery is exact: same records and coloring as the clean run.
    assert_eq!(out.reduction.records, base.reduction.records);
    assert_eq!(out.reduction.coloring, base.reduction.coloring);
    assert!(checker::is_conflict_free(&inst.hypergraph, &out.reduction.coloring));

    // Telemetry has the parallel shape and mirrors the fault log.
    assert_parallel_span_shape(tel.sink());
    assert_eq!(tel.sink().counter_total(Counter::FaultEvents), 1);
    assert!(tel.sink().counter_total(Counter::ParallelOracleCalls) >= parts as u64);
}

/// The core chaos invariant — never a panic, never an invalid coloring,
/// typed errors with verified salvage — restated for the *parallel*
/// resilient driver. Scheduling races make the call order (and thus
/// which component a seeded fault lands on) nondeterministic, so this
/// asserts only schedule-independent properties.
fn assert_parallel_invariant(h: &Hypergraph, k: usize, fault_seed: u64, rate: f64, threads: usize) {
    let faulty = FaultyOracle::new(GreedyOracle, FaultPlan::seeded(fault_seed, rate));
    let chain: Vec<&dyn MaxIsOracle> = vec![&faulty, &GreedyOracle];
    let mut config = ResilientConfig::new(k);
    config.base = config.base.with_threads(threads);

    let result = catch_unwind(AssertUnwindSafe(|| reduce_cf_resilient(h, &chain, config)))
        .unwrap_or_else(|_| {
            panic!("parallel driver panicked (seed {fault_seed}, rate {rate}, {threads} threads)")
        });
    match result {
        Ok(out) => {
            assert!(
                checker::is_conflict_free(h, &out.reduction.coloring),
                "parallel driver returned a non-conflict-free coloring"
            );
            let mut prev = h.edge_count();
            for r in &out.reduction.records {
                assert_eq!(r.edges_before, prev);
                prev = r.edges_after;
            }
            assert_eq!(prev, 0);
        }
        Err(fail) => {
            for e in h.edge_ids() {
                let happy = checker::is_edge_happy(h, &fail.partial.coloring, e);
                assert_eq!(happy, !fail.partial.residual_edges.contains(&e));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Chaos invariant on the component-parallel path: multi-component
    /// instances, 2 worker threads, seeded fault schedules at every
    /// experiment rate.
    #[test]
    fn parallel_resilient_driver_survives_fault_schedules(
        seed in 0u64..5000,
        copies in 2usize..5,
        fault_seed in 0u64..1_000_000,
        rate_idx in 0usize..RATES.len(),
    ) {
        let k = 3usize;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let inst =
            multi_component_cf_instance(&mut rng, PlantedCfParams::new(24, 5, k), copies);
        assert_parallel_invariant(&inst.hypergraph, k, fault_seed, RATES[rate_idx], 2);
    }
}
