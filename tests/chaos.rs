//! Chaos tests: the resilient reduction driver against randomized
//! fault schedules.
//!
//! The invariant under test (see `pslocal::core::resilient`):
//!
//! > For **every** fault schedule, `reduce_cf_resilient` either returns
//! > a verified conflict-free multicoloring or a typed error with a
//! > salvageable partial outcome. It never panics and never returns an
//! > invalid coloring.
//!
//! Plus two determinism obligations: identical seeds produce identical
//! fault logs and outcomes, and a fault rate of 0 reproduces the
//! trusting driver `reduce_cf_to_maxis` byte-for-byte (`PhaseRecord`s
//! and coloring).
//!
//! Every schedule runs with telemetry enabled (an in-memory sink), and
//! the recorded span tree is cross-checked against the `FaultEvent`
//! log: one `oracle` span per attempt, phase indices matching the
//! records, no orphaned spans even after a caught oracle panic.

// `ResilientFailure` is deliberately large: it carries the salvaged
// partial outcome, which these tests inspect.
#![allow(clippy::result_large_err)]

use proptest::prelude::*;
use pslocal::cfcolor::checker;
use pslocal::core::{
    reduce_cf_resilient, reduce_cf_resilient_traced, reduce_cf_to_maxis, FaultEvent,
    FaultEventKind, ReductionConfig, ReductionError, ResilientConfig, ResilientFailure,
    ResilientOutcome,
};
use pslocal::graph::generators::hyper::{planted_cf_instance, PlantedCfInstance, PlantedCfParams};
use pslocal::graph::Hypergraph;
use pslocal::maxis::{FaultPlan, FaultyOracle, GreedyOracle, MaxIsOracle};
use pslocal::telemetry::{names, Counter, MemorySink, Telemetry};
use rand::SeedableRng;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn planted() -> impl Strategy<Value = PlantedCfInstance> {
    (0u64..5000, 2usize..4, 4usize..12).prop_map(|(seed, k, m)| {
        let n = 8 * k + (seed as usize % 9);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        planted_cf_instance(&mut rng, PlantedCfParams::new(n, m, k))
    })
}

/// The fault rates the robustness experiment sweeps; index 0 is the
/// clean baseline.
const RATES: [f64; 4] = [0.0, 0.1, 0.25, 0.5];

/// Is this fault-log entry one rejected oracle attempt? (`Fallback
/// Engaged` / `RetriesExhausted` are bookkeeping, not attempts.)
fn is_rejected_attempt(event: &FaultEvent) -> bool {
    matches!(
        event.kind,
        FaultEventKind::OraclePanicked
            | FaultEventKind::OracleInvalidOutput
            | FaultEventKind::OracleUnderDelivered { .. }
            | FaultEventKind::OracleStalled { .. }
    )
}

/// Cross-checks the recorded span tree against the driver's fault log:
///
/// * no orphaned spans (guards close even across a caught panic);
/// * the `fault_events` counter equals the log length;
/// * phase spans are indexed `0..p` contiguously, all under one
///   `reduction` root, where `p` is `committed` or `committed + 1`
///   (a final phase that failed before committing);
/// * each phase holds exactly one `oracle` span per attempt — the
///   rejected ones logged as faults, plus the accepted one iff the
///   phase committed — indexed `0..attempts` in order.
fn assert_telemetry_consistent(sink: &MemorySink, fault_log: &[FaultEvent], committed: usize) {
    assert!(sink.open_spans().is_empty(), "orphaned spans after the run");
    assert_eq!(
        sink.counter_total(Counter::FaultEvents),
        fault_log.len() as u64,
        "fault_events counter must mirror the fault log"
    );
    let spans = sink.spans();
    let roots: Vec<_> = spans.iter().filter(|s| s.name == names::REDUCTION).collect();
    assert_eq!(roots.len(), 1, "exactly one reduction root span");
    let root_id = roots[0].id;

    let phase_spans: Vec<_> = spans.iter().filter(|s| s.name == names::PHASE).collect();
    for (i, p) in phase_spans.iter().enumerate() {
        assert_eq!(p.parent, Some(root_id), "phase spans hang off the root");
        assert_eq!(p.index, Some(i as u64), "phase spans indexed 0..p in order");
    }
    assert!(
        phase_spans.len() == committed || phase_spans.len() == committed + 1,
        "{} phase spans for {committed} committed phases",
        phase_spans.len()
    );

    for (i, p) in phase_spans.iter().enumerate() {
        let oracle_indices: Vec<u64> = spans
            .iter()
            .filter(|s| s.name == names::ORACLE && s.parent == Some(p.id))
            .map(|s| s.index.expect("oracle spans are attempt-indexed"))
            .collect();
        let rejected = fault_log.iter().filter(|e| e.phase == i && is_rejected_attempt(e)).count();
        let attempts = rejected + usize::from(i < committed);
        assert_eq!(
            oracle_indices,
            (0..attempts as u64).collect::<Vec<_>>(),
            "phase {i}: one oracle span per attempt, in order"
        );
    }
}

/// Runs the resilient driver under a seeded fault plan — telemetry
/// enabled on every run — and asserts the full chaos invariant on
/// whatever comes back, including span-tree/fault-log consistency.
fn assert_invariant(
    h: &Hypergraph,
    k: usize,
    fault_seed: u64,
    rate: f64,
    with_fallback: bool,
) -> Result<ResilientOutcome, ResilientFailure> {
    let faulty = FaultyOracle::new(GreedyOracle, FaultPlan::seeded(fault_seed, rate));
    let chain: Vec<&dyn MaxIsOracle> =
        if with_fallback { vec![&faulty, &GreedyOracle] } else { vec![&faulty] };
    let config = ResilientConfig::new(k);

    // Never a panic — injected oracle panics must be isolated inside
    // the driver, not escape to the caller.
    let tel = Telemetry::new(MemorySink::new());
    let result =
        catch_unwind(AssertUnwindSafe(|| reduce_cf_resilient_traced(h, &chain, config, &tel)))
            .unwrap_or_else(|_| {
                panic!("driver panicked (seed {fault_seed}, rate {rate}) — invariant broken")
            });

    let (fault_log, committed) = match &result {
        Ok(out) => (&out.fault_log, out.reduction.phases_used),
        Err(fail) => (&fail.fault_log, fail.partial.records.len()),
    };
    assert_telemetry_consistent(tel.sink(), fault_log, committed);

    match &result {
        Ok(out) => {
            // Never an invalid coloring.
            assert!(
                checker::is_conflict_free(h, &out.reduction.coloring),
                "driver returned a non-conflict-free coloring (seed {fault_seed}, rate {rate})"
            );
            assert!(out.reduction.phases_used <= out.reduction.rho);
            assert!(
                out.reduction.total_colors <= k * out.reduction.phases_used.max(1),
                "color bound k·phases violated"
            );
            // Records chain down to zero residual edges.
            let mut prev = h.edge_count();
            for r in &out.reduction.records {
                assert_eq!(r.edges_before, prev);
                assert_eq!(r.edges_before - r.edges_removed, r.edges_after);
                prev = r.edges_after;
            }
            assert_eq!(prev, 0);
        }
        Err(fail) => {
            // Typed error...
            assert!(matches!(
                fail.error,
                ReductionError::RetriesExhausted { .. }
                    | ReductionError::PhaseBudgetExhausted { .. }
                    | ReductionError::DecayViolated { .. }
                    | ReductionError::NoLambdaAvailable
            ));
            // ...with salvageable, *verified* partial progress: every
            // edge outside the residual is happy under the partial
            // coloring, every residual edge is not.
            for e in h.edge_ids() {
                let happy = checker::is_edge_happy(h, &fail.partial.coloring, e);
                let residual = fail.partial.residual_edges.contains(&e);
                assert_eq!(happy, !residual, "salvage misclassifies edge {e:?}");
            }
            for (i, r) in fail.partial.records.iter().enumerate() {
                assert_eq!(r.phase, i, "one record per committed phase, in order");
            }
        }
    }
    result
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The chaos invariant across 256+ randomized (instance, seed,
    /// rate, chain-shape) cases.
    #[test]
    fn resilient_driver_survives_every_fault_schedule(
        inst in planted(),
        fault_seed in 0u64..1_000_000,
        rate_idx in 0usize..RATES.len(),
        fallback_bit in 0usize..2,
    ) {
        let _ = assert_invariant(
            &inst.hypergraph,
            inst.k,
            fault_seed,
            RATES[rate_idx],
            fallback_bit == 1,
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With a clean fallback in the chain, the run always succeeds —
    /// the fallback rescues any primary misbehavior.
    #[test]
    fn clean_fallback_always_rescues(
        inst in planted(),
        fault_seed in 0u64..1_000_000,
        rate_idx in 0usize..RATES.len(),
    ) {
        let out = assert_invariant(
            &inst.hypergraph,
            inst.k,
            fault_seed,
            RATES[rate_idx],
            true,
        );
        prop_assert!(out.is_ok(), "clean greedy fallback must carry every run");
    }

    /// Determinism: the same (instance, fault seed, rate) twice gives
    /// identical outcomes AND identical fault logs, both the driver's
    /// `FaultEvent` log and the wrapper's `InjectedFault` log.
    #[test]
    fn fault_schedules_are_deterministic(
        inst in planted(),
        fault_seed in 0u64..1_000_000,
        rate_idx in 1usize..RATES.len(), // nonzero rates: logs non-trivial
    ) {
        let rate = RATES[rate_idx];
        let config = ResilientConfig::new(inst.k);
        let run = || {
            let faulty = FaultyOracle::new(GreedyOracle, FaultPlan::seeded(fault_seed, rate));
            let result = reduce_cf_resilient(&inst.hypergraph, &[&faulty], config);
            (result, faulty.fault_log(), faulty.calls())
        };
        let (a, log_a, calls_a) = run();
        let (b, log_b, calls_b) = run();
        prop_assert_eq!(log_a, log_b, "injected-fault logs must be identical");
        prop_assert_eq!(calls_a, calls_b);
        match (a, b) {
            (Ok(x), Ok(y)) => {
                prop_assert_eq!(x.reduction.coloring, y.reduction.coloring);
                prop_assert_eq!(x.reduction.records, y.reduction.records);
                prop_assert_eq!(x.fault_log, y.fault_log);
                prop_assert_eq!(x.retries, y.retries);
                prop_assert_eq!(x.fallbacks_engaged, y.fallbacks_engaged);
            }
            (Err(x), Err(y)) => {
                prop_assert_eq!(x.error, y.error);
                prop_assert_eq!(x.fault_log, y.fault_log);
                prop_assert_eq!(x.partial.coloring, y.partial.coloring);
                prop_assert_eq!(x.partial.residual_edges, y.partial.residual_edges);
            }
            _ => prop_assert!(false, "one run succeeded, the other failed"),
        }
    }

    /// Fault rate 0 is byte-identical to the trusting driver: same
    /// `PhaseRecord`s, same coloring, same budget, empty fault log.
    #[test]
    fn rate_zero_reproduces_trusting_driver(inst in planted(), fault_seed in 0u64..1_000_000) {
        let base = reduce_cf_to_maxis(
            &inst.hypergraph,
            &GreedyOracle,
            ReductionConfig::new(inst.k),
        ).expect("greedy completes on planted instances");
        let faulty = FaultyOracle::new(GreedyOracle, FaultPlan::seeded(fault_seed, 0.0));
        let out = reduce_cf_resilient(
            &inst.hypergraph,
            &[&faulty],
            ResilientConfig::new(inst.k),
        ).expect("rate 0 behaves exactly like the trusting driver");
        prop_assert_eq!(out.reduction.records, base.records);
        prop_assert_eq!(out.reduction.coloring, base.coloring);
        prop_assert_eq!(out.reduction.lambda, base.lambda);
        prop_assert_eq!(out.reduction.rho, base.rho);
        prop_assert_eq!(out.reduction.phases_used, base.phases_used);
        prop_assert_eq!(out.reduction.total_colors, base.total_colors);
        prop_assert!(out.fault_log.is_empty());
        prop_assert_eq!(out.retries, 0);
        prop_assert_eq!(out.fallbacks_engaged, 0);
        prop_assert!(faulty.fault_log().is_empty());
    }
}
