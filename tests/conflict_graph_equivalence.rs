//! Builder-equivalence property suite for the conflict-graph kernel.
//!
//! The output-sensitive kernel (serial and parallel) and the
//! phase-incremental restriction must produce *exactly* the edge set of
//! the predicate-driven all-pairs reference — `Graph` derives `Eq` over
//! its CSR arrays, so the assertions below compare the full
//! representation (offsets, sorted rows, canonical edge list), not just
//! edge counts. Both `E_color` readings (proof-faithful and
//! `literal_ecolor`) are covered.

use proptest::prelude::*;
use pslocal::core::{BuildStrategy, ConflictGraph, ConflictGraphOptions};
use pslocal::graph::{HyperedgeId, Hypergraph};
use rand::{Rng, SeedableRng};

/// A random hypergraph: `m` edges of 1–4 distinct vertices over `n ≤ 40`
/// vertices (sizes and members seeded, so failures replay exactly).
fn random_hypergraph(seed: u64, n: usize, m: usize) -> Hypergraph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let size = rng.gen_range(1..=4usize.min(n));
        let mut members: Vec<usize> = Vec::new();
        while members.len() < size {
            let v = rng.gen_range(0..n);
            if !members.contains(&v) {
                members.push(v);
            }
        }
        edges.push(members);
    }
    Hypergraph::from_edges(n, edges).expect("generated edges are valid")
}

fn instance() -> impl Strategy<Value = (Hypergraph, usize)> {
    (0u64..10_000, 2usize..=40, 1usize..=12, 1usize..=5)
        .prop_map(|(seed, n, m, k)| (random_hypergraph(seed, n, m), k))
}

fn options(literal_ecolor: bool, strategy: BuildStrategy) -> ConflictGraphOptions {
    ConflictGraphOptions { literal_ecolor, strategy, ..ConflictGraphOptions::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Serial, parallel, and auto kernels all reproduce the all-pairs
    /// reference graph exactly, in both `E_color` readings.
    #[test]
    fn all_strategies_match_reference((h, k) in instance(), literal_bit in 0u8..2) {
        let literal = literal_bit == 1;
        let reference =
            ConflictGraph::build_with_options(&h, k, options(literal, BuildStrategy::Reference));
        for strategy in [BuildStrategy::Serial, BuildStrategy::Parallel, BuildStrategy::Auto] {
            let fast = ConflictGraph::build_with_options(&h, k, options(literal, strategy));
            prop_assert_eq!(
                fast.graph(),
                reference.graph(),
                "strategy {:?} diverges from reference (literal_ecolor = {})",
                strategy,
                literal
            );
        }
    }

    /// The phase-incremental restriction equals a from-scratch rebuild
    /// of the restricted hypergraph — byte-identical CSR, node count,
    /// and triple indexing — including after composing two restrictions.
    #[test]
    fn restriction_matches_rebuild(
        (h, k) in instance(),
        literal_bit in 0u8..2,
        subset_seed in 0u64..1000,
    ) {
        let opts = options(literal_bit == 1, BuildStrategy::Auto);
        let cg = ConflictGraph::build_with_options(&h, k, opts);
        let mut rng = rand::rngs::StdRng::seed_from_u64(subset_seed);
        let keep: Vec<HyperedgeId> =
            h.edge_ids().filter(|_| rng.gen_range(0..3) > 0).collect();
        let restricted = cg.restrict_to_edges(&keep);
        let (h_sub, _) = h.restrict_edges(&keep);
        let rebuilt = ConflictGraph::build_with_options(&h_sub, k, opts);
        prop_assert_eq!(restricted.graph(), rebuilt.graph());
        prop_assert_eq!(restricted.hypergraph().edge_count(), keep.len());
        // Triple indexing survives the renumbering.
        for e in restricted.hypergraph().edge_ids() {
            for &v in restricted.hypergraph().edge(e) {
                for c in 0..k {
                    prop_assert_eq!(
                        restricted.node_for(e, v, c),
                        rebuilt.node_for(e, v, c)
                    );
                }
            }
        }
        // Composition: restricting the restriction still matches a
        // rebuild (the pipeline applies this phase after phase).
        let keep2: Vec<HyperedgeId> = restricted
            .hypergraph()
            .edge_ids()
            .filter(|_| rng.gen_range(0..2) == 0)
            .collect();
        let twice = restricted.restrict_to_edges(&keep2);
        let (h_sub2, _) = h_sub.restrict_edges(&keep2);
        let rebuilt2 = ConflictGraph::build_with_options(&h_sub2, k, opts);
        prop_assert_eq!(twice.graph(), rebuilt2.graph());
    }

    /// Family classification agrees between reference and fast builds
    /// (the per-family counts T1 tabulates are strategy-independent).
    #[test]
    fn family_counts_are_strategy_independent((h, k) in instance()) {
        let fast = ConflictGraph::build_with_options(
            &h, k, options(false, BuildStrategy::Serial));
        let reference = ConflictGraph::build_with_options(
            &h, k, options(false, BuildStrategy::Reference));
        prop_assert_eq!(fast.family_counts(), reference.family_counts());
    }
}
