//! # pslocal
//!
//! Umbrella crate of the executable reproduction of *"P-SLOCAL-
//! Completeness of Maximum Independent Set Approximation"* (Maus,
//! PODC 2019, arXiv:1907.10499).
//!
//! Re-exports the whole stack under one roof:
//!
//! * [`graph`] — graphs, hypergraphs, generators ([`pslocal_graph`])
//! * [`local`] — the LOCAL model simulator ([`pslocal_local`])
//! * [`slocal`] — the SLOCAL model simulator ([`pslocal_slocal`])
//! * [`maxis`] — the MaxIS approximation oracles ([`pslocal_maxis`])
//! * [`cfcolor`] — conflict-free multicoloring ([`pslocal_cfcolor`])
//! * [`core`] — the paper's constructions and Theorem 1.1
//!   ([`pslocal_core`])
//! * [`telemetry`] — spans, counters, phase timelines
//!   ([`pslocal_telemetry`])
//!
//! See the `examples/` directory for runnable walkthroughs, starting
//! with `quickstart.rs`.
//!
//! # Examples
//!
//! ```
//! use pslocal::core::{reduce_cf_to_maxis, ReductionConfig};
//! use pslocal::graph::generators::hyper::{planted_cf_instance, PlantedCfParams};
//! use pslocal::maxis::ExactOracle;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0FFEE);
//! let inst = planted_cf_instance(&mut rng, PlantedCfParams::new(32, 12, 3));
//! let out = reduce_cf_to_maxis(&inst.hypergraph, &ExactOracle, ReductionConfig::new(3))?;
//! assert!(pslocal::cfcolor::is_conflict_free(&inst.hypergraph, &out.coloring));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pslocal_cfcolor as cfcolor;
pub use pslocal_core as core;
pub use pslocal_graph as graph;
pub use pslocal_local as local;
pub use pslocal_maxis as maxis;
pub use pslocal_slocal as slocal;
pub use pslocal_telemetry as telemetry;
