//! `pslocal` — command-line front end for the reproduction stack.
//!
//! ```text
//! pslocal gen planted --n 80 --m 40 --k 4 [--seed S] > instance.hg
//! pslocal gen gnp --n 100 --p 0.05 [--seed S]        > graph.g
//! pslocal stats    < instance.hg | graph.g
//! pslocal maxis  [--oracle NAME] [--threads T] [--seed S]       < graph.g
//! pslocal reduce --k 4 [--oracle NAME] [--threads T] [--seed S] < instance.hg
//! ```
//!
//! Oracles: `exact`, `greedy`, `luby`, `clique-removal`, `decomposition`.
//! Inputs use the text formats of `pslocal_graph::io`. `--threads T`
//! opts into component-parallel execution: disconnected (conflict)
//! graphs are solved one connected component per worker, merged
//! deterministically (see `pslocal_core::components`).

use pslocal::cfcolor::checker;
use pslocal::core::{
    inspect_journal, parallel_independent_set, reduce_cf_to_maxis, reduce_cf_to_maxis_resumable,
    reduce_cf_to_maxis_traced, BoxedOracle, Checkpointing, ConflictGraph, CrashPlan,
    ParallelismOptions, ReductionConfig, ReductionOutcome, RequestOutcome, ResilientConfig,
    Service, ServiceConfig, ServiceRequest, ServiceResponse, DEFAULT_QUEUE_CAPACITY,
};
use pslocal::graph::generators::hyper::{
    multi_component_cf_instance, planted_cf_instance, PlantedCfParams,
};
use pslocal::graph::generators::random::gnp;
use pslocal::graph::io::{read_graph, read_hypergraph, write_graph, write_hypergraph};
use pslocal::graph::{GraphStats, HypergraphStats, KernelStrategy};
use pslocal::maxis::{
    CliqueRemovalOracle, DecompositionOracle, ExactOracle, FaultKind, FaultPlan, FaultyOracle,
    GreedyOracle, LubyOracle, MaxIsOracle, TracedOracle,
};
use pslocal::telemetry::{
    event_to_json, render_tree, Counter, MemorySink, PhaseTimeline, Telemetry,
};
use rand::SeedableRng;
use std::io::Read as _;
use std::process::ExitCode;
use std::time::{Duration, Instant};

const USAGE: &str = "\
pslocal — P-SLOCAL-completeness of MaxIS approximation, executable

USAGE:
  pslocal gen planted --n N --m M --k K [--epsilon E] [--seed S]
  pslocal gen gnp --n N --p P [--seed S]
  pslocal stats                 (reads a graph or hypergraph on stdin)
  pslocal maxis [--oracle O] [--threads T] [--seed S]        (graph on stdin)
  pslocal reduce --k K [--oracle O] [--threads T] [--seed S]
                 [--kernel auto|csr|bitset] [--oracle-cache] (hypergraph on stdin)
  pslocal trace-report [--n N] [--m M] [--k K] [--oracle O] [--seed S]
                                (run a planted reduction, render the
                                 span tree + per-phase timeline)
  pslocal batch [--workers W] [--queue Q] [--deadline-ms D]
                                (JSONL requests on stdin, one JSONL
                                 result line per request on stdout,
                                 completion order)
  pslocal bench-report [--oracle O] [--seed S] [--iters I] [--threads T]
                       [--out FILE]
                                (perf baseline -> BENCH_reduction.json)
  pslocal checkpoint-inspect --checkpoint-dir DIR
                                (decode a phase journal: header, stats,
                                 per-phase records)

CHECKPOINTING (reduce):
  --checkpoint-dir DIR  durably journal every committed phase into DIR
  --resume              replay DIR's journal (corruption-tolerant) and
                        continue from the last good phase; the outcome
                        is byte-identical to an uninterrupted run
  --crash-at P:POINT    abort the process at an injected kill point
                        (phase P at mid-oracle | after-oracle |
                         before-journal | after-journal) — for
                        crash-recovery testing

PARALLELISM (maxis / reduce / bench-report):
  --threads T           solve connected components on up to T workers
                        (default 1 = serial; results are identical for
                         every thread count, merged by component id)

KERNEL (reduce):
  --kernel K            adjacency kernel for the phase conflict graphs:
                        auto (default; density heuristic), csr, bitset.
                        Identical output on every route, only the cost
                        differs
  --oracle-cache        memoize whole-phase oracle answers by conflict-
                        graph fingerprint (hits re-verified, counted as
                        oracle_cache_hit instead of oracle_calls)

BATCH (batched multi-instance serving):
  stdin: one flat JSON object per line. Fields: \"id\" (string,
  required), \"n\"/\"m\"/\"k\"/\"seed\"/\"epsilon\" (planted instance;
  defaults 128 / n/2 / 4 / 0xC0FFEE / 0.5), \"oracle\" (comma-separated
  fallback chain, default greedy), \"kernel\" (auto|csr|bitset),
  \"oracle_cache\" (bool), \"deadline_ms\" (per-request override),
  \"faults\" (comma script injected into the primary oracle: - | panic |
  invalid-set | empty-set | under-deliver | stall:N).
  stdout: one JSON line per request in completion order —
    {\"id\":..,\"outcome\":\"ok\",\"phases\":P,\"set_size\":S,\"colors\":C}
    {\"id\":..,\"outcome\":\"deadline_exceeded\",\"phase\":P}
    {\"id\":..,\"outcome\":\"rejected\"}          (admission queue full)
    {\"id\":..,\"outcome\":\"failed\",\"error\":..}
  --workers W           worker threads, each owning one long-lived
                        phase workspace (default 2)
  --queue Q             admission-queue bound (default 64); submissions
                        past it are rejected, never buffered unbounded
  --deadline-ms D       default per-request deadline, measured from
                        submission, enforced at phase boundaries

TELEMETRY (maxis / reduce / batch / trace-report / bench-report):
  --trace               render the span tree to stdout after the run
  --metrics-out FILE    append every telemetry event as JSONL to FILE

ORACLES: exact | greedy | luby | clique-removal | decomposition
FORMATS: see pslocal_graph::io (p graph / p hypergraph headers)";

/// Options that are flags (no value argument follows them).
const BOOLEAN_FLAGS: &[&str] = &["trace", "resume", "oracle-cache"];

/// Minimal `--key value` argument map (with a few `--flag` booleans).
struct Args {
    positional: Vec<String>,
    options: Vec<(String, String)>,
}

impl Args {
    fn parse(raw: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut positional = Vec::new();
        let mut options = Vec::new();
        let mut iter = raw.peekable();
        while let Some(a) = iter.next() {
            if let Some(key) = a.strip_prefix("--") {
                if BOOLEAN_FLAGS.contains(&key) {
                    options.push((key.to_string(), "true".to_string()));
                    continue;
                }
                let value = iter.next().ok_or_else(|| format!("option --{key} needs a value"))?;
                options.push((key.to_string(), value));
            } else {
                positional.push(a);
            }
        }
        Ok(Args { positional, options })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.options.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    fn flag(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    fn parsed<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => {
                v.parse::<T>().map(Some).map_err(|_| format!("cannot parse --{key} value {v:?}"))
            }
        }
    }

    fn required<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        self.parsed(key)?.ok_or_else(|| format!("missing required option --{key}"))
    }
}

/// Parses `--threads` (default 1 = serial) into [`ParallelismOptions`],
/// rejecting 0 with a CLI error instead of the library's panic.
fn threads_opt(args: &Args) -> Result<ParallelismOptions, String> {
    match args.parsed::<usize>("threads")?.unwrap_or(1) {
        0 => Err("--threads must be at least 1".to_string()),
        t => Ok(ParallelismOptions::with_threads(t)),
    }
}

/// Parses a kernel name into a [`KernelStrategy`].
fn kernel_by_name(name: &str) -> Result<KernelStrategy, String> {
    Ok(match name {
        "auto" => KernelStrategy::Auto,
        "csr" => KernelStrategy::Csr,
        "bitset" => KernelStrategy::Bitset,
        other => return Err(format!("unknown kernel {other:?} (auto | csr | bitset)")),
    })
}

/// Parses `--kernel` (default auto) into a [`KernelStrategy`].
fn kernel_opt(args: &Args) -> Result<KernelStrategy, String> {
    kernel_by_name(args.get("kernel").unwrap_or("auto"))
}

fn oracle_by_name(name: &str, seed: u64) -> Result<Box<dyn MaxIsOracle>, String> {
    Ok(match name {
        "exact" => Box::new(ExactOracle),
        "greedy" => Box::new(GreedyOracle),
        "luby" => Box::new(LubyOracle::new(seed)),
        "clique-removal" => Box::new(CliqueRemovalOracle),
        "decomposition" => Box::new(DecompositionOracle::default()),
        other => return Err(format!("unknown oracle {other:?} (see --help)")),
    })
}

/// [`oracle_by_name`], but boxed for the batch service's thread
/// boundary (`Send + Sync`). Every CLI oracle is a plain value type,
/// so the two constructors stay in lockstep.
fn boxed_oracle_by_name(name: &str, seed: u64) -> Result<BoxedOracle, String> {
    Ok(match name {
        "exact" => Box::new(ExactOracle),
        "greedy" => Box::new(GreedyOracle),
        "luby" => Box::new(LubyOracle::new(seed)),
        "clique-removal" => Box::new(CliqueRemovalOracle),
        "decomposition" => Box::new(DecompositionOracle::default()),
        other => return Err(format!("unknown oracle {other:?} (see --help)")),
    })
}

fn read_stdin() -> Result<String, String> {
    let mut text = String::new();
    std::io::stdin().read_to_string(&mut text).map_err(|e| format!("cannot read stdin: {e}"))?;
    Ok(text)
}

/// The CLI's telemetry switches: `--trace` (render the span tree) and
/// `--metrics-out FILE` (append raw events as JSONL). When neither is
/// given, commands take their untraced path — static dispatch to the
/// null sink, zero overhead.
struct TraceOpts {
    trace: bool,
    metrics_out: Option<String>,
}

impl TraceOpts {
    fn from(args: &Args) -> Self {
        TraceOpts {
            trace: args.flag("trace"),
            metrics_out: args.get("metrics-out").map(String::from),
        }
    }

    fn wanted(&self) -> bool {
        self.trace || self.metrics_out.is_some()
    }

    /// Renders and/or persists what `sink` captured.
    fn emit(&self, sink: &MemorySink) -> Result<(), String> {
        if self.trace {
            print!("{}", render_tree(&sink.spans()));
        }
        if let Some(path) = &self.metrics_out {
            append_events_jsonl(path, sink, &[])?;
        }
        Ok(())
    }
}

/// Appends `sink`'s events to `path` as JSON Lines, preceded by the
/// given metadata line entries (already-serialized JSON objects).
fn append_events_jsonl(path: &str, sink: &MemorySink, meta: &[String]) -> Result<(), String> {
    use std::io::Write as _;
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("cannot open {path}: {e}"))?;
    let mut w = std::io::BufWriter::new(file);
    let mut write =
        |line: &str| writeln!(w, "{line}").map_err(|e| format!("cannot write {path}: {e}"));
    for line in meta {
        write(line)?;
    }
    for event in sink.events() {
        write(&event_to_json(&event))?;
    }
    Ok(())
}

fn cmd_gen(args: &Args) -> Result<(), String> {
    let seed: u64 = args.parsed("seed")?.unwrap_or(0xC0FFEE);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    match args.positional.get(1).map(String::as_str) {
        Some("planted") => {
            let n = args.required("n")?;
            let m = args.required("m")?;
            let k = args.required("k")?;
            let epsilon: f64 = args.parsed("epsilon")?.unwrap_or(0.5);
            let inst = planted_cf_instance(&mut rng, PlantedCfParams { n, m, k, epsilon });
            println!(
                "c planted conflict-free instance: k = {k}, epsilon = {epsilon}, seed = {seed}"
            );
            print!("{}", write_hypergraph(&inst.hypergraph));
            Ok(())
        }
        Some("gnp") => {
            let n = args.required("n")?;
            let p: f64 = args.required("p")?;
            let g = gnp(&mut rng, n, p);
            println!("c G({n}, {p}) seed = {seed}");
            print!("{}", write_graph(&g));
            Ok(())
        }
        other => Err(format!("unknown generator {other:?}; try 'planted' or 'gnp'")),
    }
}

fn cmd_stats() -> Result<(), String> {
    let text = read_stdin()?;
    if let Ok(g) = read_graph(&text) {
        println!("graph: {}", GraphStats::of(&g));
        return Ok(());
    }
    let h = read_hypergraph(&text).map_err(|e| format!("not a graph nor a hypergraph: {e}"))?;
    println!("hypergraph: {}", HypergraphStats::of(&h));
    println!("almost-uniform(0.5): {}", h.is_almost_uniform(0.5));
    Ok(())
}

fn cmd_maxis(args: &Args) -> Result<(), String> {
    let seed: u64 = args.parsed("seed")?.unwrap_or(0xC0FFEE);
    let opts = TraceOpts::from(args);
    let par = threads_opt(args)?;
    let oracle = oracle_by_name(args.get("oracle").unwrap_or("greedy"), seed)?;
    let g = read_graph(&read_stdin()?).map_err(|e| e.to_string())?;
    let set = if opts.wanted() {
        let tel = Telemetry::new(MemorySink::new());
        let traced = TracedOracle::new(oracle.as_ref(), &tel);
        let set = parallel_independent_set(&g, &traced, par);
        opts.emit(tel.sink())?;
        set
    } else {
        parallel_independent_set(&g, oracle.as_ref(), par)
    };
    println!(
        "c oracle = {}, |I| = {}, guarantee = {}",
        oracle.name(),
        set.len(),
        oracle.guarantee()
    );
    for v in set.iter() {
        println!("i {v}");
    }
    Ok(())
}

/// Parses `--checkpoint-dir` / `--resume` / `--crash-at` into a
/// [`Checkpointing`] request; the latter two require the former.
fn checkpoint_opt(args: &Args) -> Result<Option<Checkpointing>, String> {
    let Some(dir) = args.get("checkpoint-dir") else {
        for dependent in ["resume", "crash-at"] {
            if args.flag(dependent) {
                return Err(format!("--{dependent} requires --checkpoint-dir"));
            }
        }
        return Ok(None);
    };
    let mut ckpt = Checkpointing::new(dir);
    if args.flag("resume") {
        ckpt = ckpt.resuming();
    }
    if let Some(spec) = args.get("crash-at") {
        let (phase, point) = CrashPlan::parse_spec(spec).ok_or_else(|| {
            format!(
                "cannot parse --crash-at {spec:?} (want PHASE:POINT with POINT one of \
                 mid-oracle | after-oracle | before-journal | after-journal)"
            )
        })?;
        ckpt = ckpt.with_crash(CrashPlan::aborting(phase, point));
    }
    Ok(Some(ckpt))
}

/// Runs the trusting reduction, checkpointed when requested. The
/// recovery summary goes to **stderr**: stdout stays byte-diffable
/// between interrupted-and-resumed and uninterrupted runs.
fn run_reduce<S: pslocal::telemetry::Sink>(
    h: &pslocal::graph::Hypergraph,
    oracle: &dyn MaxIsOracle,
    config: ReductionConfig,
    ckpt: Option<&Checkpointing>,
    tel: &Telemetry<S>,
) -> Result<ReductionOutcome, String> {
    match ckpt {
        Some(c) => {
            let (out, report) = reduce_cf_to_maxis_resumable(h, oracle, config, c, tel)
                .map_err(|e| format!("reduction failed: {e}"))?;
            eprintln!("checkpoint: {report}");
            Ok(out)
        }
        None => reduce_cf_to_maxis_traced(h, oracle, config, tel)
            .map_err(|e| format!("reduction failed: {e}")),
    }
}

fn cmd_reduce(args: &Args) -> Result<(), String> {
    let seed: u64 = args.parsed("seed")?.unwrap_or(0xC0FFEE);
    let k: usize = args.required("k")?;
    let opts = TraceOpts::from(args);
    let config = ReductionConfig {
        parallelism: threads_opt(args)?,
        kernel: kernel_opt(args)?,
        oracle_cache: args.flag("oracle-cache"),
        ..ReductionConfig::new(k)
    };
    let oracle = oracle_by_name(args.get("oracle").unwrap_or("greedy"), seed)?;
    let ckpt = checkpoint_opt(args)?;
    let h = read_hypergraph(&read_stdin()?).map_err(|e| e.to_string())?;
    let out = if opts.wanted() {
        let tel = Telemetry::new(MemorySink::new());
        let out = run_reduce(&h, oracle.as_ref(), config, ckpt.as_ref(), &tel)?;
        opts.emit(tel.sink())?;
        out
    } else {
        run_reduce(&h, oracle.as_ref(), config, ckpt.as_ref(), &Telemetry::disabled())?
    };
    if !checker::is_conflict_free(&h, &out.coloring) {
        return Err("internal error: reduction returned a non-conflict-free coloring".to_string());
    }
    println!(
        "c oracle = {}, lambda = {:.2}, rho = {}, phases = {}, colors = {}",
        oracle.name(),
        out.lambda,
        out.rho,
        out.phases_used,
        out.total_colors
    );
    for r in &out.records {
        println!(
            "c phase {} edges {} -> {} (|I| = {})",
            r.phase, r.edges_before, r.edges_after, r.independent_set_size
        );
    }
    for v in 0..h.node_count() {
        let node = pslocal::graph::NodeId::new(v);
        let colors: Vec<String> =
            out.coloring.colors_of(node).iter().map(|c| c.to_string()).collect();
        println!("v {v} {}", colors.join(" "));
    }
    Ok(())
}

/// One field value of a flat batch-request JSON object: a string, or a
/// raw unquoted token (number / bool) parsed per field.
enum JsonValue {
    Str(String),
    Raw(String),
}

/// Skips JSON whitespace.
fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.peek().is_some_and(|c| c.is_whitespace()) {
        chars.next();
    }
}

/// Parses a JSON string literal (the opening `"` still pending).
fn parse_json_string(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Result<String, String> {
    if chars.next() != Some('"') {
        return Err("expected a JSON string".to_string());
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('/') => out.push('/'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('r') => out.push('\r'),
                other => return Err(format!("unsupported string escape {other:?}")),
            },
            Some(c) => out.push(c),
            None => return Err("unterminated JSON string".to_string()),
        }
    }
}

/// Parses one *flat* JSON object (the batch request schema: scalar
/// values only — nested objects and arrays are rejected). The vendored
/// serde stub has no deserializer, so the CLI carries its own.
fn parse_flat_json(line: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut chars = line.chars().peekable();
    skip_ws(&mut chars);
    if chars.next() != Some('{') {
        return Err("expected a JSON object ('{' ... '}')".to_string());
    }
    let mut fields = Vec::new();
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
    } else {
        loop {
            skip_ws(&mut chars);
            let key = parse_json_string(&mut chars)?;
            skip_ws(&mut chars);
            if chars.next() != Some(':') {
                return Err(format!("expected ':' after key {key:?}"));
            }
            skip_ws(&mut chars);
            let value = match chars.peek() {
                Some('"') => JsonValue::Str(parse_json_string(&mut chars)?),
                Some(c) if *c == '-' || *c == '+' || c.is_ascii_alphanumeric() => {
                    let mut token = String::new();
                    while let Some(&c) = chars.peek() {
                        if c == ',' || c == '}' || c.is_whitespace() {
                            break;
                        }
                        token.push(c);
                        chars.next();
                    }
                    JsonValue::Raw(token)
                }
                other => {
                    return Err(format!(
                        "unsupported value {other:?} for key {key:?} (flat schema: scalars only)"
                    ))
                }
            };
            fields.push((key, value));
            skip_ws(&mut chars);
            match chars.next() {
                Some(',') => continue,
                Some('}') => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
    skip_ws(&mut chars);
    if let Some(trailing) = chars.next() {
        return Err(format!("trailing input {trailing:?} after the JSON object"));
    }
    Ok(fields)
}

/// Typed accessors over one parsed batch-request object.
struct BatchFields(Vec<(String, JsonValue)>);

impl BatchFields {
    fn find(&self, key: &str) -> Option<&JsonValue> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn str(&self, key: &str) -> Result<Option<&str>, String> {
        match self.find(key) {
            None => Ok(None),
            Some(JsonValue::Str(s)) => Ok(Some(s)),
            Some(JsonValue::Raw(_)) => Err(format!("field {key:?} must be a JSON string")),
        }
    }

    fn num<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.find(key) {
            None => Ok(None),
            Some(JsonValue::Raw(raw)) => raw
                .parse::<T>()
                .map(Some)
                .map_err(|_| format!("cannot parse field {key:?} value {raw:?}")),
            Some(JsonValue::Str(_)) => Err(format!("field {key:?} must be a JSON number")),
        }
    }

    fn bool(&self, key: &str) -> Result<bool, String> {
        match self.find(key) {
            None => Ok(false),
            Some(JsonValue::Raw(raw)) if raw == "true" => Ok(true),
            Some(JsonValue::Raw(raw)) if raw == "false" => Ok(false),
            _ => Err(format!("field {key:?} must be true or false")),
        }
    }
}

/// Escapes a string for embedding in a JSON result line.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses a `faults` script: comma-separated per-call fault tokens for
/// the request's primary oracle (`-` = behave).
fn parse_fault_script(spec: &str) -> Result<Vec<Option<FaultKind>>, String> {
    spec.split(',')
        .map(|token| match token.trim() {
            "" | "-" | "ok" => Ok(None),
            "panic" => Ok(Some(FaultKind::Panic)),
            "invalid-set" => Ok(Some(FaultKind::InvalidSet)),
            "empty-set" => Ok(Some(FaultKind::EmptySet)),
            "under-deliver" => Ok(Some(FaultKind::UnderDeliver)),
            t => match t.strip_prefix("stall:") {
                Some(steps) => steps
                    .parse::<usize>()
                    .map(|s| Some(FaultKind::Stall(s)))
                    .map_err(|_| format!("cannot parse stall step count in {t:?}")),
                None => Err(format!(
                    "unknown fault {t:?} (- | panic | invalid-set | empty-set | \
                     under-deliver | stall:N)"
                )),
            },
        })
        .collect()
}

/// Builds one [`ServiceRequest`] from a parsed batch JSONL line.
fn parse_batch_request(
    line: &str,
    default_deadline_ms: Option<u64>,
) -> Result<ServiceRequest, String> {
    let fields = BatchFields(parse_flat_json(line)?);
    let id = fields.str("id")?.ok_or("missing required field \"id\"")?.to_string();
    let n: usize = fields.num("n")?.unwrap_or(128);
    let m: usize = fields.num("m")?.unwrap_or(n / 2);
    let k: usize = fields.num("k")?.unwrap_or(4);
    let seed: u64 = fields.num("seed")?.unwrap_or(0xC0FFEE);
    let epsilon: f64 = fields.num("epsilon")?.unwrap_or(0.5);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let inst = planted_cf_instance(&mut rng, PlantedCfParams { n, m, k, epsilon });

    let mut chain: Vec<BoxedOracle> = fields
        .str("oracle")?
        .unwrap_or("greedy")
        .split(',')
        .map(|name| boxed_oracle_by_name(name.trim(), seed))
        .collect::<Result<_, _>>()?;
    if let Some(spec) = fields.str("faults")? {
        let script = parse_fault_script(spec)?;
        let primary = chain.remove(0);
        chain.insert(0, Box::new(FaultyOracle::new(primary, FaultPlan::scripted(script))));
    }

    let mut base = ReductionConfig::new(k);
    base.kernel = kernel_by_name(fields.str("kernel")?.unwrap_or("auto"))?;
    base.oracle_cache = fields.bool("oracle_cache")?;
    let config = ResilientConfig { base, ..ResilientConfig::new(k) };

    let mut request = ServiceRequest::new(id, inst.hypergraph, chain, config);
    if let Some(ms) = fields.num::<u64>("deadline_ms")?.or(default_deadline_ms) {
        request = request.with_deadline(Duration::from_millis(ms));
    }
    Ok(request)
}

/// Renders one completed request as its JSONL result line. Only
/// deterministic fields appear here — timing goes to telemetry and the
/// stderr summary — so result streams are byte-comparable across
/// worker counts.
fn response_line(response: &ServiceResponse) -> String {
    let id = json_escape(&response.id);
    match &response.outcome {
        RequestOutcome::Ok { phases, set_size, colors } => format!(
            "{{\"id\":\"{id}\",\"outcome\":\"ok\",\"phases\":{phases},\
             \"set_size\":{set_size},\"colors\":{colors}}}"
        ),
        RequestOutcome::DeadlineExceeded { phase } => {
            format!("{{\"id\":\"{id}\",\"outcome\":\"deadline_exceeded\",\"phase\":{phase}}}")
        }
        RequestOutcome::Failed { error } => format!(
            "{{\"id\":\"{id}\",\"outcome\":\"failed\",\"error\":\"{}\"}}",
            json_escape(error)
        ),
    }
}

/// Nearest-rank percentile over an ascending sample vector.
fn percentile_ns(sorted: &[u128], p: f64) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Drives one batch through the service: submit everything (emitting
/// `rejected` lines on backpressure), stream result lines in
/// completion order, drain, and hand the telemetry pipeline back.
fn run_batch<S: pslocal::telemetry::Sink + Send + Sync + 'static>(
    requests: Vec<ServiceRequest>,
    config: ServiceConfig,
    tel: Telemetry<S>,
) -> (Vec<ServiceResponse>, usize, Telemetry<S>) {
    let service = Service::start(config, tel);
    let mut responses = Vec::new();
    let mut rejected = 0usize;
    for request in requests {
        // Keep streaming completions while submitting, so stdout stays
        // live on long batches.
        while let Some(response) = service.try_recv() {
            println!("{}", response_line(&response));
            responses.push(response);
        }
        if let Err(full) = service.submit(request) {
            println!("{{\"id\":\"{}\",\"outcome\":\"rejected\"}}", json_escape(&full.request.id));
            rejected += 1;
        }
    }
    let report = service.shutdown();
    for response in report.drained {
        println!("{}", response_line(&response));
        responses.push(response);
    }
    (responses, rejected, report.telemetry)
}

/// `pslocal batch` — the batched multi-instance serving front end (see
/// the BATCH section of the usage text for the JSONL schemas).
fn cmd_batch(args: &Args) -> Result<(), String> {
    let workers = match args.parsed::<usize>("workers")?.unwrap_or(2) {
        0 => return Err("--workers must be at least 1".to_string()),
        w => w,
    };
    let queue = match args.parsed::<usize>("queue")?.unwrap_or(DEFAULT_QUEUE_CAPACITY) {
        0 => return Err("--queue must be at least 1".to_string()),
        q => q,
    };
    let default_deadline_ms = args.parsed::<u64>("deadline-ms")?;
    let opts = TraceOpts::from(args);

    let mut requests = Vec::new();
    for (index, line) in read_stdin()?.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let request = parse_batch_request(line, default_deadline_ms)
            .map_err(|e| format!("stdin line {}: {e}", index + 1))?;
        requests.push(request);
    }
    if requests.is_empty() {
        return Err("no batch requests on stdin (one JSON object per line)".to_string());
    }
    let total = requests.len();
    let config = ServiceConfig::new(workers).with_queue_capacity(queue);

    let started = Instant::now();
    let (responses, rejected) = if opts.wanted() {
        let (responses, rejected, tel) =
            run_batch(requests, config, Telemetry::new(MemorySink::new()));
        opts.emit(tel.sink())?;
        (responses, rejected)
    } else {
        let (responses, rejected, _) = run_batch(requests, config, Telemetry::disabled());
        (responses, rejected)
    };
    let wall = started.elapsed();

    let count = |label: &str| responses.iter().filter(|r| r.outcome.label() == label).count();
    let mut latencies: Vec<u128> = responses.iter().map(|r| r.latency.as_nanos()).collect();
    latencies.sort_unstable();
    eprintln!(
        "batch: {total} requests -> {} ok, {} deadline_exceeded, {} failed, {rejected} rejected \
         in {}ms ({workers} workers, queue {queue}; latency p50 = {}us, p99 = {}us)",
        count("ok"),
        count("deadline_exceeded"),
        count("failed"),
        wall.as_millis(),
        percentile_ns(&latencies, 50.0) / 1000,
        percentile_ns(&latencies, 99.0) / 1000,
    );
    Ok(())
}

/// Decodes a phase journal without re-running anything: header, open
/// stats (bytes kept vs. discarded) and one line per surviving phase.
fn cmd_checkpoint_inspect(args: &Args) -> Result<(), String> {
    let dir = args.get("checkpoint-dir").ok_or("checkpoint-inspect needs --checkpoint-dir DIR")?;
    let insp = inspect_journal(std::path::Path::new(dir)).map_err(|e| e.to_string())?;
    let head = &insp.header;
    println!(
        "journal: driver = {}, k = {}, lambda = {:.4}, rho = {}, budget = {}, threads = {}",
        head.driver.name(),
        head.k,
        f64::from_bits(head.lambda_bits),
        head.rho,
        head.budget,
        head.threads,
    );
    println!("instance fingerprint: {:#018x}", head.instance_fingerprint);
    println!("oracle chain: {}", head.oracle_names.join(" -> "));
    println!(
        "phases: {} ({} bytes on disk, {} bytes / {} records discarded as corrupt)",
        insp.phases.len(),
        insp.stats.bytes_total,
        insp.stats.bytes_discarded,
        insp.stats.records_discarded,
    );
    for p in &insp.phases {
        println!(
            "  phase {}: edges {} -> {}, |I| = {}, quota = {}, {}, calls = {:?}, \
             retries = {}, fallbacks = {}, events = {}",
            p.phase,
            p.record.edges_before,
            p.record.edges_after,
            p.set.len(),
            p.quota_required,
            if p.primary { "primary" } else { "fallback" },
            p.chain_calls,
            p.retries,
            p.fallbacks,
            p.events.len(),
        );
        for e in &p.events {
            println!("    event: attempt {} [{}]: {}", e.attempt, e.oracle, e.kind);
        }
    }
    Ok(())
}

fn cmd_trace_report(args: &Args) -> Result<(), String> {
    let seed: u64 = args.parsed("seed")?.unwrap_or(0xC0FFEE);
    let n: usize = args.parsed("n")?.unwrap_or(128);
    let m: usize = args.parsed("m")?.unwrap_or(n / 2);
    let k: usize = args.parsed("k")?.unwrap_or(4);
    let oracle = oracle_by_name(args.get("oracle").unwrap_or("greedy"), seed)?;
    let opts = TraceOpts::from(args);

    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let inst = planted_cf_instance(&mut rng, PlantedCfParams::new(n, m, k));
    let tel = Telemetry::new(MemorySink::new());
    let out =
        reduce_cf_to_maxis_traced(&inst.hypergraph, oracle.as_ref(), ReductionConfig::new(k), &tel)
            .map_err(|e| format!("reduction failed: {e}"))?;
    if !checker::is_conflict_free(&inst.hypergraph, &out.coloring) {
        return Err("internal error: reduction returned a non-conflict-free coloring".to_string());
    }
    let sink = tel.into_sink();

    println!("trace-report: planted n={n} m={m} k={k} oracle={} seed={:#x}", oracle.name(), seed);
    println!(
        "reduction: lambda = {:.2}, rho = {}, phases = {}, colors = {}, {}",
        out.lambda, out.rho, out.phases_used, out.total_colors, out.locality
    );
    let spans = sink.spans();
    let timeline = PhaseTimeline::from_spans(&spans)
        .ok_or("no reduction span recorded (telemetry pipeline broken?)")?;
    println!();
    print!("{}", timeline.render());
    println!();
    print!("{}", render_tree(&spans));
    if let Some(path) = &opts.metrics_out {
        append_events_jsonl(path, &sink, &[])?;
        eprintln!("appended telemetry events to {path}");
    }
    Ok(())
}

/// One sized measurement of `bench-report`.
struct BenchEntry {
    n: usize,
    m: usize,
    k: usize,
    conflict_nodes: usize,
    conflict_edges: usize,
    /// Adjacency route `KernelStrategy::Auto` resolves to on this
    /// instance's first-phase conflict graph (`"bitset"` or `"csr"`).
    kernel: &'static str,
    build_ns: u128,
    oracle_ns: u128,
    /// End-to-end reduction under the default `Auto` kernel.
    reduction_ns: u128,
    /// Same reduction with the kernel pinned to `Csr` — the same-host
    /// baseline the dense-route speedup claim is measured against.
    csr_reduction_ns: u128,
    phases: usize,
    /// Oracle-memoization counters from the instrumented run (cache
    /// enabled there so the columns are live; phase graphs within one
    /// reduction are all distinct, so expect `misses == phases`).
    oracle_cache_hits: u64,
    oracle_cache_misses: u64,
    /// Telemetry-derived split of one instrumented reduction run:
    /// conflict-graph construction (initial build + per-phase restricts),
    /// oracle time, commit time, and the whole reduction span.
    tel_build_ns: u64,
    tel_oracle_ns: u64,
    tel_commit_ns: u64,
    tel_reduction_ns: u64,
}

impl BenchEntry {
    fn build_ns_per_edge(&self) -> f64 {
        if self.conflict_edges == 0 {
            0.0
        } else {
            self.build_ns as f64 / self.conflict_edges as f64
        }
    }

    /// Csr-baseline over Auto speedup of the end-to-end reduction.
    fn kernel_speedup(&self) -> f64 {
        if self.reduction_ns == 0 {
            0.0
        } else {
            self.csr_reduction_ns as f64 / self.reduction_ns as f64
        }
    }
}

/// Median of `iters` timings of `f` (best-effort; `iters ≥ 1`).
fn median_ns<F: FnMut()>(iters: usize, mut f: F) -> u128 {
    let mut samples: Vec<u128> = (0..iters.max(1))
        .map(|_| {
            let start = std::time::Instant::now();
            f();
            start.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// The bench-report's component-parallel measurement: one reduction
/// over a disjoint union of planted copies, timed serial vs. `threads`
/// workers.
struct ParallelBench {
    copies: usize,
    n: usize,
    m: usize,
    k: usize,
    threads: usize,
    /// CPUs the host actually offers — the number that decides whether
    /// `threads` workers can speed anything up (1 CPU cannot).
    host_threads: usize,
    serial_ns: u128,
    parallel_ns: u128,
}

impl ParallelBench {
    fn speedup(&self) -> f64 {
        if self.parallel_ns == 0 {
            0.0
        } else {
            self.serial_ns as f64 / self.parallel_ns as f64
        }
    }
}

/// One worker-count measurement of the batch-service benchmark.
struct ServiceBenchRun {
    workers: usize,
    wall_ns: u128,
    p50_latency_ns: u128,
    p99_latency_ns: u128,
}

impl ServiceBenchRun {
    /// Completed requests per second at this pool size.
    fn throughput_rps(&self, instances: usize) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            instances as f64 / (self.wall_ns as f64 / 1e9)
        }
    }
}

/// The batch-service benchmark: `instances` mixed dense/sparse planted
/// instances through [`Service`] at several pool sizes, against a plain
/// serial loop over the same resilient driver.
struct ServiceBench {
    instances: usize,
    host_threads: usize,
    sequential_ns: u128,
    runs: Vec<ServiceBenchRun>,
}

/// Measures the service block: 64 mixed instances (dense `(128, 64, 8)`
/// alternating with sparse `(384, 192, 4)`), sequential baseline plus
/// workers ∈ {1, 2, 4}.
fn bench_service(seed: u64) -> Result<ServiceBench, String> {
    const INSTANCES: usize = 64;
    let shapes = [(128usize, 64usize, 8usize), (384, 192, 4)];
    let prebuilt: Vec<(pslocal::graph::Hypergraph, usize)> = (0..INSTANCES)
        .map(|i| {
            let (n, m, k) = shapes[i % shapes.len()];
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ i as u64);
            (planted_cf_instance(&mut rng, PlantedCfParams::new(n, m, k)).hypergraph, k)
        })
        .collect();

    let start = Instant::now();
    for (h, k) in &prebuilt {
        let out = pslocal::core::reduce_cf_resilient(h, &[&GreedyOracle], ResilientConfig::new(*k))
            .map_err(|f| format!("sequential service baseline failed: {}", f.error))?;
        std::hint::black_box(out);
    }
    let sequential_ns = start.elapsed().as_nanos();

    let mut runs = Vec::new();
    for workers in [1usize, 2, 4] {
        let service = Service::start(
            ServiceConfig::new(workers).with_queue_capacity(INSTANCES),
            Telemetry::disabled(),
        );
        let start = Instant::now();
        for (i, (h, k)) in prebuilt.iter().enumerate() {
            let request = ServiceRequest::new(
                format!("bench-{i}"),
                h.clone(),
                vec![Box::new(GreedyOracle) as BoxedOracle],
                ResilientConfig::new(*k),
            );
            service.submit(request).map_err(|e| format!("bench submission rejected: {e}"))?;
        }
        let mut latencies: Vec<u128> = (0..INSTANCES)
            .map(|_| {
                let response = service.recv().ok_or("service worker pool died mid-bench")?;
                if let RequestOutcome::Failed { error } = &response.outcome {
                    return Err(format!("bench request {} failed: {error}", response.id));
                }
                Ok(response.latency.as_nanos())
            })
            .collect::<Result<_, String>>()?;
        let wall_ns = start.elapsed().as_nanos();
        service.shutdown();
        latencies.sort_unstable();
        runs.push(ServiceBenchRun {
            workers,
            wall_ns,
            p50_latency_ns: percentile_ns(&latencies, 50.0),
            p99_latency_ns: percentile_ns(&latencies, 99.0),
        });
    }
    Ok(ServiceBench {
        instances: INSTANCES,
        host_threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
        sequential_ns,
        runs,
    })
}

fn cmd_bench_report(args: &Args) -> Result<(), String> {
    let seed: u64 = args.parsed("seed")?.unwrap_or(0xC0FFEE);
    let iters: usize = args.parsed("iters")?.unwrap_or(3);
    // The serial-vs-parallel comparison defaults to 4 workers.
    let threads = match args.parsed::<usize>("threads")?.unwrap_or(4) {
        0 => return Err("--threads must be at least 1".to_string()),
        t => t,
    };
    let oracle = oracle_by_name(args.get("oracle").unwrap_or("greedy"), seed)?;
    let out_path = args.get("out").unwrap_or("BENCH_reduction.json").to_string();
    let metrics_out = args.get("metrics-out").map(String::from);

    let grid: &[(usize, usize, usize)] =
        &[(64, 32, 4), (128, 64, 4), (128, 64, 8), (256, 128, 4), (384, 192, 4)];
    let mut entries = Vec::new();
    for &(n, m, k) in grid {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let inst = planted_cf_instance(&mut rng, PlantedCfParams::new(n, m, k));
        let h = &inst.hypergraph;
        let cg = ConflictGraph::build(h, k);
        let build_ns = median_ns(iters, || {
            std::hint::black_box(ConflictGraph::build(std::hint::black_box(h), k));
        });
        let oracle_ns = median_ns(iters, || {
            std::hint::black_box(oracle.independent_set(std::hint::black_box(cg.graph())));
        });
        let mut phases = 0usize;
        let mut failed: Option<String> = None;
        let mut timed_kernel = |kernel: KernelStrategy| {
            let mut config = ReductionConfig::new(k);
            config.kernel = kernel;
            median_ns(iters, || {
                match reduce_cf_to_maxis(h, oracle.as_ref(), config) {
                    Ok(out) => {
                        phases = out.phases_used;
                        std::hint::black_box(out);
                    }
                    Err(e) => {
                        failed = Some(format!("reduction failed on (n={n}, m={m}, k={k}): {e}"))
                    }
                };
            })
        };
        // Baseline first so `phases` ends up reflecting the Auto run
        // (they are identical by kernel invariance, but keep the
        // bookkeeping honest).
        let csr_reduction_ns = timed_kernel(KernelStrategy::Csr);
        let reduction_ns = timed_kernel(KernelStrategy::Auto);
        if let Some(message) = failed {
            return Err(message);
        }
        // Instrumented runs per grid point: the span tree attributes
        // the wall clock to build / oracle / commit, which the median
        // timings above cannot separate inside `reduce_cf_to_maxis`.
        // Best-of-`iters` keeps one-shot scheduling outliers (thread
        // spawn on the sharded build) out of the published split.
        // Memoization is enabled here so the cache columns are live.
        let mut traced_config = ReductionConfig::new(k);
        traced_config.oracle_cache = true;
        let mut best: Option<(PhaseTimeline, MemorySink)> = None;
        for _ in 0..iters.max(1) {
            let tel = Telemetry::new(MemorySink::new());
            reduce_cf_to_maxis_traced(h, oracle.as_ref(), traced_config, &tel)
                .map_err(|e| format!("reduction failed on (n={n}, m={m}, k={k}): {e}"))?;
            let sink = tel.into_sink();
            let timeline = PhaseTimeline::from_spans(&sink.spans())
                .ok_or("no reduction span recorded (telemetry pipeline broken?)")?;
            if best.as_ref().is_none_or(|(t, _)| timeline.total_ns < t.total_ns) {
                best = Some((timeline, sink));
            }
        }
        let (timeline, sink) = best.ok_or("bench-report produced no instrumented run")?;
        if let Some(path) = &metrics_out {
            let meta = format!(
                "{{\"meta\":\"bench-entry\",\"n\":{n},\"m\":{m},\"k\":{k},\"oracle\":\"{}\",\"seed\":{seed}}}",
                oracle.name()
            );
            append_events_jsonl(path, &sink, &[meta])?;
        }
        entries.push(BenchEntry {
            n,
            m,
            k,
            conflict_nodes: cg.node_count(),
            conflict_edges: cg.edge_count(),
            kernel: if cg.bitset().is_some() { "bitset" } else { "csr" },
            build_ns,
            oracle_ns,
            reduction_ns,
            csr_reduction_ns,
            phases,
            oracle_cache_hits: sink.counter_total(Counter::OracleCacheHits),
            oracle_cache_misses: sink.counter_total(Counter::OracleCacheMisses),
            tel_build_ns: timeline.build_ns,
            tel_oracle_ns: timeline.oracle_ns,
            tel_commit_ns: timeline.commit_ns,
            tel_reduction_ns: timeline.total_ns,
        });
    }

    // Component-parallel phase execution on a multi-component planted
    // instance (8 vertex-disjoint copies, so the conflict graph has ≥ 8
    // components): one full reduction, serial vs. `threads` workers.
    // Same work, same result (the executor is thread-count-invariant);
    // only the wall clock moves.
    let (pn, pm, pk, copies) = (128usize, 64usize, 8usize, 8usize);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let pinst = multi_component_cf_instance(&mut rng, PlantedCfParams::new(pn, pm, pk), copies);
    let ph = &pinst.hypergraph;
    let serial_cfg = ReductionConfig::new(pk);
    let parallel_cfg = serial_cfg.with_threads(threads);
    let mut failed: Option<String> = None;
    let mut timed_reduce = |cfg: ReductionConfig| {
        median_ns(iters, || match reduce_cf_to_maxis(ph, oracle.as_ref(), cfg) {
            Ok(out) => {
                std::hint::black_box(out);
            }
            Err(e) => failed = Some(format!("parallel bench reduction failed: {e}")),
        })
    };
    let serial_ns = timed_reduce(serial_cfg);
    let parallel_ns = timed_reduce(parallel_cfg);
    if let Some(message) = failed {
        return Err(message);
    }
    let parallel = ParallelBench {
        copies,
        n: ph.node_count(),
        m: ph.edge_count(),
        k: pk,
        threads,
        host_threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
        serial_ns,
        parallel_ns,
    };

    // Batched serving: the same oracle over 64 mixed instances, serial
    // loop vs. the service's worker pool.
    let service = bench_service(seed)?;

    // Hand-rolled JSON: the vendored serde stub has no serializer and
    // the container has no serde_json; the schema below is frozen so
    // future PRs can diff perf trajectories mechanically.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"pslocal-bench-reduction/v5\",\n");
    json.push_str(&format!("  \"oracle\": \"{}\",\n", oracle.name()));
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"iters\": {iters},\n"));
    json.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"n\": {}, \"m\": {}, \"k\": {}, \"conflict_nodes\": {}, \
             \"conflict_edges\": {}, \"kernel\": \"{}\", \"phases\": {}, \"build_ns\": {}, \
             \"oracle_ns\": {}, \"reduction_ns\": {}, \"csr_reduction_ns\": {}, \
             \"kernel_speedup\": {:.2}, \"build_ns_per_edge\": {:.2}, \
             \"oracle_cache_hits\": {}, \"oracle_cache_misses\": {}, \
             \"tel_build_ns\": {}, \"tel_oracle_ns\": {}, \"tel_commit_ns\": {}, \
             \"tel_reduction_ns\": {}}}{}\n",
            e.n,
            e.m,
            e.k,
            e.conflict_nodes,
            e.conflict_edges,
            e.kernel,
            e.phases,
            e.build_ns,
            e.oracle_ns,
            e.reduction_ns,
            e.csr_reduction_ns,
            e.kernel_speedup(),
            e.build_ns_per_edge(),
            e.oracle_cache_hits,
            e.oracle_cache_misses,
            e.tel_build_ns,
            e.tel_oracle_ns,
            e.tel_commit_ns,
            e.tel_reduction_ns,
            if i + 1 < entries.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"parallel\": {{\"copies\": {}, \"n\": {}, \"m\": {}, \"k\": {}, \
         \"threads\": {}, \"host_threads\": {}, \"serial_ns\": {}, \"parallel_ns\": {}, \
         \"speedup\": {:.2}}}\n",
        parallel.copies,
        parallel.n,
        parallel.m,
        parallel.k,
        parallel.threads,
        parallel.host_threads,
        parallel.serial_ns,
        parallel.parallel_ns,
        parallel.speedup(),
    ));
    // Convert the trailing newline of the parallel block into a comma
    // so the v5 service block can follow it.
    json.truncate(json.len() - 1);
    json.push_str(",\n");
    json.push_str(&format!(
        "  \"service\": {{\"instances\": {}, \"host_threads\": {}, \"sequential_ns\": {}, \
         \"runs\": [\n",
        service.instances, service.host_threads, service.sequential_ns,
    ));
    for (i, run) in service.runs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workers\": {}, \"wall_ns\": {}, \"throughput_rps\": {:.2}, \
             \"speedup_vs_sequential\": {:.2}, \"p50_latency_ns\": {}, \"p99_latency_ns\": {}}}{}\n",
            run.workers,
            run.wall_ns,
            run.throughput_rps(service.instances),
            if run.wall_ns == 0 { 0.0 } else { service.sequential_ns as f64 / run.wall_ns as f64 },
            run.p50_latency_ns,
            run.p99_latency_ns,
            if i + 1 < service.runs.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]}\n");
    json.push_str("}\n");
    std::fs::write(&out_path, &json).map_err(|e| format!("cannot write {out_path}: {e}"))?;

    println!("wrote {out_path}");
    for e in &entries {
        println!(
            "n={} m={} k={}: |V|={} |E|={} [{}] build={}us oracle={}us reduce={}us \
             (csr {}us, {:.2}x; {} phases, {:.1} ns/edge, cache {}h/{}m)",
            e.n,
            e.m,
            e.k,
            e.conflict_nodes,
            e.conflict_edges,
            e.kernel,
            e.build_ns / 1000,
            e.oracle_ns / 1000,
            e.reduction_ns / 1000,
            e.csr_reduction_ns / 1000,
            e.kernel_speedup(),
            e.phases,
            e.build_ns_per_edge(),
            e.oracle_cache_hits,
            e.oracle_cache_misses,
        );
        println!(
            "    telemetry split: build={}us oracle={}us commit={}us total={}us",
            e.tel_build_ns / 1000,
            e.tel_oracle_ns / 1000,
            e.tel_commit_ns / 1000,
            e.tel_reduction_ns / 1000,
        );
    }
    println!(
        "parallel: {} copies of (n={}, m={}, k={}): serial={}us, {} threads={}us \
         ({:.2}x on a {}-CPU host)",
        parallel.copies,
        pn,
        pm,
        parallel.k,
        parallel.serial_ns / 1000,
        parallel.threads,
        parallel.parallel_ns / 1000,
        parallel.speedup(),
        parallel.host_threads,
    );
    println!(
        "service: {} mixed instances, sequential = {}ms ({}-CPU host)",
        service.instances,
        service.sequential_ns / 1_000_000,
        service.host_threads,
    );
    for run in &service.runs {
        println!(
            "    workers = {}: wall = {}ms, {:.1} req/s ({:.2}x vs sequential), \
             latency p50 = {}us, p99 = {}us",
            run.workers,
            run.wall_ns / 1_000_000,
            run.throughput_rps(service.instances),
            if run.wall_ns == 0 { 0.0 } else { service.sequential_ns as f64 / run.wall_ns as f64 },
            run.p50_latency_ns / 1000,
            run.p99_latency_ns / 1000,
        );
    }
    if let Some(path) = &metrics_out {
        println!("appended telemetry events to {path}");
    }
    Ok(())
}

fn dispatch() -> Result<(), String> {
    let args = Args::parse(std::env::args().skip(1))?;
    match args.positional.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args),
        Some("stats") => cmd_stats(),
        Some("maxis") => cmd_maxis(&args),
        Some("reduce") => cmd_reduce(&args),
        Some("batch") => cmd_batch(&args),
        Some("trace-report") => cmd_trace_report(&args),
        Some("bench-report") => cmd_bench_report(&args),
        Some("checkpoint-inspect") => cmd_checkpoint_inspect(&args),
        Some("help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match dispatch() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
