//! `pslocal` — command-line front end for the reproduction stack.
//!
//! ```text
//! pslocal gen planted --n 80 --m 40 --k 4 [--seed S] > instance.hg
//! pslocal gen gnp --n 100 --p 0.05 [--seed S]        > graph.g
//! pslocal stats    < instance.hg | graph.g
//! pslocal maxis  [--oracle NAME] [--threads T] [--seed S]       < graph.g
//! pslocal reduce --k 4 [--oracle NAME] [--threads T] [--seed S] < instance.hg
//! ```
//!
//! Oracles: `exact`, `greedy`, `luby`, `clique-removal`, `decomposition`.
//! Inputs use the text formats of `pslocal_graph::io`. `--threads T`
//! opts into component-parallel execution: disconnected (conflict)
//! graphs are solved one connected component per worker, merged
//! deterministically (see `pslocal_core::components`).

use pslocal::cfcolor::checker;
use pslocal::core::{
    inspect_journal, parallel_independent_set, reduce_cf_to_maxis, reduce_cf_to_maxis_resumable,
    reduce_cf_to_maxis_traced, Checkpointing, ConflictGraph, CrashPlan, ParallelismOptions,
    ReductionConfig, ReductionOutcome,
};
use pslocal::graph::generators::hyper::{
    multi_component_cf_instance, planted_cf_instance, PlantedCfParams,
};
use pslocal::graph::generators::random::gnp;
use pslocal::graph::io::{read_graph, read_hypergraph, write_graph, write_hypergraph};
use pslocal::graph::{GraphStats, HypergraphStats, KernelStrategy};
use pslocal::maxis::{
    CliqueRemovalOracle, DecompositionOracle, ExactOracle, GreedyOracle, LubyOracle, MaxIsOracle,
    TracedOracle,
};
use pslocal::telemetry::{
    event_to_json, render_tree, Counter, MemorySink, PhaseTimeline, Telemetry,
};
use rand::SeedableRng;
use std::io::Read as _;
use std::process::ExitCode;

const USAGE: &str = "\
pslocal — P-SLOCAL-completeness of MaxIS approximation, executable

USAGE:
  pslocal gen planted --n N --m M --k K [--epsilon E] [--seed S]
  pslocal gen gnp --n N --p P [--seed S]
  pslocal stats                 (reads a graph or hypergraph on stdin)
  pslocal maxis [--oracle O] [--threads T] [--seed S]        (graph on stdin)
  pslocal reduce --k K [--oracle O] [--threads T] [--seed S]
                 [--kernel auto|csr|bitset] [--oracle-cache] (hypergraph on stdin)
  pslocal trace-report [--n N] [--m M] [--k K] [--oracle O] [--seed S]
                                (run a planted reduction, render the
                                 span tree + per-phase timeline)
  pslocal bench-report [--oracle O] [--seed S] [--iters I] [--threads T]
                       [--out FILE]
                                (perf baseline -> BENCH_reduction.json)
  pslocal checkpoint-inspect --checkpoint-dir DIR
                                (decode a phase journal: header, stats,
                                 per-phase records)

CHECKPOINTING (reduce):
  --checkpoint-dir DIR  durably journal every committed phase into DIR
  --resume              replay DIR's journal (corruption-tolerant) and
                        continue from the last good phase; the outcome
                        is byte-identical to an uninterrupted run
  --crash-at P:POINT    abort the process at an injected kill point
                        (phase P at mid-oracle | after-oracle |
                         before-journal | after-journal) — for
                        crash-recovery testing

PARALLELISM (maxis / reduce / bench-report):
  --threads T           solve connected components on up to T workers
                        (default 1 = serial; results are identical for
                         every thread count, merged by component id)

KERNEL (reduce):
  --kernel K            adjacency kernel for the phase conflict graphs:
                        auto (default; density heuristic), csr, bitset.
                        Identical output on every route, only the cost
                        differs
  --oracle-cache        memoize whole-phase oracle answers by conflict-
                        graph fingerprint (hits re-verified, counted as
                        oracle_cache_hit instead of oracle_calls)

TELEMETRY (maxis / reduce / trace-report / bench-report):
  --trace               render the span tree to stdout after the run
  --metrics-out FILE    append every telemetry event as JSONL to FILE

ORACLES: exact | greedy | luby | clique-removal | decomposition
FORMATS: see pslocal_graph::io (p graph / p hypergraph headers)";

/// Options that are flags (no value argument follows them).
const BOOLEAN_FLAGS: &[&str] = &["trace", "resume", "oracle-cache"];

/// Minimal `--key value` argument map (with a few `--flag` booleans).
struct Args {
    positional: Vec<String>,
    options: Vec<(String, String)>,
}

impl Args {
    fn parse(raw: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut positional = Vec::new();
        let mut options = Vec::new();
        let mut iter = raw.peekable();
        while let Some(a) = iter.next() {
            if let Some(key) = a.strip_prefix("--") {
                if BOOLEAN_FLAGS.contains(&key) {
                    options.push((key.to_string(), "true".to_string()));
                    continue;
                }
                let value = iter.next().ok_or_else(|| format!("option --{key} needs a value"))?;
                options.push((key.to_string(), value));
            } else {
                positional.push(a);
            }
        }
        Ok(Args { positional, options })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.options.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    fn flag(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    fn parsed<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => {
                v.parse::<T>().map(Some).map_err(|_| format!("cannot parse --{key} value {v:?}"))
            }
        }
    }

    fn required<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        self.parsed(key)?.ok_or_else(|| format!("missing required option --{key}"))
    }
}

/// Parses `--threads` (default 1 = serial) into [`ParallelismOptions`],
/// rejecting 0 with a CLI error instead of the library's panic.
fn threads_opt(args: &Args) -> Result<ParallelismOptions, String> {
    match args.parsed::<usize>("threads")?.unwrap_or(1) {
        0 => Err("--threads must be at least 1".to_string()),
        t => Ok(ParallelismOptions::with_threads(t)),
    }
}

/// Parses `--kernel` (default auto) into a [`KernelStrategy`].
fn kernel_opt(args: &Args) -> Result<KernelStrategy, String> {
    Ok(match args.get("kernel").unwrap_or("auto") {
        "auto" => KernelStrategy::Auto,
        "csr" => KernelStrategy::Csr,
        "bitset" => KernelStrategy::Bitset,
        other => return Err(format!("unknown kernel {other:?} (auto | csr | bitset)")),
    })
}

fn oracle_by_name(name: &str, seed: u64) -> Result<Box<dyn MaxIsOracle>, String> {
    Ok(match name {
        "exact" => Box::new(ExactOracle),
        "greedy" => Box::new(GreedyOracle),
        "luby" => Box::new(LubyOracle::new(seed)),
        "clique-removal" => Box::new(CliqueRemovalOracle),
        "decomposition" => Box::new(DecompositionOracle::default()),
        other => return Err(format!("unknown oracle {other:?} (see --help)")),
    })
}

fn read_stdin() -> Result<String, String> {
    let mut text = String::new();
    std::io::stdin().read_to_string(&mut text).map_err(|e| format!("cannot read stdin: {e}"))?;
    Ok(text)
}

/// The CLI's telemetry switches: `--trace` (render the span tree) and
/// `--metrics-out FILE` (append raw events as JSONL). When neither is
/// given, commands take their untraced path — static dispatch to the
/// null sink, zero overhead.
struct TraceOpts {
    trace: bool,
    metrics_out: Option<String>,
}

impl TraceOpts {
    fn from(args: &Args) -> Self {
        TraceOpts {
            trace: args.flag("trace"),
            metrics_out: args.get("metrics-out").map(String::from),
        }
    }

    fn wanted(&self) -> bool {
        self.trace || self.metrics_out.is_some()
    }

    /// Renders and/or persists what `sink` captured.
    fn emit(&self, sink: &MemorySink) -> Result<(), String> {
        if self.trace {
            print!("{}", render_tree(&sink.spans()));
        }
        if let Some(path) = &self.metrics_out {
            append_events_jsonl(path, sink, &[])?;
        }
        Ok(())
    }
}

/// Appends `sink`'s events to `path` as JSON Lines, preceded by the
/// given metadata line entries (already-serialized JSON objects).
fn append_events_jsonl(path: &str, sink: &MemorySink, meta: &[String]) -> Result<(), String> {
    use std::io::Write as _;
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("cannot open {path}: {e}"))?;
    let mut w = std::io::BufWriter::new(file);
    let mut write =
        |line: &str| writeln!(w, "{line}").map_err(|e| format!("cannot write {path}: {e}"));
    for line in meta {
        write(line)?;
    }
    for event in sink.events() {
        write(&event_to_json(&event))?;
    }
    Ok(())
}

fn cmd_gen(args: &Args) -> Result<(), String> {
    let seed: u64 = args.parsed("seed")?.unwrap_or(0xC0FFEE);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    match args.positional.get(1).map(String::as_str) {
        Some("planted") => {
            let n = args.required("n")?;
            let m = args.required("m")?;
            let k = args.required("k")?;
            let epsilon: f64 = args.parsed("epsilon")?.unwrap_or(0.5);
            let inst = planted_cf_instance(&mut rng, PlantedCfParams { n, m, k, epsilon });
            println!(
                "c planted conflict-free instance: k = {k}, epsilon = {epsilon}, seed = {seed}"
            );
            print!("{}", write_hypergraph(&inst.hypergraph));
            Ok(())
        }
        Some("gnp") => {
            let n = args.required("n")?;
            let p: f64 = args.required("p")?;
            let g = gnp(&mut rng, n, p);
            println!("c G({n}, {p}) seed = {seed}");
            print!("{}", write_graph(&g));
            Ok(())
        }
        other => Err(format!("unknown generator {other:?}; try 'planted' or 'gnp'")),
    }
}

fn cmd_stats() -> Result<(), String> {
    let text = read_stdin()?;
    if let Ok(g) = read_graph(&text) {
        println!("graph: {}", GraphStats::of(&g));
        return Ok(());
    }
    let h = read_hypergraph(&text).map_err(|e| format!("not a graph nor a hypergraph: {e}"))?;
    println!("hypergraph: {}", HypergraphStats::of(&h));
    println!("almost-uniform(0.5): {}", h.is_almost_uniform(0.5));
    Ok(())
}

fn cmd_maxis(args: &Args) -> Result<(), String> {
    let seed: u64 = args.parsed("seed")?.unwrap_or(0xC0FFEE);
    let opts = TraceOpts::from(args);
    let par = threads_opt(args)?;
    let oracle = oracle_by_name(args.get("oracle").unwrap_or("greedy"), seed)?;
    let g = read_graph(&read_stdin()?).map_err(|e| e.to_string())?;
    let set = if opts.wanted() {
        let tel = Telemetry::new(MemorySink::new());
        let traced = TracedOracle::new(oracle.as_ref(), &tel);
        let set = parallel_independent_set(&g, &traced, par);
        opts.emit(tel.sink())?;
        set
    } else {
        parallel_independent_set(&g, oracle.as_ref(), par)
    };
    println!(
        "c oracle = {}, |I| = {}, guarantee = {}",
        oracle.name(),
        set.len(),
        oracle.guarantee()
    );
    for v in set.iter() {
        println!("i {v}");
    }
    Ok(())
}

/// Parses `--checkpoint-dir` / `--resume` / `--crash-at` into a
/// [`Checkpointing`] request; the latter two require the former.
fn checkpoint_opt(args: &Args) -> Result<Option<Checkpointing>, String> {
    let Some(dir) = args.get("checkpoint-dir") else {
        for dependent in ["resume", "crash-at"] {
            if args.flag(dependent) {
                return Err(format!("--{dependent} requires --checkpoint-dir"));
            }
        }
        return Ok(None);
    };
    let mut ckpt = Checkpointing::new(dir);
    if args.flag("resume") {
        ckpt = ckpt.resuming();
    }
    if let Some(spec) = args.get("crash-at") {
        let (phase, point) = CrashPlan::parse_spec(spec).ok_or_else(|| {
            format!(
                "cannot parse --crash-at {spec:?} (want PHASE:POINT with POINT one of \
                 mid-oracle | after-oracle | before-journal | after-journal)"
            )
        })?;
        ckpt = ckpt.with_crash(CrashPlan::aborting(phase, point));
    }
    Ok(Some(ckpt))
}

/// Runs the trusting reduction, checkpointed when requested. The
/// recovery summary goes to **stderr**: stdout stays byte-diffable
/// between interrupted-and-resumed and uninterrupted runs.
fn run_reduce<S: pslocal::telemetry::Sink>(
    h: &pslocal::graph::Hypergraph,
    oracle: &dyn MaxIsOracle,
    config: ReductionConfig,
    ckpt: Option<&Checkpointing>,
    tel: &Telemetry<S>,
) -> Result<ReductionOutcome, String> {
    match ckpt {
        Some(c) => {
            let (out, report) = reduce_cf_to_maxis_resumable(h, oracle, config, c, tel)
                .map_err(|e| format!("reduction failed: {e}"))?;
            eprintln!("checkpoint: {report}");
            Ok(out)
        }
        None => reduce_cf_to_maxis_traced(h, oracle, config, tel)
            .map_err(|e| format!("reduction failed: {e}")),
    }
}

fn cmd_reduce(args: &Args) -> Result<(), String> {
    let seed: u64 = args.parsed("seed")?.unwrap_or(0xC0FFEE);
    let k: usize = args.required("k")?;
    let opts = TraceOpts::from(args);
    let config = ReductionConfig {
        parallelism: threads_opt(args)?,
        kernel: kernel_opt(args)?,
        oracle_cache: args.flag("oracle-cache"),
        ..ReductionConfig::new(k)
    };
    let oracle = oracle_by_name(args.get("oracle").unwrap_or("greedy"), seed)?;
    let ckpt = checkpoint_opt(args)?;
    let h = read_hypergraph(&read_stdin()?).map_err(|e| e.to_string())?;
    let out = if opts.wanted() {
        let tel = Telemetry::new(MemorySink::new());
        let out = run_reduce(&h, oracle.as_ref(), config, ckpt.as_ref(), &tel)?;
        opts.emit(tel.sink())?;
        out
    } else {
        run_reduce(&h, oracle.as_ref(), config, ckpt.as_ref(), &Telemetry::disabled())?
    };
    if !checker::is_conflict_free(&h, &out.coloring) {
        return Err("internal error: reduction returned a non-conflict-free coloring".to_string());
    }
    println!(
        "c oracle = {}, lambda = {:.2}, rho = {}, phases = {}, colors = {}",
        oracle.name(),
        out.lambda,
        out.rho,
        out.phases_used,
        out.total_colors
    );
    for r in &out.records {
        println!(
            "c phase {} edges {} -> {} (|I| = {})",
            r.phase, r.edges_before, r.edges_after, r.independent_set_size
        );
    }
    for v in 0..h.node_count() {
        let node = pslocal::graph::NodeId::new(v);
        let colors: Vec<String> =
            out.coloring.colors_of(node).iter().map(|c| c.to_string()).collect();
        println!("v {v} {}", colors.join(" "));
    }
    Ok(())
}

/// Decodes a phase journal without re-running anything: header, open
/// stats (bytes kept vs. discarded) and one line per surviving phase.
fn cmd_checkpoint_inspect(args: &Args) -> Result<(), String> {
    let dir = args.get("checkpoint-dir").ok_or("checkpoint-inspect needs --checkpoint-dir DIR")?;
    let insp = inspect_journal(std::path::Path::new(dir)).map_err(|e| e.to_string())?;
    let head = &insp.header;
    println!(
        "journal: driver = {}, k = {}, lambda = {:.4}, rho = {}, budget = {}, threads = {}",
        head.driver.name(),
        head.k,
        f64::from_bits(head.lambda_bits),
        head.rho,
        head.budget,
        head.threads,
    );
    println!("instance fingerprint: {:#018x}", head.instance_fingerprint);
    println!("oracle chain: {}", head.oracle_names.join(" -> "));
    println!(
        "phases: {} ({} bytes on disk, {} bytes / {} records discarded as corrupt)",
        insp.phases.len(),
        insp.stats.bytes_total,
        insp.stats.bytes_discarded,
        insp.stats.records_discarded,
    );
    for p in &insp.phases {
        println!(
            "  phase {}: edges {} -> {}, |I| = {}, quota = {}, {}, calls = {:?}, \
             retries = {}, fallbacks = {}, events = {}",
            p.phase,
            p.record.edges_before,
            p.record.edges_after,
            p.set.len(),
            p.quota_required,
            if p.primary { "primary" } else { "fallback" },
            p.chain_calls,
            p.retries,
            p.fallbacks,
            p.events.len(),
        );
        for e in &p.events {
            println!("    event: attempt {} [{}]: {}", e.attempt, e.oracle, e.kind);
        }
    }
    Ok(())
}

fn cmd_trace_report(args: &Args) -> Result<(), String> {
    let seed: u64 = args.parsed("seed")?.unwrap_or(0xC0FFEE);
    let n: usize = args.parsed("n")?.unwrap_or(128);
    let m: usize = args.parsed("m")?.unwrap_or(n / 2);
    let k: usize = args.parsed("k")?.unwrap_or(4);
    let oracle = oracle_by_name(args.get("oracle").unwrap_or("greedy"), seed)?;
    let opts = TraceOpts::from(args);

    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let inst = planted_cf_instance(&mut rng, PlantedCfParams::new(n, m, k));
    let tel = Telemetry::new(MemorySink::new());
    let out =
        reduce_cf_to_maxis_traced(&inst.hypergraph, oracle.as_ref(), ReductionConfig::new(k), &tel)
            .map_err(|e| format!("reduction failed: {e}"))?;
    if !checker::is_conflict_free(&inst.hypergraph, &out.coloring) {
        return Err("internal error: reduction returned a non-conflict-free coloring".to_string());
    }
    let sink = tel.into_sink();

    println!("trace-report: planted n={n} m={m} k={k} oracle={} seed={:#x}", oracle.name(), seed);
    println!(
        "reduction: lambda = {:.2}, rho = {}, phases = {}, colors = {}, {}",
        out.lambda, out.rho, out.phases_used, out.total_colors, out.locality
    );
    let spans = sink.spans();
    let timeline = PhaseTimeline::from_spans(&spans)
        .ok_or("no reduction span recorded (telemetry pipeline broken?)")?;
    println!();
    print!("{}", timeline.render());
    println!();
    print!("{}", render_tree(&spans));
    if let Some(path) = &opts.metrics_out {
        append_events_jsonl(path, &sink, &[])?;
        eprintln!("appended telemetry events to {path}");
    }
    Ok(())
}

/// One sized measurement of `bench-report`.
struct BenchEntry {
    n: usize,
    m: usize,
    k: usize,
    conflict_nodes: usize,
    conflict_edges: usize,
    /// Adjacency route `KernelStrategy::Auto` resolves to on this
    /// instance's first-phase conflict graph (`"bitset"` or `"csr"`).
    kernel: &'static str,
    build_ns: u128,
    oracle_ns: u128,
    /// End-to-end reduction under the default `Auto` kernel.
    reduction_ns: u128,
    /// Same reduction with the kernel pinned to `Csr` — the same-host
    /// baseline the dense-route speedup claim is measured against.
    csr_reduction_ns: u128,
    phases: usize,
    /// Oracle-memoization counters from the instrumented run (cache
    /// enabled there so the columns are live; phase graphs within one
    /// reduction are all distinct, so expect `misses == phases`).
    oracle_cache_hits: u64,
    oracle_cache_misses: u64,
    /// Telemetry-derived split of one instrumented reduction run:
    /// conflict-graph construction (initial build + per-phase restricts),
    /// oracle time, commit time, and the whole reduction span.
    tel_build_ns: u64,
    tel_oracle_ns: u64,
    tel_commit_ns: u64,
    tel_reduction_ns: u64,
}

impl BenchEntry {
    fn build_ns_per_edge(&self) -> f64 {
        if self.conflict_edges == 0 {
            0.0
        } else {
            self.build_ns as f64 / self.conflict_edges as f64
        }
    }

    /// Csr-baseline over Auto speedup of the end-to-end reduction.
    fn kernel_speedup(&self) -> f64 {
        if self.reduction_ns == 0 {
            0.0
        } else {
            self.csr_reduction_ns as f64 / self.reduction_ns as f64
        }
    }
}

/// Median of `iters` timings of `f` (best-effort; `iters ≥ 1`).
fn median_ns<F: FnMut()>(iters: usize, mut f: F) -> u128 {
    let mut samples: Vec<u128> = (0..iters.max(1))
        .map(|_| {
            let start = std::time::Instant::now();
            f();
            start.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// The bench-report's component-parallel measurement: one reduction
/// over a disjoint union of planted copies, timed serial vs. `threads`
/// workers.
struct ParallelBench {
    copies: usize,
    n: usize,
    m: usize,
    k: usize,
    threads: usize,
    /// CPUs the host actually offers — the number that decides whether
    /// `threads` workers can speed anything up (1 CPU cannot).
    host_threads: usize,
    serial_ns: u128,
    parallel_ns: u128,
}

impl ParallelBench {
    fn speedup(&self) -> f64 {
        if self.parallel_ns == 0 {
            0.0
        } else {
            self.serial_ns as f64 / self.parallel_ns as f64
        }
    }
}

fn cmd_bench_report(args: &Args) -> Result<(), String> {
    let seed: u64 = args.parsed("seed")?.unwrap_or(0xC0FFEE);
    let iters: usize = args.parsed("iters")?.unwrap_or(3);
    // The serial-vs-parallel comparison defaults to 4 workers.
    let threads = match args.parsed::<usize>("threads")?.unwrap_or(4) {
        0 => return Err("--threads must be at least 1".to_string()),
        t => t,
    };
    let oracle = oracle_by_name(args.get("oracle").unwrap_or("greedy"), seed)?;
    let out_path = args.get("out").unwrap_or("BENCH_reduction.json").to_string();
    let metrics_out = args.get("metrics-out").map(String::from);

    let grid: &[(usize, usize, usize)] =
        &[(64, 32, 4), (128, 64, 4), (128, 64, 8), (256, 128, 4), (384, 192, 4)];
    let mut entries = Vec::new();
    for &(n, m, k) in grid {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let inst = planted_cf_instance(&mut rng, PlantedCfParams::new(n, m, k));
        let h = &inst.hypergraph;
        let cg = ConflictGraph::build(h, k);
        let build_ns = median_ns(iters, || {
            std::hint::black_box(ConflictGraph::build(std::hint::black_box(h), k));
        });
        let oracle_ns = median_ns(iters, || {
            std::hint::black_box(oracle.independent_set(std::hint::black_box(cg.graph())));
        });
        let mut phases = 0usize;
        let mut failed: Option<String> = None;
        let mut timed_kernel = |kernel: KernelStrategy| {
            let mut config = ReductionConfig::new(k);
            config.kernel = kernel;
            median_ns(iters, || {
                match reduce_cf_to_maxis(h, oracle.as_ref(), config) {
                    Ok(out) => {
                        phases = out.phases_used;
                        std::hint::black_box(out);
                    }
                    Err(e) => {
                        failed = Some(format!("reduction failed on (n={n}, m={m}, k={k}): {e}"))
                    }
                };
            })
        };
        // Baseline first so `phases` ends up reflecting the Auto run
        // (they are identical by kernel invariance, but keep the
        // bookkeeping honest).
        let csr_reduction_ns = timed_kernel(KernelStrategy::Csr);
        let reduction_ns = timed_kernel(KernelStrategy::Auto);
        if let Some(message) = failed {
            return Err(message);
        }
        // Instrumented runs per grid point: the span tree attributes
        // the wall clock to build / oracle / commit, which the median
        // timings above cannot separate inside `reduce_cf_to_maxis`.
        // Best-of-`iters` keeps one-shot scheduling outliers (thread
        // spawn on the sharded build) out of the published split.
        // Memoization is enabled here so the cache columns are live.
        let mut traced_config = ReductionConfig::new(k);
        traced_config.oracle_cache = true;
        let mut best: Option<(PhaseTimeline, MemorySink)> = None;
        for _ in 0..iters.max(1) {
            let tel = Telemetry::new(MemorySink::new());
            reduce_cf_to_maxis_traced(h, oracle.as_ref(), traced_config, &tel)
                .map_err(|e| format!("reduction failed on (n={n}, m={m}, k={k}): {e}"))?;
            let sink = tel.into_sink();
            let timeline = PhaseTimeline::from_spans(&sink.spans())
                .ok_or("no reduction span recorded (telemetry pipeline broken?)")?;
            if best.as_ref().is_none_or(|(t, _)| timeline.total_ns < t.total_ns) {
                best = Some((timeline, sink));
            }
        }
        let (timeline, sink) = best.ok_or("bench-report produced no instrumented run")?;
        if let Some(path) = &metrics_out {
            let meta = format!(
                "{{\"meta\":\"bench-entry\",\"n\":{n},\"m\":{m},\"k\":{k},\"oracle\":\"{}\",\"seed\":{seed}}}",
                oracle.name()
            );
            append_events_jsonl(path, &sink, &[meta])?;
        }
        entries.push(BenchEntry {
            n,
            m,
            k,
            conflict_nodes: cg.node_count(),
            conflict_edges: cg.edge_count(),
            kernel: if cg.bitset().is_some() { "bitset" } else { "csr" },
            build_ns,
            oracle_ns,
            reduction_ns,
            csr_reduction_ns,
            phases,
            oracle_cache_hits: sink.counter_total(Counter::OracleCacheHits),
            oracle_cache_misses: sink.counter_total(Counter::OracleCacheMisses),
            tel_build_ns: timeline.build_ns,
            tel_oracle_ns: timeline.oracle_ns,
            tel_commit_ns: timeline.commit_ns,
            tel_reduction_ns: timeline.total_ns,
        });
    }

    // Component-parallel phase execution on a multi-component planted
    // instance (8 vertex-disjoint copies, so the conflict graph has ≥ 8
    // components): one full reduction, serial vs. `threads` workers.
    // Same work, same result (the executor is thread-count-invariant);
    // only the wall clock moves.
    let (pn, pm, pk, copies) = (128usize, 64usize, 8usize, 8usize);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let pinst = multi_component_cf_instance(&mut rng, PlantedCfParams::new(pn, pm, pk), copies);
    let ph = &pinst.hypergraph;
    let serial_cfg = ReductionConfig::new(pk);
    let parallel_cfg = serial_cfg.with_threads(threads);
    let mut failed: Option<String> = None;
    let mut timed_reduce = |cfg: ReductionConfig| {
        median_ns(iters, || match reduce_cf_to_maxis(ph, oracle.as_ref(), cfg) {
            Ok(out) => {
                std::hint::black_box(out);
            }
            Err(e) => failed = Some(format!("parallel bench reduction failed: {e}")),
        })
    };
    let serial_ns = timed_reduce(serial_cfg);
    let parallel_ns = timed_reduce(parallel_cfg);
    if let Some(message) = failed {
        return Err(message);
    }
    let parallel = ParallelBench {
        copies,
        n: ph.node_count(),
        m: ph.edge_count(),
        k: pk,
        threads,
        host_threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
        serial_ns,
        parallel_ns,
    };

    // Hand-rolled JSON: the vendored serde stub has no serializer and
    // the container has no serde_json; the schema below is frozen so
    // future PRs can diff perf trajectories mechanically.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"pslocal-bench-reduction/v4\",\n");
    json.push_str(&format!("  \"oracle\": \"{}\",\n", oracle.name()));
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"iters\": {iters},\n"));
    json.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"n\": {}, \"m\": {}, \"k\": {}, \"conflict_nodes\": {}, \
             \"conflict_edges\": {}, \"kernel\": \"{}\", \"phases\": {}, \"build_ns\": {}, \
             \"oracle_ns\": {}, \"reduction_ns\": {}, \"csr_reduction_ns\": {}, \
             \"kernel_speedup\": {:.2}, \"build_ns_per_edge\": {:.2}, \
             \"oracle_cache_hits\": {}, \"oracle_cache_misses\": {}, \
             \"tel_build_ns\": {}, \"tel_oracle_ns\": {}, \"tel_commit_ns\": {}, \
             \"tel_reduction_ns\": {}}}{}\n",
            e.n,
            e.m,
            e.k,
            e.conflict_nodes,
            e.conflict_edges,
            e.kernel,
            e.phases,
            e.build_ns,
            e.oracle_ns,
            e.reduction_ns,
            e.csr_reduction_ns,
            e.kernel_speedup(),
            e.build_ns_per_edge(),
            e.oracle_cache_hits,
            e.oracle_cache_misses,
            e.tel_build_ns,
            e.tel_oracle_ns,
            e.tel_commit_ns,
            e.tel_reduction_ns,
            if i + 1 < entries.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"parallel\": {{\"copies\": {}, \"n\": {}, \"m\": {}, \"k\": {}, \
         \"threads\": {}, \"host_threads\": {}, \"serial_ns\": {}, \"parallel_ns\": {}, \
         \"speedup\": {:.2}}}\n",
        parallel.copies,
        parallel.n,
        parallel.m,
        parallel.k,
        parallel.threads,
        parallel.host_threads,
        parallel.serial_ns,
        parallel.parallel_ns,
        parallel.speedup(),
    ));
    json.push_str("}\n");
    std::fs::write(&out_path, &json).map_err(|e| format!("cannot write {out_path}: {e}"))?;

    println!("wrote {out_path}");
    for e in &entries {
        println!(
            "n={} m={} k={}: |V|={} |E|={} [{}] build={}us oracle={}us reduce={}us \
             (csr {}us, {:.2}x; {} phases, {:.1} ns/edge, cache {}h/{}m)",
            e.n,
            e.m,
            e.k,
            e.conflict_nodes,
            e.conflict_edges,
            e.kernel,
            e.build_ns / 1000,
            e.oracle_ns / 1000,
            e.reduction_ns / 1000,
            e.csr_reduction_ns / 1000,
            e.kernel_speedup(),
            e.phases,
            e.build_ns_per_edge(),
            e.oracle_cache_hits,
            e.oracle_cache_misses,
        );
        println!(
            "    telemetry split: build={}us oracle={}us commit={}us total={}us",
            e.tel_build_ns / 1000,
            e.tel_oracle_ns / 1000,
            e.tel_commit_ns / 1000,
            e.tel_reduction_ns / 1000,
        );
    }
    println!(
        "parallel: {} copies of (n={}, m={}, k={}): serial={}us, {} threads={}us \
         ({:.2}x on a {}-CPU host)",
        parallel.copies,
        pn,
        pm,
        parallel.k,
        parallel.serial_ns / 1000,
        parallel.threads,
        parallel.parallel_ns / 1000,
        parallel.speedup(),
        parallel.host_threads,
    );
    if let Some(path) = &metrics_out {
        println!("appended telemetry events to {path}");
    }
    Ok(())
}

fn dispatch() -> Result<(), String> {
    let args = Args::parse(std::env::args().skip(1))?;
    match args.positional.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args),
        Some("stats") => cmd_stats(),
        Some("maxis") => cmd_maxis(&args),
        Some("reduce") => cmd_reduce(&args),
        Some("trace-report") => cmd_trace_report(&args),
        Some("bench-report") => cmd_bench_report(&args),
        Some("checkpoint-inspect") => cmd_checkpoint_inspect(&args),
        Some("help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match dispatch() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
