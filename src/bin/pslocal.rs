//! `pslocal` — command-line front end for the reproduction stack.
//!
//! ```text
//! pslocal gen planted --n 80 --m 40 --k 4 [--seed S] > instance.hg
//! pslocal gen gnp --n 100 --p 0.05 [--seed S]        > graph.g
//! pslocal stats    < instance.hg | graph.g
//! pslocal maxis  [--oracle NAME] [--seed S]          < graph.g
//! pslocal reduce --k 4 [--oracle NAME] [--seed S]    < instance.hg
//! ```
//!
//! Oracles: `exact`, `greedy`, `luby`, `clique-removal`, `decomposition`.
//! Inputs use the text formats of `pslocal_graph::io`.

use pslocal::cfcolor::checker;
use pslocal::core::{reduce_cf_to_maxis, ConflictGraph, ReductionConfig};
use pslocal::graph::generators::hyper::{planted_cf_instance, PlantedCfParams};
use pslocal::graph::generators::random::gnp;
use pslocal::graph::io::{read_graph, read_hypergraph, write_graph, write_hypergraph};
use pslocal::graph::{GraphStats, HypergraphStats};
use pslocal::maxis::{
    CliqueRemovalOracle, DecompositionOracle, ExactOracle, GreedyOracle, LubyOracle, MaxIsOracle,
};
use rand::SeedableRng;
use std::io::Read as _;
use std::process::ExitCode;

const USAGE: &str = "\
pslocal — P-SLOCAL-completeness of MaxIS approximation, executable

USAGE:
  pslocal gen planted --n N --m M --k K [--epsilon E] [--seed S]
  pslocal gen gnp --n N --p P [--seed S]
  pslocal stats                 (reads a graph or hypergraph on stdin)
  pslocal maxis [--oracle O] [--seed S]         (graph on stdin)
  pslocal reduce --k K [--oracle O] [--seed S]  (hypergraph on stdin)
  pslocal bench-report [--oracle O] [--seed S] [--iters I] [--out FILE]
                                (perf baseline -> BENCH_reduction.json)

ORACLES: exact | greedy | luby | clique-removal | decomposition
FORMATS: see pslocal_graph::io (p graph / p hypergraph headers)";

/// Minimal `--key value` argument map.
struct Args {
    positional: Vec<String>,
    options: Vec<(String, String)>,
}

impl Args {
    fn parse(raw: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut positional = Vec::new();
        let mut options = Vec::new();
        let mut iter = raw.peekable();
        while let Some(a) = iter.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = iter.next().ok_or_else(|| format!("option --{key} needs a value"))?;
                options.push((key.to_string(), value));
            } else {
                positional.push(a);
            }
        }
        Ok(Args { positional, options })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.options.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    fn parsed<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => {
                v.parse::<T>().map(Some).map_err(|_| format!("cannot parse --{key} value {v:?}"))
            }
        }
    }

    fn required<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        self.parsed(key)?.ok_or_else(|| format!("missing required option --{key}"))
    }
}

fn oracle_by_name(name: &str, seed: u64) -> Result<Box<dyn MaxIsOracle>, String> {
    Ok(match name {
        "exact" => Box::new(ExactOracle),
        "greedy" => Box::new(GreedyOracle),
        "luby" => Box::new(LubyOracle::new(seed)),
        "clique-removal" => Box::new(CliqueRemovalOracle),
        "decomposition" => Box::new(DecompositionOracle::default()),
        other => return Err(format!("unknown oracle {other:?} (see --help)")),
    })
}

fn read_stdin() -> Result<String, String> {
    let mut text = String::new();
    std::io::stdin().read_to_string(&mut text).map_err(|e| format!("cannot read stdin: {e}"))?;
    Ok(text)
}

fn cmd_gen(args: &Args) -> Result<(), String> {
    let seed: u64 = args.parsed("seed")?.unwrap_or(0xC0FFEE);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    match args.positional.get(1).map(String::as_str) {
        Some("planted") => {
            let n = args.required("n")?;
            let m = args.required("m")?;
            let k = args.required("k")?;
            let epsilon: f64 = args.parsed("epsilon")?.unwrap_or(0.5);
            let inst = planted_cf_instance(&mut rng, PlantedCfParams { n, m, k, epsilon });
            println!(
                "c planted conflict-free instance: k = {k}, epsilon = {epsilon}, seed = {seed}"
            );
            print!("{}", write_hypergraph(&inst.hypergraph));
            Ok(())
        }
        Some("gnp") => {
            let n = args.required("n")?;
            let p: f64 = args.required("p")?;
            let g = gnp(&mut rng, n, p);
            println!("c G({n}, {p}) seed = {seed}");
            print!("{}", write_graph(&g));
            Ok(())
        }
        other => Err(format!("unknown generator {other:?}; try 'planted' or 'gnp'")),
    }
}

fn cmd_stats() -> Result<(), String> {
    let text = read_stdin()?;
    if let Ok(g) = read_graph(&text) {
        println!("graph: {}", GraphStats::of(&g));
        return Ok(());
    }
    let h = read_hypergraph(&text).map_err(|e| format!("not a graph nor a hypergraph: {e}"))?;
    println!("hypergraph: {}", HypergraphStats::of(&h));
    println!("almost-uniform(0.5): {}", h.is_almost_uniform(0.5));
    Ok(())
}

fn cmd_maxis(args: &Args) -> Result<(), String> {
    let seed: u64 = args.parsed("seed")?.unwrap_or(0xC0FFEE);
    let oracle = oracle_by_name(args.get("oracle").unwrap_or("greedy"), seed)?;
    let g = read_graph(&read_stdin()?).map_err(|e| e.to_string())?;
    let set = oracle.independent_set(&g);
    println!(
        "c oracle = {}, |I| = {}, guarantee = {}",
        oracle.name(),
        set.len(),
        oracle.guarantee()
    );
    for v in set.iter() {
        println!("i {v}");
    }
    Ok(())
}

fn cmd_reduce(args: &Args) -> Result<(), String> {
    let seed: u64 = args.parsed("seed")?.unwrap_or(0xC0FFEE);
    let k: usize = args.required("k")?;
    let oracle = oracle_by_name(args.get("oracle").unwrap_or("greedy"), seed)?;
    let h = read_hypergraph(&read_stdin()?).map_err(|e| e.to_string())?;
    let out = reduce_cf_to_maxis(&h, oracle.as_ref(), ReductionConfig::new(k))
        .map_err(|e| format!("reduction failed: {e}"))?;
    assert!(checker::is_conflict_free(&h, &out.coloring));
    println!(
        "c oracle = {}, lambda = {:.2}, rho = {}, phases = {}, colors = {}",
        oracle.name(),
        out.lambda,
        out.rho,
        out.phases_used,
        out.total_colors
    );
    for r in &out.records {
        println!(
            "c phase {} edges {} -> {} (|I| = {})",
            r.phase, r.edges_before, r.edges_after, r.independent_set_size
        );
    }
    for v in 0..h.node_count() {
        let node = pslocal::graph::NodeId::new(v);
        let colors: Vec<String> =
            out.coloring.colors_of(node).iter().map(|c| c.to_string()).collect();
        println!("v {v} {}", colors.join(" "));
    }
    Ok(())
}

/// One sized measurement of `bench-report`.
struct BenchEntry {
    n: usize,
    m: usize,
    k: usize,
    conflict_nodes: usize,
    conflict_edges: usize,
    build_ns: u128,
    oracle_ns: u128,
    reduction_ns: u128,
    phases: usize,
}

impl BenchEntry {
    fn build_ns_per_edge(&self) -> f64 {
        if self.conflict_edges == 0 {
            0.0
        } else {
            self.build_ns as f64 / self.conflict_edges as f64
        }
    }
}

/// Median of `iters` timings of `f` (best-effort; `iters ≥ 1`).
fn median_ns<F: FnMut()>(iters: usize, mut f: F) -> u128 {
    let mut samples: Vec<u128> = (0..iters.max(1))
        .map(|_| {
            let start = std::time::Instant::now();
            f();
            start.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn cmd_bench_report(args: &Args) -> Result<(), String> {
    let seed: u64 = args.parsed("seed")?.unwrap_or(0xC0FFEE);
    let iters: usize = args.parsed("iters")?.unwrap_or(3);
    let oracle = oracle_by_name(args.get("oracle").unwrap_or("greedy"), seed)?;
    let out_path = args.get("out").unwrap_or("BENCH_reduction.json").to_string();

    let grid: &[(usize, usize, usize)] =
        &[(64, 32, 4), (128, 64, 4), (128, 64, 8), (256, 128, 4), (384, 192, 4)];
    let mut entries = Vec::new();
    for &(n, m, k) in grid {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let inst = planted_cf_instance(&mut rng, PlantedCfParams::new(n, m, k));
        let h = &inst.hypergraph;
        let cg = ConflictGraph::build(h, k);
        let build_ns = median_ns(iters, || {
            std::hint::black_box(ConflictGraph::build(std::hint::black_box(h), k));
        });
        let oracle_ns = median_ns(iters, || {
            std::hint::black_box(oracle.independent_set(std::hint::black_box(cg.graph())));
        });
        let mut phases = 0usize;
        let reduction_ns = median_ns(iters, || {
            let out = reduce_cf_to_maxis(h, oracle.as_ref(), ReductionConfig::new(k))
                .expect("certified oracle completes on planted instances");
            phases = out.phases_used;
            std::hint::black_box(out);
        });
        entries.push(BenchEntry {
            n,
            m,
            k,
            conflict_nodes: cg.graph().node_count(),
            conflict_edges: cg.edge_count(),
            build_ns,
            oracle_ns,
            reduction_ns,
            phases,
        });
    }

    // Hand-rolled JSON: the vendored serde stub has no serializer and
    // the container has no serde_json; the schema below is frozen so
    // future PRs can diff perf trajectories mechanically.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"pslocal-bench-reduction/v1\",\n");
    json.push_str(&format!("  \"oracle\": \"{}\",\n", oracle.name()));
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"iters\": {iters},\n"));
    json.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"n\": {}, \"m\": {}, \"k\": {}, \"conflict_nodes\": {}, \
             \"conflict_edges\": {}, \"phases\": {}, \"build_ns\": {}, \
             \"oracle_ns\": {}, \"reduction_ns\": {}, \"build_ns_per_edge\": {:.2}}}{}\n",
            e.n,
            e.m,
            e.k,
            e.conflict_nodes,
            e.conflict_edges,
            e.phases,
            e.build_ns,
            e.oracle_ns,
            e.reduction_ns,
            e.build_ns_per_edge(),
            if i + 1 < entries.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).map_err(|e| format!("cannot write {out_path}: {e}"))?;

    println!("wrote {out_path}");
    for e in &entries {
        println!(
            "n={} m={} k={}: |V|={} |E|={} build={}us oracle={}us reduce={}us ({} phases, {:.1} ns/edge)",
            e.n,
            e.m,
            e.k,
            e.conflict_nodes,
            e.conflict_edges,
            e.build_ns / 1000,
            e.oracle_ns / 1000,
            e.reduction_ns / 1000,
            e.phases,
            e.build_ns_per_edge(),
        );
    }
    Ok(())
}

fn dispatch() -> Result<(), String> {
    let args = Args::parse(std::env::args().skip(1))?;
    match args.positional.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args),
        Some("stats") => cmd_stats(),
        Some("maxis") => cmd_maxis(&args),
        Some("reduce") => cmd_reduce(&args),
        Some("bench-report") => cmd_bench_report(&args),
        Some("help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match dispatch() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
