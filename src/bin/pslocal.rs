//! `pslocal` — command-line front end for the reproduction stack.
//!
//! ```text
//! pslocal gen planted --n 80 --m 40 --k 4 [--seed S] > instance.hg
//! pslocal gen gnp --n 100 --p 0.05 [--seed S]        > graph.g
//! pslocal stats    < instance.hg | graph.g
//! pslocal maxis  [--oracle NAME] [--threads T] [--seed S]       < graph.g
//! pslocal reduce --k 4 [--oracle NAME] [--threads T] [--seed S] < instance.hg
//! ```
//!
//! Oracles: `exact`, `greedy`, `luby`, `clique-removal`, `decomposition`.
//! Inputs use the text formats of `pslocal_graph::io`. `--threads T`
//! opts into component-parallel execution: disconnected (conflict)
//! graphs are solved one connected component per worker, merged
//! deterministically (see `pslocal_core::components`).

use pslocal::cfcolor::checker;
use pslocal::core::protocol::{self, kernel_by_name, parse_request, rejected_line, response_line};
use pslocal::core::{
    inspect_journal, parallel_independent_set, reduce_cf_to_maxis, reduce_cf_to_maxis_resumable,
    reduce_cf_to_maxis_traced, BoxedOracle, Checkpointing, ConflictGraph, CrashPlan,
    ParallelismOptions, ReductionConfig, ReductionOutcome, RequestOutcome, ResilientConfig, Server,
    ServerConfig, Service, ServiceConfig, ServiceRequest, ServiceResponse, DEFAULT_MAX_CONNECTIONS,
    DEFAULT_QUEUE_CAPACITY,
};
use pslocal::graph::generators::hyper::{
    multi_component_cf_instance, planted_cf_instance, PlantedCfParams,
};
use pslocal::graph::generators::random::gnp;
use pslocal::graph::io::{read_graph, read_hypergraph, write_graph, write_hypergraph};
use pslocal::graph::{GraphStats, HypergraphStats, KernelStrategy};
use pslocal::maxis::{
    CliqueRemovalOracle, DecompositionOracle, ExactOracle, GreedyOracle, LubyOracle, MaxIsOracle,
    TracedOracle,
};
use pslocal::telemetry::{
    event_to_json, render_tree, AggregateSink, Counter, JsonlSink, MemorySink, PhaseTimeline,
    Telemetry,
};
use rand::SeedableRng;
use std::io::{Read as _, Write as _};
use std::process::ExitCode;
use std::time::{Duration, Instant};

const USAGE: &str = "\
pslocal — P-SLOCAL-completeness of MaxIS approximation, executable

USAGE:
  pslocal gen planted --n N --m M --k K [--epsilon E] [--seed S]
  pslocal gen gnp --n N --p P [--seed S]
  pslocal stats                 (reads a graph or hypergraph on stdin)
  pslocal maxis [--oracle O] [--threads T] [--seed S]        (graph on stdin)
  pslocal reduce --k K [--oracle O] [--threads T] [--seed S]
                 [--kernel auto|csr|bitset] [--oracle-cache] (hypergraph on stdin)
  pslocal trace-report [--n N] [--m M] [--k K] [--oracle O] [--seed S]
                                (run a planted reduction, render the
                                 span tree + per-phase timeline)
  pslocal batch [--workers W] [--queue Q] [--deadline-ms D]
                                (JSONL requests on stdin, one JSONL
                                 result line per request on stdout,
                                 completion order)
  pslocal serve --addr HOST:PORT [--workers W] [--queue-depth Q]
                [--max-conns C] [--deadline-ms D] [--metrics-out FILE]
                                (the batch protocol over TCP; prints
                                 'listening on ADDR', serves until
                                 SIGINT/SIGTERM or a client SHUTDOWN,
                                 then drains gracefully)
  pslocal client --addr HOST:PORT [--stats | --shutdown | --ping]
                                (send stdin JSONL requests — or one
                                 command — and stream the responses)
  pslocal bench-report [--oracle O] [--seed S] [--iters I] [--threads T]
                       [--out FILE]
                                (perf baseline -> BENCH_reduction.json)
  pslocal checkpoint-inspect --checkpoint-dir DIR
                                (decode a phase journal: header, stats,
                                 per-phase records)
  pslocal lint [--root DIR] [--deny] [--json] [--fix-hints] [--lock-order]
                                (static analysis of the workspace's own
                                 sources: lock-order audit, panic-path,
                                 stdout-purity, codec-drift, hygiene)

CHECKPOINTING (reduce):
  --checkpoint-dir DIR  durably journal every committed phase into DIR
  --resume              replay DIR's journal (corruption-tolerant) and
                        continue from the last good phase; the outcome
                        is byte-identical to an uninterrupted run
  --crash-at P:POINT    abort the process at an injected kill point
                        (phase P at mid-oracle | after-oracle |
                         before-journal | after-journal) — for
                        crash-recovery testing

PARALLELISM (maxis / reduce / bench-report):
  --threads T           solve connected components on up to T workers
                        (default 1 = serial; results are identical for
                         every thread count, merged by component id)

KERNEL (reduce):
  --kernel K            adjacency kernel for the phase conflict graphs:
                        auto (default; density heuristic), csr, bitset.
                        Identical output on every route, only the cost
                        differs
  --oracle-cache        memoize whole-phase oracle answers by conflict-
                        graph fingerprint (hits re-verified, counted as
                        oracle_cache_hit instead of oracle_calls)

BATCH (batched multi-instance serving):
  stdin: one flat JSON object per line. Fields: \"id\" (string,
  required), \"n\"/\"m\"/\"k\"/\"seed\"/\"epsilon\" (planted instance;
  defaults 128 / n/2 / 4 / 0xC0FFEE / 0.5), \"oracle\" (comma-separated
  fallback chain, default greedy), \"kernel\" (auto|csr|bitset),
  \"oracle_cache\" (bool), \"deadline_ms\" (per-request override),
  \"faults\" (comma script injected into the primary oracle: - | panic |
  invalid-set | empty-set | under-deliver | stall:N).
  stdout: one JSON line per request in completion order —
    {\"id\":..,\"outcome\":\"ok\",\"phases\":P,\"set_size\":S,\"colors\":C}
    {\"id\":..,\"outcome\":\"deadline_exceeded\",\"phase\":P}
    {\"id\":..,\"outcome\":\"rejected\"}          (admission queue full)
    {\"id\":..,\"outcome\":\"failed\",\"error\":..}
  --workers W           worker threads, each owning one long-lived
                        phase workspace (default 2)
  --queue Q             admission-queue bound (default 64); submissions
                        past it are rejected, never buffered unbounded
  --deadline-ms D       default per-request deadline, measured from
                        submission, enforced at phase boundaries

SERVE (the batch protocol over persistent TCP connections):
  Lines in, lines out — exactly the BATCH schemas, so sorted responses
  byte-match `pslocal batch` on the same requests. Extra typed lines:
    {\"id\":..,\"outcome\":\"rejected\"}    admission queue full (shed, not run)
    {\"outcome\":\"overloaded\",..}       connection cap reached, socket closed
    {\"outcome\":\"bad_request\",..}      unparseable request line
  Plain-text commands on the same stream: PING -> PONG, STATS -> live
  metrics + OK, SHUTDOWN -> DRAINING + graceful server-wide drain,
  QUIT -> close this connection.
  --addr HOST:PORT      bind address (port 0 = ephemeral; the real
                        address is printed as 'listening on ADDR')
  --workers W           worker threads (default 2)
  --queue-depth Q       admission-queue bound (default 64)
  --max-conns C         concurrent-connection cap (default 64)
  --deadline-ms D       default per-request deadline
  --metrics-out FILE    stream every telemetry event as JSONL to FILE
  A final stats snapshot and the drain summary go to stderr on exit.

TELEMETRY (maxis / reduce / batch / trace-report / bench-report):
  --trace               render the span tree to stdout after the run
  --metrics-out FILE    append every telemetry event as JSONL to FILE

LINT (static analysis, wired into CI as a hard gate):
  --root DIR            workspace root to analyze (default .)
  --deny                exit nonzero when any finding survives
  --json                machine-readable report (pslocal-lint/v1)
  --fix-hints           append a fix hint under each finding
  --lock-order          print the lock-order audit (inventory, edges,
                        condvar associations, canonical order) instead
                        of the finding list
  Findings are waived inline with
  `// pslocal: allow(<lint>, \"justification\")` — the justification is
  mandatory, and unused waivers are themselves findings.

ORACLES: exact | greedy | luby | clique-removal | decomposition
FORMATS: see pslocal_graph::io (p graph / p hypergraph headers)";

/// Options that are flags (no value argument follows them).
const BOOLEAN_FLAGS: &[&str] = &[
    "trace",
    "resume",
    "oracle-cache",
    "stats",
    "shutdown",
    "ping",
    "deny",
    "json",
    "fix-hints",
    "lock-order",
];

/// Minimal `--key value` argument map (with a few `--flag` booleans).
struct Args {
    positional: Vec<String>,
    options: Vec<(String, String)>,
}

impl Args {
    fn parse(raw: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut positional = Vec::new();
        let mut options = Vec::new();
        let mut iter = raw.peekable();
        while let Some(a) = iter.next() {
            if let Some(key) = a.strip_prefix("--") {
                if BOOLEAN_FLAGS.contains(&key) {
                    options.push((key.to_string(), "true".to_string()));
                    continue;
                }
                let value = iter.next().ok_or_else(|| format!("option --{key} needs a value"))?;
                options.push((key.to_string(), value));
            } else {
                positional.push(a);
            }
        }
        Ok(Args { positional, options })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.options.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    fn flag(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    fn parsed<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => {
                v.parse::<T>().map(Some).map_err(|_| format!("cannot parse --{key} value {v:?}"))
            }
        }
    }

    fn required<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        self.parsed(key)?.ok_or_else(|| format!("missing required option --{key}"))
    }
}

/// Parses `--threads` (default 1 = serial) into [`ParallelismOptions`],
/// rejecting 0 with a CLI error instead of the library's panic.
fn threads_opt(args: &Args) -> Result<ParallelismOptions, String> {
    match args.parsed::<usize>("threads")?.unwrap_or(1) {
        0 => Err("--threads must be at least 1".to_string()),
        t => Ok(ParallelismOptions::with_threads(t)),
    }
}

/// Parses `--kernel` (default auto) into a [`KernelStrategy`].
fn kernel_opt(args: &Args) -> Result<KernelStrategy, String> {
    kernel_by_name(args.get("kernel").unwrap_or("auto"))
}

fn oracle_by_name(name: &str, seed: u64) -> Result<Box<dyn MaxIsOracle>, String> {
    Ok(match name {
        "exact" => Box::new(ExactOracle),
        "greedy" => Box::new(GreedyOracle),
        "luby" => Box::new(LubyOracle::new(seed)),
        "clique-removal" => Box::new(CliqueRemovalOracle),
        "decomposition" => Box::new(DecompositionOracle::default()),
        other => return Err(format!("unknown oracle {other:?} (see --help)")),
    })
}

fn read_stdin() -> Result<String, String> {
    let mut text = String::new();
    std::io::stdin().read_to_string(&mut text).map_err(|e| format!("cannot read stdin: {e}"))?;
    Ok(text)
}

/// The CLI's telemetry switches: `--trace` (render the span tree) and
/// `--metrics-out FILE` (append raw events as JSONL). When neither is
/// given, commands take their untraced path — static dispatch to the
/// null sink, zero overhead.
struct TraceOpts {
    trace: bool,
    metrics_out: Option<String>,
}

impl TraceOpts {
    fn from(args: &Args) -> Self {
        TraceOpts {
            trace: args.flag("trace"),
            metrics_out: args.get("metrics-out").map(String::from),
        }
    }

    fn wanted(&self) -> bool {
        self.trace || self.metrics_out.is_some()
    }

    /// Renders and/or persists what `sink` captured.
    fn emit(&self, sink: &MemorySink) -> Result<(), String> {
        if self.trace {
            print!("{}", render_tree(&sink.spans()));
        }
        if let Some(path) = &self.metrics_out {
            append_events_jsonl(path, sink, &[])?;
        }
        Ok(())
    }
}

/// Appends `sink`'s events to `path` as JSON Lines, preceded by the
/// given metadata line entries (already-serialized JSON objects).
fn append_events_jsonl(path: &str, sink: &MemorySink, meta: &[String]) -> Result<(), String> {
    use std::io::Write as _;
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("cannot open {path}: {e}"))?;
    let mut w = std::io::BufWriter::new(file);
    let mut write =
        |line: &str| writeln!(w, "{line}").map_err(|e| format!("cannot write {path}: {e}"));
    for line in meta {
        write(line)?;
    }
    for event in sink.events() {
        write(&event_to_json(&event))?;
    }
    Ok(())
}

fn cmd_gen(args: &Args) -> Result<(), String> {
    let seed: u64 = args.parsed("seed")?.unwrap_or(0xC0FFEE);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    match args.positional.get(1).map(String::as_str) {
        Some("planted") => {
            let n = args.required("n")?;
            let m = args.required("m")?;
            let k = args.required("k")?;
            let epsilon: f64 = args.parsed("epsilon")?.unwrap_or(0.5);
            let inst = planted_cf_instance(&mut rng, PlantedCfParams { n, m, k, epsilon });
            println!(
                "c planted conflict-free instance: k = {k}, epsilon = {epsilon}, seed = {seed}"
            );
            print!("{}", write_hypergraph(&inst.hypergraph));
            Ok(())
        }
        Some("gnp") => {
            let n = args.required("n")?;
            let p: f64 = args.required("p")?;
            let g = gnp(&mut rng, n, p);
            println!("c G({n}, {p}) seed = {seed}");
            print!("{}", write_graph(&g));
            Ok(())
        }
        other => Err(format!("unknown generator {other:?}; try 'planted' or 'gnp'")),
    }
}

fn cmd_stats() -> Result<(), String> {
    let text = read_stdin()?;
    if let Ok(g) = read_graph(&text) {
        println!("graph: {}", GraphStats::of(&g));
        return Ok(());
    }
    let h = read_hypergraph(&text).map_err(|e| format!("not a graph nor a hypergraph: {e}"))?;
    println!("hypergraph: {}", HypergraphStats::of(&h));
    println!("almost-uniform(0.5): {}", h.is_almost_uniform(0.5));
    Ok(())
}

fn cmd_maxis(args: &Args) -> Result<(), String> {
    let seed: u64 = args.parsed("seed")?.unwrap_or(0xC0FFEE);
    let opts = TraceOpts::from(args);
    let par = threads_opt(args)?;
    let oracle = oracle_by_name(args.get("oracle").unwrap_or("greedy"), seed)?;
    let g = read_graph(&read_stdin()?).map_err(|e| e.to_string())?;
    let set = if opts.wanted() {
        let tel = Telemetry::new(MemorySink::new());
        let traced = TracedOracle::new(oracle.as_ref(), &tel);
        let set = parallel_independent_set(&g, &traced, par);
        opts.emit(tel.sink())?;
        set
    } else {
        parallel_independent_set(&g, oracle.as_ref(), par)
    };
    println!(
        "c oracle = {}, |I| = {}, guarantee = {}",
        oracle.name(),
        set.len(),
        oracle.guarantee()
    );
    for v in set.iter() {
        println!("i {v}");
    }
    Ok(())
}

/// Parses `--checkpoint-dir` / `--resume` / `--crash-at` into a
/// [`Checkpointing`] request; the latter two require the former.
fn checkpoint_opt(args: &Args) -> Result<Option<Checkpointing>, String> {
    let Some(dir) = args.get("checkpoint-dir") else {
        for dependent in ["resume", "crash-at"] {
            if args.flag(dependent) {
                return Err(format!("--{dependent} requires --checkpoint-dir"));
            }
        }
        return Ok(None);
    };
    let mut ckpt = Checkpointing::new(dir);
    if args.flag("resume") {
        ckpt = ckpt.resuming();
    }
    if let Some(spec) = args.get("crash-at") {
        let (phase, point) = CrashPlan::parse_spec(spec).ok_or_else(|| {
            format!(
                "cannot parse --crash-at {spec:?} (want PHASE:POINT with POINT one of \
                 mid-oracle | after-oracle | before-journal | after-journal)"
            )
        })?;
        ckpt = ckpt.with_crash(CrashPlan::aborting(phase, point));
    }
    Ok(Some(ckpt))
}

/// Runs the trusting reduction, checkpointed when requested. The
/// recovery summary goes to **stderr**: stdout stays byte-diffable
/// between interrupted-and-resumed and uninterrupted runs.
fn run_reduce<S: pslocal::telemetry::Sink>(
    h: &pslocal::graph::Hypergraph,
    oracle: &dyn MaxIsOracle,
    config: ReductionConfig,
    ckpt: Option<&Checkpointing>,
    tel: &Telemetry<S>,
) -> Result<ReductionOutcome, String> {
    match ckpt {
        Some(c) => {
            let (out, report) = reduce_cf_to_maxis_resumable(h, oracle, config, c, tel)
                .map_err(|e| format!("reduction failed: {e}"))?;
            eprintln!("checkpoint: {report}");
            Ok(out)
        }
        None => reduce_cf_to_maxis_traced(h, oracle, config, tel)
            .map_err(|e| format!("reduction failed: {e}")),
    }
}

fn cmd_reduce(args: &Args) -> Result<(), String> {
    let seed: u64 = args.parsed("seed")?.unwrap_or(0xC0FFEE);
    let k: usize = args.required("k")?;
    let opts = TraceOpts::from(args);
    let config = ReductionConfig {
        parallelism: threads_opt(args)?,
        kernel: kernel_opt(args)?,
        oracle_cache: args.flag("oracle-cache"),
        ..ReductionConfig::new(k)
    };
    let oracle = oracle_by_name(args.get("oracle").unwrap_or("greedy"), seed)?;
    let ckpt = checkpoint_opt(args)?;
    let h = read_hypergraph(&read_stdin()?).map_err(|e| e.to_string())?;
    let out = if opts.wanted() {
        let tel = Telemetry::new(MemorySink::new());
        let out = run_reduce(&h, oracle.as_ref(), config, ckpt.as_ref(), &tel)?;
        opts.emit(tel.sink())?;
        out
    } else {
        run_reduce(&h, oracle.as_ref(), config, ckpt.as_ref(), &Telemetry::disabled())?
    };
    if !checker::is_conflict_free(&h, &out.coloring) {
        return Err("internal error: reduction returned a non-conflict-free coloring".to_string());
    }
    println!(
        "c oracle = {}, lambda = {:.2}, rho = {}, phases = {}, colors = {}",
        oracle.name(),
        out.lambda,
        out.rho,
        out.phases_used,
        out.total_colors
    );
    for r in &out.records {
        println!(
            "c phase {} edges {} -> {} (|I| = {})",
            r.phase, r.edges_before, r.edges_after, r.independent_set_size
        );
    }
    for v in 0..h.node_count() {
        let node = pslocal::graph::NodeId::new(v);
        let colors: Vec<String> =
            out.coloring.colors_of(node).iter().map(|c| c.to_string()).collect();
        println!("v {v} {}", colors.join(" "));
    }
    Ok(())
}

/// Nearest-rank percentile over an ascending sample vector.
fn percentile_ns(sorted: &[u128], p: f64) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Drives one batch through the service: submit everything (emitting
/// `rejected` lines on backpressure), stream result lines in
/// completion order, drain, and hand the telemetry pipeline back.
fn run_batch<S: pslocal::telemetry::Sink + Send + Sync + 'static>(
    requests: Vec<ServiceRequest>,
    config: ServiceConfig,
    tel: Telemetry<S>,
) -> (Vec<ServiceResponse>, usize, Telemetry<S>) {
    let service = Service::start(config, tel);
    let mut responses = Vec::new();
    let mut rejected = 0usize;
    for request in requests {
        // Keep streaming completions while submitting, so stdout stays
        // live on long batches.
        while let Some(response) = service.try_recv() {
            println!("{}", response_line(&response));
            responses.push(response);
        }
        if let Err(full) = service.submit(request) {
            println!("{}", rejected_line(&full.request.id));
            rejected += 1;
        }
    }
    let report = service.shutdown();
    for response in report.drained {
        println!("{}", response_line(&response));
        responses.push(response);
    }
    (responses, rejected, report.telemetry)
}

/// `pslocal batch` — the batched multi-instance serving front end (see
/// the BATCH section of the usage text for the JSONL schemas).
fn cmd_batch(args: &Args) -> Result<(), String> {
    let workers = match args.parsed::<usize>("workers")?.unwrap_or(2) {
        0 => return Err("--workers must be at least 1".to_string()),
        w => w,
    };
    let queue = match args.parsed::<usize>("queue")?.unwrap_or(DEFAULT_QUEUE_CAPACITY) {
        0 => return Err("--queue must be at least 1".to_string()),
        q => q,
    };
    let default_deadline_ms = args.parsed::<u64>("deadline-ms")?;
    let opts = TraceOpts::from(args);

    let mut requests = Vec::new();
    for (index, line) in read_stdin()?.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let request = parse_request(line, default_deadline_ms.map(Duration::from_millis))
            .map_err(|e| format!("stdin line {}: {e}", index + 1))?;
        requests.push(request);
    }
    if requests.is_empty() {
        return Err("no batch requests on stdin (one JSON object per line)".to_string());
    }
    let total = requests.len();
    let config = ServiceConfig::new(workers).with_queue_capacity(queue);

    let started = Instant::now();
    let (responses, rejected) = if opts.wanted() {
        let (responses, rejected, tel) =
            run_batch(requests, config, Telemetry::new(MemorySink::new()));
        opts.emit(tel.sink())?;
        (responses, rejected)
    } else {
        let (responses, rejected, _) = run_batch(requests, config, Telemetry::disabled());
        (responses, rejected)
    };
    let wall = started.elapsed();

    let count = |label: &str| responses.iter().filter(|r| r.outcome.label() == label).count();
    let mut latencies: Vec<u128> = responses.iter().map(|r| r.latency.as_nanos()).collect();
    latencies.sort_unstable();
    eprintln!(
        "batch: {total} requests -> {} ok, {} deadline_exceeded, {} failed, {rejected} rejected \
         in {}ms ({workers} workers, queue {queue}; latency p50 = {}us, p99 = {}us)",
        count(protocol::OUTCOME_OK),
        count(protocol::OUTCOME_DEADLINE_EXCEEDED),
        count(protocol::OUTCOME_FAILED),
        wall.as_millis(),
        percentile_ns(&latencies, 50.0) / 1000,
        percentile_ns(&latencies, 99.0) / 1000,
    );
    Ok(())
}

/// Decodes a phase journal without re-running anything: header, open
/// stats (bytes kept vs. discarded) and one line per surviving phase.
fn cmd_checkpoint_inspect(args: &Args) -> Result<(), String> {
    let dir = args.get("checkpoint-dir").ok_or("checkpoint-inspect needs --checkpoint-dir DIR")?;
    let insp = inspect_journal(std::path::Path::new(dir)).map_err(|e| e.to_string())?;
    let head = &insp.header;
    println!(
        "journal: driver = {}, k = {}, lambda = {:.4}, rho = {}, budget = {}, threads = {}",
        head.driver.name(),
        head.k,
        f64::from_bits(head.lambda_bits),
        head.rho,
        head.budget,
        head.threads,
    );
    println!("instance fingerprint: {:#018x}", head.instance_fingerprint);
    println!("oracle chain: {}", head.oracle_names.join(" -> "));
    println!(
        "phases: {} ({} bytes on disk, {} bytes / {} records discarded as corrupt)",
        insp.phases.len(),
        insp.stats.bytes_total,
        insp.stats.bytes_discarded,
        insp.stats.records_discarded,
    );
    for p in &insp.phases {
        println!(
            "  phase {}: edges {} -> {}, |I| = {}, quota = {}, {}, calls = {:?}, \
             retries = {}, fallbacks = {}, events = {}",
            p.phase,
            p.record.edges_before,
            p.record.edges_after,
            p.set.len(),
            p.quota_required,
            if p.primary { "primary" } else { "fallback" },
            p.chain_calls,
            p.retries,
            p.fallbacks,
            p.events.len(),
        );
        for e in &p.events {
            println!("    event: attempt {} [{}]: {}", e.attempt, e.oracle, e.kind);
        }
    }
    Ok(())
}

fn cmd_trace_report(args: &Args) -> Result<(), String> {
    let seed: u64 = args.parsed("seed")?.unwrap_or(0xC0FFEE);
    let n: usize = args.parsed("n")?.unwrap_or(128);
    let m: usize = args.parsed("m")?.unwrap_or(n / 2);
    let k: usize = args.parsed("k")?.unwrap_or(4);
    let oracle = oracle_by_name(args.get("oracle").unwrap_or("greedy"), seed)?;
    let opts = TraceOpts::from(args);

    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let inst = planted_cf_instance(&mut rng, PlantedCfParams::new(n, m, k));
    let tel = Telemetry::new(MemorySink::new());
    let out =
        reduce_cf_to_maxis_traced(&inst.hypergraph, oracle.as_ref(), ReductionConfig::new(k), &tel)
            .map_err(|e| format!("reduction failed: {e}"))?;
    if !checker::is_conflict_free(&inst.hypergraph, &out.coloring) {
        return Err("internal error: reduction returned a non-conflict-free coloring".to_string());
    }
    let sink = tel.into_sink();

    println!("trace-report: planted n={n} m={m} k={k} oracle={} seed={:#x}", oracle.name(), seed);
    println!(
        "reduction: lambda = {:.2}, rho = {}, phases = {}, colors = {}, {}",
        out.lambda, out.rho, out.phases_used, out.total_colors, out.locality
    );
    let spans = sink.spans();
    let timeline = PhaseTimeline::from_spans(&spans)
        .ok_or("no reduction span recorded (telemetry pipeline broken?)")?;
    println!();
    print!("{}", timeline.render());
    println!();
    print!("{}", render_tree(&spans));
    if let Some(path) = &opts.metrics_out {
        append_events_jsonl(path, &sink, &[])?;
        eprintln!("appended telemetry events to {path}");
    }
    Ok(())
}

/// One sized measurement of `bench-report`.
struct BenchEntry {
    n: usize,
    m: usize,
    k: usize,
    conflict_nodes: usize,
    conflict_edges: usize,
    /// Adjacency route `KernelStrategy::Auto` resolves to on this
    /// instance's first-phase conflict graph (`"bitset"` or `"csr"`).
    kernel: &'static str,
    build_ns: u128,
    oracle_ns: u128,
    /// End-to-end reduction under the default `Auto` kernel.
    reduction_ns: u128,
    /// Same reduction with the kernel pinned to `Csr` — the same-host
    /// baseline the dense-route speedup claim is measured against.
    csr_reduction_ns: u128,
    phases: usize,
    /// Oracle-memoization counters from the instrumented run (cache
    /// enabled there so the columns are live; phase graphs within one
    /// reduction are all distinct, so expect `misses == phases`).
    oracle_cache_hits: u64,
    oracle_cache_misses: u64,
    /// Telemetry-derived split of one instrumented reduction run:
    /// conflict-graph construction (initial build + per-phase restricts),
    /// oracle time, commit time, and the whole reduction span.
    tel_build_ns: u64,
    tel_oracle_ns: u64,
    tel_commit_ns: u64,
    tel_reduction_ns: u64,
}

impl BenchEntry {
    fn build_ns_per_edge(&self) -> f64 {
        if self.conflict_edges == 0 {
            0.0
        } else {
            self.build_ns as f64 / self.conflict_edges as f64
        }
    }

    /// Csr-baseline over Auto speedup of the end-to-end reduction.
    fn kernel_speedup(&self) -> f64 {
        if self.reduction_ns == 0 {
            0.0
        } else {
            self.csr_reduction_ns as f64 / self.reduction_ns as f64
        }
    }
}

/// Median of `iters` timings of `f` (best-effort; `iters ≥ 1`).
fn median_ns<F: FnMut()>(iters: usize, mut f: F) -> u128 {
    let mut samples: Vec<u128> = (0..iters.max(1))
        .map(|_| {
            let start = std::time::Instant::now();
            f();
            start.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// The bench-report's component-parallel measurement: one reduction
/// over a disjoint union of planted copies, timed serial vs. `threads`
/// workers.
struct ParallelBench {
    copies: usize,
    n: usize,
    m: usize,
    k: usize,
    threads: usize,
    /// CPUs the host actually offers — the number that decides whether
    /// `threads` workers can speed anything up (1 CPU cannot).
    host_threads: usize,
    serial_ns: u128,
    parallel_ns: u128,
}

impl ParallelBench {
    fn speedup(&self) -> f64 {
        if self.parallel_ns == 0 {
            0.0
        } else {
            self.serial_ns as f64 / self.parallel_ns as f64
        }
    }
}

/// One worker-count measurement of the batch-service benchmark.
struct ServiceBenchRun {
    workers: usize,
    wall_ns: u128,
    p50_latency_ns: u128,
    p99_latency_ns: u128,
}

impl ServiceBenchRun {
    /// Completed requests per second at this pool size.
    fn throughput_rps(&self, instances: usize) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            instances as f64 / (self.wall_ns as f64 / 1e9)
        }
    }
}

/// The batch-service benchmark: `instances` mixed dense/sparse planted
/// instances through [`Service`] at several pool sizes, against a plain
/// serial loop over the same resilient driver.
struct ServiceBench {
    instances: usize,
    host_threads: usize,
    sequential_ns: u128,
    runs: Vec<ServiceBenchRun>,
}

/// Measures the service block: 64 mixed instances (dense `(128, 64, 8)`
/// alternating with sparse `(384, 192, 4)`), sequential baseline plus
/// workers ∈ {1, 2, 4}.
fn bench_service(seed: u64) -> Result<ServiceBench, String> {
    const INSTANCES: usize = 64;
    let shapes = [(128usize, 64usize, 8usize), (384, 192, 4)];
    let prebuilt: Vec<(pslocal::graph::Hypergraph, usize)> = (0..INSTANCES)
        .map(|i| {
            let (n, m, k) = shapes[i % shapes.len()];
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ i as u64);
            (planted_cf_instance(&mut rng, PlantedCfParams::new(n, m, k)).hypergraph, k)
        })
        .collect();

    let start = Instant::now();
    for (h, k) in &prebuilt {
        let out = pslocal::core::reduce_cf_resilient(h, &[&GreedyOracle], ResilientConfig::new(*k))
            .map_err(|f| format!("sequential service baseline failed: {}", f.error))?;
        std::hint::black_box(out);
    }
    let sequential_ns = start.elapsed().as_nanos();

    let mut runs = Vec::new();
    for workers in [1usize, 2, 4] {
        let service = Service::start(
            ServiceConfig::new(workers).with_queue_capacity(INSTANCES),
            Telemetry::disabled(),
        );
        let start = Instant::now();
        for (i, (h, k)) in prebuilt.iter().enumerate() {
            let request = ServiceRequest::new(
                format!("bench-{i}"),
                h.clone(),
                vec![Box::new(GreedyOracle) as BoxedOracle],
                ResilientConfig::new(*k),
            );
            service.submit(request).map_err(|e| format!("bench submission rejected: {e}"))?;
        }
        let mut latencies: Vec<u128> = (0..INSTANCES)
            .map(|_| {
                let response = service.recv().ok_or("service worker pool died mid-bench")?;
                if let RequestOutcome::Failed { error } = &response.outcome {
                    return Err(format!("bench request {} failed: {error}", response.id));
                }
                Ok(response.latency.as_nanos())
            })
            .collect::<Result<_, String>>()?;
        let wall_ns = start.elapsed().as_nanos();
        service.shutdown();
        latencies.sort_unstable();
        runs.push(ServiceBenchRun {
            workers,
            wall_ns,
            p50_latency_ns: percentile_ns(&latencies, 50.0),
            p99_latency_ns: percentile_ns(&latencies, 99.0),
        });
    }
    Ok(ServiceBench {
        instances: INSTANCES,
        host_threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
        sequential_ns,
        runs,
    })
}

/// One client-concurrency measurement of the TCP-server benchmark.
struct ServerBenchRun {
    clients: usize,
    wall_ns: u128,
    p50_latency_ns: u128,
    p99_latency_ns: u128,
}

impl ServerBenchRun {
    /// Completed requests per second over the socket.
    fn throughput_rps(&self, requests: usize) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            requests as f64 / (self.wall_ns as f64 / 1e9)
        }
    }
}

/// The TCP-server benchmark: the same mixed request mix as the service
/// block, but over real loopback sockets through [`Server`] — wire
/// parse, admission, and socket writes included in every latency.
struct ServerBench {
    requests: usize,
    workers: usize,
    host_threads: usize,
    runs: Vec<ServerBenchRun>,
}

/// Measures the server block: 32 mixed JSONL requests against an
/// in-process [`Server`] (2 workers), driven by 1 sequential client
/// and by 4 concurrent client connections. Latency is synchronous and
/// client-side: one request on the wire, wait for its response line.
fn bench_server(seed: u64) -> Result<ServerBench, String> {
    use std::io::BufRead as _;
    const REQUESTS: usize = 32;
    const WORKERS: usize = 2;
    let shapes = [(128usize, 64usize, 8usize), (384, 192, 4)];
    let lines: Vec<String> = (0..REQUESTS)
        .map(|i| {
            let (n, m, k) = shapes[i % shapes.len()];
            format!(
                "{{\"id\":\"s-{i}\",\"n\":{n},\"m\":{m},\"k\":{k},\"seed\":{}}}",
                seed ^ i as u64
            )
        })
        .collect();

    let config = ServerConfig::default()
        .with_service(ServiceConfig::new(WORKERS).with_queue_capacity(REQUESTS));
    let server = Server::start("127.0.0.1:0", config, Telemetry::disabled())
        .map_err(|e| format!("bench server cannot bind: {e}"))?;
    let addr = server.local_addr();

    let drive = |batch: &[String]| -> Result<Vec<u128>, String> {
        let stream = std::net::TcpStream::connect(addr)
            .map_err(|e| format!("bench client cannot connect: {e}"))?;
        let mut writer = stream.try_clone().map_err(|e| format!("bench client clone: {e}"))?;
        let mut reader = std::io::BufReader::new(stream);
        let mut latencies = Vec::with_capacity(batch.len());
        for line in batch {
            let started = Instant::now();
            writer
                .write_all(format!("{line}\n").as_bytes())
                .map_err(|e| format!("bench client write: {e}"))?;
            let mut response = String::new();
            reader.read_line(&mut response).map_err(|e| format!("bench client read: {e}"))?;
            if !response.contains("\"outcome\":\"ok\"") {
                return Err(format!("bench request answered {}", response.trim()));
            }
            latencies.push(started.elapsed().as_nanos());
        }
        Ok(latencies)
    };

    let mut runs = Vec::new();
    for clients in [1usize, 4] {
        let started = Instant::now();
        let mut latencies: Vec<u128> = if clients == 1 {
            drive(&lines)?
        } else {
            // Round-robin split: every connection still sees the mixed
            // dense/sparse alternation.
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..clients)
                    .map(|c| {
                        let batch: Vec<String> =
                            lines.iter().skip(c).step_by(clients).cloned().collect();
                        scope.spawn(move || drive(&batch))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("bench client thread")).try_fold(
                    Vec::new(),
                    |mut all, result| {
                        all.extend(result?);
                        Ok::<_, String>(all)
                    },
                )
            })?
        };
        let wall_ns = started.elapsed().as_nanos();
        latencies.sort_unstable();
        runs.push(ServerBenchRun {
            clients,
            wall_ns,
            p50_latency_ns: percentile_ns(&latencies, 50.0),
            p99_latency_ns: percentile_ns(&latencies, 99.0),
        });
    }
    server.shutdown();
    Ok(ServerBench {
        requests: REQUESTS,
        workers: WORKERS,
        host_threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
        runs,
    })
}

fn cmd_bench_report(args: &Args) -> Result<(), String> {
    let seed: u64 = args.parsed("seed")?.unwrap_or(0xC0FFEE);
    let iters: usize = args.parsed("iters")?.unwrap_or(3);
    // The serial-vs-parallel comparison defaults to 4 workers.
    let threads = match args.parsed::<usize>("threads")?.unwrap_or(4) {
        0 => return Err("--threads must be at least 1".to_string()),
        t => t,
    };
    let oracle = oracle_by_name(args.get("oracle").unwrap_or("greedy"), seed)?;
    let out_path = args.get("out").unwrap_or("BENCH_reduction.json").to_string();
    let metrics_out = args.get("metrics-out").map(String::from);

    let grid: &[(usize, usize, usize)] =
        &[(64, 32, 4), (128, 64, 4), (128, 64, 8), (256, 128, 4), (384, 192, 4)];
    let mut entries = Vec::new();
    for &(n, m, k) in grid {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let inst = planted_cf_instance(&mut rng, PlantedCfParams::new(n, m, k));
        let h = &inst.hypergraph;
        let cg = ConflictGraph::build(h, k);
        let build_ns = median_ns(iters, || {
            std::hint::black_box(ConflictGraph::build(std::hint::black_box(h), k));
        });
        let oracle_ns = median_ns(iters, || {
            std::hint::black_box(oracle.independent_set(std::hint::black_box(cg.graph())));
        });
        let mut phases = 0usize;
        let mut failed: Option<String> = None;
        let mut timed_kernel = |kernel: KernelStrategy| {
            let mut config = ReductionConfig::new(k);
            config.kernel = kernel;
            median_ns(iters, || {
                match reduce_cf_to_maxis(h, oracle.as_ref(), config) {
                    Ok(out) => {
                        phases = out.phases_used;
                        std::hint::black_box(out);
                    }
                    Err(e) => {
                        failed = Some(format!("reduction failed on (n={n}, m={m}, k={k}): {e}"))
                    }
                };
            })
        };
        // Baseline first so `phases` ends up reflecting the Auto run
        // (they are identical by kernel invariance, but keep the
        // bookkeeping honest).
        let csr_reduction_ns = timed_kernel(KernelStrategy::Csr);
        let reduction_ns = timed_kernel(KernelStrategy::Auto);
        if let Some(message) = failed {
            return Err(message);
        }
        // Instrumented runs per grid point: the span tree attributes
        // the wall clock to build / oracle / commit, which the median
        // timings above cannot separate inside `reduce_cf_to_maxis`.
        // Best-of-`iters` keeps one-shot scheduling outliers (thread
        // spawn on the sharded build) out of the published split.
        // Memoization is enabled here so the cache columns are live.
        let mut traced_config = ReductionConfig::new(k);
        traced_config.oracle_cache = true;
        let mut best: Option<(PhaseTimeline, MemorySink)> = None;
        for _ in 0..iters.max(1) {
            let tel = Telemetry::new(MemorySink::new());
            reduce_cf_to_maxis_traced(h, oracle.as_ref(), traced_config, &tel)
                .map_err(|e| format!("reduction failed on (n={n}, m={m}, k={k}): {e}"))?;
            let sink = tel.into_sink();
            let timeline = PhaseTimeline::from_spans(&sink.spans())
                .ok_or("no reduction span recorded (telemetry pipeline broken?)")?;
            if best.as_ref().is_none_or(|(t, _)| timeline.total_ns < t.total_ns) {
                best = Some((timeline, sink));
            }
        }
        let (timeline, sink) = best.ok_or("bench-report produced no instrumented run")?;
        if let Some(path) = &metrics_out {
            let meta = format!(
                "{{\"meta\":\"bench-entry\",\"n\":{n},\"m\":{m},\"k\":{k},\"oracle\":\"{}\",\"seed\":{seed}}}",
                oracle.name()
            );
            append_events_jsonl(path, &sink, &[meta])?;
        }
        entries.push(BenchEntry {
            n,
            m,
            k,
            conflict_nodes: cg.node_count(),
            conflict_edges: cg.edge_count(),
            kernel: if cg.bitset().is_some() { "bitset" } else { "csr" },
            build_ns,
            oracle_ns,
            reduction_ns,
            csr_reduction_ns,
            phases,
            oracle_cache_hits: sink.counter_total(Counter::OracleCacheHits),
            oracle_cache_misses: sink.counter_total(Counter::OracleCacheMisses),
            tel_build_ns: timeline.build_ns,
            tel_oracle_ns: timeline.oracle_ns,
            tel_commit_ns: timeline.commit_ns,
            tel_reduction_ns: timeline.total_ns,
        });
    }

    // Component-parallel phase execution on a multi-component planted
    // instance (8 vertex-disjoint copies, so the conflict graph has ≥ 8
    // components): one full reduction, serial vs. `threads` workers.
    // Same work, same result (the executor is thread-count-invariant);
    // only the wall clock moves.
    let (pn, pm, pk, copies) = (128usize, 64usize, 8usize, 8usize);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let pinst = multi_component_cf_instance(&mut rng, PlantedCfParams::new(pn, pm, pk), copies);
    let ph = &pinst.hypergraph;
    let serial_cfg = ReductionConfig::new(pk);
    let parallel_cfg = serial_cfg.with_threads(threads);
    let mut failed: Option<String> = None;
    let mut timed_reduce = |cfg: ReductionConfig| {
        median_ns(iters, || match reduce_cf_to_maxis(ph, oracle.as_ref(), cfg) {
            Ok(out) => {
                std::hint::black_box(out);
            }
            Err(e) => failed = Some(format!("parallel bench reduction failed: {e}")),
        })
    };
    let serial_ns = timed_reduce(serial_cfg);
    let parallel_ns = timed_reduce(parallel_cfg);
    if let Some(message) = failed {
        return Err(message);
    }
    let parallel = ParallelBench {
        copies,
        n: ph.node_count(),
        m: ph.edge_count(),
        k: pk,
        threads,
        host_threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
        serial_ns,
        parallel_ns,
    };

    // Batched serving: the same oracle over 64 mixed instances, serial
    // loop vs. the service's worker pool.
    let service = bench_service(seed)?;

    // The TCP front end: the same request mix over real loopback
    // sockets, sequential vs. concurrent clients.
    let server = bench_server(seed)?;

    // Hand-rolled JSON: the vendored serde stub has no serializer and
    // the container has no serde_json; the schema below is frozen so
    // future PRs can diff perf trajectories mechanically.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"pslocal-bench-reduction/v6\",\n");
    json.push_str(&format!("  \"oracle\": \"{}\",\n", oracle.name()));
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"iters\": {iters},\n"));
    json.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"n\": {}, \"m\": {}, \"k\": {}, \"conflict_nodes\": {}, \
             \"conflict_edges\": {}, \"kernel\": \"{}\", \"phases\": {}, \"build_ns\": {}, \
             \"oracle_ns\": {}, \"reduction_ns\": {}, \"csr_reduction_ns\": {}, \
             \"kernel_speedup\": {:.2}, \"build_ns_per_edge\": {:.2}, \
             \"oracle_cache_hits\": {}, \"oracle_cache_misses\": {}, \
             \"tel_build_ns\": {}, \"tel_oracle_ns\": {}, \"tel_commit_ns\": {}, \
             \"tel_reduction_ns\": {}}}{}\n",
            e.n,
            e.m,
            e.k,
            e.conflict_nodes,
            e.conflict_edges,
            e.kernel,
            e.phases,
            e.build_ns,
            e.oracle_ns,
            e.reduction_ns,
            e.csr_reduction_ns,
            e.kernel_speedup(),
            e.build_ns_per_edge(),
            e.oracle_cache_hits,
            e.oracle_cache_misses,
            e.tel_build_ns,
            e.tel_oracle_ns,
            e.tel_commit_ns,
            e.tel_reduction_ns,
            if i + 1 < entries.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"parallel\": {{\"copies\": {}, \"n\": {}, \"m\": {}, \"k\": {}, \
         \"threads\": {}, \"host_threads\": {}, \"serial_ns\": {}, \"parallel_ns\": {}, \
         \"speedup\": {:.2}}}\n",
        parallel.copies,
        parallel.n,
        parallel.m,
        parallel.k,
        parallel.threads,
        parallel.host_threads,
        parallel.serial_ns,
        parallel.parallel_ns,
        parallel.speedup(),
    ));
    // Convert the trailing newline of the parallel block into a comma
    // so the service block can follow it.
    json.truncate(json.len() - 1);
    json.push_str(",\n");
    json.push_str(&format!(
        "  \"service\": {{\"instances\": {}, \"host_threads\": {}, \"sequential_ns\": {}, \
         \"runs\": [\n",
        service.instances, service.host_threads, service.sequential_ns,
    ));
    for (i, run) in service.runs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workers\": {}, \"wall_ns\": {}, \"throughput_rps\": {:.2}, \
             \"speedup_vs_sequential\": {:.2}, \"p50_latency_ns\": {}, \"p99_latency_ns\": {}}}{}\n",
            run.workers,
            run.wall_ns,
            run.throughput_rps(service.instances),
            if run.wall_ns == 0 { 0.0 } else { service.sequential_ns as f64 / run.wall_ns as f64 },
            run.p50_latency_ns,
            run.p99_latency_ns,
            if i + 1 < service.runs.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]},\n");
    json.push_str(&format!(
        "  \"server\": {{\"requests\": {}, \"workers\": {}, \"host_threads\": {}, \"runs\": [\n",
        server.requests, server.workers, server.host_threads,
    ));
    for (i, run) in server.runs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"clients\": {}, \"wall_ns\": {}, \"throughput_rps\": {:.2}, \
             \"p50_latency_ns\": {}, \"p99_latency_ns\": {}}}{}\n",
            run.clients,
            run.wall_ns,
            run.throughput_rps(server.requests),
            run.p50_latency_ns,
            run.p99_latency_ns,
            if i + 1 < server.runs.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]}\n");
    json.push_str("}\n");
    std::fs::write(&out_path, &json).map_err(|e| format!("cannot write {out_path}: {e}"))?;

    println!("wrote {out_path}");
    for e in &entries {
        println!(
            "n={} m={} k={}: |V|={} |E|={} [{}] build={}us oracle={}us reduce={}us \
             (csr {}us, {:.2}x; {} phases, {:.1} ns/edge, cache {}h/{}m)",
            e.n,
            e.m,
            e.k,
            e.conflict_nodes,
            e.conflict_edges,
            e.kernel,
            e.build_ns / 1000,
            e.oracle_ns / 1000,
            e.reduction_ns / 1000,
            e.csr_reduction_ns / 1000,
            e.kernel_speedup(),
            e.phases,
            e.build_ns_per_edge(),
            e.oracle_cache_hits,
            e.oracle_cache_misses,
        );
        println!(
            "    telemetry split: build={}us oracle={}us commit={}us total={}us",
            e.tel_build_ns / 1000,
            e.tel_oracle_ns / 1000,
            e.tel_commit_ns / 1000,
            e.tel_reduction_ns / 1000,
        );
    }
    println!(
        "parallel: {} copies of (n={}, m={}, k={}): serial={}us, {} threads={}us \
         ({:.2}x on a {}-CPU host)",
        parallel.copies,
        pn,
        pm,
        parallel.k,
        parallel.serial_ns / 1000,
        parallel.threads,
        parallel.parallel_ns / 1000,
        parallel.speedup(),
        parallel.host_threads,
    );
    println!(
        "service: {} mixed instances, sequential = {}ms ({}-CPU host)",
        service.instances,
        service.sequential_ns / 1_000_000,
        service.host_threads,
    );
    for run in &service.runs {
        println!(
            "    workers = {}: wall = {}ms, {:.1} req/s ({:.2}x vs sequential), \
             latency p50 = {}us, p99 = {}us",
            run.workers,
            run.wall_ns / 1_000_000,
            run.throughput_rps(service.instances),
            if run.wall_ns == 0 { 0.0 } else { service.sequential_ns as f64 / run.wall_ns as f64 },
            run.p50_latency_ns / 1000,
            run.p99_latency_ns / 1000,
        );
    }
    println!(
        "server: {} requests over loopback TCP ({} workers, {}-CPU host)",
        server.requests, server.workers, server.host_threads,
    );
    for run in &server.runs {
        println!(
            "    clients = {}: wall = {}ms, {:.1} req/s, latency p50 = {}us, p99 = {}us",
            run.clients,
            run.wall_ns / 1_000_000,
            run.throughput_rps(server.requests),
            run.p50_latency_ns / 1000,
            run.p99_latency_ns / 1000,
        );
    }
    if let Some(path) = &metrics_out {
        println!("appended telemetry events to {path}");
    }
    Ok(())
}

/// Process-level shutdown signals for `pslocal serve`.
///
/// The workspace is hermetic (no `libc`, no `signal-hook`), so on Unix
/// this registers handlers through the one C function the platform
/// already links into every process: `signal(2)`. The handler only
/// stores into a static atomic — the async-signal-safe subset — and the
/// serve loop polls [`requested`]. On non-Unix targets the module
/// degrades to "never requested": the server still drains via the
/// client `SHUTDOWN` command.
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SHUTDOWN: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn handle(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    /// Routes SIGINT and SIGTERM into [`requested`].
    pub fn install() {
        // pslocal: allow(unsafe-ffi, "signal handler registration: libc signal() has no safe wrapper in a dependency-free workspace; the handler only stores a relaxed atomic flag")
        unsafe {
            signal(SIGINT, handle);
            signal(SIGTERM, handle);
        }
    }

    /// True once a shutdown signal has been delivered.
    pub fn requested() -> bool {
        SHUTDOWN.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod signals {
    pub fn install() {}

    pub fn requested() -> bool {
        false
    }
}

/// `pslocal serve` — the batch protocol over TCP (see the SERVE section
/// of the usage text). Runs until SIGINT/SIGTERM or a client `SHUTDOWN`
/// command, then drains every admitted request and prints a final
/// stats snapshot to stderr.
fn cmd_serve(args: &Args) -> Result<(), String> {
    let addr = args.get("addr").unwrap_or("127.0.0.1:7171").to_string();
    let workers = match args.parsed::<usize>("workers")?.unwrap_or(2) {
        0 => return Err("--workers must be at least 1".to_string()),
        w => w,
    };
    let queue = match args.parsed::<usize>("queue-depth")?.unwrap_or(DEFAULT_QUEUE_CAPACITY) {
        0 => return Err("--queue-depth must be at least 1".to_string()),
        q => q,
    };
    let max_conns = match args.parsed::<usize>("max-conns")?.unwrap_or(DEFAULT_MAX_CONNECTIONS) {
        0 => return Err("--max-conns must be at least 1".to_string()),
        c => c,
    };

    let mut config = ServerConfig::default()
        .with_service(ServiceConfig::new(workers).with_queue_capacity(queue))
        .with_max_connections(max_conns);
    if let Some(ms) = args.parsed::<u64>("deadline-ms")? {
        config = config.with_default_deadline(Duration::from_millis(ms));
    }

    // Live, bounded aggregates answer the STATS command; the optional
    // JSONL sink streams every raw event to a metrics artifact.
    let stats = AggregateSink::default();
    let jsonl = match args.get("metrics-out") {
        None => None,
        Some(path) => {
            let file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map_err(|e| format!("cannot open {path}: {e}"))?;
            Some(JsonlSink::new(std::io::BufWriter::new(file)))
        }
    };
    let tel = Telemetry::new((stats.clone(), jsonl));

    signals::install();
    let server = Server::start(addr.as_str(), config, tel)
        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    // Port 0 binds an ephemeral port — print the *resolved* address so
    // scripts (and the CI smoke test) can discover it.
    println!("listening on {}", server.local_addr());
    std::io::stdout().flush().map_err(|e| format!("cannot flush stdout: {e}"))?;
    eprintln!(
        "serve: {workers} workers, queue {queue}, max {max_conns} connections \
         (SIGINT/SIGTERM or a client SHUTDOWN drains gracefully)"
    );

    let handle = server.handle();
    while !handle.is_draining() && !signals::requested() {
        std::thread::sleep(Duration::from_millis(50));
    }

    eprintln!("serve: draining...");
    let report = server.shutdown();
    let count = |label: &str| report.drained.iter().filter(|r| r.outcome.label() == label).count();
    eprintln!(
        "serve: drained {} in-flight requests ({} ok, {} deadline_exceeded, {} failed)",
        report.drained.len(),
        count(protocol::OUTCOME_OK),
        count(protocol::OUTCOME_DEADLINE_EXCEEDED),
        count(protocol::OUTCOME_FAILED),
    );
    eprint!("{}", stats.render());
    // Dropping the report drops the telemetry pipeline, flushing the
    // JSONL metrics artifact's buffered tail.
    drop(report);
    Ok(())
}

/// `pslocal client` — a line-oriented helper for talking to a running
/// `pslocal serve`: sends stdin (or one `--stats` / `--shutdown` /
/// `--ping` command), half-closes the write side, and streams every
/// response line to stdout until the server is done.
fn cmd_client(args: &Args) -> Result<(), String> {
    let addr = args.get("addr").unwrap_or("127.0.0.1:7171");
    let payload = if args.flag("stats") {
        "STATS\n".to_string()
    } else if args.flag("shutdown") {
        "SHUTDOWN\n".to_string()
    } else if args.flag("ping") {
        "PING\n".to_string()
    } else {
        let mut text = read_stdin()?;
        if !text.ends_with('\n') {
            text.push('\n');
        }
        text
    };

    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream.write_all(payload.as_bytes()).map_err(|e| format!("cannot send to {addr}: {e}"))?;
    // Half-close: the server sees EOF after our last request but the
    // read side stays open for every pending response.
    stream
        .shutdown(std::net::Shutdown::Write)
        .map_err(|e| format!("cannot half-close {addr}: {e}"))?;
    let mut stdout = std::io::stdout();
    std::io::copy(&mut stream, &mut stdout).map_err(|e| format!("cannot read from {addr}: {e}"))?;
    stdout.flush().map_err(|e| format!("cannot flush stdout: {e}"))?;
    Ok(())
}

/// `pslocal lint`: run the static-analysis passes over the workspace
/// tree and report findings (text or JSON). With `--deny`, any
/// surviving finding fails the command — the CI gate.
fn cmd_lint(args: &Args) -> Result<(), String> {
    let root = args.get("root").unwrap_or(".");
    let analysis = pslocal_analysis::analyze(std::path::Path::new(root))
        .map_err(|e| format!("cannot analyze {root}: {e}"))?;
    if args.flag("lock-order") {
        print!("{}", analysis.lock_report.render());
    } else if args.flag("json") {
        print!(
            "{}",
            pslocal_analysis::render_json(
                &analysis.findings,
                analysis.files_scanned,
                analysis.suppressed,
            )
        );
    } else {
        print!("{}", pslocal_analysis::render_text(&analysis.findings, args.flag("fix-hints")));
        println!(
            "{} finding(s), {} suppressed, {} files scanned",
            analysis.findings.len(),
            analysis.suppressed,
            analysis.files_scanned
        );
    }
    if args.flag("deny") && !analysis.findings.is_empty() {
        return Err(format!("lint: {} finding(s) with --deny", analysis.findings.len()));
    }
    Ok(())
}

fn dispatch() -> Result<(), String> {
    let args = Args::parse(std::env::args().skip(1))?;
    match args.positional.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args),
        Some("stats") => cmd_stats(),
        Some("maxis") => cmd_maxis(&args),
        Some("reduce") => cmd_reduce(&args),
        Some("batch") => cmd_batch(&args),
        Some("serve") => cmd_serve(&args),
        Some("client") => cmd_client(&args),
        Some("trace-report") => cmd_trace_report(&args),
        Some("bench-report") => cmd_bench_report(&args),
        Some("checkpoint-inspect") => cmd_checkpoint_inspect(&args),
        Some("lint") => cmd_lint(&args),
        Some("help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match dispatch() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
