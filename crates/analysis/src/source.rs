//! Workspace model: file discovery, classification, test-region
//! masking, and `// pslocal: allow(...)` suppression parsing.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Token, TokenKind};
use crate::report::Finding;

/// How a source file participates in the lint passes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileClass {
    /// Under some crate's `src/` (or the root `src/lib.rs` tree):
    /// library code, held to the strictest rules.
    Library {
        /// Crate name, e.g. `pslocal-core` for `crates/core/src/…`.
        krate: String,
    },
    /// A `src/bin/` entry point: exempt from panic-path and
    /// stdout-purity (binaries own the terminal), still subject to
    /// codec-drift and hygiene.
    Binary,
    /// `tests/`, `benches/`, `examples/`: scanned only so allows and
    /// the lexer get exercised; substantive passes skip these.
    TestDir,
}

/// An inline suppression parsed from a `// pslocal: allow(...)`
/// comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Lint name inside `allow(...)`.
    pub lint: String,
    /// Mandatory justification string.
    pub justification: String,
    /// Line the comment sits on.
    pub line: u32,
    /// True when code shares the comment's line (a trailing waiver,
    /// covering this line); false for a standalone comment (covering
    /// the next line).
    pub trailing: bool,
}

impl Allow {
    /// Whether this allow covers a finding at `line`.
    pub fn covers(&self, line: u32) -> bool {
        if self.trailing {
            self.line == line
        } else {
            self.line + 1 == line
        }
    }
}

/// One lexed workspace file plus its per-token metadata.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with unix separators.
    pub rel: String,
    /// Lint class.
    pub class: FileClass,
    /// Full token stream, comments included.
    pub tokens: Vec<Token>,
    /// `test_mask[i]` is true when token `i` sits inside a
    /// `#[cfg(test)]` module or `#[test]` function.
    pub test_mask: Vec<bool>,
    /// Parsed suppressions.
    pub allows: Vec<Allow>,
    /// Lines carrying any comment token (used by the indexing
    /// bound-comment sub-rule).
    pub comment_lines: BTreeSet<u32>,
}

impl SourceFile {
    /// Lexes `src` into a [`SourceFile`] plus any `bad-allow` findings
    /// its suppression comments produced. [`Workspace::load`] calls
    /// this per file; tests and fixtures can call it directly.
    pub fn parse(rel: &str, class: FileClass, src: &str) -> (SourceFile, Vec<Finding>) {
        let tokens = lex(src);
        let test_mask = compute_test_mask(&tokens);
        let (allows, bad) = parse_allows(&tokens, rel);
        let comment_lines = tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .map(|t| t.line)
            .collect();
        (SourceFile { rel: rel.to_string(), class, tokens, test_mask, allows, comment_lines }, bad)
    }

    /// True when this file is library code (subject to the strict
    /// passes).
    pub fn is_library(&self) -> bool {
        matches!(self.class, FileClass::Library { .. })
    }

    /// True when the file is the root of a crate (`lib.rs` directly
    /// under a `src/`), where `#![forbid(unsafe_code)]` must live.
    pub fn is_crate_root(&self) -> bool {
        self.rel == "src/lib.rs"
            || (self.rel.starts_with("crates/")
                && self.rel.ends_with("/src/lib.rs")
                && self.rel.matches('/').count() == 3)
    }

    /// Iterator over token indices that are outside test regions.
    pub fn non_test_indices(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.tokens.len()).filter(move |&i| !self.test_mask[i])
    }
}

/// The lexed workspace.
#[derive(Debug)]
pub struct Workspace {
    /// Absolute workspace root.
    pub root: PathBuf,
    /// All lintable files, sorted by relative path.
    pub files: Vec<SourceFile>,
    /// Findings produced during loading (malformed suppressions).
    pub load_findings: Vec<Finding>,
}

impl Workspace {
    /// Walks `root`, lexing every `.rs` file that belongs to the
    /// workspace proper. `vendor/`, `target/`, hidden directories and
    /// anything under a `fixtures/` directory are skipped.
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let mut files = Vec::new();
        let mut load_findings = Vec::new();
        let mut paths = Vec::new();
        collect_rs_files(root, root, &mut paths)?;
        paths.sort();
        for rel in paths {
            let Some(class) = classify(&rel) else { continue };
            let text = fs::read_to_string(root.join(&rel))?;
            let (file, mut bad) = SourceFile::parse(&rel, class, &text);
            load_findings.append(&mut bad);
            files.push(file);
        }
        Ok(Workspace { root: root.to_path_buf(), files, load_findings })
    }
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name.starts_with('.') || name == "target" || name == "vendor" || name == "fixtures" {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                let rel: Vec<String> = rel
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect();
                out.push(rel.join("/"));
            }
        }
    }
    Ok(())
}

/// Maps a workspace-relative path to its lint class; `None` means the
/// file is ignored entirely (e.g. stray scripts outside src/tests).
fn classify(rel: &str) -> Option<FileClass> {
    // The analyzer's own sources necessarily spell out every pattern
    // it hunts (the wire-literal table, example `allow(...)` markers
    // in docs), so self-scanning yields only meta false positives.
    // The crate is covered by its own unit tests instead.
    if rel.starts_with("crates/analysis/") {
        return None;
    }
    if rel.starts_with("tests/")
        || rel.starts_with("benches/")
        || rel.starts_with("examples/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
    {
        return Some(FileClass::TestDir);
    }
    if rel.starts_with("src/bin/") || rel.contains("/src/bin/") {
        return Some(FileClass::Binary);
    }
    if let Some(rest) = rel.strip_prefix("crates/") {
        let mut parts = rest.splitn(2, '/');
        let dir = parts.next()?;
        let tail = parts.next()?;
        if tail.starts_with("src/") {
            return Some(FileClass::Library { krate: format!("pslocal-{dir}") });
        }
        return None;
    }
    if rel.starts_with("src/") {
        return Some(FileClass::Library { krate: "pslocal".to_string() });
    }
    None
}

/// Marks every token inside a `#[test]` function or `#[cfg(test)]`
/// item (typically `mod tests`) as test-only.
///
/// Attribute detection is token-based: an attribute whose bracket
/// content mentions the ident `test` and does not mention `not`
/// counts (`#[test]`, `#[cfg(test)]`, `#[cfg(all(test, unix))]`);
/// `#[cfg(not(test))]` does not.
fn compute_test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !matches!(tokens[i].kind, TokenKind::LineComment | TokenKind::BlockComment))
        .collect();
    let mut ci = 0;
    while ci < code.len() {
        // Look for `#` `[` ... `]` (outer attributes only; `#![..]`
        // inner attributes configure the whole file, not an item).
        if tokens[code[ci]].is_punct('#')
            && ci + 1 < code.len()
            && tokens[code[ci + 1]].is_punct('[')
        {
            let (is_test, after_attr) = scan_attribute(tokens, &code, ci + 1);
            if is_test {
                // Extend over any further attributes, then the item
                // itself (to `;` at depth 0, or a matched `{...}`).
                let mut cj = after_attr;
                while cj + 1 < code.len()
                    && tokens[code[cj]].is_punct('#')
                    && tokens[code[cj + 1]].is_punct('[')
                {
                    let (_, next) = scan_attribute(tokens, &code, cj + 1);
                    cj = next;
                }
                let end = scan_item_end(tokens, &code, cj);
                let start_tok = code[ci];
                let end_tok = if end < code.len() { code[end] } else { tokens.len() - 1 };
                for m in mask.iter_mut().take(end_tok + 1).skip(start_tok) {
                    *m = true;
                }
                ci = end + 1;
                continue;
            }
            ci = after_attr;
            continue;
        }
        ci += 1;
    }
    mask
}

/// `open` indexes the `[` of an attribute in `code`. Returns whether
/// the attribute marks a test region, and the code index just past
/// the closing `]`.
fn scan_attribute(tokens: &[Token], code: &[usize], open: usize) -> (bool, usize) {
    let mut depth = 0usize;
    let mut saw_test = false;
    let mut saw_not = false;
    let mut ci = open;
    while ci < code.len() {
        let t = &tokens[code[ci]];
        match t.punct() {
            Some('[') => depth += 1,
            Some(']') => {
                depth -= 1;
                if depth == 0 {
                    return (saw_test && !saw_not, ci + 1);
                }
            }
            _ => {
                if t.is_ident("test") {
                    saw_test = true;
                } else if t.is_ident("not") {
                    saw_not = true;
                }
            }
        }
        ci += 1;
    }
    (false, code.len())
}

/// `start` indexes the first code token of an item (after its
/// attributes). Returns the code index of the token that closes the
/// item: a `;` before any brace, or the `}` matching the first `{`.
fn scan_item_end(tokens: &[Token], code: &[usize], start: usize) -> usize {
    let mut ci = start;
    while ci < code.len() {
        match tokens[code[ci]].punct() {
            Some(';') => return ci,
            Some('{') => {
                let mut depth = 0usize;
                while ci < code.len() {
                    match tokens[code[ci]].punct() {
                        Some('{') => depth += 1,
                        Some('}') => {
                            depth -= 1;
                            if depth == 0 {
                                return ci;
                            }
                        }
                        _ => {}
                    }
                    ci += 1;
                }
                return code.len().saturating_sub(1);
            }
            _ => ci += 1,
        }
    }
    code.len().saturating_sub(1)
}

/// Parses `pslocal: allow(<lint>, "<justification>")` markers out of
/// comment tokens. A marker without a non-empty justification is a
/// `bad-allow` finding: suppressions must say *why*.
fn parse_allows(tokens: &[Token], rel: &str) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut findings = Vec::new();
    let code_lines: BTreeSet<u32> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .map(|t| t.line)
        .collect();
    for t in tokens {
        if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let Some(pos) = t.text.find("pslocal:") else { continue };
        let rest = &t.text[pos + "pslocal:".len()..];
        // `pslocal::core::...` is a Rust path in prose, not a marker.
        if rest.starts_with(':') {
            continue;
        }
        let rest = rest.trim_start();
        let Some(args) = rest.strip_prefix("allow(") else {
            findings.push(bad_allow(rel, t.line, "expected `allow(<lint>, \"why\")`"));
            continue;
        };
        let Some(close) = args.find(')') else {
            findings.push(bad_allow(rel, t.line, "missing closing `)`"));
            continue;
        };
        let inner = &args[..close];
        let (lint, justification) = match inner.find(',') {
            Some(comma) => {
                let lint = inner[..comma].trim().to_string();
                let just = inner[comma + 1..].trim();
                let just = just
                    .strip_prefix('"')
                    .and_then(|j| j.strip_suffix('"'))
                    .unwrap_or(just)
                    .trim()
                    .to_string();
                (lint, just)
            }
            None => (inner.trim().to_string(), String::new()),
        };
        if lint.is_empty() {
            findings.push(bad_allow(rel, t.line, "missing lint name"));
            continue;
        }
        if justification.is_empty() {
            findings.push(bad_allow(
                rel,
                t.line,
                &format!("allow({lint}) carries no justification string"),
            ));
            continue;
        }
        allows.push(Allow {
            lint,
            justification,
            line: t.line,
            trailing: code_lines.contains(&t.line),
        });
    }
    (allows, findings)
}

fn bad_allow(rel: &str, line: u32, why: &str) -> Finding {
    Finding {
        lint: "bad-allow",
        file: rel.to_string(),
        line,
        message: format!("malformed suppression: {why}"),
        hint: "write `// pslocal: allow(<lint>, \"one-line justification\")`".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file_from(src: &str, rel: &str, class: FileClass) -> SourceFile {
        SourceFile::parse(rel, class, src).0
    }

    #[test]
    fn classify_maps_paths_to_classes() {
        assert_eq!(
            classify("crates/core/src/service.rs"),
            Some(FileClass::Library { krate: "pslocal-core".to_string() })
        );
        assert_eq!(classify("src/bin/pslocal.rs"), Some(FileClass::Binary));
        assert_eq!(classify("tests/server.rs"), Some(FileClass::TestDir));
        assert_eq!(classify("crates/core/tests/graph.rs"), Some(FileClass::TestDir));
        assert_eq!(classify("crates/core/benches/reduce.rs"), Some(FileClass::TestDir));
        assert_eq!(
            classify("src/lib.rs"),
            Some(FileClass::Library { krate: "pslocal".to_string() })
        );
        assert_eq!(classify("crates/core/build.rs"), None);
    }

    #[test]
    fn crate_root_detection() {
        let f = file_from(
            "",
            "crates/core/src/lib.rs",
            FileClass::Library { krate: "pslocal-core".to_string() },
        );
        assert!(f.is_crate_root());
        let f = file_from(
            "",
            "crates/core/src/graph/lib.rs",
            FileClass::Library { krate: "pslocal-core".to_string() },
        );
        assert!(!f.is_crate_root());
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = r#"
pub fn live() { helper.unwrap(); }

#[cfg(test)]
mod tests {
    fn inner() { x.unwrap(); }
}

pub fn also_live() {}
"#;
        let f = file_from(
            src,
            "crates/core/src/x.rs",
            FileClass::Library { krate: "pslocal-core".to_string() },
        );
        let masked: Vec<&str> = f
            .tokens
            .iter()
            .zip(&f.test_mask)
            .filter(|(_, &m)| m)
            .map(|(t, _)| t.text.as_str())
            .collect();
        assert!(masked.contains(&"inner"));
        assert!(!masked.contains(&"live"));
        assert!(!masked.contains(&"also_live"));
        // `live`'s unwrap is unmasked; `inner`'s is masked.
        let unmasked_unwraps =
            f.tokens.iter().zip(&f.test_mask).filter(|(t, &m)| !m && t.is_ident("unwrap")).count();
        assert_eq!(unmasked_unwraps, 1);
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let src = "#[cfg(not(test))]\nmod shipping { pub fn f() {} }\n";
        let f = file_from(
            src,
            "crates/core/src/x.rs",
            FileClass::Library { krate: "pslocal-core".to_string() },
        );
        assert!(f.test_mask.iter().all(|&m| !m));
    }

    #[test]
    fn test_fn_with_stacked_attributes_is_masked() {
        let src = "#[test]\n#[ignore]\nfn slow_case() { assert!(x[0] > 1); }\nfn live() {}\n";
        let f = file_from(
            src,
            "crates/core/src/x.rs",
            FileClass::Library { krate: "pslocal-core".to_string() },
        );
        let masked: Vec<&str> = f
            .tokens
            .iter()
            .zip(&f.test_mask)
            .filter(|(_, &m)| m)
            .map(|(t, _)| t.text.as_str())
            .collect();
        assert!(masked.contains(&"slow_case"));
        assert!(masked.contains(&"ignore"));
        assert!(!masked.contains(&"live"));
    }

    #[test]
    fn allow_parsing_happy_path() {
        let src =
            "// pslocal: allow(panic-path, \"startup-only config read\")\nlet x = y.unwrap();\n";
        let (allows, bad) = parse_allows(&lex(src), "a.rs");
        assert!(bad.is_empty());
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].lint, "panic-path");
        assert_eq!(allows[0].justification, "startup-only config read");
        assert_eq!(allows[0].line, 1);
    }

    #[test]
    fn allow_without_justification_is_bad_allow() {
        let src = "// pslocal: allow(panic-path)\n// pslocal: allow(stdout-purity, \"\")\n";
        let (allows, bad) = parse_allows(&lex(src), "a.rs");
        assert!(allows.is_empty());
        assert_eq!(bad.len(), 2);
        assert!(bad.iter().all(|f| f.lint == "bad-allow"));
    }

    #[test]
    fn malformed_allow_is_reported() {
        let src = "// pslocal: deny(panic-path)\n";
        let (_, bad) = parse_allows(&lex(src), "a.rs");
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("expected"));
    }

    #[test]
    fn rust_paths_in_prose_are_not_markers() {
        let src = "//! use pslocal::core::{reduce_cf_to_maxis};\n// see pslocal::maxis docs\n";
        let (allows, bad) = parse_allows(&lex(src), "a.rs");
        assert!(allows.is_empty());
        assert!(bad.is_empty());
    }
}
