//! Pass: static lock-order audit over the concurrency files.
//!
//! The worker pool (`service.rs`), the TCP front end (`server.rs`) and
//! the live-stats sink (`aggregate.rs`) together hold every
//! `Mutex`/`Condvar` in the workspace. A deadlock needs two threads
//! acquiring two of those locks in opposite orders — a property no
//! test reliably exercises, but one a static over-approximation can
//! audit: if the *acquired-while-holding* graph is acyclic, no
//! lock-order deadlock exists.
//!
//! The audit:
//!
//! 1. **inventories** every `Mutex`/`Condvar` declaration (struct
//!    fields and `&Mutex<_>` parameters) in the audited files;
//! 2. **simulates guard lifetimes** per function over the token
//!    stream: a `let`-bound guard lives to the end of its block (or an
//!    explicit `drop(guard)`), a guard temporary (`x.lock()?.field`,
//!    chained calls) lives to the end of its statement — the same
//!    rules `rustc` uses, conservatively approximated;
//! 3. records an edge `held → acquired` for every acquisition under a
//!    live guard, treats telemetry calls (`tel.add(…)`,
//!    `telemetry().sample(…)`, `span!(tel, …)`) as acquisitions of the
//!    pseudo-lock [`SINK_NODE`] (they take the sink's internal mutexes
//!    on the caller's thread), and records `Condvar::wait` as a
//!    *wait-association* rather than an order edge;
//! 4. reports cycles as `lock-order` findings, flags waits that hold a
//!    second guard, and emits the canonical acquisition order
//!    (topological, alphabetical tie-break) that ARCHITECTURE.md
//!    publishes.
//!
//! Acquisitions are recognized in both spellings: `x.lock()` chains
//! and the workspace's poisoned-lock-recovery helpers
//! (`lock_unpoisoned(&x)`).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use super::code_indices;
use crate::lexer::TokenKind;
use crate::report::Finding;
use crate::source::{SourceFile, Workspace};

/// The files whose locks the audit covers — the workspace's entire
/// concurrency surface.
pub const AUDITED: &[&str] = &[
    "crates/core/src/server.rs",
    "crates/core/src/service.rs",
    "crates/telemetry/src/aggregate.rs",
];

/// Pseudo-lock standing for the telemetry sink's internal mutexes: a
/// `tel.add(…)` on the caller's thread runs `Sink::record`, which
/// takes the `AggregateSink` locks.
pub const SINK_NODE: &str = "telemetry-sink";

/// What a declared synchronization primitive is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// `Mutex<_>` (possibly behind `Arc`/`&`).
    Mutex,
    /// `Condvar`.
    Condvar,
}

/// One inventoried declaration.
#[derive(Debug, Clone)]
pub struct LockDecl {
    /// Field/parameter name — the audit's node identity.
    pub name: String,
    /// Mutex or condvar.
    pub kind: LockKind,
    /// Declaring file.
    pub file: String,
    /// Declaration line.
    pub line: u32,
}

/// One `held → acquired` edge, with the acquisition site.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// Lock already held.
    pub from: String,
    /// Lock acquired under it.
    pub to: String,
    /// Acquisition file.
    pub file: String,
    /// Acquisition line.
    pub line: u32,
}

/// A `Condvar::wait(guard)` pairing.
#[derive(Debug, Clone)]
pub struct WaitAssoc {
    /// The condvar waited on.
    pub condvar: String,
    /// The mutex whose guard is released for the wait.
    pub mutex: String,
    /// Wait site file.
    pub file: String,
    /// Wait site line.
    pub line: u32,
}

/// Everything the audit learned — rendered into ARCHITECTURE.md and
/// `pslocal lint --lock-order`.
#[derive(Debug)]
pub struct LockOrderReport {
    /// Inventoried declarations, name-sorted.
    pub locks: Vec<LockDecl>,
    /// Deduplicated acquisition edges.
    pub edges: Vec<LockEdge>,
    /// Condvar wait associations.
    pub waits: Vec<WaitAssoc>,
    /// Lock-order cycles (each a node sequence; empty = acyclic).
    pub cycles: Vec<Vec<String>>,
    /// Canonical acquisition order over the mutex nodes (topological,
    /// alphabetical tie-break). Meaningful only when `cycles` is
    /// empty.
    pub canonical: Vec<String>,
}

impl LockOrderReport {
    /// Plain-text rendering — the payload ARCHITECTURE.md quotes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "Lock inventory ({} declarations):", self.locks.len());
        for l in &self.locks {
            let kind = match l.kind {
                LockKind::Mutex => "mutex  ",
                LockKind::Condvar => "condvar",
            };
            let _ = writeln!(out, "  {kind} {:<16} {}:{}", l.name, l.file, l.line);
        }
        let _ = writeln!(out, "Acquisition edges (held -> acquired):");
        if self.edges.is_empty() {
            let _ = writeln!(out, "  (none — no lock is ever taken while holding another)");
        }
        for e in &self.edges {
            let _ = writeln!(out, "  {} -> {}  {}:{}", e.from, e.to, e.file, e.line);
        }
        let _ = writeln!(out, "Condvar wait associations:");
        if self.waits.is_empty() {
            let _ = writeln!(out, "  (none)");
        }
        for w in &self.waits {
            let _ = writeln!(out, "  {} waits with {}  {}:{}", w.condvar, w.mutex, w.file, w.line);
        }
        if self.cycles.is_empty() {
            let _ = writeln!(out, "Cycles: none (graph is acyclic)");
            let _ = writeln!(out, "Canonical acquisition order:");
            for (i, name) in self.canonical.iter().enumerate() {
                let _ = writeln!(out, "  {}. {name}", i + 1);
            }
        } else {
            for c in &self.cycles {
                let _ = writeln!(out, "CYCLE: {}", c.join(" -> "));
            }
        }
        out
    }
}

/// Runs the audit; returns findings (cycles, waits holding extra
/// guards) plus the full report.
pub fn run(ws: &Workspace) -> (Vec<Finding>, LockOrderReport) {
    let files: Vec<&SourceFile> =
        ws.files.iter().filter(|f| AUDITED.contains(&f.rel.as_str())).collect();
    let decls = inventory(&files);
    let mut findings = Vec::new();
    let mut edges: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
    let mut waits: Vec<WaitAssoc> = Vec::new();

    // The sink pseudo-lock expands to every mutex declared in the
    // aggregation file: callers acquire them through the telemetry
    // API, never directly.
    for (name, d) in &decls {
        if d.kind == LockKind::Mutex && d.file.ends_with("aggregate.rs") {
            edges.insert((SINK_NODE.to_string(), name.clone()), (d.file.clone(), d.line));
        }
    }

    for f in &files {
        simulate_file(f, &decls, &mut edges, &mut waits, &mut findings);
    }

    let edges: Vec<LockEdge> = edges
        .into_iter()
        .map(|((from, to), (file, line))| LockEdge { from, to, file, line })
        .collect();
    let cycles = find_cycles(&edges);
    for cycle in &cycles {
        let joined = cycle.join(" -> ");
        let site = edges
            .iter()
            .find(|e| cycle.contains(&e.from) && cycle.contains(&e.to))
            .map(|e| (e.file.clone(), e.line))
            .unwrap_or_else(|| ("<synthetic>".to_string(), 0));
        findings.push(Finding {
            lint: "lock-order",
            file: site.0,
            line: site.1,
            message: format!("potential deadlock: lock-order cycle {joined}"),
            hint: "pick one acquisition order for these locks and restructure the \
                   offending function to follow it (see ARCHITECTURE.md \
                   \"Canonical lock order\")"
                .to_string(),
        });
    }
    let canonical = canonical_order(&decls, &edges);
    let locks = decls.into_values().collect();
    let report = LockOrderReport { locks, edges, waits, cycles, canonical };
    (findings, report)
}

/// Finds `name: Mutex<…>` / `name: Arc<Mutex<…>>` / `name: &Mutex<…>`
/// and `name: Condvar` declarations.
fn inventory(files: &[&SourceFile]) -> BTreeMap<String, LockDecl> {
    let mut decls = BTreeMap::new();
    for f in files {
        let code = code_indices(f);
        for (ci, &i) in code.iter().enumerate() {
            if f.test_mask[i] || f.tokens[i].kind != TokenKind::Ident {
                continue;
            }
            // `name :` not followed by another `:` (that would be a
            // `path::segment`).
            if !code.get(ci + 1).is_some_and(|&j| f.tokens[j].is_punct(':'))
                || code.get(ci + 2).is_some_and(|&j| f.tokens[j].is_punct(':'))
            {
                continue;
            }
            // Skip wrappers between the `:` and the primitive type.
            let mut k = ci + 2;
            while code.get(k).is_some_and(|&j| {
                let t = &f.tokens[j];
                t.is_punct('&')
                    || t.is_punct('<')
                    || t.is_ident("mut")
                    || t.is_ident("Arc")
                    || t.kind == TokenKind::Lifetime
            }) {
                k += 1;
            }
            let Some(&j) = code.get(k) else { continue };
            let kind = if f.tokens[j].is_ident("Mutex")
                && code.get(k + 1).is_some_and(|&n| f.tokens[n].is_punct('<'))
            {
                LockKind::Mutex
            } else if f.tokens[j].is_ident("Condvar") {
                LockKind::Condvar
            } else {
                continue;
            };
            let name = f.tokens[i].text.clone();
            decls.entry(name.clone()).or_insert(LockDecl {
                name,
                kind,
                file: f.rel.clone(),
                line: f.tokens[i].line,
            });
        }
    }
    decls
}

/// A live guard during simulation.
struct Guard {
    lock: String,
    bound: Option<String>,
    depth: usize,
    temp: bool,
}

/// Walks every non-test `fn` body in the file.
fn simulate_file(
    f: &SourceFile,
    decls: &BTreeMap<String, LockDecl>,
    edges: &mut BTreeMap<(String, String), (String, u32)>,
    waits: &mut Vec<WaitAssoc>,
    findings: &mut Vec<Finding>,
) {
    let code = code_indices(f);
    let mut ci = 0;
    while ci < code.len() {
        let i = code[ci];
        let is_fn = !f.test_mask[i]
            && f.tokens[i].is_ident("fn")
            && code.get(ci + 1).is_some_and(|&j| f.tokens[j].kind == TokenKind::Ident);
        if !is_fn {
            ci += 1;
            continue;
        }
        // Find the body's `{` (or `;` for a trait method signature).
        let mut k = ci + 2;
        let mut open = None;
        while let Some(&j) = code.get(k) {
            match f.tokens[j].punct() {
                Some('{') => {
                    open = Some(k);
                    break;
                }
                Some(';') => break,
                _ => {}
            }
            k += 1;
        }
        let Some(open) = open else {
            ci = k + 1;
            continue;
        };
        let close = matching_brace(f, &code, open);
        simulate_body(f, &code[open..=close], decls, edges, waits, findings);
        ci = close + 1;
    }
}

/// Code index of the `}` matching the `{` at code index `open`.
fn matching_brace(f: &SourceFile, code: &[usize], open: usize) -> usize {
    let mut depth = 0usize;
    let mut k = open;
    while let Some(&j) = code.get(k) {
        match f.tokens[j].punct() {
            Some('{') => depth += 1,
            Some('}') => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
        k += 1;
    }
    code.len() - 1
}

/// Simulates one function body (`body` is the code-index slice from
/// its `{` to its `}` inclusive).
fn simulate_body(
    f: &SourceFile,
    body: &[usize],
    decls: &BTreeMap<String, LockDecl>,
    edges: &mut BTreeMap<(String, String), (String, u32)>,
    waits: &mut Vec<WaitAssoc>,
    findings: &mut Vec<Finding>,
) {
    let tok = |ci: usize| &f.tokens[body[ci]];
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut stmt_is_let = false;
    let mut let_binding: Option<String> = None;
    let mut ci = 0;
    while ci < body.len() {
        let t = tok(ci);
        match t.punct() {
            Some('{') => {
                depth += 1;
                stmt_is_let = false;
                ci += 1;
                continue;
            }
            Some('}') => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| !g.temp && g.depth <= depth);
                stmt_is_let = false;
                ci += 1;
                continue;
            }
            Some(';') => {
                guards.retain(|g| !g.temp);
                stmt_is_let = false;
                ci += 1;
                continue;
            }
            _ => {}
        }
        if t.is_ident("let") {
            stmt_is_let = true;
            // Binding name: first ident after `let` that isn't `mut`.
            let_binding = (ci + 1..body.len().min(ci + 4))
                .map(tok)
                .find(|n| n.kind == TokenKind::Ident && !n.is_ident("mut"))
                .map(|n| n.text.clone());
            ci += 1;
            continue;
        }
        // `drop(guard)` releases a bound guard early.
        if t.is_ident("drop")
            && ci + 3 < body.len()
            && tok(ci + 1).is_punct('(')
            && tok(ci + 2).kind == TokenKind::Ident
            && tok(ci + 3).is_punct(')')
        {
            let victim = tok(ci + 2).text.clone();
            guards.retain(|g| g.bound.as_deref() != Some(victim.as_str()));
            ci += 4;
            continue;
        }
        // Method-form acquisition: `recv.lock()` chains.
        if t.is_ident("lock")
            && ci >= 2
            && tok(ci - 1).is_punct('.')
            && tok(ci - 2).kind == TokenKind::Ident
            && ci + 1 < body.len()
            && tok(ci + 1).is_punct('(')
        {
            let recv = tok(ci - 2).text.clone();
            if decls.get(&recv).is_some_and(|d| d.kind == LockKind::Mutex) {
                let after = chain_end(f, body, ci + 1);
                acquire(
                    f,
                    body,
                    t.line,
                    &recv,
                    after,
                    stmt_is_let,
                    &let_binding,
                    depth,
                    &mut guards,
                    edges,
                );
                ci = after;
                continue;
            }
        }
        // Helper-form acquisition: `lock_unpoisoned(&x.y.name)` —
        // skip the helper's own definition (`fn lock_unpoisoned`).
        if t.is_ident("lock_unpoisoned")
            && ci + 1 < body.len()
            && tok(ci + 1).is_punct('(')
            && !(ci >= 1 && tok(ci - 1).is_ident("fn"))
        {
            let close = matching_paren(f, body, ci + 1);
            let recv = (ci + 2..close)
                .rev()
                .map(tok)
                .find(|n| n.kind == TokenKind::Ident)
                .map(|n| n.text.clone());
            if let Some(recv) = recv {
                if decls.get(&recv).is_some_and(|d| d.kind == LockKind::Mutex) {
                    let after = chain_end(f, body, ci + 1);
                    acquire(
                        f,
                        body,
                        t.line,
                        &recv,
                        after,
                        stmt_is_let,
                        &let_binding,
                        depth,
                        &mut guards,
                        edges,
                    );
                    ci = after;
                    continue;
                }
            }
            let _ = close;
        }
        // Condvar wait: an association, not an order edge — but
        // holding a *second* guard across the wait is a deadlock
        // recipe (the sleeper keeps it locked).
        if (t.is_ident("wait") || t.is_ident("wait_timeout") || t.is_ident("wait_while"))
            && ci >= 2
            && tok(ci - 1).is_punct('.')
            && tok(ci - 2).kind == TokenKind::Ident
            && ci + 1 < body.len()
            && tok(ci + 1).is_punct('(')
        {
            let recv = tok(ci - 2).text.clone();
            if decls.get(&recv).is_some_and(|d| d.kind == LockKind::Condvar) {
                let close = matching_paren(f, body, ci + 1);
                let arg = (ci + 2..close)
                    .map(tok)
                    .find(|n| n.kind == TokenKind::Ident)
                    .map(|n| n.text.clone());
                let mutex = arg
                    .as_deref()
                    .and_then(|a| guards.iter().find(|g| g.bound.as_deref() == Some(a)))
                    .map(|g| g.lock.clone())
                    .unwrap_or_else(|| "?".to_string());
                waits.push(WaitAssoc {
                    condvar: recv.clone(),
                    mutex: mutex.clone(),
                    file: f.rel.clone(),
                    line: t.line,
                });
                for g in guards.iter().filter(|g| g.lock != mutex) {
                    findings.push(Finding {
                        lint: "lock-order",
                        file: f.rel.clone(),
                        line: t.line,
                        message: format!(
                            "condvar `{recv}` waits while `{}` is still held — the \
                             sleeping thread keeps it locked",
                            g.lock
                        ),
                        hint: "release the second guard before waiting".to_string(),
                    });
                }
                ci = close + 1;
                continue;
            }
        }
        // Telemetry recording runs Sink::record on this thread, which
        // takes the aggregate sink's internal locks.
        if (t.is_ident("add") || t.is_ident("sample") || t.is_ident("stats_snapshot"))
            && ci >= 2
            && tok(ci - 1).is_punct('.')
            && ci + 1 < body.len()
            && tok(ci + 1).is_punct('(')
        {
            let near_tel = (ci.saturating_sub(8)..ci)
                .map(tok)
                .any(|n| n.is_ident("tel") || n.is_ident("telemetry"));
            if near_tel {
                record_edges(f, t.line, SINK_NODE, &guards, edges);
                ci += 2;
                continue;
            }
        }
        // `span!(tel, …)` records a span-start event the same way.
        if t.is_ident("span")
            && ci + 2 < body.len()
            && tok(ci + 1).is_punct('!')
            && tok(ci + 2).is_punct('(')
        {
            let close = matching_paren(f, body, ci + 2);
            let near_tel =
                (ci + 3..close).map(tok).any(|n| n.is_ident("tel") || n.is_ident("telemetry"));
            if near_tel {
                record_edges(f, t.line, SINK_NODE, &guards, edges);
            }
            ci = close + 1;
            continue;
        }
        ci += 1;
    }
}

/// Registers an acquisition of `lock`: edges from every live guard,
/// then the new guard itself. `after` is the code position just past
/// the acquisition chain (used to decide bound vs temporary: a chain
/// that ends the `let` statement binds a guard).
#[allow(clippy::too_many_arguments)]
fn acquire(
    f: &SourceFile,
    body: &[usize],
    line: u32,
    lock: &str,
    after: usize,
    stmt_is_let: bool,
    let_binding: &Option<String>,
    depth: usize,
    guards: &mut Vec<Guard>,
    edges: &mut BTreeMap<(String, String), (String, u32)>,
) {
    record_edges(f, line, lock, guards, edges);
    let clean_end = body.get(after).is_some_and(|&j| f.tokens[j].is_punct(';'));
    let bound = stmt_is_let && clean_end;
    guards.push(Guard {
        lock: lock.to_string(),
        bound: if bound { let_binding.clone() } else { None },
        depth,
        temp: !bound,
    });
}

/// Adds `held → lock` edges for every live guard.
fn record_edges(
    f: &SourceFile,
    line: u32,
    lock: &str,
    guards: &[Guard],
    edges: &mut BTreeMap<(String, String), (String, u32)>,
) {
    for g in guards.iter().filter(|g| g.lock != lock) {
        edges.entry((g.lock.clone(), lock.to_string())).or_insert((f.rel.clone(), line));
    }
}

/// Code position just past an acquisition chain starting at the `(`
/// of `.lock(`: skips the call's parens and any
/// `.expect(…)`/`.unwrap(…)`/`.unwrap_or_else(…)` continuations.
fn chain_end(f: &SourceFile, body: &[usize], open_paren: usize) -> usize {
    let tok = |ci: usize| &f.tokens[body[ci]];
    let mut k = matching_paren(f, body, open_paren) + 1;
    loop {
        if k + 2 < body.len()
            && tok(k).is_punct('.')
            && (tok(k + 1).is_ident("expect")
                || tok(k + 1).is_ident("unwrap")
                || tok(k + 1).is_ident("unwrap_or_else"))
            && tok(k + 2).is_punct('(')
        {
            k = matching_paren(f, body, k + 2) + 1;
        } else {
            return k;
        }
    }
}

/// Code position of the `)` matching the `(` at `open`.
fn matching_paren(f: &SourceFile, body: &[usize], open: usize) -> usize {
    let mut depth = 0usize;
    let mut k = open;
    while k < body.len() {
        match f.tokens[body[k]].punct() {
            Some('(') => depth += 1,
            Some(')') => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
        k += 1;
    }
    body.len() - 1
}

/// DFS cycle detection over the edge list.
fn find_cycles(edges: &[LockEdge]) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for e in edges {
        adj.entry(&e.from).or_default().insert(&e.to);
        nodes.insert(&e.from);
        nodes.insert(&e.to);
    }
    let mut cycles: Vec<Vec<String>> = Vec::new();
    let mut seen_cycles: BTreeSet<BTreeSet<String>> = BTreeSet::new();
    let mut done: BTreeSet<&str> = BTreeSet::new();
    for &start in &nodes {
        let mut on_path: Vec<&str> = Vec::new();
        dfs(start, &adj, &mut on_path, &mut done, &mut cycles, &mut seen_cycles);
    }
    cycles
}

fn dfs<'a>(
    node: &'a str,
    adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
    on_path: &mut Vec<&'a str>,
    done: &mut BTreeSet<&'a str>,
    cycles: &mut Vec<Vec<String>>,
    seen: &mut BTreeSet<BTreeSet<String>>,
) {
    if let Some(pos) = on_path.iter().position(|&n| n == node) {
        let cycle: Vec<String> = on_path[pos..]
            .iter()
            .map(|s| s.to_string())
            .chain(std::iter::once(node.to_string()))
            .collect();
        let key: BTreeSet<String> = cycle.iter().cloned().collect();
        if seen.insert(key) {
            cycles.push(cycle);
        }
        return;
    }
    if done.contains(node) {
        return;
    }
    on_path.push(node);
    if let Some(next) = adj.get(node) {
        for &n in next {
            dfs(n, adj, on_path, done, cycles, seen);
        }
    }
    on_path.pop();
    done.insert(node);
}

/// Kahn's algorithm with alphabetical tie-break over every mutex node
/// (declared or synthetic). Condvars associate with a mutex instead
/// of being acquired, so they are listed in `waits`, not ordered.
fn canonical_order(decls: &BTreeMap<String, LockDecl>, edges: &[LockEdge]) -> Vec<String> {
    let mut nodes: BTreeSet<String> =
        decls.values().filter(|d| d.kind == LockKind::Mutex).map(|d| d.name.clone()).collect();
    for e in edges {
        nodes.insert(e.from.clone());
        nodes.insert(e.to.clone());
    }
    let mut indegree: BTreeMap<&str, usize> = nodes.iter().map(|n| (n.as_str(), 0)).collect();
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.from).or_default().push(&e.to);
        *indegree.entry(&e.to).or_default() += 1;
    }
    let mut ready: BTreeSet<&str> =
        indegree.iter().filter(|&(_, &d)| d == 0).map(|(&n, _)| n).collect();
    let mut order = Vec::new();
    while let Some(&n) = ready.iter().next() {
        ready.remove(n);
        order.push(n.to_string());
        for &m in adj.get(n).into_iter().flatten() {
            let d = indegree.get_mut(m).map(|d| {
                *d -= 1;
                *d
            });
            if d == Some(0) {
                ready.insert(m);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileClass, SourceFile};
    use std::path::PathBuf;

    fn ws(src: &str) -> Workspace {
        let class = FileClass::Library { krate: "pslocal-core".to_string() };
        Workspace {
            root: PathBuf::from("."),
            files: vec![SourceFile::parse("crates/core/src/service.rs", class, src).0],
            load_findings: Vec::new(),
        }
    }

    const DECLS: &str = "struct S { a: Mutex<u32>, b: Mutex<u32>, cv: Condvar }\n";

    #[test]
    fn inventories_fields_and_params() {
        let src = "struct S { a: Arc<Mutex<u32>>, cv: Condvar }\nfn f(b: &Mutex<u8>) {}\n";
        let (_, report) = run(&ws(src));
        let names: Vec<&str> = report.locks.iter().map(|l| l.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "cv"]);
        assert_eq!(report.locks[2].kind, LockKind::Condvar);
    }

    #[test]
    fn opposite_acquisition_orders_are_a_cycle() {
        let src = format!(
            "{DECLS}\
             fn one(s: &S) {{ let g = s.a.lock().unwrap(); let h = s.b.lock().unwrap(); }}\n\
             fn two(s: &S) {{ let g = s.b.lock().unwrap(); let h = s.a.lock().unwrap(); }}\n"
        );
        let (findings, report) = run(&ws(&src));
        assert_eq!(report.cycles.len(), 1, "{report:?}");
        assert!(findings.iter().any(|f| f.lint == "lock-order" && f.message.contains("cycle")));
    }

    #[test]
    fn consistent_order_is_acyclic_with_canonical_listing() {
        let src = format!(
            "{DECLS}\
             fn one(s: &S) {{ let g = s.a.lock().unwrap(); let h = s.b.lock().unwrap(); }}\n\
             fn two(s: &S) {{ let g = s.a.lock().unwrap(); s.b.lock().unwrap().clone(); }}\n"
        );
        let (findings, report) = run(&ws(&src));
        assert!(report.cycles.is_empty(), "{report:?}");
        assert!(findings.is_empty());
        assert_eq!(report.canonical, ["a", "b"]);
        assert_eq!(report.edges.len(), 1);
    }

    #[test]
    fn drop_releases_the_guard_before_the_next_acquisition() {
        let src = format!(
            "{DECLS}\
             fn one(s: &S) {{ let g = s.a.lock().unwrap(); drop(g); let h = s.b.lock().unwrap(); }}\n\
             fn two(s: &S) {{ let g = s.b.lock().unwrap(); s.cheap(); }}\n"
        );
        let (_, report) = run(&ws(&src));
        assert!(report.edges.is_empty(), "{:?}", report.edges);
    }

    #[test]
    fn temporaries_die_at_statement_end() {
        let src = format!(
            "{DECLS}\
             fn one(s: &S) {{ s.a.lock().unwrap().field = 1; let h = s.b.lock().unwrap(); }}\n"
        );
        let (_, report) = run(&ws(&src));
        assert!(report.edges.is_empty(), "{:?}", report.edges);
    }

    #[test]
    fn condvar_wait_is_an_association_not_an_edge() {
        let src = format!(
            "{DECLS}\
             fn one(s: &S) {{ let mut g = s.a.lock().unwrap(); g = s.cv.wait(g).unwrap(); }}\n"
        );
        let (findings, report) = run(&ws(&src));
        assert!(findings.is_empty());
        assert_eq!(report.waits.len(), 1);
        assert_eq!((report.waits[0].condvar.as_str(), report.waits[0].mutex.as_str()), ("cv", "a"));
        assert!(report.edges.is_empty());
    }

    #[test]
    fn waiting_while_holding_a_second_guard_is_flagged() {
        let src = format!(
            "{DECLS}\
             fn one(s: &S) {{ let b = s.b.lock().unwrap(); let mut g = s.a.lock().unwrap(); g = s.cv.wait(g).unwrap(); }}\n"
        );
        let (findings, _) = run(&ws(&src));
        assert!(
            findings.iter().any(|f| f.message.contains("waits while `b` is still held")),
            "{findings:?}"
        );
    }

    #[test]
    fn telemetry_calls_are_sink_acquisitions() {
        let src = format!(
            "{DECLS}\
             fn one(s: &S, tel: &T) {{ let g = s.a.lock().unwrap(); tel.add(C, 1); }}\n"
        );
        let (_, report) = run(&ws(&src));
        assert!(
            report.edges.iter().any(|e| e.from == "a" && e.to == SINK_NODE),
            "{:?}",
            report.edges
        );
    }

    #[test]
    fn helper_form_acquisitions_are_recognized() {
        let src = format!(
            "{DECLS}\
             fn one(s: &S) {{ let g = lock_unpoisoned(&s.a); let h = lock_unpoisoned(&s.b); }}\n\
             fn two(s: &S) {{ let g = lock_unpoisoned(&s.b); let h = lock_unpoisoned(&s.a); }}\n"
        );
        let (findings, report) = run(&ws(&src));
        assert_eq!(report.cycles.len(), 1, "{report:?}");
        assert!(!findings.is_empty());
    }
}
