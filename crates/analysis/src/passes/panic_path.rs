//! Pass: no panic paths in non-test library code.
//!
//! The serving layers promise graceful degradation — typed
//! backpressure, poisoned-lock recovery, per-request fault isolation.
//! A stray `unwrap()` on a library path converts a recoverable
//! condition into a worker-killing panic, so every panic site must be
//! either removed or individually justified with
//! `// pslocal: allow(panic-path, "...")`.
//!
//! Flagged in library code outside test regions:
//!
//! * `.unwrap()` / `.expect(...)` method calls;
//! * `panic!` / `unreachable!` / `todo!` / `unimplemented!`;
//! * in the audited concurrency files only, indexing (`x[i]`,
//!   `&buf[..n]`) with no bound-establishing comment on the same line
//!   or within the two lines above — out-of-bounds indexing panics
//!   exactly like `unwrap`, and these files run on server threads.

use super::code_indices;
use crate::lexer::TokenKind;
use crate::report::Finding;
use crate::source::Workspace;

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Files where bare indexing also needs a written bound argument (the
/// concurrency/server hot paths).
const INDEX_AUDITED: &[&str] = &[
    "crates/core/src/protocol.rs",
    "crates/core/src/server.rs",
    "crates/core/src/service.rs",
    "crates/telemetry/src/aggregate.rs",
];

/// Runs the pass over every library file.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in ws.files.iter().filter(|f| f.is_library()) {
        let code = code_indices(f);
        let index_audited = INDEX_AUDITED.contains(&f.rel.as_str());
        for (ci, &i) in code.iter().enumerate() {
            if f.test_mask[i] {
                continue;
            }
            let t = &f.tokens[i];
            let next = code.get(ci + 1).map(|&j| &f.tokens[j]);
            let prev = ci.checked_sub(1).map(|p| &f.tokens[code[p]]);
            if t.kind == TokenKind::Ident
                && PANIC_MACROS.contains(&t.text.as_str())
                && next.is_some_and(|n| n.is_punct('!'))
            {
                out.push(Finding {
                    lint: "panic-path",
                    file: f.rel.clone(),
                    line: t.line,
                    message: format!("`{}!` in library code", t.text),
                    hint: "return a typed error instead, or justify with \
                           `// pslocal: allow(panic-path, \"...\")`"
                        .to_string(),
                });
                continue;
            }
            if (t.is_ident("unwrap") || t.is_ident("expect"))
                && prev.is_some_and(|p| p.is_punct('.'))
                && next.is_some_and(|n| n.is_punct('('))
            {
                out.push(Finding {
                    lint: "panic-path",
                    file: f.rel.clone(),
                    line: t.line,
                    message: format!("`.{}()` on a library path", t.text),
                    hint: "propagate a typed error, recover (e.g. \
                           `unwrap_or_else(PoisonError::into_inner)` for locks), or \
                           justify with `// pslocal: allow(panic-path, \"...\")`"
                        .to_string(),
                });
                continue;
            }
            if index_audited
                && t.is_punct('[')
                && prev.is_some_and(|p| {
                    p.kind == TokenKind::Ident || p.is_punct(')') || p.is_punct(']')
                })
            {
                let near_comment =
                    (t.line.saturating_sub(2)..=t.line).any(|l| f.comment_lines.contains(&l));
                if !near_comment {
                    out.push(Finding {
                        lint: "panic-path",
                        file: f.rel.clone(),
                        line: t.line,
                        message: "indexing without a nearby bound comment in an audited \
                                  concurrency file"
                            .to_string(),
                        hint: "state why the index is in bounds in a comment on the line \
                               or just above, use `.get()`, or justify with \
                               `// pslocal: allow(panic-path, \"...\")`"
                            .to_string(),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileClass, SourceFile};
    use std::path::PathBuf;

    fn ws(rel: &str, src: &str) -> Workspace {
        let class = FileClass::Library { krate: "pslocal-core".to_string() };
        Workspace {
            root: PathBuf::from("."),
            files: vec![SourceFile::parse(rel, class, src).0],
            load_findings: Vec::new(),
        }
    }

    #[test]
    fn flags_unwrap_expect_and_panic_macros() {
        let src = "fn f() { a.unwrap(); b.expect(\"x\"); panic!(\"y\"); unreachable!(); }\n";
        let found = run(&ws("crates/core/src/x.rs", src));
        assert_eq!(found.len(), 4);
        assert!(found.iter().all(|f| f.lint == "panic-path"));
    }

    #[test]
    fn ignores_test_regions_recoveries_and_strings() {
        let src = r#"
fn f() {
    let g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let s = "x.unwrap() in a string";
}

#[cfg(test)]
mod tests {
    fn t() { a.unwrap(); panic!("fine here"); }
}
"#;
        assert!(run(&ws("crates/core/src/x.rs", src)).is_empty());
    }

    #[test]
    fn indexing_needs_a_bound_comment_only_in_audited_files() {
        let bare = "fn f(xs: &[u32]) -> u32 { xs[0] }\n";
        assert_eq!(run(&ws("crates/core/src/service.rs", bare)).len(), 1);
        assert!(run(&ws("crates/core/src/other.rs", bare)).is_empty());
        let commented =
            "fn f(xs: &[u32]) -> u32 {\n    // xs is non-empty: checked by caller\n    xs[0]\n}\n";
        assert!(run(&ws("crates/core/src/service.rs", commented)).is_empty());
    }

    #[test]
    fn array_types_and_attributes_are_not_indexing() {
        let src = "#[derive(Debug)]\nstruct S { buf: [u8; 4] }\nfn f() -> Vec<[u8; 2]> { vec![[0, 0]] }\n";
        assert!(run(&ws("crates/core/src/service.rs", src)).is_empty());
    }
}
