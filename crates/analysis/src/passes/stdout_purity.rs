//! Pass: stdout is a result channel, not a log.
//!
//! The reproduction's core contract is byte-diffable stdout: the CLI's
//! result writer is the **only** code allowed to print. A `println!`
//! anywhere in a library crate interleaves with result lines and
//! silently breaks `diff`-based verification, so library code may
//! never call `print!`/`println!` (stderr via `eprint!`/`eprintln!`
//! stays fine). Binaries — the CLI — own their stdout and are exempt.

use super::code_indices;
use crate::report::Finding;
use crate::source::Workspace;

/// Runs the pass over every library file.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in ws.files.iter().filter(|f| f.is_library()) {
        let code = code_indices(f);
        for (ci, &i) in code.iter().enumerate() {
            if f.test_mask[i] {
                continue;
            }
            let t = &f.tokens[i];
            if (t.is_ident("print") || t.is_ident("println"))
                && code.get(ci + 1).is_some_and(|&j| f.tokens[j].is_punct('!'))
            {
                out.push(Finding {
                    lint: "stdout-purity",
                    file: f.rel.clone(),
                    line: t.line,
                    message: format!("`{}!` in a library crate", t.text),
                    hint: "return the string to the caller or log to stderr \
                           (`eprintln!`); stdout is reserved for byte-diffable results"
                        .to_string(),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileClass, SourceFile};
    use std::path::PathBuf;

    fn ws_with(class: FileClass, src: &str) -> Workspace {
        Workspace {
            root: PathBuf::from("."),
            files: vec![SourceFile::parse("crates/x/src/lib.rs", class, src).0],
            load_findings: Vec::new(),
        }
    }

    #[test]
    fn flags_print_and_println_in_libraries_only() {
        let src = "fn f() { println!(\"x\"); print!(\"y\"); eprintln!(\"fine\"); }\n";
        let lib = ws_with(FileClass::Library { krate: "pslocal-x".to_string() }, src);
        assert_eq!(run(&lib).len(), 2);
        let bin = ws_with(FileClass::Binary, src);
        assert!(run(&bin).is_empty());
    }

    #[test]
    fn doc_comments_and_tests_are_exempt() {
        let src = "//! ```\n//! println!(\"doc\");\n//! ```\n#[cfg(test)]\nmod t { fn f() { println!(\"t\"); } }\n";
        let lib = ws_with(FileClass::Library { krate: "pslocal-x".to_string() }, src);
        assert!(run(&lib).is_empty());
    }
}
