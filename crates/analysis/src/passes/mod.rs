//! The lint passes. Each pass is a function from a [`Workspace`] to
//! findings; [`crate::analyze`] runs them all and applies
//! suppressions afterwards.
//!
//! [`Workspace`]: crate::source::Workspace

pub mod codec_drift;
pub mod hygiene;
pub mod lock_order;
pub mod panic_path;
pub mod stdout_purity;

use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// Indices of `file.tokens` that are code (not comments), in order.
/// Passes match token patterns over this view and map back to raw
/// indices for test-mask and line lookups.
pub(crate) fn code_indices(file: &SourceFile) -> Vec<usize> {
    (0..file.tokens.len())
        .filter(|&i| {
            !matches!(file.tokens[i].kind, TokenKind::LineComment | TokenKind::BlockComment)
        })
        .collect()
}
