//! Pass: crate-level hygiene — `#![forbid(unsafe_code)]` everywhere,
//! justified `unsafe` only, and doc coverage on `pslocal-core`'s
//! public surface.
//!
//! Three checks:
//!
//! * **forbid-unsafe**: every crate root (`src/lib.rs`) must carry
//!   `#![forbid(unsafe_code)]` — the workspace's standing rule.
//! * **unsafe-ffi**: any `unsafe` token (library *or* binary) is a
//!   finding unless justified with
//!   `// pslocal: allow(unsafe-ffi, "...")`. Today the one sanctioned
//!   site is the CLI's signal-handler FFI.
//! * **doc-coverage**: `pub` items of `pslocal-core` (the API other
//!   layers build on) need a `///` doc comment. `pub use` re-exports
//!   and `pub mod` declarations are exempt — their targets carry the
//!   docs.

use super::code_indices;
use crate::lexer::TokenKind;
use crate::report::Finding;
use crate::source::{FileClass, SourceFile, Workspace};

/// Item keywords a documented `pub` can introduce.
const ITEM_KEYWORDS: &[&str] =
    &["fn", "struct", "enum", "trait", "const", "static", "type", "union"];

/// Runs the pass over every non-test file.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in &ws.files {
        if matches!(f.class, FileClass::TestDir) {
            continue;
        }
        let code = code_indices(f);
        if f.is_crate_root() && !has_forbid_unsafe(f, &code) {
            out.push(Finding {
                lint: "hygiene",
                file: f.rel.clone(),
                line: 1,
                message: "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
                hint: "add `#![forbid(unsafe_code)]` next to the other crate attributes"
                    .to_string(),
            });
        }
        for &i in &code {
            if !f.test_mask[i] && f.tokens[i].is_ident("unsafe") {
                out.push(Finding {
                    lint: "unsafe-ffi",
                    file: f.rel.clone(),
                    line: f.tokens[i].line,
                    message: "`unsafe` block or function".to_string(),
                    hint: "remove it, or justify with \
                           `// pslocal: allow(unsafe-ffi, \"...\")`"
                        .to_string(),
                });
            }
        }
        if matches!(&f.class, FileClass::Library { krate } if krate == "pslocal-core") {
            doc_coverage(f, &code, &mut out);
        }
    }
    out
}

/// Whether the file carries the inner attribute
/// `#![forbid(unsafe_code)]` (token-sequence match, so a commented-out
/// copy does not count).
fn has_forbid_unsafe(f: &SourceFile, code: &[usize]) -> bool {
    code.windows(8).any(|w| {
        let t = |k: usize| &f.tokens[w[k]];
        t(0).is_punct('#')
            && t(1).is_punct('!')
            && t(2).is_punct('[')
            && t(3).is_ident("forbid")
            && t(4).is_punct('(')
            && t(5).is_ident("unsafe_code")
            && t(6).is_punct(')')
            && t(7).is_punct(']')
    })
}

/// Flags undocumented `pub` items.
fn doc_coverage(f: &SourceFile, code: &[usize], out: &mut Vec<Finding>) {
    for (ci, &i) in code.iter().enumerate() {
        if f.test_mask[i] || !f.tokens[i].is_ident("pub") {
            continue;
        }
        // Skip a restriction: `pub(crate)` / `pub(in path)` items are
        // not public API.
        let mut k = ci + 1;
        if code.get(k).is_some_and(|&j| f.tokens[j].is_punct('(')) {
            continue;
        }
        let Some(&kw_idx) = code.get(k) else { continue };
        let kw = &f.tokens[kw_idx];
        if !ITEM_KEYWORDS.contains(&kw.text.as_str()) {
            continue; // fields, `pub use`, `pub mod`, macros
        }
        k += 1;
        let name =
            code.get(k).map(|&j| f.tokens[j].text.clone()).unwrap_or_else(|| "?".to_string());
        if !documented(f, i) {
            out.push(Finding {
                lint: "doc-coverage",
                file: f.rel.clone(),
                line: f.tokens[i].line,
                message: format!("undocumented `pub {} {name}`", kw.text),
                hint: "add a `///` doc comment — pslocal-core is the API surface the \
                       other layers build on"
                    .to_string(),
            });
        }
    }
}

/// Whether the item whose first token (e.g. `pub`) sits at raw index
/// `start` has a doc comment above it, scanning back over attributes
/// and ordinary comments.
fn documented(f: &SourceFile, start: usize) -> bool {
    let mut j = start;
    while j > 0 {
        j -= 1;
        let t = &f.tokens[j];
        match t.kind {
            TokenKind::LineComment => {
                if t.text.starts_with("///") {
                    return true;
                }
                // A plain `//` comment between docs and item is fine.
            }
            TokenKind::BlockComment => {
                if t.text.starts_with("/**") {
                    return true;
                }
            }
            TokenKind::Punct if t.text == "]" => {
                // Skip one attribute backwards: `]` … matching `[`,
                // then its `#`.
                let mut depth = 1usize;
                while j > 0 && depth > 0 {
                    j -= 1;
                    match f.tokens[j].punct() {
                        Some('[') => depth -= 1,
                        Some(']') => depth += 1,
                        _ => {}
                    }
                }
                if j > 0 && f.tokens[j - 1].is_punct('#') {
                    j -= 1;
                } else {
                    return false;
                }
            }
            _ => return false,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileClass, SourceFile};
    use std::path::PathBuf;

    fn ws(rel: &str, krate: &str, src: &str) -> Workspace {
        let class = FileClass::Library { krate: krate.to_string() };
        Workspace {
            root: PathBuf::from("."),
            files: vec![SourceFile::parse(rel, class, src).0],
            load_findings: Vec::new(),
        }
    }

    #[test]
    fn missing_forbid_unsafe_is_flagged_at_crate_roots_only() {
        let src = "//! docs\npub fn f() {}\n";
        let root = run(&ws("crates/core/src/lib.rs", "pslocal-core", src));
        assert!(root.iter().any(|f| f.lint == "hygiene"));
        let module = run(&ws("crates/core/src/graph.rs", "pslocal-core", src));
        assert!(module.iter().all(|f| f.lint != "hygiene"));
    }

    #[test]
    fn forbid_unsafe_attribute_satisfies_the_check() {
        let src = "#![forbid(unsafe_code)]\n/// doc\npub fn f() {}\n";
        let found = run(&ws("crates/core/src/lib.rs", "pslocal-core", src));
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn unsafe_tokens_are_flagged() {
        let src = "fn f() { unsafe { ffi(); } }\n";
        let found = run(&ws("crates/x/src/m.rs", "pslocal-x", src));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].lint, "unsafe-ffi");
    }

    #[test]
    fn doc_coverage_applies_to_core_pub_items() {
        let src = "/// documented\npub fn a() {}\n#[derive(Debug)]\n/// above attrs\npub struct B;\npub fn c() {}\npub(crate) fn d() {}\npub use other::Thing;\n";
        let core = run(&ws("crates/core/src/m.rs", "pslocal-core", src));
        let undocumented: Vec<_> = core.iter().filter(|f| f.lint == "doc-coverage").collect();
        assert_eq!(undocumented.len(), 1, "{core:?}");
        assert!(undocumented[0].message.contains("pub fn c"));
        // Other crates are not held to core's doc bar.
        let other = run(&ws("crates/x/src/m.rs", "pslocal-x", src));
        assert!(other.iter().all(|f| f.lint != "doc-coverage"));
    }

    #[test]
    fn doc_comment_before_attributes_counts() {
        let src = "/// doc\n#[derive(Debug, Clone)]\n#[repr(C)]\npub struct S;\n";
        let found = run(&ws("crates/core/src/m.rs", "pslocal-core", src));
        assert!(found.is_empty(), "{found:?}");
    }
}
