//! Pass: wire-protocol literals live in `protocol.rs` and nowhere
//! else.
//!
//! The JSONL schema's outcome labels (`"ok"`, `"rejected"`,
//! `"deadline_exceeded"`, …) are a wire contract shared by `pslocal
//! batch`, the TCP server, and every client that diffs their output.
//! Re-typing one of these strings at a call site is how codecs drift:
//! the copy compiles, ships, and disagrees the first time the
//! canonical spelling changes. Outside
//! `crates/core/src/protocol.rs`, code must use the `OUTCOME_*`
//! constants `protocol.rs` exports.

use super::code_indices;
use crate::lexer::{str_content, TokenKind};
use crate::report::Finding;
use crate::source::{FileClass, Workspace};

/// The single file allowed to spell wire literals out.
const CODEC_HOME: &str = "crates/core/src/protocol.rs";

/// The outcome labels of the JSONL response schema.
pub const WIRE_LITERALS: &[&str] =
    &["ok", "rejected", "deadline_exceeded", "failed", "overloaded", "bad_request"];

/// Runs the pass over library and binary files (tests may spell
/// literals out — they *should* pin the wire format independently).
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in &ws.files {
        if matches!(f.class, FileClass::TestDir) || f.rel == CODEC_HOME {
            continue;
        }
        let code = code_indices(f);
        for &i in &code {
            if f.test_mask[i] || f.tokens[i].kind != TokenKind::Str {
                continue;
            }
            let Some(content) = str_content(&f.tokens[i]) else { continue };
            if WIRE_LITERALS.contains(&content.as_str()) {
                out.push(Finding {
                    lint: "codec-drift",
                    file: f.rel.clone(),
                    line: f.tokens[i].line,
                    message: format!("wire literal \"{content}\" outside {CODEC_HOME}"),
                    hint: format!(
                        "use `protocol::OUTCOME_{}` so the spelling has one home",
                        content.to_uppercase()
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileClass, SourceFile};
    use std::path::PathBuf;

    fn ws(rel: &str, class: FileClass, src: &str) -> Workspace {
        Workspace {
            root: PathBuf::from("."),
            files: vec![SourceFile::parse(rel, class, src).0],
            load_findings: Vec::new(),
        }
    }

    #[test]
    fn flags_wire_literals_outside_protocol() {
        let src = "fn f() -> &'static str { \"deadline_exceeded\" }\n";
        let lib = FileClass::Library { krate: "pslocal-core".to_string() };
        let found = run(&ws("crates/core/src/service.rs", lib, src));
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("deadline_exceeded"));
        assert!(found[0].hint.contains("OUTCOME_DEADLINE_EXCEEDED"));
    }

    #[test]
    fn protocol_rs_binaries_and_tests_have_their_own_rules() {
        let src = "fn f() { let a = \"ok\"; let b = \"rejected\"; }\n";
        let lib = FileClass::Library { krate: "pslocal-core".to_string() };
        assert!(run(&ws("crates/core/src/protocol.rs", lib, src)).is_empty());
        assert!(run(&ws("tests/server.rs", FileClass::TestDir, src)).is_empty());
        // Binaries are NOT exempt: the CLI must use the constants too.
        assert_eq!(run(&ws("src/bin/pslocal.rs", FileClass::Binary, src)).len(), 2);
    }

    #[test]
    fn non_wire_strings_pass() {
        let src = "fn f() { let a = \"okay\"; let b = \"requests_failed\"; }\n";
        let lib = FileClass::Library { krate: "pslocal-core".to_string() };
        assert!(run(&ws("crates/core/src/service.rs", lib, src)).is_empty());
    }
}
