//! Workspace-specific static analysis for the pslocal reproduction.
//!
//! The serving layers carry invariants `cargo test` cannot see: lock
//! acquisition order across threads, stdout byte-purity, no panic
//! paths in library code, one home for wire-protocol literals. This
//! crate lexes the workspace's own sources (a hand-rolled,
//! comment/string-aware lexer — no `syn`, no dependencies) and runs a
//! pluggable set of lint passes over the token streams, surfaced as
//! `pslocal lint` and gated in CI.
//!
//! # Passes
//!
//! | lint            | rule                                                   |
//! |-----------------|--------------------------------------------------------|
//! | `lock-order`    | static lock graph of the concurrency files is acyclic  |
//! | `panic-path`    | no `unwrap`/`expect`/`panic!` in non-test library code |
//! | `stdout-purity` | library crates never `print!`/`println!`               |
//! | `codec-drift`   | wire literals only in `crates/core/src/protocol.rs`    |
//! | `hygiene`       | crate roots carry `#![forbid(unsafe_code)]`            |
//! | `unsafe-ffi`    | every `unsafe` is individually justified               |
//! | `doc-coverage`  | `pub` items of `pslocal-core` are documented           |
//!
//! # Suppressions
//!
//! A finding can be waived inline — on its own line or the line above:
//!
//! ```text
//! // pslocal: allow(panic-path, "lock poisoning is fatal by design here")
//! ```
//!
//! The justification string is mandatory (`bad-allow` otherwise), and
//! an allow that suppresses nothing is itself a finding
//! (`unused-allow`), so waivers cannot rot in place.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod passes;
pub mod report;
pub mod source;

use std::collections::HashMap;
use std::path::Path;

pub use passes::lock_order::{LockOrderReport, SINK_NODE};
pub use report::{render_json, render_text, sort_findings, Finding};
pub use source::{FileClass, SourceFile, Workspace};

/// Lint names an `allow(...)` may reference.
pub const LINTS: &[&str] = &[
    "codec-drift",
    "doc-coverage",
    "hygiene",
    "lock-order",
    "panic-path",
    "stdout-purity",
    "unsafe-ffi",
];

/// Result of [`analyze`]: the surviving findings plus the lock-order
/// report and scan statistics.
#[derive(Debug)]
pub struct Analysis {
    /// Findings after suppression, in (file, line, lint) order.
    pub findings: Vec<Finding>,
    /// The lock-order audit's full output.
    pub lock_report: LockOrderReport,
    /// Files lexed and linted.
    pub files_scanned: usize,
    /// Findings waived by justified `allow(...)` comments.
    pub suppressed: usize,
}

/// Loads the workspace at `root`, runs every pass, and applies
/// suppressions.
///
/// # Errors
///
/// Any I/O error from walking or reading the tree.
pub fn analyze(root: &Path) -> std::io::Result<Analysis> {
    let ws = Workspace::load(root)?;
    let mut findings = ws.load_findings.clone();
    findings.extend(passes::panic_path::run(&ws));
    findings.extend(passes::stdout_purity::run(&ws));
    findings.extend(passes::codec_drift::run(&ws));
    findings.extend(passes::hygiene::run(&ws));
    let (lock_findings, lock_report) = passes::lock_order::run(&ws);
    findings.extend(lock_findings);
    let (mut findings, suppressed) = apply_allows(&ws, findings);
    sort_findings(&mut findings);
    Ok(Analysis { findings, lock_report, files_scanned: ws.files.len(), suppressed })
}

/// Drops findings covered by a justified allow on the same line or
/// the line above; reports unknown-lint allows as `bad-allow` and
/// never-matching allows as `unused-allow`.
fn apply_allows(ws: &Workspace, findings: Vec<Finding>) -> (Vec<Finding>, usize) {
    // (file, allow index) → used?
    let mut used: HashMap<(usize, usize), bool> = HashMap::new();
    let mut out = Vec::new();
    let mut suppressed = 0usize;
    let file_idx: HashMap<&str, usize> =
        ws.files.iter().enumerate().map(|(i, f)| (f.rel.as_str(), i)).collect();
    for (fi, f) in ws.files.iter().enumerate() {
        for (ai, allow) in f.allows.iter().enumerate() {
            used.insert((fi, ai), false);
            if !LINTS.contains(&allow.lint.as_str()) {
                out.push(Finding {
                    lint: "bad-allow",
                    file: f.rel.clone(),
                    line: allow.line,
                    message: format!("allow() names unknown lint `{}`", allow.lint),
                    hint: format!("known lints: {}", LINTS.join(", ")),
                });
                used.insert((fi, ai), true); // already reported; not also "unused"
            }
        }
    }
    for finding in findings {
        let waivable = LINTS.contains(&finding.lint);
        let covering = file_idx.get(finding.file.as_str()).and_then(|&fi| {
            ws.files[fi]
                .allows
                .iter()
                .enumerate()
                .find(|(_, a)| {
                    a.lint == finding.lint
                        && LINTS.contains(&a.lint.as_str())
                        && a.covers(finding.line)
                })
                .map(|(ai, _)| (fi, ai))
        });
        match covering {
            Some(key) if waivable => {
                used.insert(key, true);
                suppressed += 1;
            }
            _ => out.push(finding),
        }
    }
    for ((fi, ai), was_used) in used {
        if !was_used {
            let f = &ws.files[fi];
            let a = &f.allows[ai];
            out.push(Finding {
                lint: "unused-allow",
                file: f.rel.clone(),
                line: a.line,
                message: format!("allow({}) suppresses nothing", a.lint),
                hint: "delete the stale waiver (or move it next to the finding it \
                       was written for)"
                    .to_string(),
            });
        }
    }
    (out, suppressed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileClass;
    use std::path::PathBuf;

    fn ws_of(files: Vec<SourceFile>) -> Workspace {
        Workspace { root: PathBuf::from("."), files, load_findings: Vec::new() }
    }

    fn lib(rel: &str, src: &str) -> SourceFile {
        SourceFile::parse(rel, FileClass::Library { krate: "pslocal-core".to_string() }, src).0
    }

    fn run_all(ws: &Workspace) -> (Vec<Finding>, usize) {
        let mut findings = ws.load_findings.clone();
        findings.extend(passes::panic_path::run(ws));
        findings.extend(passes::stdout_purity::run(ws));
        let (f, s) = apply_allows(ws, findings);
        (f, s)
    }

    #[test]
    fn justified_allow_suppresses_same_line_and_next_line() {
        let src = "\
fn f() {
    // pslocal: allow(panic-path, \"worker panic is a bug; propagate\")
    x.unwrap();
    y.unwrap(); // pslocal: allow(panic-path, \"same-line waiver\")
    z.unwrap();
}
";
        let ws = ws_of(vec![lib("crates/core/src/x.rs", src)]);
        let (findings, suppressed) = run_all(&ws);
        assert_eq!(suppressed, 2);
        let panics: Vec<_> = findings.iter().filter(|f| f.lint == "panic-path").collect();
        assert_eq!(panics.len(), 1);
        assert_eq!(panics[0].line, 5);
    }

    #[test]
    fn unused_allow_is_a_finding() {
        let src = "// pslocal: allow(stdout-purity, \"nothing here prints\")\nfn f() {}\n";
        let ws = ws_of(vec![lib("crates/core/src/x.rs", src)]);
        let (findings, suppressed) = run_all(&ws);
        assert_eq!(suppressed, 0);
        assert!(findings.iter().any(|f| f.lint == "unused-allow"));
    }

    #[test]
    fn unknown_lint_allow_is_bad_allow_not_unused() {
        let src = "// pslocal: allow(no-such-lint, \"why\")\nfn f() {}\n";
        let ws = ws_of(vec![lib("crates/core/src/x.rs", src)]);
        let (findings, _) = run_all(&ws);
        assert_eq!(findings.iter().filter(|f| f.lint == "bad-allow").count(), 1);
        assert!(findings.iter().all(|f| f.lint != "unused-allow"));
    }

    #[test]
    fn allow_of_wrong_lint_does_not_suppress() {
        let src =
            "fn f() {\n    // pslocal: allow(stdout-purity, \"mismatched\")\n    x.unwrap();\n}\n";
        let ws = ws_of(vec![lib("crates/core/src/x.rs", src)]);
        let (findings, suppressed) = run_all(&ws);
        assert_eq!(suppressed, 0);
        assert!(findings.iter().any(|f| f.lint == "panic-path"));
        assert!(findings.iter().any(|f| f.lint == "unused-allow"));
    }
}
