//! Findings and the text/JSON renderers behind `pslocal lint`.

use std::fmt;

/// One lint finding, anchored to a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable lint name (`panic-path`, `lock-order`, …).
    pub lint: &'static str,
    /// Workspace-relative path (unix separators).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix it (shown under `--fix-hints`, always in `--json`).
    pub hint: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.lint, self.message)
    }
}

/// Sorts findings into the stable report order: file, then line, then
/// lint name.
pub fn sort_findings(findings: &mut [Finding]) {
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.lint).cmp(&(b.file.as_str(), b.line, b.lint)));
}

/// Escapes a string for embedding in the JSON report.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as the human-readable report: one line each, plus
/// an optional indented fix hint.
pub fn render_text(findings: &[Finding], fix_hints: bool) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_string());
        out.push('\n');
        if fix_hints && !f.hint.is_empty() {
            out.push_str("    hint: ");
            out.push_str(&f.hint);
            out.push('\n');
        }
    }
    out
}

/// Renders the machine-readable report: a single JSON object with a
/// frozen schema (`pslocal-lint/v1`) so CI can diff finding sets
/// mechanically.
pub fn render_json(findings: &[Finding], files_scanned: usize, suppressed: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"pslocal-lint/v1\",\n");
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str(&format!("  \"suppressed\": {suppressed},\n"));
    out.push_str(&format!("  \"finding_count\": {},\n", findings.len()));
    out.push_str("  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"lint\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \
             \"hint\": \"{}\"}}{}\n",
            f.lint,
            json_escape(&f.file),
            f.line,
            json_escape(&f.message),
            json_escape(&f.hint),
            if i + 1 < findings.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: u32, lint: &'static str) -> Finding {
        Finding {
            lint,
            file: file.to_string(),
            line,
            message: "m".to_string(),
            hint: "h".to_string(),
        }
    }

    #[test]
    fn sorted_by_file_line_lint() {
        let mut fs = vec![
            finding("b.rs", 1, "panic-path"),
            finding("a.rs", 9, "panic-path"),
            finding("a.rs", 2, "stdout-purity"),
            finding("a.rs", 2, "codec-drift"),
        ];
        sort_findings(&mut fs);
        let order: Vec<(String, u32, &str)> =
            fs.iter().map(|f| (f.file.clone(), f.line, f.lint)).collect();
        assert_eq!(
            order,
            vec![
                ("a.rs".to_string(), 2, "codec-drift"),
                ("a.rs".to_string(), 2, "stdout-purity"),
                ("a.rs".to_string(), 9, "panic-path"),
                ("b.rs".to_string(), 1, "panic-path"),
            ]
        );
    }

    #[test]
    fn json_report_is_well_formed_and_escaped() {
        let fs = vec![Finding {
            lint: "codec-drift",
            file: "crates/x.rs".to_string(),
            line: 3,
            message: "literal \"ok\" outside protocol.rs".to_string(),
            hint: String::new(),
        }];
        let json = render_json(&fs, 10, 2);
        assert!(json.contains("\"schema\": \"pslocal-lint/v1\""));
        assert!(json.contains("literal \\\"ok\\\" outside protocol.rs"));
        assert!(json.contains("\"files_scanned\": 10"));
        assert!(json.contains("\"suppressed\": 2"));
    }

    #[test]
    fn text_report_includes_hints_only_on_request() {
        let fs = vec![finding("a.rs", 1, "panic-path")];
        assert!(!render_text(&fs, false).contains("hint:"));
        assert!(render_text(&fs, true).contains("    hint: h"));
    }
}
