//! A lightweight Rust lexer: just enough token structure for lint
//! passes to reason about code without a full parser.
//!
//! The lexer is **comment- and string-aware** — the two things naive
//! `grep`-style linting gets wrong. `unwrap` inside a doc example or a
//! format string is not a call; a `"deadline_exceeded"` inside a
//! comment is not codec drift. Everything else (expressions, items,
//! generics) stays a flat token stream: passes match small token
//! patterns (`. unwrap ( )`, `# ! [ forbid ( unsafe_code ) ]`) instead
//! of walking an AST, which keeps the engine dependency-free and the
//! failure modes enumerable.
//!
//! Handled faithfully:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments;
//! * cooked strings with escapes, raw strings with any `#` arity
//!   (`r"…"`, `r#"…"#`, `br##"…"##`), byte strings, char literals;
//! * the `'a` lifetime vs `'a'` char-literal ambiguity;
//! * raw identifiers (`r#type`);
//! * line numbers on every token (1-based, for findings).

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unwrap`, `r#type`).
    Ident,
    /// A lifetime such as `'a` (including `'static`, `'_`).
    Lifetime,
    /// Numeric literal, suffix included (`0xC0FFEE`, `1_000u64`, `0.5`).
    Number,
    /// String literal of any flavor; [`Token::text`] keeps the quotes,
    /// [`str_content`] recovers the unescaped payload.
    Str,
    /// Char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// `//`-style comment, terminator excluded.
    LineComment,
    /// `/* … */` comment, nesting folded into one token.
    BlockComment,
    /// Any other single character (`.`, `!`, `[`, `::` is two tokens).
    Punct,
}

/// One lexed token: kind, verbatim text, and the 1-based line of its
/// first character.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// The exact source slice.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Token {
    /// The token's single punctuation character, if it is one.
    pub fn punct(&self) -> Option<char> {
        match self.kind {
            TokenKind::Punct => self.text.chars().next(),
            _ => None,
        }
    }

    /// Whether this token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == word
    }

    /// Whether this token is the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// The unescaped payload of a [`TokenKind::Str`] token: quotes and raw
/// markers stripped, cooked escapes decoded. Returns `None` for
/// non-string tokens.
pub fn str_content(token: &Token) -> Option<String> {
    if token.kind != TokenKind::Str {
        return None;
    }
    let t = token.text.as_str();
    let t = t.strip_prefix('b').unwrap_or(t);
    if let Some(raw) = t.strip_prefix('r') {
        let hashes = raw.chars().take_while(|&c| c == '#').count();
        let body = &raw[hashes..];
        let body = body.strip_prefix('"')?;
        let body = body.strip_suffix(&("\"".to_string() + &"#".repeat(hashes)))?;
        return Some(body.to_string());
    }
    let body = t.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(body.len());
    let mut chars = body.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('0') => out.push('\0'),
            // `\u{..}`, `\x..` and friends: the passes only compare
            // against plain-ASCII wire literals, so a lossy passthrough
            // of the escape body is sufficient and keeps this tiny.
            Some(other) => out.push(other),
            None => break,
        }
    }
    Some(out)
}

/// Lexes `source` into tokens. Never fails: malformed input (an
/// unterminated string, a stray byte) degrades into `Punct`/truncated
/// tokens instead of an error, so the linter can still report on a
/// file that `rustc` would reject.
pub fn lex(source: &str) -> Vec<Token> {
    Lexer { src: source.as_bytes(), pos: 0, line: 1, tokens: Vec::new() }.run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.src.len() {
            let start = self.pos;
            let line = self.line;
            let c = self.src[self.pos];
            match c {
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'\n' => {
                    self.pos += 1;
                    self.line += 1;
                }
                b'/' if self.peek(1) == Some(b'/') => {
                    while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                    self.push(TokenKind::LineComment, start, line);
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.block_comment();
                    self.push(TokenKind::BlockComment, start, line);
                }
                b'"' => {
                    self.cooked_string();
                    self.push(TokenKind::Str, start, line);
                }
                b'\'' => self.quote(start, line),
                b'r' | b'b' if self.raw_or_byte_literal(start, line) => {}
                c if c == b'_' || c.is_ascii_alphabetic() => {
                    self.ident();
                    self.push(TokenKind::Ident, start, line);
                }
                c if c.is_ascii_digit() => {
                    self.number();
                    self.push(TokenKind::Number, start, line);
                }
                _ => {
                    // Multi-byte UTF-8 (in identifiers we don't emit, or
                    // stray symbols) advances past the whole character.
                    let mut end = self.pos + 1;
                    while end < self.src.len() && (self.src[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    self.pos = end;
                    self.push(TokenKind::Punct, start, line);
                }
            }
        }
        self.tokens
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32) {
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.tokens.push(Token { kind, text, line });
    }

    fn bump_line_feeds(&mut self, from: usize, to: usize) {
        self.line += self.src[from..to].iter().filter(|&&b| b == b'\n').count() as u32;
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.src[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.src[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.pos += 1;
            }
        }
        self.bump_line_feeds(start, self.pos);
    }

    fn cooked_string(&mut self) {
        let start = self.pos;
        self.pos += 1;
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => self.pos += 2,
                b'"' => {
                    self.pos += 1;
                    break;
                }
                _ => self.pos += 1,
            }
        }
        self.pos = self.pos.min(self.src.len());
        self.bump_line_feeds(start, self.pos);
    }

    fn raw_string(&mut self) {
        // At `r`; consume r, hashes, quote, body up to `"###…` match.
        let start = self.pos;
        self.pos += 1;
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        let closer: Vec<u8> =
            std::iter::once(b'"').chain(std::iter::repeat_n(b'#', hashes)).collect();
        while self.pos < self.src.len() {
            if self.src[self.pos] == b'"' && self.src[self.pos..].starts_with(&closer) {
                self.pos += closer.len();
                break;
            }
            self.pos += 1;
        }
        self.bump_line_feeds(start, self.pos);
    }

    /// Handles the `r` / `b` prefixes: raw strings, byte strings, raw
    /// identifiers, byte chars — or plain identifiers starting with
    /// r/b. Returns whether it consumed anything.
    fn raw_or_byte_literal(&mut self, start: usize, line: u32) -> bool {
        let c = self.src[self.pos];
        let next = self.peek(1);
        match (c, next) {
            // r"…" or r#"…"# (any # arity) — a raw string.
            (b'r', Some(b'"')) => {
                self.raw_string();
                self.push(TokenKind::Str, start, line);
                true
            }
            (b'r', Some(b'#')) => {
                // r#"…"# raw string vs r#ident raw identifier.
                let mut i = self.pos + 1;
                while self.src.get(i) == Some(&b'#') {
                    i += 1;
                }
                if self.src.get(i) == Some(&b'"') {
                    self.raw_string();
                    self.push(TokenKind::Str, start, line);
                } else {
                    self.pos += 2; // r#
                    self.ident();
                    self.push(TokenKind::Ident, start, line);
                }
                true
            }
            // b"…", br"…", br#"…"#, b'…'
            (b'b', Some(b'"')) => {
                self.pos += 1;
                self.cooked_string();
                self.push(TokenKind::Str, start, line);
                true
            }
            (b'b', Some(b'r')) if matches!(self.peek(2), Some(b'"') | Some(b'#')) => {
                self.pos += 1;
                self.raw_string();
                self.push(TokenKind::Str, start, line);
                true
            }
            (b'b', Some(b'\'')) => {
                self.pos += 1;
                self.char_literal();
                self.push(TokenKind::Char, start, line);
                true
            }
            _ => false,
        }
    }

    fn ident(&mut self) {
        while self.peek(0).is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80) {
            self.pos += 1;
        }
    }

    fn number(&mut self) {
        self.pos += 1;
        while let Some(c) = self.peek(0) {
            if c == b'_' || c.is_ascii_alphanumeric() {
                self.pos += 1;
            } else if c == b'.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // `1.5` continues the number; `0..n` does not.
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn char_literal(&mut self) {
        // At the opening `'` of a definite char literal.
        self.pos += 1;
        if self.peek(0) == Some(b'\\') {
            self.pos += 2;
        } else {
            // One UTF-8 character.
            self.pos += 1;
            while self.pos < self.src.len() && (self.src[self.pos] & 0xC0) == 0x80 {
                self.pos += 1;
            }
        }
        if self.peek(0) == Some(b'\'') {
            self.pos += 1;
        }
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime) at a `'`.
    fn quote(&mut self, start: usize, line: u32) {
        let one = self.peek(1);
        let two = self.peek(2);
        let is_lifetime = match (one, two) {
            // '\n' and friends are chars; '' is malformed.
            (Some(b'\\'), _) | (Some(b'\''), _) | (None, _) => false,
            // 'x' — a char; 'xy / 'x( — a lifetime.
            (Some(c), Some(b'\'')) if c != b'\'' => false,
            (Some(c), _) => c == b'_' || c.is_ascii_alphabetic(),
        };
        if is_lifetime {
            self.pos += 1;
            self.ident();
            self.push(TokenKind::Lifetime, start, line);
        } else {
            self.char_literal();
            self.push(TokenKind::Char, start, line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn lexes_idents_numbers_and_puncts() {
        let toks = kinds("let x = 42 + y_2;");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "let".into()),
                (TokenKind::Ident, "x".into()),
                (TokenKind::Punct, "=".into()),
                (TokenKind::Number, "42".into()),
                (TokenKind::Punct, "+".into()),
                (TokenKind::Ident, "y_2".into()),
                (TokenKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn cooked_strings_swallow_escapes_and_embedded_code() {
        let toks = kinds(r#"let s = "x.unwrap() \" // not a comment";"#);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
        let tok = lex(r#""a\"b\n""#).remove(0);
        assert_eq!(str_content(&tok).unwrap(), "a\"b\n");
    }

    #[test]
    fn raw_strings_with_hash_arity_and_byte_strings() {
        let toks = lex(r###"let a = r#"panic!("inside")"#; let b = br##"x"##;"###);
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Str).collect();
        assert_eq!(strs.len(), 2);
        assert_eq!(str_content(strs[0]).unwrap(), r#"panic!("inside")"#);
        assert_eq!(str_content(strs[1]).unwrap(), "x");
        assert!(!toks.iter().any(|t| t.is_ident("panic")));
    }

    #[test]
    fn nested_block_comments_fold_into_one_token() {
        let toks = kinds("a /* outer /* inner */ still outer */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].0, TokenKind::BlockComment);
        assert!(toks[1].1.contains("inner"));
    }

    #[test]
    fn line_comments_and_doc_comments() {
        let toks = lex("x // trailing ///\n/// doc\n//! inner\ny");
        let comments: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::LineComment).collect();
        assert_eq!(comments.len(), 3);
        assert_eq!(comments[1].text, "/// doc");
        assert_eq!(comments[2].text, "//! inner");
        assert_eq!(toks.last().unwrap().line, 4);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Lifetime).collect();
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
        assert_eq!(chars[0].1, "'x'");
    }

    #[test]
    fn attributes_stay_matchable_token_sequences() {
        let toks = lex("#![forbid(unsafe_code)]\n#[cfg(test)]\nmod t {}");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(&texts[..8], &["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"]);
        assert!(texts.windows(4).any(|w| w == ["cfg", "(", "test", ")"]));
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        let toks = kinds("let r#type = r#try;");
        assert!(toks.iter().all(|(k, _)| *k != TokenKind::Str));
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Ident).count(), 3);
    }

    #[test]
    fn line_numbers_survive_multiline_tokens() {
        let toks = lex("a\n/* 1\n2\n3 */\nb\n\"x\ny\"\nc");
        let find = |text: &str| toks.iter().find(|t| t.text == text).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 5);
        assert_eq!(find("c"), 8);
    }

    #[test]
    fn unterminated_string_does_not_panic() {
        let toks = lex("let s = \"never closed");
        assert_eq!(toks.last().unwrap().kind, TokenKind::Str);
    }
}
