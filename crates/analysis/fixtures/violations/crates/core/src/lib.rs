// Fixture crate root with two seeded violations: the missing
// `#![forbid(unsafe_code)]` attribute (hygiene) and an undocumented
// public item (doc-coverage). Never compiled — only lexed by the
// self-test in `tests/lint.rs`.

pub mod service;

pub fn undocumented_item() -> u32 {
    41
}
