//! Fixture service with one seeded violation per remaining pass:
//! a lock-order cycle (`forward` takes a then b, `backward` takes b
//! then a), panic paths (`.lock().unwrap()`), a wire literal outside
//! `protocol.rs` (codec-drift), a library `println!` (stdout-purity),
//! and an unjustified `unsafe` block (unsafe-ffi). Never compiled —
//! only lexed by the self-test in `tests/lint.rs`.

use std::sync::Mutex;

/// Shared state whose two locks get acquired in both orders.
pub struct Shared {
    /// First lock.
    pub a: Mutex<u32>,
    /// Second lock.
    pub b: Mutex<u32>,
}

/// Acquires `a`, then `b` while still holding `a`.
pub fn forward(s: &Shared) -> u32 {
    let ga = s.a.lock().unwrap();
    let gb = s.b.lock().unwrap();
    *ga + *gb
}

/// Acquires `b`, then `a` while still holding `b` — the cycle.
pub fn backward(s: &Shared) -> u32 {
    let gb = s.b.lock().unwrap();
    let ga = s.a.lock().unwrap();
    *ga + *gb
}

/// Spells a wire literal outside the codec home.
pub fn label() -> &'static str {
    "deadline_exceeded"
}

/// Prints from library code.
pub fn print_stats() {
    println!("stats");
}

/// Dereferences a raw pointer without a justification comment.
pub fn peek(p: *const u8) -> u8 {
    unsafe { *p }
}
