//! Column-aligned table printing plus CSV export for the experiment
//! binaries — every table/figure harness reports through this module so
//! EXPERIMENTS.md rows regenerate with one command.

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// A simple experiment table: a header row and string-rendered cells.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id, e.g. `"T4"`.
    pub id: String,
    /// One-line caption (what claim the rows validate).
    pub caption: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given id, caption, and column headers.
    pub fn new(id: impl Into<String>, caption: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            id: id.into(),
            caption: caption.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the column count.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "[{}] {}", self.id, self.caption);
        let head: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
            .collect();
        let _ = writeln!(out, "  {}", head.join("  "));
        let _ = writeln!(
            out,
            "  {}",
            widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  ")
        );
        for row in &self.rows {
            let cells: Vec<String> =
                row.iter().enumerate().map(|(i, c)| format!("{c:>w$}", w = widths[i])).collect();
            let _ = writeln!(out, "  {}", cells.join("  "));
        }
        out
    }

    /// Prints to stdout and writes a CSV copy under
    /// `target/experiments/<id>.csv`; returns the CSV path if writing
    /// succeeded.
    pub fn emit(&self) -> Option<PathBuf> {
        // pslocal: allow(stdout-purity, "the experiment table IS this crate's product: emit() exists to print it for the bench binaries")
        print!("{}", self.render());
        let dir = PathBuf::from("target/experiments");
        fs::create_dir_all(&dir).ok()?;
        let path = dir.join(format!("{}.csv", self.id.to_lowercase()));
        let mut file = fs::File::create(&path).ok()?;
        writeln!(file, "{}", self.columns.join(",")).ok()?;
        for row in &self.rows {
            writeln!(file, "{}", row.join(",")).ok()?;
        }
        // pslocal: allow(stdout-purity, "the CSV-path pointer belongs with the table it annotates on stdout")
        println!("  → {}", path.display());
        Some(path)
    }
}

/// Renders a cell for mixed numeric content.
pub fn cell(value: impl std::fmt::Display) -> String {
    value.to_string()
}

/// Renders a float with two decimals.
pub fn cell_f(value: f64) -> String {
    format!("{value:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("T0", "demo", &["n", "value"]);
        t.row(&[cell(5), cell_f(1.5)]);
        t.row(&[cell(1000), cell_f(23.126)]);
        let s = t.render();
        assert!(s.contains("[T0] demo"));
        assert!(s.contains("   5"));
        assert!(s.contains("1000"));
        assert!(s.contains("23.13")); // rounded to 2 decimals
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("T0", "demo", &["a", "b"]);
        t.row(&[cell(1)]);
    }
}
