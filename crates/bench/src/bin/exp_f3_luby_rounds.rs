//! F3 — Luby's MIS uses O(log n) LOCAL rounds.
//!
//! The paper's framing depends on this contrast: MIS is easy for
//! *randomized* LOCAL (\[Lub86\], O(log n) rounds w.h.p.) yet open for
//! deterministic LOCAL. This series doubles n on two families and
//! reports measured rounds (median of 5 seeds) against log₂ n.

use pslocal_bench::table::{cell, cell_f, Table};
use pslocal_bench::{rng_for, seed_from_args};
use pslocal_graph::generators::random::{gnp, random_regular};
use pslocal_graph::Graph;
use pslocal_local::{algorithms::LubyMis, Engine, Network};

fn rounds_for(g: &Graph, seeds: &[u64]) -> (usize, usize) {
    let mut rounds: Vec<usize> = seeds
        .iter()
        .map(|&s| {
            let net = Network::with_scrambled_ids(g.clone(), s);
            let exec = Engine::new(&net).seed(s).run(&LubyMis).expect("Luby terminates");
            let mis = LubyMis::members(&exec.states);
            assert!(g.is_maximal_independent_set(&mis));
            exec.trace.rounds
        })
        .collect();
    rounds.sort_unstable();
    (rounds[rounds.len() / 2], rounds[rounds.len() - 1])
}

fn main() {
    let seed = seed_from_args();
    let seeds: Vec<u64> = (0..5).map(|i| seed ^ (i * 0x9E37) as u64).collect();
    let mut table = Table::new(
        "F3",
        "Luby MIS LOCAL rounds vs n (median/max of 5 seeds): O(log n) growth",
        &["family", "n", "median rounds", "max rounds", "log2(n)", "rounds/log2(n)"],
    );
    let mut rng = rng_for(seed, "f3");
    for exp in 5..12 {
        let n = 1usize << exp;
        let p = (8.0 / n as f64).min(0.5);
        let g = gnp(&mut rng, n, p);
        let (median, max) = rounds_for(&g, &seeds);
        let log = (n as f64).log2();
        table.row(&[
            cell("gnp"),
            cell(n),
            cell(median),
            cell(max),
            cell_f(log),
            cell_f(median as f64 / log),
        ]);
    }
    for exp in 5..11 {
        let n = 1usize << exp;
        let g = random_regular(&mut rng, n, 4);
        let (median, max) = rounds_for(&g, &seeds);
        let log = (n as f64).log2();
        table.row(&[
            cell("4-regular"),
            cell(n),
            cell(median),
            cell(max),
            cell_f(log),
            cell_f(median as f64 / log),
        ]);
    }
    table.emit();
    println!("  expected: rounds/log2(n) stays bounded by a small constant as n doubles");
}
