//! T2 — Lemma 2.1 a): a conflict-free k-coloring induces a maximum
//! independent set of size exactly m.
//!
//! For each instance: build `G_k`, map the planted coloring through the
//! paper's construction, and report `|I_f|` against `m`; on small
//! instances additionally certify maximality via the exact solver
//! (`α(G_k) = m`).

use pslocal_bench::table::{cell, Table};
use pslocal_bench::{rng_for, seed_from_args};
use pslocal_core::{lemma_2_1a, total_coloring_as_indices, ConflictGraph};
use pslocal_graph::generators::hyper::{planted_cf_instance, PlantedCfParams};
use pslocal_maxis::ExactOracle;

fn main() {
    let seed = seed_from_args();
    let mut table = Table::new(
        "T2",
        "Lemma 2.1 a): |I_f| = m for planted CF colorings; α(G_k) = m certified when feasible",
        &["n", "m", "k", "|I_f|", "m==|I_f|", "alpha(G_k)", "alpha==m"],
    );
    let mut rng = rng_for(seed, "t2");
    for &(n, m, k) in &[
        (16usize, 5usize, 2usize),
        (20, 8, 2),
        (24, 8, 3),
        (32, 10, 3),
        (48, 16, 4),
        (64, 24, 4),
        (96, 32, 6),
        (128, 48, 8),
    ] {
        let inst = planted_cf_instance(&mut rng, PlantedCfParams::new(n, m, k));
        let cg = ConflictGraph::build(&inst.hypergraph, k);
        let set = lemma_2_1a(&cg, &total_coloring_as_indices(&inst.planted_coloring));
        // The exact solver certifies α = m on modest conflict graphs.
        let (alpha, certified) = if cg.graph().node_count() <= 700 {
            let a = ExactOracle.independence_number(cg.graph());
            (cell(a), cell(a == m))
        } else {
            (cell("-"), cell("-"))
        };
        table.row(&[
            cell(n),
            cell(m),
            cell(k),
            cell(set.len()),
            cell(set.len() == m),
            alpha,
            certified,
        ]);
    }
    table.emit();
    println!("  every row: lemma_2_1a() asserts independence and |I_f| = m internally");
}
