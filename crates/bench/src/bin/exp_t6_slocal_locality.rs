//! T6 — SLOCAL localities: the paper's locality-1 greedy MIS, the
//! locality-1 greedy coloring, and the ball-carving network
//! decomposition's O(log n) radius/colors.
//!
//! Validates the paper's model claims: MIS has SLOCAL locality exactly
//! 1 ("by iterating through the nodes in an arbitrary order…"), while
//! the polylog-locality workhorse (network decomposition) realizes
//! logarithmic radius and `≤ ⌈log₂ n⌉ + 1` colors.

use pslocal_bench::table::{cell, Table};
use pslocal_bench::{rng_for, seed_from_args};
use pslocal_graph::generators::random::gnp;
use pslocal_slocal::{
    algorithms::GreedyColoring, algorithms::GreedyMis, carve_decomposition, orders, run,
};

fn main() {
    let seed = seed_from_args();
    let mut table = Table::new(
        "T6",
        "SLOCAL locality: greedy MIS/coloring (r = 1) and network decomposition (log n)",
        &[
            "n",
            "avg deg",
            "MIS r",
            "coloring r",
            "decomp colors",
            "color bound",
            "decomp radius",
            "radius bound",
        ],
    );
    let mut rng = rng_for(seed, "t6");
    for exp in 5..12 {
        let n = 1usize << exp;
        let p = (8.0 / n as f64).min(1.0);
        let g = gnp(&mut rng, n, p);
        let mis_run = run(&g, &GreedyMis, &orders::random(&mut rng, n));
        let col_run = run(&g, &GreedyColoring, &orders::random(&mut rng, n));
        let d = carve_decomposition(&g);
        d.verify(&g).expect("valid decomposition");
        let log = ((n.max(2)) as f64).log2().ceil() as usize;
        assert!(d.color_count() <= log + 1);
        assert!(d.max_radius() <= log);
        table.row(&[
            cell(n),
            cell(format!("{:.1}", g.average_degree())),
            cell(mis_run.trace.realized_locality),
            cell(col_run.trace.realized_locality),
            cell(d.color_count()),
            cell(log + 1),
            cell(d.max_radius()),
            cell(log),
        ]);
    }
    table.emit();
    println!("  expected: MIS/coloring locality exactly 1; decomposition within its log bounds");
}
