//! T1 — Conflict graph size accounting.
//!
//! Paper claim (Section 2 / proof of Thm 1.1): `G_k` has `k·Σ|e|`
//! vertices ("polynomially many nodes and edges"). This table sweeps
//! instance sizes and reports measured node counts against the closed
//! form, plus per-family edge counts.

use pslocal_bench::table::{cell, Table};
use pslocal_bench::{rng_for, seed_from_args};
use pslocal_core::ConflictGraph;
use pslocal_graph::generators::hyper::{planted_cf_instance, PlantedCfParams};

fn main() {
    let seed = seed_from_args();
    let mut table = Table::new(
        "T1",
        "conflict graph size: |V| = k·Σ|e| (measured = closed form), family counts",
        &[
            "n",
            "m",
            "k",
            "incidence",
            "V_closed",
            "V_measured",
            "E_total",
            "E_vertex",
            "E_edge",
            "E_color",
        ],
    );
    let mut rng = rng_for(seed, "t1");
    for &(n, m, k) in &[
        (16usize, 8usize, 2usize),
        (32, 16, 2),
        (32, 16, 4),
        (64, 32, 4),
        (64, 32, 8),
        (128, 64, 4),
        (128, 64, 8),
        (256, 96, 8),
        (256, 128, 16),
        (512, 128, 8),
    ] {
        let inst = planted_cf_instance(&mut rng, PlantedCfParams::new(n, m, k));
        let cg = ConflictGraph::build(&inst.hypergraph, k);
        let closed = ConflictGraph::expected_node_count(&inst.hypergraph, k);
        assert_eq!(cg.graph().node_count(), closed, "closed form violated");
        let fam = cg.family_counts();
        table.row(&[
            cell(n),
            cell(m),
            cell(k),
            cell(inst.hypergraph.incidence_size()),
            cell(closed),
            cell(cg.graph().node_count()),
            cell(cg.edge_count()),
            cell(fam.vertex_family),
            cell(fam.edge_family),
            cell(fam.color_family),
        ]);
    }
    table.emit();
    println!("  every row: V_measured == V_closed (asserted)");
}
