//! A3 — Ablation: removing **all happy edges** vs only the `|I_i|`
//! witnessed ones.
//!
//! The paper removes "all happy edges" after each phase; the analysis
//! only *needs* the `|I_i|` edges holding a triple of the independent
//! set. This ablation runs both policies and reports phases and
//! colors: the witnessed-only policy is still correct (it satisfies
//! the same decay bound) but does strictly more work whenever a phase
//! incidentally makes extra edges happy — quantifying the paper's
//! (free) optimization.

use pslocal_bench::table::{cell, Table};
use pslocal_bench::{rng_for, seed_from_args};
use pslocal_cfcolor::{checker, Multicoloring};
use pslocal_core::{apply_palette, lemma_2_1b, reduce_cf_to_maxis, ConflictGraph, ReductionConfig};
use pslocal_graph::generators::hyper::{planted_cf_instance, PlantedCfParams};
use pslocal_graph::{HyperedgeId, Hypergraph, Palette};
use pslocal_maxis::{MaxIsOracle, PrecisionOracle};

/// Reduction variant that removes only the edges carrying a triple of
/// the phase's independent set (the minimum the proof guarantees).
fn witnessed_only_run(
    h: &Hypergraph,
    k: usize,
    oracle: &dyn MaxIsOracle,
    max_phases: usize,
) -> Option<(usize, usize)> {
    let mut coloring = Multicoloring::new(h.node_count());
    let mut residual: Vec<HyperedgeId> = h.edge_ids().collect();
    let mut phases = 0;
    while !residual.is_empty() && phases < max_phases {
        let (h_i, id_map) = h.restrict_edges(&residual);
        let cg = ConflictGraph::build(&h_i, k);
        let set = oracle.independent_set(cg.graph());
        let decoded = lemma_2_1b(&cg, &set);
        coloring.merge(&apply_palette(&decoded.coloring, Palette::phase(k, phases)));
        // ABLATION: drop only the witnessed edges (mapped back to the
        // original ids), not every happy edge.
        let witnessed: Vec<HyperedgeId> =
            set.iter().map(|node| id_map[cg.triple_of(node).edge.index()]).collect();
        residual.retain(|e| !witnessed.contains(e));
        phases += 1;
    }
    if residual.is_empty() {
        assert!(checker::is_conflict_free(h, &coloring), "witnessed-only output must be CF");
        Some((phases, coloring.total_color_count()))
    } else {
        None
    }
}

fn main() {
    let seed = seed_from_args();
    let mut table = Table::new(
        "A3",
        "removal policy: all happy edges (paper) vs witnessed-only (minimum) — λ = 4 oracle",
        &["n", "m", "k", "paper phases", "paper colors", "witnessed phases", "witnessed colors"],
    );
    let mut rng = rng_for(seed, "a3");
    let oracle = PrecisionOracle::new(4.0);
    for &(n, m, k) in
        &[(32usize, 24usize, 3usize), (48, 32, 3), (64, 48, 4), (96, 64, 4), (96, 96, 6)]
    {
        let inst = planted_cf_instance(&mut rng, PlantedCfParams::new(n, m, k));
        let paper = reduce_cf_to_maxis(&inst.hypergraph, &oracle, ReductionConfig::new(k))
            .expect("paper policy completes");
        let (w_phases, w_colors) = witnessed_only_run(&inst.hypergraph, k, &oracle, 4 * paper.rho)
            .expect("witnessed-only policy also completes (same decay bound)");
        assert!(w_phases >= paper.phases_used, "paper policy can only be faster");
        table.row(&[
            cell(n),
            cell(m),
            cell(k),
            cell(paper.phases_used),
            cell(paper.total_colors),
            cell(w_phases),
            cell(w_colors),
        ]);
    }
    table.emit();
    println!("  both policies satisfy the (1 − 1/λ) decay; removing all happy edges (the");
    println!("  paper's choice) needs never more — and often fewer — phases and colors");
}
