//! T8 — End-to-end cost scaling of the reduction, plus the LOCAL
//! simulation overheads of `G_k` inside `H`.
//!
//! Doubles the instance size and reports wall time, per-phase conflict
//! graph sizes, and the simulation report (dilation ≤ 1 everywhere —
//! the paper's "can be efficiently simulated" claim — and the
//! congestion `max deg_H(v)·k`).

use pslocal_bench::table::{cell, cell_f, Table};
use pslocal_bench::{rng_for, seed_from_args};
use pslocal_core::{reduce_cf_to_maxis, simulate_in_hypergraph, ConflictGraph, ReductionConfig};
use pslocal_graph::generators::hyper::{planted_cf_instance, PlantedCfParams};
use pslocal_maxis::GreedyOracle;
use std::time::Instant;

fn main() {
    let seed = seed_from_args();
    let mut table = Table::new(
        "T8",
        "reduction cost scaling + LOCAL simulation of G_k in H (greedy oracle, k = 4)",
        &[
            "n",
            "m",
            "G_k nodes",
            "G_k edges",
            "phases",
            "build+reduce ms",
            "dilation",
            "congestion",
        ],
    );
    let mut rng = rng_for(seed, "t8");
    let k = 4usize;
    for &(n, m) in &[(32usize, 16usize), (64, 32), (128, 64), (256, 128), (512, 256)] {
        let inst = planted_cf_instance(&mut rng, PlantedCfParams::new(n, m, k));
        let cg = ConflictGraph::build(&inst.hypergraph, k);
        let sim = simulate_in_hypergraph(&cg);
        assert!(sim.dilation <= 1, "paper's simulation claim violated");
        let start = Instant::now();
        let out = reduce_cf_to_maxis(&inst.hypergraph, &GreedyOracle, ReductionConfig::new(k))
            .expect("greedy completes");
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        table.row(&[
            cell(n),
            cell(m),
            cell(cg.graph().node_count()),
            cell(cg.edge_count()),
            cell(out.phases_used),
            cell_f(elapsed),
            cell(sim.dilation),
            cell(sim.max_congestion),
        ]);
    }
    table.emit();
    println!("  expected: dilation ≤ 1 everywhere; time grows polynomially with G_k edges");
}
