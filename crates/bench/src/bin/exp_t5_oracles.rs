//! T5 — The λ landscape: theoretical vs realized approximation factors
//! of every oracle on conflict graphs.
//!
//! The reduction's budget uses the oracle's *theoretical* λ; this table
//! shows how loose that is in practice — the realized ratio
//! (α-bound / |I|) is near 1 for all oracles on conflict graphs of
//! planted instances, which explains why T4's phase counts crush the ρ
//! budget.

use pslocal_bench::table::{cell, cell_f, Table};
use pslocal_bench::{rng_for, seed_from_args};
use pslocal_core::ConflictGraph;
use pslocal_graph::generators::hyper::{planted_cf_instance, PlantedCfParams};
use pslocal_maxis::{standard_oracles, GreedyOracle, LocalSearchOracle};
use std::time::Instant;

fn main() {
    let seed = seed_from_args();
    let mut table = Table::new(
        "T5",
        "oracle λ landscape on conflict graphs: theoretical λ vs realized (α = m known exactly)",
        &[
            "oracle",
            "G_k nodes",
            "G_k edges",
            "alpha=m",
            "|I|",
            "lambda_theory",
            "lambda_real",
            "ms",
        ],
    );
    let mut rng = rng_for(seed, "t5");
    let inst = planted_cf_instance(&mut rng, PlantedCfParams::new(64, 28, 4));
    let cg = ConflictGraph::build(&inst.hypergraph, 4);
    let m = inst.hypergraph.edge_count();
    let mut oracles = standard_oracles(seed);
    oracles.push(Box::new(LocalSearchOracle::new(GreedyOracle)));
    for oracle in oracles {
        let start = Instant::now();
        let set = oracle.independent_set(cg.graph());
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        let theory = oracle.lambda_for(cg.graph()).map(cell_f).unwrap_or_else(|| cell("-"));
        // On CF-k-colorable instances α(G_k) = m exactly (Lemma 2.1 a).
        let realized = m as f64 / set.len().max(1) as f64;
        table.row(&[
            cell(oracle.name()),
            cell(cg.graph().node_count()),
            cell(cg.edge_count()),
            cell(m),
            cell(set.len()),
            theory,
            cell_f(realized),
            cell_f(elapsed),
        ]);
    }
    table.emit();
    println!("  expected: exact hits λ_real = 1; heuristics stay close to 1, far below theory");
}
