//! A2 — Ablation: the **literal** reading of `E_color` falsifies
//! Lemma 2.1 a).
//!
//! The paper's `E_color` set-builder, read with `u = v` allowed, makes
//! `(e,v,c)` and `(g,v,c)` adjacent for any two hyperedges `e, g ∋ v`.
//! Then the set `I_f` the lemma constructs is NOT independent whenever
//! some vertex is the unique-color witness of two edges. This
//! experiment builds both graphs on planted instances, constructs
//! `I_f` from the planted coloring, and reports how often independence
//! fails under the literal reading — the quantitative justification
//! for the `u ≠ v` reading documented in `pslocal-core`.

use pslocal_bench::table::{cell, Table};
use pslocal_bench::{rng_for, seed_from_args};
use pslocal_core::{ConflictGraph, ConflictGraphOptions};
use pslocal_graph::generators::hyper::{planted_cf_instance, PlantedCfParams};
use pslocal_graph::NodeId;

fn main() {
    let seed = seed_from_args();
    let mut table = Table::new(
        "A2",
        "literal E_color (u = v allowed) vs proof-faithful reading: Lemma 2.1 a) survival",
        &[
            "n",
            "m",
            "k",
            "strict edges",
            "literal edges",
            "strict I_f independent",
            "literal I_f independent",
        ],
    );
    let mut rng = rng_for(seed, "a2");
    let mut literal_failures = 0usize;
    for &(n, m, k) in &[
        (20usize, 10usize, 2usize),
        (32, 16, 3),
        (48, 24, 3),
        (64, 32, 4),
        (96, 48, 4),
        (128, 64, 6),
    ] {
        let inst = planted_cf_instance(&mut rng, PlantedCfParams::new(n, m, k));
        let h = &inst.hypergraph;
        let strict = ConflictGraph::build(h, k);
        let literal = ConflictGraph::build_with_options(h, k, ConflictGraphOptions::literal());

        // Construct I_f by the paper's recipe (one uniquely-colored
        // witness per edge, smallest vertex first) in raw form so we
        // can test independence in both graphs without panicking.
        let coloring = &inst.planted_coloring;
        let mut members: Vec<NodeId> = Vec::new();
        for e in h.edge_ids() {
            let vs = h.edge(e);
            let witness = vs
                .iter()
                .copied()
                .find(|&v| {
                    let c = coloring[v.index()];
                    vs.iter().filter(|&&u| coloring[u.index()] == c).count() == 1
                })
                .expect("planted coloring is conflict-free");
            members.push(strict.node_for(e, witness, coloring[witness.index()].index()).unwrap());
        }

        let strict_ok = strict.graph().is_independent_set(&members);
        let literal_ok = literal.graph().is_independent_set(&members);
        if !literal_ok {
            literal_failures += 1;
        }
        table.row(&[
            cell(n),
            cell(m),
            cell(k),
            cell(strict.edge_count()),
            cell(literal.edge_count()),
            cell(strict_ok),
            cell(literal_ok),
        ]);
    }
    table.emit();
    println!(
        "  Lemma 2.1 a) holds on every instance under the proof-faithful reading and \
         fails on {literal_failures} instance(s) under the literal one"
    );
    println!("  (a vertex witnessing two hyperedges makes its two triples adjacent when u = v");
    println!("   is allowed in E_color — hence the u ≠ v reading implemented in pslocal-core)");
}
