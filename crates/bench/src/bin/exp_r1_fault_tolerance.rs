//! R1 — Fault tolerance of the resilient reduction driver.
//!
//! The chaos suite (`tests/chaos.rs`) proves the invariant; this
//! experiment *quantifies* the cost of surviving it. For fault rates
//! {0, 0.1, 0.25, 0.5} the Theorem 1.1 reduction runs against a
//! `FaultyOracle`-wrapped greedy oracle, once with the primary alone
//! and once with a clean greedy fallback in the chain, and the table
//! reports per rate: completion status, injected faults, retries,
//! fallback engagements, phases used vs the budget ρ, and edges
//! salvaged when a run fails.

use pslocal_bench::table::{cell, cell_f, Table};
use pslocal_bench::{rng_for, seed_from_args};
use pslocal_core::{reduce_cf_resilient, ResilientConfig};
use pslocal_graph::generators::hyper::{planted_cf_instance, PlantedCfParams};
use pslocal_maxis::{FaultPlan, FaultyOracle, GreedyOracle, MaxIsOracle};

const RATES: [f64; 4] = [0.0, 0.1, 0.25, 0.5];
const TRIALS: usize = 8;

fn main() {
    let seed = seed_from_args();
    let mut table = Table::new(
        "R1",
        "resilient driver vs fault rate (greedy primary, 8 trials each, m = 24, k = 3)",
        &[
            "rate",
            "fallback",
            "completed",
            "faults injected",
            "retries",
            "fallbacks",
            "avg phases",
            "rho",
            "salvaged edges",
        ],
    );
    let mut rng = rng_for(seed, "r1");
    let k = 3usize;
    let m = 24usize;
    let inst = planted_cf_instance(&mut rng, PlantedCfParams::new(48, m, k));

    for &rate in &RATES {
        for fallback in [false, true] {
            let mut completed = 0usize;
            let mut injected = 0usize;
            let mut retries = 0usize;
            let mut fallbacks = 0usize;
            let mut phases = 0usize;
            let mut rho = 0usize;
            let mut salvaged = 0usize;
            for trial in 0..TRIALS {
                let fault_seed = seed ^ ((trial as u64) << 8) ^ (rate.to_bits() >> 32);
                let faulty = FaultyOracle::new(GreedyOracle, FaultPlan::seeded(fault_seed, rate));
                let chain: Vec<&dyn MaxIsOracle> =
                    if fallback { vec![&faulty, &GreedyOracle] } else { vec![&faulty] };
                let result = reduce_cf_resilient(&inst.hypergraph, &chain, ResilientConfig::new(k));
                injected += faulty.fault_log().len();
                match result {
                    Ok(out) => {
                        completed += 1;
                        retries += out.retries;
                        fallbacks += out.fallbacks_engaged;
                        phases += out.reduction.phases_used;
                        rho = out.reduction.rho;
                    }
                    Err(fail) => {
                        // Edges the partial coloring already made happy.
                        salvaged +=
                            inst.hypergraph.edge_count() - fail.partial.residual_edges.len();
                    }
                }
            }
            table.row(&[
                cell_f(rate),
                cell(fallback),
                cell(format!("{completed}/{TRIALS}")),
                cell(injected),
                cell(retries),
                cell(fallbacks),
                cell_f(phases as f64 / completed.max(1) as f64),
                cell(rho),
                cell(salvaged),
            ]);
        }
    }
    table.emit();
    println!(
        "  expected: rate 0 completes 8/8 with zero retries; with the clean fallback every \
         rate completes; without it, failed runs still salvage partial colorings"
    );
}
