//! F1 — Geometric decay of residual edges across reduction phases.
//!
//! The proof of Theorem 1.1: `|E_{i+1}| ≤ (1 − 1/λ)·|E_i|`. This
//! figure-series runs the reduction with forced weak oracles (λ
//! overrides with the oracle artificially *truncated* to return only
//! ⌈|E_i|/λ⌉ of its independent set) so the decay envelope is actually
//! exercised, and prints measured |E_i| against the bound per phase.

use pslocal_bench::table::{cell, cell_f, Table};
use pslocal_bench::{rng_for, seed_from_args};
use pslocal_core::{reduce_cf_to_maxis, ReductionConfig};
use pslocal_graph::generators::hyper::{planted_cf_instance, PlantedCfParams};
use pslocal_maxis::PrecisionOracle;

fn main() {
    let seed = seed_from_args();
    let mut table = Table::new(
        "F1",
        "per-phase residual edges vs the (1 − 1/λ)^i envelope (truncated λ-oracles, m = 64)",
        &["lambda", "phase", "|E_i| measured", "envelope m·(1-1/λ)^i", "within"],
    );
    let mut rng = rng_for(seed, "f1");
    let k = 3usize;
    let m = 64usize;
    for &lambda in &[2.0f64, 4.0, 8.0] {
        let inst = planted_cf_instance(&mut rng, PlantedCfParams::new(96, m, k));
        let oracle = PrecisionOracle::new(lambda);
        let out = reduce_cf_to_maxis(&inst.hypergraph, &oracle, ReductionConfig::new(k))
            .expect("λ-oracle finishes within ρ");
        assert!(out.phases_used <= out.rho, "budget violated");
        for r in &out.records {
            let envelope = m as f64 * (1.0 - 1.0 / lambda).powi(r.phase as i32 + 1);
            table.row(&[
                cell_f(lambda),
                cell(r.phase),
                cell(r.edges_after),
                cell_f(envelope),
                cell(r.edges_after as f64 <= envelope + 1e-9),
            ]);
        }
    }
    table.emit();
    println!("  expected: 'within' true on every phase — the Lemma 2.1 decay in action");
}
