//! T3 — Lemma 2.1 b): any independent set `I` of `G_k` induces a
//! well-defined partial coloring under which at least `|I|` edges are
//! happy.
//!
//! Samples many random maximal independent sets per instance and
//! reports the worst observed `happy − |I|` slack (never negative, per
//! the lemma) and the average slack.

use pslocal_bench::table::{cell, cell_f, Table};
use pslocal_bench::{rng_for, seed_from_args};
use pslocal_core::{lemma_2_1b, ConflictGraph};
use pslocal_graph::generators::hyper::{planted_cf_instance, PlantedCfParams};
use pslocal_graph::{IndependentSet, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

fn random_maximal_set(g: &pslocal_graph::Graph, rng: &mut impl Rng) -> IndependentSet {
    let mut order: Vec<NodeId> = g.nodes().collect();
    order.shuffle(rng);
    let mut blocked = vec![false; g.node_count()];
    let mut members = Vec::new();
    for v in order {
        if !blocked[v.index()] {
            members.push(v);
            blocked[v.index()] = true;
            for &u in g.neighbors(v) {
                blocked[u.index()] = true;
            }
        }
    }
    IndependentSet::new(g, members).expect("greedy maximal set")
}

fn main() {
    let seed = seed_from_args();
    let samples = 25usize;
    let mut table = Table::new(
        "T3",
        "Lemma 2.1 b): happy(f_I) ≥ |I| over random maximal independent sets (25 samples each)",
        &["n", "m", "k", "avg|I|", "min slack", "avg slack", "violations"],
    );
    let mut rng = rng_for(seed, "t3");
    for &(n, m, k) in &[
        (20usize, 8usize, 2usize),
        (32, 12, 3),
        (48, 16, 4),
        (64, 24, 4),
        (96, 32, 6),
        (128, 48, 6),
    ] {
        let inst = planted_cf_instance(&mut rng, PlantedCfParams::new(n, m, k));
        let cg = ConflictGraph::build(&inst.hypergraph, k);
        let mut min_slack = i64::MAX;
        let mut slack_sum = 0i64;
        let mut size_sum = 0usize;
        let mut violations = 0usize;
        for _ in 0..samples {
            let set = random_maximal_set(cg.graph(), &mut rng);
            let out = lemma_2_1b(&cg, &set); // asserts happy ≥ |I|
            let slack = out.happy_edges as i64 - set.len() as i64;
            min_slack = min_slack.min(slack);
            slack_sum += slack;
            size_sum += set.len();
            if slack < 0 {
                violations += 1;
            }
        }
        table.row(&[
            cell(n),
            cell(m),
            cell(k),
            cell_f(size_sum as f64 / samples as f64),
            cell(min_slack),
            cell_f(slack_sum as f64 / samples as f64),
            cell(violations),
        ]);
    }
    table.emit();
    println!("  expected: min slack ≥ 0 and violations = 0 on every row (lemma asserts it)");
}
