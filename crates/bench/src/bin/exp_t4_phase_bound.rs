//! T4 — Theorem 1.1 phase bound: the reduction finishes within
//! `ρ = ⌈λ·ln m⌉ + 1` phases.
//!
//! Sweeps edge counts and forced λ values (via the override, with the
//! exact oracle supplying at-least-λ quality) and reports phases used
//! against the paper's budget. The interesting shape: phases grow
//! ~log m for fixed λ and stay FAR below ρ for strong oracles.

use pslocal_bench::table::{cell, cell_f, Table};
use pslocal_bench::{rng_for, seed_from_args};
use pslocal_core::{reduce_cf_to_maxis, ReductionConfig};
use pslocal_graph::generators::hyper::{planted_cf_instance, PlantedCfParams};
use pslocal_maxis::{GreedyOracle, LubyOracle, MaxIsOracle};

fn main() {
    let seed = seed_from_args();
    let mut table = Table::new(
        "T4",
        "phases used vs budget ρ = ⌈λ ln m⌉ + 1 (certified oracles, planted instances)",
        &["oracle", "n", "m", "k", "lambda", "rho", "phases", "within"],
    );
    let mut rng = rng_for(seed, "t4");
    let oracles: Vec<Box<dyn MaxIsOracle>> =
        vec![Box::new(GreedyOracle), Box::new(LubyOracle::new(seed))];
    for &(n, m, k) in
        &[(32usize, 12usize, 3usize), (48, 24, 3), (64, 48, 4), (96, 96, 4), (128, 192, 4)]
    {
        let inst = planted_cf_instance(&mut rng, PlantedCfParams::new(n, m, k));
        for oracle in &oracles {
            let out =
                reduce_cf_to_maxis(&inst.hypergraph, oracle.as_ref(), ReductionConfig::new(k))
                    .expect("certified oracle meets the budget");
            table.row(&[
                cell(oracle.name()),
                cell(n),
                cell(m),
                cell(k),
                cell_f(out.lambda),
                cell(out.rho),
                cell(out.phases_used),
                cell(out.phases_used <= out.rho),
            ]);
        }
    }
    table.emit();
    println!("  expected: 'within' true everywhere; phases ≪ ρ (oracles beat their worst case)");
}
