//! T7 — Containment direction (\[GKM17, Thm 7.1\] via this workspace):
//! the decomposition-based SLOCAL MaxIS approximation achieves
//! λ ≤ #decomposition-colors with polylog locality.
//!
//! Reports, per instance family and size: the decomposition's color
//! count (the proven λ), the realized ratio against a certified α
//! bound, and whether the per-cluster solves were exact (fully
//! certified guarantee).

use pslocal_bench::table::{cell, cell_f, Table};
use pslocal_bench::{rng_for, seed_from_args};
use pslocal_core::containment_certificate;
use pslocal_graph::generators::classic::{cycle, grid};
use pslocal_graph::generators::random::{gnp, random_tree};
use pslocal_graph::Graph;

fn main() {
    let seed = seed_from_args();
    let mut table = Table::new(
        "T7",
        "containment: decomposition oracle λ = colors; realized ratio vs certified α bound",
        &[
            "family",
            "n",
            "colors(λ)",
            "radius",
            "|I|",
            "alpha bound",
            "ratio",
            "certified",
            "verified",
        ],
    );
    let mut rng = rng_for(seed, "t7");
    let families: Vec<(&str, Graph)> = vec![
        ("cycle", cycle(64)),
        ("cycle", cycle(256)),
        ("grid", grid(8, 8)),
        ("grid", grid(16, 16)),
        ("gnp", gnp(&mut rng, 96, 0.05)),
        ("gnp", gnp(&mut rng, 192, 0.03)),
        ("tree", random_tree(&mut rng, 128)),
        ("tree", random_tree(&mut rng, 512)),
    ];
    for (family, g) in &families {
        let r = containment_certificate(g);
        let ratio = r.alpha_bound.value as f64 / r.set_size.max(1) as f64;
        table.row(&[
            cell(family),
            cell(r.nodes),
            cell(r.decomposition_colors),
            cell(r.max_radius),
            cell(r.set_size),
            cell(format!("{}{}", r.alpha_bound.value, if r.alpha_bound.exact { "*" } else { "" })),
            cell_f(ratio),
            cell(r.certified),
            cell(r.lambda_verified),
        ]);
    }
    table.emit();
    println!("  α bound marked '*' is exact; expected: verified = true on every row,");
    println!("  realized ratio well below the proven λ = colors");
}
