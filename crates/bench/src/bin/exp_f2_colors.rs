//! F2 — Total colors `k·ρ` stay polylogarithmic as n grows.
//!
//! Theorem 1.1's conclusion: "the total number of colors is
//! k·ρ = poly log n". With k = Θ(log n) planted palettes and the
//! greedy oracle, this series doubles n and reports colors used, the
//! k·ρ budget, and the polylog reference curves.

use pslocal_bench::table::{cell, cell_f, Table};
use pslocal_bench::{rng_for, seed_from_args};
use pslocal_core::{reduce_cf_to_maxis, ReductionConfig};
use pslocal_graph::generators::hyper::{planted_cf_instance, PlantedCfParams};
use pslocal_maxis::GreedyOracle;

fn main() {
    let seed = seed_from_args();
    let mut table = Table::new(
        "F2",
        "total colors vs n with k = ⌈log₂ n⌉ palettes (greedy oracle): polylog growth",
        &["n", "m", "k", "phases", "colors used", "budget k·rho", "log2(n)", "log2^2(n)"],
    );
    let mut rng = rng_for(seed, "f2");
    for exp in 5..10 {
        let n = 1usize << exp;
        let k = exp as usize; // k = log₂ n
        let m = n / 2;
        let inst = planted_cf_instance(&mut rng, PlantedCfParams::new(n, m, k));
        let out = reduce_cf_to_maxis(&inst.hypergraph, &GreedyOracle, ReductionConfig::new(k))
            .expect("greedy completes");
        let log = (n as f64).log2();
        table.row(&[
            cell(n),
            cell(m),
            cell(k),
            cell(out.phases_used),
            cell(out.total_colors),
            cell(k * out.rho),
            cell_f(log),
            cell_f(log * log),
        ]);
    }
    table.emit();
    println!("  expected: colors used ≈ k·phases grows like log n · O(1) ≪ k·ρ budget,");
    println!("  i.e. comfortably within poly log n");
}
