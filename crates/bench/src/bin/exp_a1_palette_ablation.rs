//! A1 — Ablation: why each phase needs a **fresh palette**.
//!
//! The paper insists each phase colors "using a distinct palette of
//! size k for each phase". This ablation re-runs the reduction loop
//! with the distinct palettes replaced by a single shared palette and
//! shows the invariant that breaks: with shared palettes, a later
//! phase can re-assign a color already used inside a previously happy
//! edge, destroying its witness — the run can cycle and the final
//! coloring need not be conflict-free. The table reports, per
//! instance, the outcome of the faithful run vs the ablated run.

use pslocal_bench::table::{cell, Table};
use pslocal_bench::{rng_for, seed_from_args};
use pslocal_cfcolor::{checker, Multicoloring};
use pslocal_core::{apply_palette, lemma_2_1b, reduce_cf_to_maxis, ConflictGraph, ReductionConfig};
use pslocal_graph::generators::hyper::{planted_cf_instance, PlantedCfParams};
use pslocal_graph::{HyperedgeId, Hypergraph, Palette};
use pslocal_maxis::{MaxIsOracle, PrecisionOracle};

/// The ablated loop: identical to the Theorem 1.1 reduction except
/// every phase maps its decoded coloring through the SAME palette 0.
/// Returns (conflict-free?, phases executed, happiness regressions),
/// where a regression is a phase after which the happy-edge count
/// *decreased* — impossible in the faithful reduction.
fn ablated_run(
    h: &Hypergraph,
    k: usize,
    oracle: &dyn MaxIsOracle,
    max_phases: usize,
) -> (bool, usize, usize) {
    let mut coloring = Multicoloring::new(h.node_count());
    let mut residual: Vec<HyperedgeId> = h.edge_ids().collect();
    let mut phases = 0;
    let mut regressions = 0;
    let mut last_happy = 0usize;
    while !residual.is_empty() && phases < max_phases {
        let (h_i, _) = h.restrict_edges(&residual);
        let cg = ConflictGraph::build(&h_i, k);
        let set = oracle.independent_set(cg.graph());
        let decoded = lemma_2_1b(&cg, &set);
        // ABLATION: always palette 0 instead of Palette::phase(k, i).
        coloring.merge(&apply_palette(&decoded.coloring, Palette::phase(k, 0)));
        let happy_now = checker::happy_count(h, &coloring);
        if happy_now < last_happy {
            regressions += 1;
        }
        last_happy = happy_now;
        residual = checker::unhappy_edges(h, &coloring);
        phases += 1;
    }
    (checker::is_conflict_free(h, &coloring), phases, regressions)
}

fn main() {
    let seed = seed_from_args();
    let mut table = Table::new(
        "A1",
        "ablation: shared palette across phases vs the paper's fresh palettes (λ = 4 oracle)",
        &[
            "n",
            "m",
            "k",
            "faithful CF",
            "faithful phases",
            "ablated CF",
            "ablated phases",
            "happiness regressions",
        ],
    );
    let mut rng = rng_for(seed, "a1");
    let oracle = PrecisionOracle::new(4.0); // weak oracle ⇒ several phases
    let mut ablated_failures = 0usize;
    for &(n, m, k) in &[
        (32usize, 24usize, 3usize),
        (48, 32, 3),
        (64, 48, 4),
        (64, 64, 4),
        (96, 80, 4),
        (96, 96, 6),
    ] {
        let inst = planted_cf_instance(&mut rng, PlantedCfParams::new(n, m, k));
        let faithful = reduce_cf_to_maxis(&inst.hypergraph, &oracle, ReductionConfig::new(k))
            .expect("faithful reduction completes");
        assert!(checker::is_conflict_free(&inst.hypergraph, &faithful.coloring));
        let budget = 3 * faithful.rho; // generous: let the ablation try hard
        let (ablated_cf, ablated_phases, regressions) =
            ablated_run(&inst.hypergraph, k, &oracle, budget);
        if !ablated_cf || regressions > 0 {
            ablated_failures += 1;
        }
        table.row(&[
            cell(n),
            cell(m),
            cell(k),
            cell(true),
            cell(faithful.phases_used),
            cell(ablated_cf),
            cell(ablated_phases),
            cell(regressions),
        ]);
    }
    table.emit();
    println!(
        "  faithful runs always end conflict-free; ablated runs showed problems on \
         {ablated_failures} instance(s)"
    );
    println!("  (a regression = a phase after which previously happy edges became unhappy —");
    println!(
        "   impossible with fresh palettes, since new colors never change old multiplicities)"
    );
}
