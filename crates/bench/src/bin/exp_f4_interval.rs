//! F4 — Interval hypergraphs (\[DN18\]): dyadic baseline vs the generic
//! MaxIS reduction.
//!
//! The paper adapts the \[DN18\] MaxIS technique from interval
//! hypergraphs to the general hardness reduction. This series runs
//! both on the same random interval instances: the specialized dyadic
//! coloring (provably ⌊log₂ n⌋ + 1 colors, conflict-free for *all*
//! intervals) and the generic conflict-graph reduction with the exact
//! oracle.

use pslocal_bench::table::{cell, Table};
use pslocal_bench::{rng_for, seed_from_args};
use pslocal_cfcolor::interval::{dyadic_cf_coloring, dyadic_color_count};
use pslocal_cfcolor::{greedy_cf_multicoloring, is_conflict_free};
use pslocal_core::{reduce_cf_to_maxis, ReductionConfig};
use pslocal_graph::generators::hyper::interval_hypergraph;
use pslocal_maxis::{ExactOracle, GreedyOracle, MaxIsOracle};

fn main() {
    let seed = seed_from_args();
    let mut table = Table::new(
        "F4",
        "interval hypergraphs: dyadic O(log n) baseline vs generic MaxIS reduction vs phase greedy",
        &[
            "points",
            "intervals",
            "oracle",
            "dyadic colors",
            "reduction colors",
            "reduction phases",
            "greedy colors",
        ],
    );
    let mut rng = rng_for(seed, "f4");
    for exp in 5..10 {
        let n = 1usize << exp;
        let m = n / 2;
        // Interval lengths are capped: conflict-graph size is
        // k·Σ|e| nodes with Θ((|e|k)²) edges per interval, so long
        // intervals blow up the generic reduction (that asymmetry —
        // specialized O(log n) vs generic conflict-graph machinery —
        // is part of what this series shows).
        let (h, _) = interval_hypergraph(&mut rng, n, m, 3, 12);
        // Dyadic: specialized, provable.
        let dyadic = dyadic_cf_coloring(n);
        assert!(is_conflict_free(&h, &dyadic));
        // Generic reduction with k = dyadic count (a CF k-coloring
        // exists, namely the dyadic one). Exact oracle while the
        // conflict graph stays small; greedy beyond.
        let k = dyadic_color_count(n);
        let oracle: Box<dyn MaxIsOracle> = if k * h.incidence_size() <= 3000 {
            Box::new(ExactOracle)
        } else {
            Box::new(GreedyOracle)
        };
        let out = reduce_cf_to_maxis(&h, oracle.as_ref(), ReductionConfig::new(k))
            .expect("oracle completes");
        assert!(is_conflict_free(&h, &out.coloring));
        // Direct phase-greedy baseline.
        let greedy = greedy_cf_multicoloring(&h);
        table.row(&[
            cell(n),
            cell(m),
            cell(oracle.name()),
            cell(dyadic.total_color_count()),
            cell(out.total_colors),
            cell(out.phases_used),
            cell(greedy.coloring.total_color_count()),
        ]);
    }
    table.emit();
    println!("  expected: dyadic = ⌊log₂ n⌋+1 exactly; the reduction's exact-oracle run needs");
    println!("  one phase and ≤ k colors; phase greedy lands in the same O(log n) ballpark");
}
