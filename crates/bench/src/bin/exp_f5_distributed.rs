//! F5 — LOCAL round bill of the fully distributed reduction.
//!
//! Runs the reduction with the Luby oracle, charging every oracle round
//! through the dilation-1 host simulation of `G_k` in `H`, and reports
//! the total `H`-rounds as the instance doubles — the end-to-end cost a
//! LOCAL deployment of the hardness reduction would pay (polylog per
//! phase × O(log) phases in practice).

use pslocal_bench::table::{cell, cell_f, Table};
use pslocal_bench::{rng_for, seed_from_args};
use pslocal_core::distributed_reduction;
use pslocal_graph::generators::hyper::{planted_cf_instance, PlantedCfParams};

fn main() {
    let seed = seed_from_args();
    let mut table = Table::new(
        "F5",
        "distributed reduction (Luby oracle through the dilation-1 host simulation)",
        &["n", "m", "phases", "rho", "total H-rounds", "rounds/log2^2(n)", "colors"],
    );
    let mut rng = rng_for(seed, "f5");
    let k = 3usize;
    for exp in 5..10 {
        let n = 1usize << exp;
        let m = n / 2;
        let inst = planted_cf_instance(&mut rng, PlantedCfParams::new(n, m, k));
        let out = distributed_reduction(&inst.hypergraph, k, seed).expect("completes within ρ");
        let log = (n as f64).log2();
        table.row(&[
            cell(n),
            cell(m),
            cell(out.phases.len()),
            cell(out.rho),
            cell(out.total_host_rounds),
            cell_f(out.total_host_rounds as f64 / (log * log)),
            cell(out.coloring.total_color_count()),
        ]);
    }
    table.emit();
    println!("  expected: H-rounds grow mildly (phases ≈ 1–3, Luby = O(log) each),");
    println!("  i.e. rounds/log² n stays bounded — the polylog claim, distributed");
}
