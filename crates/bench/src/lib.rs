//! # pslocal-bench
//!
//! Experiment harnesses and shared utilities for the reproduction's
//! evaluation suite.
//!
//! The paper has **no evaluation section** (it is a pure complexity
//! result); DESIGN.md §5 defines the substituted experiment suite —
//! tables T1–T8 and figure-series F1–F4, each validating a quantitative
//! claim from the paper's lemmas and theorem proofs. Every experiment
//! is a binary in `src/bin/exp_*.rs`:
//!
//! ```text
//! cargo run --release -p pslocal-bench --bin exp_t4_phase_bound
//! ```
//!
//! All binaries accept `--seed <u64>` (default `0xC0FFEE`) and print a
//! column-aligned table to stdout plus a CSV copy under
//! `target/experiments/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod table;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Default seed for all experiments.
pub const DEFAULT_SEED: u64 = 0xC0FFEE;

/// Parses `--seed <u64>` from the process arguments, falling back to
/// [`DEFAULT_SEED`].
pub fn seed_from_args() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

/// A seeded RNG for experiment `tag` derived from the run seed, so each
/// experiment's stream is independent of the others.
pub fn rng_for(seed: u64, tag: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in tag.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(seed ^ h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn rng_streams_are_tag_dependent_and_deterministic() {
        let a: u64 = rng_for(1, "t1").gen();
        let b: u64 = rng_for(1, "t1").gen();
        let c: u64 = rng_for(1, "t2").gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn default_seed_is_stable() {
        assert_eq!(DEFAULT_SEED, 0xC0FFEE);
    }
}
