//! Criterion bench: conflict graph `G_k` construction (the per-phase
//! cost driver of the Theorem 1.1 reduction) across instance sizes and
//! palette sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pslocal_core::ConflictGraph;
use pslocal_graph::generators::hyper::{planted_cf_instance, PlantedCfParams};
use rand::SeedableRng;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("conflict_graph_build");
    for &(n, m, k) in &[(32usize, 16usize, 2usize), (64, 32, 4), (128, 64, 4), (128, 64, 8)] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let inst = planted_cf_instance(&mut rng, PlantedCfParams::new(n, m, k));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_m{m}_k{k}")),
            &inst.hypergraph,
            |b, h| b.iter(|| ConflictGraph::build(h, k)),
        );
    }
    group.finish();
}

fn bench_triple_roundtrip(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let inst = planted_cf_instance(&mut rng, PlantedCfParams::new(64, 32, 4));
    let cg = ConflictGraph::build(&inst.hypergraph, 4);
    let nodes = cg.graph().node_count();
    c.bench_function("conflict_graph_triple_roundtrip", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for i in (0..nodes).step_by(3) {
                let t = cg.triple_of(pslocal_graph::NodeId::new(i));
                acc += cg.node_for(t.edge, t.vertex, t.color).map(|v| v.index()).unwrap_or(0);
            }
            acc
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_build, bench_triple_roundtrip
}
criterion_main!(benches);
