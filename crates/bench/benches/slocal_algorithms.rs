//! Criterion bench: the SLOCAL executor (greedy MIS, greedy coloring)
//! and the ball-carving network decomposition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pslocal_graph::generators::random::gnp;
use pslocal_graph::Graph;
use pslocal_slocal::{
    algorithms::{GreedyColoring, GreedyMis},
    carve_decomposition, orders, run,
};
use rand::SeedableRng;

fn graphs() -> Vec<(usize, Graph)> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    [64usize, 256, 1024].iter().map(|&n| (n, gnp(&mut rng, n, (8.0 / n as f64).min(0.5)))).collect()
}

fn bench_greedy_mis(c: &mut Criterion) {
    let mut group = c.benchmark_group("slocal_greedy_mis");
    for (n, g) in graphs() {
        let order = orders::identity(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| run(g, &GreedyMis, &order))
        });
    }
    group.finish();
}

fn bench_greedy_coloring(c: &mut Criterion) {
    let mut group = c.benchmark_group("slocal_greedy_coloring");
    for (n, g) in graphs() {
        let order = orders::identity(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| run(g, &GreedyColoring, &order))
        });
    }
    group.finish();
}

fn bench_decomposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("slocal_ball_carving");
    for (n, g) in graphs() {
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| carve_decomposition(g))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_greedy_mis, bench_greedy_coloring, bench_decomposition
}
criterion_main!(benches);
