//! Criterion bench: the full Theorem 1.1 reduction (all phases,
//! conflict graphs included) per oracle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pslocal_core::{reduce_cf_to_maxis, ReductionConfig};
use pslocal_graph::generators::hyper::{
    multi_component_cf_instance, planted_cf_instance, PlantedCfParams,
};
use pslocal_graph::KernelStrategy;
use pslocal_maxis::{ExactOracle, GreedyOracle, LubyOracle, MaxIsOracle};
use rand::SeedableRng;

fn bench_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduction_end_to_end");
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let k = 3usize;
    let inst = planted_cf_instance(&mut rng, PlantedCfParams::new(64, 32, k));
    let oracles: Vec<(&str, Box<dyn MaxIsOracle>)> = vec![
        ("exact", Box::new(ExactOracle)),
        ("greedy", Box::new(GreedyOracle)),
        ("luby", Box::new(LubyOracle::new(9))),
    ];
    for (name, oracle) in &oracles {
        group.bench_with_input(BenchmarkId::from_parameter(name), oracle, |b, oracle| {
            b.iter(|| {
                reduce_cf_to_maxis(&inst.hypergraph, oracle.as_ref(), ReductionConfig::new(k))
                    .expect("reduction completes")
            })
        });
    }
    group.finish();
}

fn bench_reduction_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduction_scaling_greedy");
    group.sample_size(10);
    for &(n, m) in &[(32usize, 16usize), (64, 32), (128, 64)] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let inst = planted_cf_instance(&mut rng, PlantedCfParams::new(n, m, 4));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_m{m}")),
            &inst.hypergraph,
            |b, h| {
                b.iter(|| {
                    reduce_cf_to_maxis(h, &GreedyOracle, ReductionConfig::new(4))
                        .expect("reduction completes")
                })
            },
        );
    }
    group.finish();
}

/// Kernel crossover on the dense bench instance (n128/m64/k8 → a
/// 5136-node conflict graph with avg degree ≈ 206): the full reduction
/// with the adjacency route pinned to CSR, pinned to bit rows, and
/// left to `Auto` (which resolves to bit rows here). All three compute
/// the identical output — the spread is pure kernel cost, and the
/// `bitset`/`csr` ratio is the dense-route speedup the perf notes
/// quote.
fn bench_reduction_dense_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduction_dense_kernel");
    group.sample_size(10);
    let k = 8usize;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0FFEE);
    let inst = planted_cf_instance(&mut rng, PlantedCfParams::new(128, 64, k));
    for (name, kernel) in [
        ("csr", KernelStrategy::Csr),
        ("bitset", KernelStrategy::Bitset),
        ("auto", KernelStrategy::Auto),
    ] {
        let mut config = ReductionConfig::new(k);
        config.kernel = kernel;
        group.bench_with_input(BenchmarkId::from_parameter(name), &inst.hypergraph, |b, h| {
            b.iter(|| reduce_cf_to_maxis(h, &GreedyOracle, config).expect("reduction completes"))
        });
    }
    group.finish();
}

/// Component-parallel phase execution: the same multi-component
/// reduction (8 vertex-disjoint planted copies, so `G_k` has ≥ 8
/// components) at 1, 2, and 4 worker threads. The executor is
/// thread-count-invariant, so every configuration computes the
/// identical coloring — only the phase wall clock moves. Speedup is
/// bounded by the host's CPU count; on a single-CPU machine the
/// parallel configurations measure pure decomposition overhead.
fn bench_reduction_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduction_parallel_greedy");
    group.sample_size(10);
    let k = 8usize;
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let inst = multi_component_cf_instance(&mut rng, PlantedCfParams::new(128, 64, k), 8);
    for &threads in &[1usize, 2, 4] {
        let config = ReductionConfig::new(k).with_threads(threads);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("threads{threads}")),
            &inst.hypergraph,
            |b, h| {
                b.iter(|| {
                    reduce_cf_to_maxis(h, &GreedyOracle, config).expect("reduction completes")
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_reduction, bench_reduction_scaling, bench_reduction_dense_kernel,
        bench_reduction_parallel
}
criterion_main!(benches);
