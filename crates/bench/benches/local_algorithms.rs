//! Criterion bench: the LOCAL-model engine running Luby's MIS and the
//! random color trial, across network sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pslocal_graph::generators::random::gnp;
use pslocal_local::algorithms::{LubyMis, RandomColorTrial};
use pslocal_local::{Engine, Network};
use rand::SeedableRng;

fn networks() -> Vec<(usize, Network)> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    [64usize, 256, 1024]
        .iter()
        .map(|&n| {
            let g = gnp(&mut rng, n, (8.0 / n as f64).min(0.5));
            (n, Network::with_identity_ids(g))
        })
        .collect()
}

fn bench_luby(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_luby_mis");
    for (n, net) in networks() {
        group.bench_with_input(BenchmarkId::from_parameter(n), &net, |b, net| {
            b.iter(|| Engine::new(net).seed(1).run(&LubyMis).expect("terminates"))
        });
    }
    group.finish();
}

fn bench_color_trial(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_random_color_trial");
    for (n, net) in networks() {
        group.bench_with_input(BenchmarkId::from_parameter(n), &net, |b, net| {
            b.iter(|| Engine::new(net).seed(2).run(&RandomColorTrial).expect("terminates"))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_luby, bench_color_trial
}
criterion_main!(benches);
