//! Criterion bench: each MaxIS oracle on a fixed conflict graph (the
//! workload the reduction feeds them) and on a sparse random graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pslocal_core::ConflictGraph;
use pslocal_graph::generators::hyper::{planted_cf_instance, PlantedCfParams};
use pslocal_graph::generators::random::gnp;
use pslocal_graph::Graph;
use pslocal_maxis::standard_oracles;
use rand::SeedableRng;

fn conflict_instance() -> Graph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let inst = planted_cf_instance(&mut rng, PlantedCfParams::new(48, 20, 3));
    ConflictGraph::build(&inst.hypergraph, 3).graph().clone()
}

fn bench_on(c: &mut Criterion, label: &str, graph: &Graph) {
    let mut group = c.benchmark_group(format!("oracles_{label}"));
    for oracle in standard_oracles(6) {
        group.bench_with_input(BenchmarkId::from_parameter(oracle.name()), &oracle, |b, oracle| {
            b.iter(|| oracle.independent_set(graph))
        });
    }
    group.finish();
}

fn bench_oracles(c: &mut Criterion) {
    bench_on(c, "conflict_graph", &conflict_instance());
    // Kept small: the exact branch-and-bound is in the lineup, and its
    // cost on sparse instances grows steeply with n.
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    bench_on(c, "gnp_sparse", &gnp(&mut rng, 90, 0.06));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_oracles
}
criterion_main!(benches);
