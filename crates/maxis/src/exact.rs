//! Exact maximum independent set by branch and bound.
//!
//! The reduction experiments need ground truth: the exact `α(G)` both
//! calibrates the heuristic oracles' realized λ and instantiates the
//! best possible oracle (λ = 1) in the Theorem 1.1 phase-count
//! experiments. The solver is a classic branch and bound with
//! degree-based reductions:
//!
//! * connected components are solved independently;
//! * degree-0 and degree-1 vertices are always taken (a safe reduction);
//! * branching picks a maximum-degree vertex `v` and explores
//!   "take `v`" / "skip `v`", pruning with the trivial
//!   `current + remaining` bound.
//!
//! Practical up to a few hundred sparse or ~60 dense vertices — ample
//! for the cluster subproblems and calibration instances of the suite.

use crate::oracle::{ApproxGuarantee, MaxIsOracle};
use pslocal_graph::algo::component_vertex_sets;
use pslocal_graph::{Graph, IndependentSet, NodeId};

/// Exact MaxIS oracle (λ = 1).
///
/// # Examples
///
/// ```
/// use pslocal_graph::generators::classic::cycle;
/// use pslocal_maxis::{ExactOracle, MaxIsOracle};
///
/// let g = cycle(7);
/// let is = ExactOracle::default().independent_set(&g);
/// assert_eq!(is.len(), 3); // α(C₇) = ⌊7/2⌋
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactOracle;

impl ExactOracle {
    /// Computes `α(graph)` (size only).
    pub fn independence_number(&self, graph: &Graph) -> usize {
        self.independent_set(graph).len()
    }
}

impl MaxIsOracle for ExactOracle {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn independent_set(&self, graph: &Graph) -> IndependentSet {
        let mut chosen: Vec<NodeId> = Vec::new();
        for component in component_vertex_sets(graph) {
            let (sub, map) = graph.induced_subgraph(&component);
            let local = solve_connected(&sub);
            chosen.extend(local.into_iter().map(|v| map[v.index()]));
        }
        // Invariant, not a fallible path: the branch-and-bound solver
        // only branches on vertices compatible with its current set, and
        // components are vertex-disjoint.
        // pslocal: allow(panic-path, "invariant stated above: the branch-and-bound only extends with compatible vertices across disjoint components")
        IndependentSet::new(graph, chosen).expect("solver returns an independent set")
    }

    fn guarantee(&self) -> ApproxGuarantee {
        ApproxGuarantee::Exact
    }
}

/// Solves one (small) graph exactly; vertices are local indices.
fn solve_connected(graph: &Graph) -> Vec<NodeId> {
    let n = graph.node_count();
    let mut alive = vec![true; n];
    let mut degree: Vec<usize> = graph.nodes().map(|v| graph.degree(v)).collect();
    // Warm start with the greedy solution so the bounds prune from the
    // first branch node on (greedy is often optimal on these graphs).
    let mut best: Vec<NodeId> = crate::greedy::GreedyOracle.independent_set(graph).into_vertices();
    let mut current: Vec<NodeId> = Vec::new();
    branch(graph, &mut alive, &mut degree, n, &mut current, &mut best);
    best
}

/// Removes `v` from the residual graph, updating degrees. Returns the
/// list of removed vertices for undo.
fn remove_vertex(graph: &Graph, alive: &mut [bool], degree: &mut [usize], v: NodeId) {
    alive[v.index()] = false;
    for &u in graph.neighbors(v) {
        if alive[u.index()] {
            degree[u.index()] -= 1;
        }
    }
}

fn restore_vertex(graph: &Graph, alive: &mut [bool], degree: &mut [usize], v: NodeId) {
    alive[v.index()] = true;
    for &u in graph.neighbors(v) {
        if alive[u.index()] {
            degree[u.index()] += 1;
        }
    }
}

/// Greedy clique cover of the alive vertices: an upper bound on the
/// independence number of the residual graph. This is the pruning
/// engine that keeps the solver practical on the *dense* conflict
/// graphs `G_k` (where α = m is tiny relative to n and the trivial
/// `current + alive` bound never fires).
fn cover_bound(graph: &Graph, alive: &[bool]) -> usize {
    let mut cliques: Vec<Vec<NodeId>> = Vec::new();
    for (i, &is_alive) in alive.iter().enumerate() {
        if !is_alive {
            continue;
        }
        let v = NodeId::new(i);
        let mut placed = false;
        for clique in &mut cliques {
            if clique.iter().all(|&u| graph.has_edge(u, v)) {
                clique.push(v);
                placed = true;
                break;
            }
        }
        if !placed {
            cliques.push(vec![v]);
        }
    }
    cliques.len()
}

fn branch(
    graph: &Graph,
    alive: &mut Vec<bool>,
    degree: &mut Vec<usize>,
    alive_count: usize,
    current: &mut Vec<NodeId>,
    best: &mut Vec<NodeId>,
) {
    // Trivial bound.
    if current.len() + alive_count <= best.len() {
        return;
    }
    // Clique-cover bound (worth its cost on graphs where it prunes;
    // skip on tiny residuals where the trivial bound suffices).
    if alive_count > 8 && current.len() + cover_bound(graph, alive) <= best.len() {
        return;
    }
    // Reductions: take all degree-0 and degree-1 vertices greedily
    // (always safe for MaxIS). We apply one reduction and recurse; the
    // undo trail keeps the state exact.
    let mut pick: Option<NodeId> = None; // vertex to take by reduction
    let mut max_deg = 0usize;
    let mut branch_vertex: Option<NodeId> = None;
    for i in 0..alive.len() {
        if !alive[i] {
            continue;
        }
        let v = NodeId::new(i);
        let d = degree[i];
        if d <= 1 {
            pick = Some(v);
            break;
        }
        if d > max_deg {
            max_deg = d;
            branch_vertex = Some(v);
        }
    }

    let Some(bv) = pick.or(branch_vertex) else {
        // No alive vertices left.
        if current.len() > best.len() {
            *best = current.clone();
        }
        return;
    };

    if pick.is_some() {
        // Reduction: take bv, delete its closed neighborhood.
        let removed = take_closed_neighborhood(graph, alive, degree, bv);
        current.push(bv);
        branch(graph, alive, degree, alive_count - removed.len(), current, best);
        current.pop();
        for &u in removed.iter().rev() {
            restore_vertex(graph, alive, degree, u);
        }
        return;
    }

    // Branch 1: take bv.
    let removed = take_closed_neighborhood(graph, alive, degree, bv);
    current.push(bv);
    branch(graph, alive, degree, alive_count - removed.len(), current, best);
    current.pop();
    for &u in removed.iter().rev() {
        restore_vertex(graph, alive, degree, u);
    }

    // Branch 2: skip bv.
    remove_vertex(graph, alive, degree, bv);
    branch(graph, alive, degree, alive_count - 1, current, best);
    restore_vertex(graph, alive, degree, bv);
}

/// Deletes `v` and its alive neighbors; returns them in removal order.
fn take_closed_neighborhood(
    graph: &Graph,
    alive: &mut [bool],
    degree: &mut [usize],
    v: NodeId,
) -> Vec<NodeId> {
    let mut removed = Vec::with_capacity(graph.degree(v) + 1);
    let neighbors: Vec<NodeId> =
        graph.neighbors(v).iter().copied().filter(|u| alive[u.index()]).collect();
    remove_vertex(graph, alive, degree, v);
    removed.push(v);
    for u in neighbors {
        remove_vertex(graph, alive, degree, u);
        removed.push(u);
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use pslocal_graph::generators::classic::{
        cluster_graph, complete, complete_bipartite, cycle, grid, path, star,
    };
    use pslocal_graph::generators::random::{gnp, random_tree};
    use rand::SeedableRng;

    fn alpha(g: &Graph) -> usize {
        let is = ExactOracle.independent_set(g);
        assert!(g.is_independent_set(is.vertices()));
        is.len()
    }

    #[test]
    fn closed_forms() {
        assert_eq!(alpha(&path(1)), 1);
        assert_eq!(alpha(&path(2)), 1);
        assert_eq!(alpha(&path(7)), 4); // ⌈7/2⌉
        assert_eq!(alpha(&cycle(8)), 4); // ⌊8/2⌋
        assert_eq!(alpha(&cycle(9)), 4); // ⌊9/2⌋
        assert_eq!(alpha(&complete(6)), 1);
        assert_eq!(alpha(&star(10)), 9);
        assert_eq!(alpha(&complete_bipartite(4, 7)), 7);
        assert_eq!(alpha(&cluster_graph(5, 3)), 5);
        assert_eq!(alpha(&Graph::empty(4)), 4);
        assert_eq!(alpha(&Graph::empty(0)), 0);
    }

    #[test]
    fn grid_independence() {
        // α of an a×b grid is ⌈ab/2⌉ (checkerboard).
        assert_eq!(alpha(&grid(3, 4)), 6);
        assert_eq!(alpha(&grid(5, 5)), 13);
    }

    #[test]
    fn trees_match_greedy_leaf_argument() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..5 {
            let t = random_tree(&mut rng, 40);
            // For trees, α ≥ n/2 always.
            assert!(alpha(&t) >= 20);
        }
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let g = gnp(&mut rng, 14, 0.3);
            assert_eq!(alpha(&g), brute_force_alpha(&g), "graph {g:?}");
        }
        for _ in 0..5 {
            let g = gnp(&mut rng, 12, 0.7);
            assert_eq!(alpha(&g), brute_force_alpha(&g));
        }
    }

    fn brute_force_alpha(g: &Graph) -> usize {
        let n = g.node_count();
        assert!(n <= 20);
        let mut best = 0;
        for mask in 0u32..(1 << n) {
            let set: Vec<NodeId> =
                (0..n).filter(|&i| mask & (1 << i) != 0).map(NodeId::new).collect();
            if g.is_independent_set(&set) {
                best = best.max(set.len());
            }
        }
        best
    }

    #[test]
    fn handles_moderately_large_sparse_graphs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let g = gnp(&mut rng, 120, 0.03);
        let is = ExactOracle.independent_set(&g);
        assert!(g.is_independent_set(is.vertices()));
        // Sanity: exact beats (or ties) greedy lower bounds.
        assert!(is.len() * (g.max_degree() + 1) >= g.node_count());
    }

    #[test]
    fn oracle_metadata() {
        assert_eq!(ExactOracle.name(), "exact");
        assert_eq!(ExactOracle.guarantee(), ApproxGuarantee::Exact);
        assert_eq!(ExactOracle.lambda_for(&path(5)), Some(1.0));
    }
}
