//! Adversarial and stress-testing oracles.
//!
//! The reduction experiments need oracles that are *exactly* as weak as
//! their contract allows (to exercise the paper's worst-case phase
//! budget) and oracles that are *broken* (to show the pipeline's
//! verification actually catches violations):
//!
//! * [`PrecisionOracle`] — wraps the exact solver but returns only
//!   `⌈α/λ⌉` vertices: a *precisely* `λ`-approximate oracle, realizing
//!   the envelope `|E_{i+1}| = (1 − 1/λ)|E_i|` the proof budgets for
//!   (experiment F1).
//! * [`WorstWitnessOracle`] — returns a single-vertex set and declares
//!   [`ApproxGuarantee::Heuristic`] (no factor). Downstream budgeted
//!   pipelines must refuse it unless given an explicit λ override —
//!   the failure-injection tests exercise exactly that refusal.

use crate::exact::ExactOracle;
use crate::oracle::{ApproxGuarantee, MaxIsOracle};
use pslocal_graph::{Graph, IndependentSet};

/// An oracle that is *exactly* λ-approximate: it computes a maximum
/// independent set and keeps only `⌈α/λ⌉` of its vertices.
///
/// # Examples
///
/// ```
/// use pslocal_graph::generators::classic::star;
/// use pslocal_maxis::{MaxIsOracle, PrecisionOracle};
///
/// // α(K_{1,9}) = 9; a 3-approximate oracle returns exactly 3 leaves.
/// let oracle = PrecisionOracle::new(3.0);
/// assert_eq!(oracle.independent_set(&star(10)).len(), 3);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PrecisionOracle {
    lambda: f64,
}

impl PrecisionOracle {
    /// Creates the oracle with factor `lambda`.
    ///
    /// # Panics
    ///
    /// Panics unless `lambda ≥ 1`.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda >= 1.0, "approximation factor must be at least 1, got {lambda}");
        PrecisionOracle { lambda }
    }

    /// The configured factor.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl MaxIsOracle for PrecisionOracle {
    fn name(&self) -> &'static str {
        "precision-lambda"
    }

    fn independent_set(&self, graph: &Graph) -> IndependentSet {
        let full = ExactOracle.independent_set(graph);
        if full.is_empty() {
            return full;
        }
        let keep = ((full.len() as f64) / self.lambda).ceil().max(1.0) as usize;
        let kept: Vec<_> = full.vertices().iter().copied().take(keep.min(full.len())).collect();
        // pslocal: allow(panic-path, "a prefix of an independent set is independent; a failure means the inner oracle lied")
        IndependentSet::new(graph, kept).expect("subset of an independent set")
    }

    fn guarantee(&self) -> ApproxGuarantee {
        ApproxGuarantee::Factor(self.lambda)
    }
}

/// A contract-free oracle returning one arbitrary vertex (or nothing);
/// declares no guarantee, so budgeted pipelines must reject it unless
/// given an explicit override.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorstWitnessOracle;

impl MaxIsOracle for WorstWitnessOracle {
    fn name(&self) -> &'static str {
        "worst-witness"
    }

    fn independent_set(&self, graph: &Graph) -> IndependentSet {
        let first: Vec<_> = graph.nodes().take(1).collect();
        // pslocal: allow(panic-path, "a single vertex (or the empty set) is trivially independent")
        IndependentSet::new(graph, first).expect("singletons are independent")
    }

    fn guarantee(&self) -> ApproxGuarantee {
        ApproxGuarantee::Heuristic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pslocal_graph::generators::classic::{cycle, path, star};
    use pslocal_graph::generators::random::gnp;
    use rand::SeedableRng;

    #[test]
    fn precision_oracle_is_exactly_lambda() {
        let g = star(13); // α = 12
        for lambda in [1.0, 2.0, 3.0, 4.0, 6.0, 12.0] {
            let set = PrecisionOracle::new(lambda).independent_set(&g);
            assert_eq!(set.len(), (12.0 / lambda).ceil() as usize, "λ = {lambda}");
            assert!(g.is_independent_set(set.vertices()));
        }
    }

    #[test]
    fn precision_oracle_never_returns_empty_on_nonempty_graphs() {
        let g = cycle(5);
        let set = PrecisionOracle::new(100.0).independent_set(&g);
        assert_eq!(set.len(), 1);
        let empty = PrecisionOracle::new(2.0).independent_set(&pslocal_graph::Graph::empty(0));
        assert!(empty.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn sub_unit_lambda_panics() {
        let _ = PrecisionOracle::new(0.5);
    }

    #[test]
    fn precision_oracle_guarantee_reports_factor() {
        let oracle = PrecisionOracle::new(2.5);
        assert_eq!(oracle.lambda(), 2.5);
        assert_eq!(oracle.guarantee(), ApproxGuarantee::Factor(2.5));
        assert_eq!(oracle.lambda_for(&path(4)), Some(2.5));
    }

    #[test]
    fn worst_witness_declares_nothing() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let g = gnp(&mut rng, 20, 0.3);
        let oracle = WorstWitnessOracle;
        assert_eq!(oracle.independent_set(&g).len(), 1);
        assert_eq!(oracle.lambda_for(&g), None);
    }
}
