//! The containment-direction oracle: MaxIS approximation **in
//! P-SLOCAL** via network decomposition (\[GKM17, Theorem 7.1\], which
//! the paper invokes verbatim for the containment half of Theorem 1.1).
//!
//! Given a `(c, d)`-network decomposition, consider each color class
//! `j`: its clusters are pairwise non-adjacent, so the union of
//! per-cluster maximum independent sets is independent. Writing `O` for
//! a maximum independent set of the whole graph and `O_j` for its
//! vertices in class `j`, the class-`j` union has size
//! `≥ |O_j|`, and `Σ_j |O_j| = α(G)`; the best class therefore yields an
//! independent set of size `≥ α(G) / c`. With the ball-carving
//! decomposition of `pslocal-slocal`, `c ≤ ⌈log₂ n⌉ + 1`, i.e. a
//! *logarithmic* (in particular polylogarithmic) approximation computed
//! with polylogarithmic locality — the containment statement, made
//! executable.
//!
//! Clusters have weak diameter `O(log n)` but can still contain many
//! vertices; per-cluster solving uses the exact branch-and-bound below
//! a size threshold and falls back to min-degree greedy above it. The
//! returned [`DecompositionSolve`] reports whether every cluster was
//! solved exactly, i.e. whether the `c`-approximation certificate is
//! intact.

use crate::exact::ExactOracle;
use crate::greedy::GreedyOracle;
use crate::oracle::{ApproxGuarantee, MaxIsOracle};
use pslocal_graph::{Graph, IndependentSet, NodeId};
use pslocal_slocal::decomposition::{carve_decomposition, NetworkDecomposition};

/// Default cluster size up to which clusters are solved exactly.
pub const DEFAULT_EXACT_THRESHOLD: usize = 48;

/// MaxIS oracle implementing the containment direction of Theorem 1.1.
#[derive(Debug, Clone, Copy)]
pub struct DecompositionOracle {
    /// Clusters up to this size are solved exactly; larger ones fall
    /// back to greedy (losing the per-cluster optimality certificate).
    pub exact_threshold: usize,
}

impl Default for DecompositionOracle {
    fn default() -> Self {
        DecompositionOracle { exact_threshold: DEFAULT_EXACT_THRESHOLD }
    }
}

/// Detailed outcome of a decomposition-based solve.
#[derive(Debug, Clone)]
pub struct DecompositionSolve {
    /// The chosen independent set (the best color class union).
    pub independent_set: IndependentSet,
    /// The decomposition that was used.
    pub decomposition: NetworkDecomposition,
    /// The winning color class.
    pub best_color: usize,
    /// Per-color independent-set sizes.
    pub class_sizes: Vec<usize>,
    /// Whether every cluster of the winning class was solved exactly
    /// (if so, the `λ = c` guarantee is fully certified).
    pub certified: bool,
}

impl DecompositionOracle {
    /// Runs the oracle, returning the full per-class breakdown that
    /// experiment T7 tabulates.
    pub fn solve(&self, graph: &Graph) -> DecompositionSolve {
        let decomposition = carve_decomposition(graph);
        let colors = decomposition.color_count().max(1);
        let cluster_sets = decomposition.cluster_vertex_sets();
        let by_color = decomposition.clusters_by_color();

        let mut best: Vec<NodeId> = Vec::new();
        let mut best_color = 0;
        let mut best_certified = true;
        let mut class_sizes = Vec::with_capacity(colors);
        for (color, clusters) in by_color.iter().enumerate() {
            let mut union: Vec<NodeId> = Vec::new();
            let mut certified = true;
            for &c in clusters {
                let members = &cluster_sets[c];
                let (sub, map) = graph.induced_subgraph(members);
                let local = if members.len() <= self.exact_threshold {
                    ExactOracle.independent_set(&sub)
                } else {
                    certified = false;
                    GreedyOracle.independent_set(&sub)
                };
                union.extend(local.iter().map(|v| map[v.index()]));
            }
            class_sizes.push(union.len());
            if union.len() > best.len() || best.is_empty() && union.is_empty() && color == 0 {
                best = union;
                best_color = color;
                best_certified = certified;
            }
        }

        // Invariant, not a fallible path: the decomposition's verifier
        // has already certified the cluster coloring.
        let independent_set = IndependentSet::new(graph, best)
            // pslocal: allow(panic-path, "the network decomposition certified the cluster coloring above; a violation falsifies that certificate")
            .expect("same-color clusters are non-adjacent, so the union is independent");
        DecompositionSolve {
            independent_set,
            decomposition,
            best_color,
            class_sizes,
            certified: best_certified,
        }
    }
}

impl MaxIsOracle for DecompositionOracle {
    fn name(&self) -> &'static str {
        "decomposition"
    }

    fn independent_set(&self, graph: &Graph) -> IndependentSet {
        self.solve(graph).independent_set
    }

    fn guarantee(&self) -> ApproxGuarantee {
        ApproxGuarantee::DecompositionColors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pslocal_graph::generators::classic::{cluster_graph, complete, cycle, grid, path};
    use pslocal_graph::generators::random::{gnp, random_tree};
    use rand::SeedableRng;

    fn check(g: &Graph) -> DecompositionSolve {
        let solve = DecompositionOracle::default().solve(g);
        assert!(g.is_independent_set(solve.independent_set.vertices()));
        solve.decomposition.verify(g).unwrap();
        assert_eq!(solve.class_sizes.len(), solve.decomposition.color_count());
        assert_eq!(
            solve.class_sizes[solve.best_color],
            solve.independent_set.len(),
            "best class size must match the output"
        );
        solve
    }

    #[test]
    fn guarantee_holds_on_small_instances() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..5 {
            let g = gnp(&mut rng, 36, 0.15);
            let solve = check(&g);
            let alpha = ExactOracle.independence_number(&g);
            let c = solve.decomposition.color_count().max(1);
            assert!(
                solve.independent_set.len() * c >= alpha,
                "got {}, need ≥ α/c = {alpha}/{c}",
                solve.independent_set.len()
            );
        }
    }

    #[test]
    fn certified_when_clusters_are_small() {
        let g = grid(6, 6);
        let solve = check(&g);
        if solve.certified {
            // The formal guarantee applies.
            let alpha = ExactOracle.independence_number(&g);
            assert!(solve.independent_set.len() * solve.decomposition.color_count() >= alpha);
        }
    }

    #[test]
    fn cluster_graphs_are_solved_optimally() {
        // Each clique is one cluster (radius ≤ 1); every class union
        // picks one vertex per clique — α exactly.
        let g = cluster_graph(6, 4);
        let solve = check(&g);
        assert_eq!(solve.independent_set.len(), 6);
        assert!(solve.certified);
    }

    #[test]
    fn classic_families() {
        check(&path(40));
        check(&cycle(33));
        check(&complete(10));
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        check(&random_tree(&mut rng, 64));
        check(&Graph::empty(5));
    }

    #[test]
    fn empty_graph() {
        let solve = DecompositionOracle::default().solve(&Graph::empty(0));
        assert!(solve.independent_set.is_empty());
    }

    #[test]
    fn oracle_metadata() {
        assert_eq!(DecompositionOracle::default().name(), "decomposition");
        let g = cycle(16);
        // ⌈log₂ 16⌉ + 1 = 5.
        assert_eq!(DecompositionOracle::default().lambda_for(&g), Some(5.0));
    }
}
