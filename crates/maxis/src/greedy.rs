//! Minimum-degree greedy MaxIS.
//!
//! Repeatedly takes a minimum-degree vertex of the residual graph and
//! deletes its closed neighborhood. Guarantees:
//!
//! * the output is *maximal*, hence at least `n / (Δ+1)`, hence a
//!   `(Δ+1)`-approximation of `α(G)`;
//! * it meets the Turán bound `n / (d̄ + 1)` (Wei's theorem), which the
//!   tests check explicitly.

use crate::oracle::{ApproxGuarantee, MaxIsOracle};
use pslocal_graph::{BitsetGraph, BitsetScratch, Graph, IndependentSet, NodeId};

/// Minimum-degree greedy oracle (λ = Δ + 1).
///
/// # Examples
///
/// ```
/// use pslocal_graph::generators::classic::star;
/// use pslocal_maxis::{GreedyOracle, MaxIsOracle};
///
/// // The greedy takes the leaves, not the hub.
/// let is = GreedyOracle::default().independent_set(&star(8));
/// assert_eq!(is.len(), 7);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyOracle;

impl MaxIsOracle for GreedyOracle {
    fn name(&self) -> &'static str {
        "greedy-min-degree"
    }

    fn independent_set(&self, graph: &Graph) -> IndependentSet {
        let n = graph.node_count();
        let mut alive = vec![true; n];
        // One pass over the adjacency builds the degree table and its
        // maximum together; a histogram over the (cheap, flat) degree
        // vec then sizes every bucket exactly for the initial fill.
        let mut degree = Vec::with_capacity(n);
        let mut maxdeg = 0usize;
        for v in graph.nodes() {
            let d = graph.degree(v);
            maxdeg = maxdeg.max(d);
            degree.push(d);
        }
        let mut counts = vec![0usize; maxdeg + 1];
        for &d in &degree {
            counts[d] += 1;
        }
        // Degree-bucket queue: `buckets[d]` holds vertices last seen at
        // degree `d`; an entry is stale once the vertex's degree moved
        // on (or it died) and is skipped at pop. Each degree decrement
        // pushes one entry and the min-degree cursor only moves down
        // when such a push undercuts it, so the whole scan is
        // O(n + m) — no comparison heap.
        let mut buckets: Vec<Vec<NodeId>> = counts.iter().map(|&c| Vec::with_capacity(c)).collect();
        for v in graph.nodes() {
            buckets[degree[v.index()]].push(v);
        }
        // Maximality guarantees at least the Turán-style `n / (Δ+1)`.
        let mut chosen = Vec::with_capacity(n.div_ceil(maxdeg + 1));
        let mut cursor = 0usize;
        while cursor < buckets.len() {
            let Some(v) = buckets[cursor].pop() else {
                cursor += 1;
                continue;
            };
            if !alive[v.index()] || degree[v.index()] != cursor {
                continue; // stale entry
            }
            chosen.push(v);
            alive[v.index()] = false;
            for &u in graph.neighbors(v) {
                if alive[u.index()] {
                    alive[u.index()] = false;
                    for &w in graph.neighbors(u) {
                        if alive[w.index()] {
                            degree[w.index()] -= 1;
                            let d = degree[w.index()];
                            buckets[d].push(w);
                            cursor = cursor.min(d);
                        }
                    }
                }
            }
        }
        // Invariant, not a fallible path: a vertex is chosen only while
        // alive, and choosing it kills its whole neighborhood.
        // pslocal: allow(panic-path, "invariant stated above: a chosen vertex kills its whole neighborhood, so the output is independent")
        IndependentSet::new(graph, chosen).expect("greedy output is independent")
    }

    fn supports_dense(&self) -> bool {
        true
    }

    fn independent_set_dense(
        &self,
        bits: &BitsetGraph,
        scratch: &mut BitsetScratch,
    ) -> IndependentSet {
        let mut chosen = Vec::with_capacity(bits.node_count().div_ceil(bits.max_degree() + 1));
        bits.min_degree_greedy_into(scratch, &mut chosen);
        // The CSR route re-verifies through `IndependentSet::new`; here
        // the word-parallel checker plays that role before the unchecked
        // constructor takes ownership.
        if let Some((u, v)) = bits.is_independent_set(&chosen) {
            // pslocal: allow(panic-path, "self-check of the dense kernel against the bitset verifier; a conflict is a kernel bug that must abort loudly")
            panic!("greedy output is not independent: {u:?} conflicts with {v:?}");
        }
        IndependentSet::new_unchecked(chosen)
    }

    fn lambda_for_dense(&self, bits: &BitsetGraph) -> Option<f64> {
        Some(bits.max_degree() as f64 + 1.0)
    }

    fn guarantee(&self) -> ApproxGuarantee {
        ApproxGuarantee::MaxDegreePlusOne
    }
}

/// The Turán lower bound `⌈n / (d̄ + 1)⌉` that minimum-degree greedy is
/// guaranteed to meet (Wei's theorem gives the stronger
/// `Σ 1/(deg(v)+1)`, also exposed for experiment tables).
pub fn turan_bound(graph: &Graph) -> usize {
    let n = graph.node_count();
    if n == 0 {
        return 0;
    }
    let avg = graph.average_degree();
    (n as f64 / (avg + 1.0)).ceil() as usize
}

/// Wei's bound `Σ_v 1 / (deg(v) + 1) ≤ α(G)`.
pub fn wei_bound(graph: &Graph) -> f64 {
    graph.nodes().map(|v| 1.0 / (graph.degree(v) as f64 + 1.0)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactOracle;
    use pslocal_graph::generators::classic::{cluster_graph, complete, cycle, path, star};
    use pslocal_graph::generators::random::{gnp, random_regular};
    use rand::SeedableRng;

    fn check(g: &Graph) -> usize {
        let is = GreedyOracle.independent_set(g);
        assert!(g.is_independent_set(is.vertices()));
        assert!(g.is_maximal_independent_set(is.vertices()), "greedy must be maximal");
        assert!(is.len() >= turan_bound(g), "misses Turán: {} < {}", is.len(), turan_bound(g));
        assert!(is.len() as f64 >= wei_bound(g) - 1e-9, "misses Wei");
        is.len()
    }

    #[test]
    fn greedy_on_closed_forms() {
        assert_eq!(check(&path(9)), 5); // greedy is optimal on paths
        assert_eq!(check(&complete(7)), 1);
        assert_eq!(check(&star(6)), 5);
        assert_eq!(check(&cluster_graph(4, 4)), 4); // optimal on cluster graphs
        assert_eq!(check(&Graph::empty(5)), 5);
        assert_eq!(check(&Graph::empty(0)), 0);
        check(&cycle(11));
    }

    #[test]
    fn greedy_respects_delta_plus_one_guarantee() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        for _ in 0..6 {
            let g = gnp(&mut rng, 40, 0.2);
            let greedy = GreedyOracle.independent_set(&g).len();
            let alpha = ExactOracle.independence_number(&g);
            let lambda = g.max_degree() as f64 + 1.0;
            assert!(
                greedy as f64 >= alpha as f64 / lambda,
                "greedy {greedy} below α/λ = {alpha}/{lambda}"
            );
        }
    }

    #[test]
    fn greedy_is_often_near_optimal_on_sparse_regular() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let g = random_regular(&mut rng, 60, 3);
        let greedy = check(&g);
        let alpha = ExactOracle.independence_number(&g);
        assert!(greedy * 2 >= alpha, "greedy {greedy} vs α {alpha}");
    }

    #[test]
    fn bounds_are_consistent() {
        let g = cycle(12);
        assert_eq!(turan_bound(&g), 4);
        assert!((wei_bound(&g) - 4.0).abs() < 1e-9);
        assert_eq!(turan_bound(&Graph::empty(0)), 0);
        let k = complete(5);
        assert_eq!(turan_bound(&k), 1);
    }

    #[test]
    fn oracle_metadata() {
        assert_eq!(GreedyOracle.name(), "greedy-min-degree");
        let g = cycle(5);
        assert_eq!(GreedyOracle.lambda_for(&g), Some(3.0));
    }

    #[test]
    fn dense_route_matches_csr_route_exactly() {
        assert!(GreedyOracle.supports_dense());
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut scratch = BitsetScratch::default();
        for trial in 0..20 {
            let n = 1 + (trial * 7) % 50;
            let g = gnp(&mut rng, n, 0.3);
            let bits = g.to_bitset();
            let csr = GreedyOracle.independent_set(&g);
            let dense = GreedyOracle.independent_set_dense(&bits, &mut scratch);
            assert_eq!(dense.vertices(), csr.vertices(), "diverged on trial {trial}");
            assert_eq!(
                GreedyOracle.lambda_for_dense(&bits),
                GreedyOracle.lambda_for(&g),
                "λ diverged on trial {trial}"
            );
        }
    }
}
