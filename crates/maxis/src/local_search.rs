//! Local-search polishing of independent sets: `(1, 2)`-swaps.
//!
//! A classical post-processing step: while some vertex `v` of the set
//! blocks two non-adjacent outside vertices that have no other blocker,
//! swapping `v` out for the pair grows the set by one; vertices with
//! *no* blocker at all are simply added. The result is 2-swap-optimal
//! and never smaller than the input. [`LocalSearchOracle`] wraps any
//! inner oracle with this polish — the guarantee of the inner oracle is
//! preserved (the output only grows), which the wrapper's
//! [`guarantee`](MaxIsOracle::guarantee) reflects.

use crate::oracle::{ApproxGuarantee, MaxIsOracle};
use pslocal_graph::{Graph, IndependentSet, NodeId};

/// Improves `set` by free additions and `(1, 2)`-swaps until a fixed
/// point. The result is independent, contains at least `set.len()`
/// vertices, and is maximal.
pub fn improve_by_swaps(graph: &Graph, set: &IndependentSet) -> IndependentSet {
    let n = graph.node_count();
    let mut member = vec![false; n];
    for v in set.iter() {
        member[v.index()] = true;
    }

    // blockers[u] = number of set members adjacent to u (for u ∉ set).
    let mut blockers = vec![0u32; n];
    let recount = |member: &[bool], blockers: &mut Vec<u32>| {
        blockers.iter_mut().for_each(|b| *b = 0);
        for v in graph.nodes() {
            if member[v.index()] {
                for &u in graph.neighbors(v) {
                    blockers[u.index()] += 1;
                }
            }
        }
    };
    recount(&member, &mut blockers);

    let mut changed = true;
    while changed {
        changed = false;
        // Free additions.
        for v in graph.nodes() {
            if !member[v.index()] && blockers[v.index()] == 0 {
                member[v.index()] = true;
                for &u in graph.neighbors(v) {
                    blockers[u.index()] += 1;
                }
                changed = true;
            }
        }
        // (1,2)-swaps: for each member v, collect outside vertices
        // blocked ONLY by v; if two of them are non-adjacent, swap.
        for v in graph.nodes() {
            if !member[v.index()] {
                continue;
            }
            let candidates: Vec<NodeId> = graph
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&u| !member[u.index()] && blockers[u.index()] == 1)
                .collect();
            let mut swap: Option<(NodeId, NodeId)> = None;
            'outer: for (i, &a) in candidates.iter().enumerate() {
                for &b in &candidates[i + 1..] {
                    if !graph.has_edge(a, b) {
                        swap = Some((a, b));
                        break 'outer;
                    }
                }
            }
            if let Some((a, b)) = swap {
                member[v.index()] = false;
                member[a.index()] = true;
                member[b.index()] = true;
                recount(&member, &mut blockers);
                changed = true;
            }
        }
    }

    let vertices: Vec<NodeId> = graph.nodes().filter(|v| member[v.index()]).collect();
    // Invariant, not a fallible path: a (1,2)-swap admits {a, b} only
    // after checking a–b non-adjacency and both against the membership.
    // pslocal: allow(panic-path, "invariant stated above: (1,2)-swaps check non-adjacency before admitting, so independence is preserved")
    IndependentSet::new(graph, vertices).expect("swaps preserve independence")
}

/// Wraps an oracle with [`improve_by_swaps`] post-processing.
///
/// # Examples
///
/// ```
/// use pslocal_graph::generators::classic::path;
/// use pslocal_maxis::{LocalSearchOracle, MaxIsOracle, WorstWitnessOracle};
///
/// // Even a single-vertex oracle reaches the optimum on a path once
/// // polished.
/// let oracle = LocalSearchOracle::new(WorstWitnessOracle);
/// assert_eq!(oracle.independent_set(&path(7)).len(), 4);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct LocalSearchOracle<O> {
    inner: O,
}

impl<O: MaxIsOracle> LocalSearchOracle<O> {
    /// Wraps `inner`.
    pub fn new(inner: O) -> Self {
        LocalSearchOracle { inner }
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }
}

impl<O: MaxIsOracle> MaxIsOracle for LocalSearchOracle<O> {
    fn name(&self) -> &'static str {
        "local-search"
    }

    fn independent_set(&self, graph: &Graph) -> IndependentSet {
        improve_by_swaps(graph, &self.inner.independent_set(graph))
    }

    fn guarantee(&self) -> ApproxGuarantee {
        // The polish only grows the set, so the inner guarantee is
        // preserved; additionally the output is maximal, so (Δ+1) holds
        // unconditionally.
        match self.inner.guarantee() {
            ApproxGuarantee::Heuristic => ApproxGuarantee::MaxDegreePlusOne,
            inner => inner,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversarial::WorstWitnessOracle;
    use crate::exact::ExactOracle;
    use crate::greedy::GreedyOracle;
    use pslocal_graph::generators::classic::{cycle, path, star};
    use pslocal_graph::generators::random::gnp;
    use rand::SeedableRng;

    #[test]
    fn improvement_never_shrinks_and_is_maximal() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..6 {
            let g = gnp(&mut rng, 40, 0.15);
            let before = GreedyOracle.independent_set(&g);
            let after = improve_by_swaps(&g, &before);
            assert!(after.len() >= before.len());
            assert!(g.is_maximal_independent_set(after.vertices()));
        }
    }

    #[test]
    fn swap_escapes_the_star_center_trap() {
        // Starting from {center} of a star: one swap reaches 2 leaves,
        // then free additions take the rest.
        let g = star(7);
        let bad = IndependentSet::new(&g, vec![NodeId::new(0)]).unwrap();
        let polished = improve_by_swaps(&g, &bad);
        assert_eq!(polished.len(), 6);
    }

    #[test]
    fn polished_singleton_is_optimal_on_paths_and_cycles() {
        for n in [5usize, 8, 11] {
            let oracle = LocalSearchOracle::new(WorstWitnessOracle);
            let alpha_path = ExactOracle.independence_number(&path(n));
            assert_eq!(oracle.independent_set(&path(n)).len(), alpha_path, "P_{n}");
            let alpha_cycle = ExactOracle.independence_number(&cycle(n));
            let got = oracle.independent_set(&cycle(n)).len();
            assert!(got + 1 >= alpha_cycle, "C_{n}: {got} vs {alpha_cycle}");
        }
    }

    #[test]
    fn never_beats_exact() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..4 {
            let g = gnp(&mut rng, 26, 0.25);
            let alpha = ExactOracle.independence_number(&g);
            let polished = LocalSearchOracle::new(GreedyOracle).independent_set(&g);
            assert!(polished.len() <= alpha);
        }
    }

    #[test]
    fn guarantee_upgrade_for_heuristics() {
        let wrapped = LocalSearchOracle::new(WorstWitnessOracle);
        assert_eq!(wrapped.guarantee(), ApproxGuarantee::MaxDegreePlusOne);
        let wrapped = LocalSearchOracle::new(ExactOracle);
        assert_eq!(wrapped.guarantee(), ApproxGuarantee::Exact);
        assert_eq!(wrapped.inner().name(), "exact");
    }

    #[test]
    fn empty_graph_and_empty_set() {
        let g = Graph::empty(0);
        let out = improve_by_swaps(&g, &IndependentSet::empty());
        assert!(out.is_empty());
        let g = Graph::empty(4);
        let out = improve_by_swaps(&g, &IndependentSet::empty());
        assert_eq!(out.len(), 4, "free additions fill isolated vertices");
    }
}
