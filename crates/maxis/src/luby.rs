//! Luby's randomized LOCAL MIS as a MaxIS oracle.
//!
//! Any maximal independent set is a `(Δ+1)`-approximation of the
//! maximum, so the `O(log n)`-round randomized algorithm from
//! `pslocal-local` doubles as a legitimate (if weak) oracle for the
//! Theorem 1.1 reduction — and, importantly for the paper's narrative,
//! it is the *distributed* oracle: plugging it in makes the whole
//! reduction run on the LOCAL simulator.

use crate::oracle::{ApproxGuarantee, MaxIsOracle};
use pslocal_graph::algo::traversal::component_vertex_sets;
use pslocal_graph::{csr, Graph, IndependentSet, NodeId};
use pslocal_local::algorithms::LubyMis;
use pslocal_local::{Engine, Network};
use rand::{Rng, SeedableRng};

/// MIS-as-approximation oracle backed by the LOCAL-model Luby
/// algorithm.
///
/// The centralized fast path ([`MaxIsOracle::independent_set`]) is
/// *component-local*: each connected component is solved with its own
/// RNG stream seeded by `seed ^ component.fingerprint()`. Because the
/// stream depends only on the component's own structure, solving the
/// whole graph at once and solving its components separately (as the
/// component-parallel phase executor does) produce the identical set —
/// Luby is thread-invariant like every other oracle.
///
/// # Examples
///
/// ```
/// use pslocal_graph::generators::classic::cycle;
/// use pslocal_maxis::{LubyOracle, MaxIsOracle};
///
/// let g = cycle(15);
/// let is = LubyOracle::new(7).independent_set(&g);
/// assert!(g.is_maximal_independent_set(is.vertices()));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct LubyOracle {
    seed: u64,
}

impl LubyOracle {
    /// Creates the oracle with the given randomness seed.
    pub fn new(seed: u64) -> Self {
        LubyOracle { seed }
    }

    /// Centralized Luby on one (component of a) graph.
    ///
    /// Direct execution of the same per-round rule as the LOCAL version
    /// (draw priorities; strict local maxima join, their neighborhoods
    /// drop out) without cloning the graph into a simulated network or
    /// exchanging messages. Each round costs O(Σ residual degree). The
    /// round-reporting path keeps the simulator, which is the object
    /// experiment F3 measures.
    ///
    /// The RNG stream is `seed ^ graph.fingerprint()`: a function of the
    /// component alone, never of the ambient graph it was cut from.
    fn solve_connected(&self, graph: &Graph) -> Vec<NodeId> {
        #[derive(Clone, Copy, PartialEq)]
        enum State {
            Undecided,
            In,
            Out,
        }
        let n = graph.node_count();
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed ^ graph.fingerprint());
        let mut state = vec![State::Undecided; n];
        let mut priority = vec![0u64; n];
        let mut undecided: Vec<NodeId> = graph.nodes().collect();
        let mut joined: Vec<NodeId> = Vec::new();
        while !undecided.is_empty() {
            for &v in &undecided {
                priority[v.index()] = rng.gen();
            }
            joined.clear();
            for &v in &undecided {
                let pv = (priority[v.index()], v);
                // (priority, id) is a total order, so adjacent undecided
                // vertices can never both win their neighborhoods.
                let wins = graph.neighbors(v).iter().all(|&u| {
                    state[u.index()] != State::Undecided || (priority[u.index()], u) < pv
                });
                if wins {
                    joined.push(v);
                }
            }
            for &v in &joined {
                state[v.index()] = State::In;
                for &u in graph.neighbors(v) {
                    if state[u.index()] == State::Undecided {
                        state[u.index()] = State::Out;
                    }
                }
            }
            undecided.retain(|&v| state[v.index()] == State::Undecided);
        }
        graph.nodes().filter(|&v| state[v.index()] == State::In).collect()
    }
}

impl Default for LubyOracle {
    fn default() -> Self {
        LubyOracle::new(0xC0FFEE)
    }
}

impl MaxIsOracle for LubyOracle {
    fn name(&self) -> &'static str {
        "luby-local-mis"
    }

    fn independent_set(&self, graph: &Graph) -> IndependentSet {
        // Solve per connected component with a structure-derived seed so
        // the answer does not depend on whether components are fed to
        // the oracle together or separately (thread invariance; see the
        // type-level docs). The component order and within-component
        // vertex order match `csr::induced_sorted`, i.e. exactly the
        // renumbering the component-parallel executor uses.
        let components = component_vertex_sets(graph);
        let members: Vec<NodeId> = if components.len() <= 1 {
            // Connected (or empty): the induced subgraph on all vertices
            // is the graph itself, so solve in place. `Graph::fingerprint`
            // equals the fingerprint of that full induced copy.
            self.solve_connected(graph)
        } else {
            let mut picked = Vec::new();
            for comp in &components {
                let sub = csr::induced_sorted(graph, comp);
                picked.extend(self.solve_connected(&sub).into_iter().map(|v| comp[v.index()]));
            }
            picked
        };
        // Invariant, not a fallible path: joiners are strict local
        // maxima and exclude their entire neighborhoods.
        // pslocal: allow(panic-path, "invariant stated above: joiners are strict local maxima excluding their neighborhoods")
        IndependentSet::new(graph, members).expect("Luby returns an independent set")
    }

    /// Runs the oracle on the LOCAL simulator and reports the round
    /// count — the quantity experiment F3 plots.
    fn independent_set_with_rounds(&self, graph: &Graph) -> (IndependentSet, usize) {
        let network = Network::with_identity_ids(graph.clone());
        let exec = Engine::new(&network)
            .seed(self.seed)
            .max_rounds(4096)
            .run(&LubyMis)
            // Invariant, not a fallible path: Luby terminates in
            // O(log n) rounds w.h.p.; 4096 rounds would require an
            // astronomically unlucky seed on any graph the simulator
            // can hold in memory.
            // pslocal: allow(panic-path, "rationale above: O(log n) rounds w.h.p. makes 4096 rounds unreachable for any in-memory instance")
            .expect("Luby terminates within the generous budget");
        let members = LubyMis::members(&exec.states);
        // Invariant: LubyMis's own verifier guarantees membership forms
        // an independent set of the network graph.
        // pslocal: allow(panic-path, "invariant stated above: LubyMis's own verifier guarantees an independent membership set")
        let set = IndependentSet::new(graph, members).expect("Luby returns an independent set");
        (set, exec.trace.rounds)
    }

    fn guarantee(&self) -> ApproxGuarantee {
        ApproxGuarantee::MaxDegreePlusOne
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactOracle;
    use pslocal_graph::generators::classic::{complete, grid};
    use pslocal_graph::generators::random::gnp;
    use rand::SeedableRng;

    #[test]
    fn output_is_maximal_independent() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for seed in 0..4 {
            let g = gnp(&mut rng, 60, 0.1);
            let is = LubyOracle::new(seed).independent_set(&g);
            assert!(g.is_maximal_independent_set(is.vertices()));
        }
    }

    #[test]
    fn guarantee_holds_against_exact() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let g = gnp(&mut rng, 30, 0.2);
        let alpha = ExactOracle.independence_number(&g);
        let luby = LubyOracle::default().independent_set(&g).len();
        let lambda = g.max_degree() as f64 + 1.0;
        assert!(luby as f64 >= alpha as f64 / lambda);
    }

    #[test]
    fn rounds_are_reported() {
        let g = grid(8, 8);
        let (is, rounds) = LubyOracle::new(1).independent_set_with_rounds(&g);
        assert!(!is.is_empty());
        assert!(rounds >= 1);
        assert!(rounds <= 60, "rounds = {rounds}");
    }

    #[test]
    fn clique_yields_singleton() {
        let g = complete(10);
        assert_eq!(LubyOracle::new(3).independent_set(&g).len(), 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = grid(5, 5);
        let a = LubyOracle::new(42).independent_set(&g);
        let b = LubyOracle::new(42).independent_set(&g);
        assert_eq!(a, b);
    }

    /// The property the component-parallel phase executor relies on:
    /// solving the whole graph at once equals the union of solving each
    /// connected component separately (under the executor's canonical
    /// renumbering).
    #[test]
    fn whole_graph_equals_per_component_union() {
        use pslocal_graph::GraphBuilder;
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        for trial in 0..6 {
            // Disjoint union of three random blocks (some of which may
            // themselves be disconnected).
            let blocks = [gnp(&mut rng, 18, 0.15), gnp(&mut rng, 25, 0.1), gnp(&mut rng, 9, 0.3)];
            let n: usize = blocks.iter().map(|g| g.node_count()).sum();
            let mut b = GraphBuilder::new(n);
            let mut base = 0;
            for g in &blocks {
                for (u, v) in g.edges() {
                    b.add_edge(NodeId::new(base + u.index()), NodeId::new(base + v.index()));
                }
                base += g.node_count();
            }
            let whole = b.build();
            let oracle = LubyOracle::new(trial);
            let at_once = oracle.independent_set(&whole);
            let mut union: Vec<NodeId> = Vec::new();
            for comp in component_vertex_sets(&whole) {
                let sub = csr::induced_sorted(&whole, &comp);
                union.extend(
                    oracle.independent_set(&sub).vertices().iter().map(|v| comp[v.index()]),
                );
            }
            union.sort_unstable();
            assert_eq!(at_once.vertices(), &union[..], "trial {trial}");
        }
    }
}
