//! Luby's randomized LOCAL MIS as a MaxIS oracle.
//!
//! Any maximal independent set is a `(Δ+1)`-approximation of the
//! maximum, so the `O(log n)`-round randomized algorithm from
//! `pslocal-local` doubles as a legitimate (if weak) oracle for the
//! Theorem 1.1 reduction — and, importantly for the paper's narrative,
//! it is the *distributed* oracle: plugging it in makes the whole
//! reduction run on the LOCAL simulator.

use crate::oracle::{ApproxGuarantee, MaxIsOracle};
use pslocal_graph::{Graph, IndependentSet, NodeId};
use pslocal_local::algorithms::LubyMis;
use pslocal_local::{Engine, Network};
use rand::{Rng, SeedableRng};

/// MIS-as-approximation oracle backed by the LOCAL-model Luby
/// algorithm.
///
/// # Examples
///
/// ```
/// use pslocal_graph::generators::classic::cycle;
/// use pslocal_maxis::{LubyOracle, MaxIsOracle};
///
/// let g = cycle(15);
/// let is = LubyOracle::new(7).independent_set(&g);
/// assert!(g.is_maximal_independent_set(is.vertices()));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct LubyOracle {
    seed: u64,
}

impl LubyOracle {
    /// Creates the oracle with the given randomness seed.
    pub fn new(seed: u64) -> Self {
        LubyOracle { seed }
    }
}

impl Default for LubyOracle {
    fn default() -> Self {
        LubyOracle::new(0xC0FFEE)
    }
}

impl MaxIsOracle for LubyOracle {
    fn name(&self) -> &'static str {
        "luby-local-mis"
    }

    fn independent_set(&self, graph: &Graph) -> IndependentSet {
        // Direct centralized execution of Luby's algorithm — same
        // per-round rule as the LOCAL version (draw priorities; strict
        // local maxima join, their neighborhoods drop out) without
        // cloning the graph into a simulated network or exchanging
        // messages. Each round costs O(Σ residual degree). The
        // round-reporting path below keeps the simulator, which is the
        // object experiment F3 measures.
        #[derive(Clone, Copy, PartialEq)]
        enum State {
            Undecided,
            In,
            Out,
        }
        let n = graph.node_count();
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let mut state = vec![State::Undecided; n];
        let mut priority = vec![0u64; n];
        let mut undecided: Vec<NodeId> = graph.nodes().collect();
        let mut joined: Vec<NodeId> = Vec::new();
        while !undecided.is_empty() {
            for &v in &undecided {
                priority[v.index()] = rng.gen();
            }
            joined.clear();
            for &v in &undecided {
                let pv = (priority[v.index()], v);
                // (priority, id) is a total order, so adjacent undecided
                // vertices can never both win their neighborhoods.
                let wins = graph.neighbors(v).iter().all(|&u| {
                    state[u.index()] != State::Undecided || (priority[u.index()], u) < pv
                });
                if wins {
                    joined.push(v);
                }
            }
            for &v in &joined {
                state[v.index()] = State::In;
                for &u in graph.neighbors(v) {
                    if state[u.index()] == State::Undecided {
                        state[u.index()] = State::Out;
                    }
                }
            }
            undecided.retain(|&v| state[v.index()] == State::Undecided);
        }
        let members: Vec<NodeId> =
            graph.nodes().filter(|&v| state[v.index()] == State::In).collect();
        // Invariant, not a fallible path: joiners are strict local
        // maxima and exclude their entire neighborhoods.
        IndependentSet::new(graph, members).expect("Luby returns an independent set")
    }

    /// Runs the oracle on the LOCAL simulator and reports the round
    /// count — the quantity experiment F3 plots.
    fn independent_set_with_rounds(&self, graph: &Graph) -> (IndependentSet, usize) {
        let network = Network::with_identity_ids(graph.clone());
        let exec = Engine::new(&network)
            .seed(self.seed)
            .max_rounds(4096)
            .run(&LubyMis)
            // Invariant, not a fallible path: Luby terminates in
            // O(log n) rounds w.h.p.; 4096 rounds would require an
            // astronomically unlucky seed on any graph the simulator
            // can hold in memory.
            .expect("Luby terminates within the generous budget");
        let members = LubyMis::members(&exec.states);
        // Invariant: LubyMis's own verifier guarantees membership forms
        // an independent set of the network graph.
        let set = IndependentSet::new(graph, members).expect("Luby returns an independent set");
        (set, exec.trace.rounds)
    }

    fn guarantee(&self) -> ApproxGuarantee {
        ApproxGuarantee::MaxDegreePlusOne
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactOracle;
    use pslocal_graph::generators::classic::{complete, grid};
    use pslocal_graph::generators::random::gnp;
    use rand::SeedableRng;

    #[test]
    fn output_is_maximal_independent() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for seed in 0..4 {
            let g = gnp(&mut rng, 60, 0.1);
            let is = LubyOracle::new(seed).independent_set(&g);
            assert!(g.is_maximal_independent_set(is.vertices()));
        }
    }

    #[test]
    fn guarantee_holds_against_exact() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let g = gnp(&mut rng, 30, 0.2);
        let alpha = ExactOracle.independence_number(&g);
        let luby = LubyOracle::default().independent_set(&g).len();
        let lambda = g.max_degree() as f64 + 1.0;
        assert!(luby as f64 >= alpha as f64 / lambda);
    }

    #[test]
    fn rounds_are_reported() {
        let g = grid(8, 8);
        let (is, rounds) = LubyOracle::new(1).independent_set_with_rounds(&g);
        assert!(!is.is_empty());
        assert!(rounds >= 1);
        assert!(rounds <= 60, "rounds = {rounds}");
    }

    #[test]
    fn clique_yields_singleton() {
        let g = complete(10);
        assert_eq!(LubyOracle::new(3).independent_set(&g).len(), 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = grid(5, 5);
        let a = LubyOracle::new(42).independent_set(&g);
        let b = LubyOracle::new(42).independent_set(&g);
        assert_eq!(a, b);
    }
}
