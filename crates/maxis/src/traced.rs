//! Telemetry wrapping at the oracle trait boundary.
//!
//! [`TracedOracle`] decorates any [`MaxIsOracle`] so that every
//! `independent_set` call opens an `oracle` span on a shared
//! [`Telemetry`] pipeline, ticks the `oracle_calls` counter, and
//! samples the returned set's size — without the callee knowing it is
//! observed. Drivers that already own a span tree (the reduction
//! drivers in `pslocal-core`) instrument their call sites directly;
//! this wrapper serves standalone oracle invocations (the `pslocal
//! maxis` command, benchmarks, experiments) where the oracle call *is*
//! the top-level unit of work.

use crate::{ApproxGuarantee, MaxIsOracle};
use pslocal_graph::{Graph, IndependentSet};
use pslocal_telemetry::{names, span, Counter, Histogram, Sink, Telemetry};

/// A [`MaxIsOracle`] decorator that reports every call to a
/// [`Telemetry`] pipeline. With a disabled pipeline
/// (`Telemetry::disabled()`) the wrapper compiles down to plain
/// delegation.
pub struct TracedOracle<'t, O: ?Sized, S: Sink> {
    inner: &'t O,
    tel: &'t Telemetry<S>,
}

impl<'t, O: MaxIsOracle + ?Sized, S: Sink> TracedOracle<'t, O, S> {
    /// Wraps `inner` so its calls report to `tel`.
    pub fn new(inner: &'t O, tel: &'t Telemetry<S>) -> Self {
        TracedOracle { inner, tel }
    }
}

impl<O: MaxIsOracle + ?Sized, S: Sink> MaxIsOracle for TracedOracle<'_, O, S> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn independent_set(&self, graph: &Graph) -> IndependentSet {
        let call = span!(self.tel, names::ORACLE);
        call.add(Counter::OracleCalls, 1);
        let set = self.inner.independent_set(graph);
        call.add(Counter::StalledSteps, self.inner.stalled_steps() as u64);
        call.sample(Histogram::IndependentSetSize, set.len() as u64);
        set
    }

    fn independent_set_with_rounds(&self, graph: &Graph) -> (IndependentSet, usize) {
        let call = span!(self.tel, names::ORACLE);
        call.add(Counter::OracleCalls, 1);
        let (set, rounds) = self.inner.independent_set_with_rounds(graph);
        call.add(Counter::LocalRounds, rounds as u64);
        call.add(Counter::StalledSteps, self.inner.stalled_steps() as u64);
        call.sample(Histogram::IndependentSetSize, set.len() as u64);
        (set, rounds)
    }

    fn stalled_steps(&self) -> usize {
        self.inner.stalled_steps()
    }

    fn guarantee(&self) -> ApproxGuarantee {
        self.inner.guarantee()
    }

    fn lambda_for(&self, graph: &Graph) -> Option<f64> {
        self.inner.lambda_for(graph)
    }

    fn resume_at(&self, calls: usize) {
        self.inner.resume_at(calls);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GreedyOracle;
    use pslocal_graph::generators::classic::cycle;
    use pslocal_telemetry::MemorySink;

    #[test]
    fn traced_oracle_delegates_and_records() {
        let g = cycle(12);
        let tel = Telemetry::new(MemorySink::new());
        let traced = TracedOracle::new(&GreedyOracle, &tel);
        assert_eq!(traced.name(), GreedyOracle.name());
        assert_eq!(traced.guarantee(), GreedyOracle.guarantee());
        assert_eq!(traced.lambda_for(&g), GreedyOracle.lambda_for(&g));
        let set = traced.independent_set(&g);
        assert_eq!(set.vertices(), GreedyOracle.independent_set(&g).vertices());
        let (set2, rounds) = traced.independent_set_with_rounds(&g);
        assert_eq!(set2.vertices(), set.vertices());
        assert!(rounds >= 1);
        let sink = tel.into_sink();
        assert_eq!(sink.counter_total(Counter::OracleCalls), 2);
        assert_eq!(sink.counter_total(Counter::LocalRounds), rounds as u64);
        let spans = sink.spans();
        assert_eq!(spans.iter().filter(|s| s.name == names::ORACLE).count(), 2);
        assert!(sink.open_spans().is_empty());
        assert_eq!(
            sink.samples(Histogram::IndependentSetSize),
            vec![set.len() as u64, set.len() as u64]
        );
    }

    #[test]
    fn disabled_pipeline_records_nothing_and_changes_nothing() {
        let g = cycle(9);
        let tel = Telemetry::disabled();
        let traced = TracedOracle::new(&GreedyOracle, &tel);
        let set = traced.independent_set(&g);
        assert_eq!(set.vertices(), GreedyOracle.independent_set(&g).vertices());
    }
}
