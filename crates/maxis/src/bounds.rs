//! Upper bounds on the independence number and realized-λ measurement.
//!
//! The reduction's phase budget uses the oracle's *theoretical* λ; the
//! experiment tables additionally report the *realized* approximation
//! ratio. On instances small enough for the exact solver the ratio is
//! exact; otherwise a clique-cover upper bound on `α` certifies an
//! upper bound on the ratio.

use crate::exact::ExactOracle;
use crate::oracle::MaxIsOracle;
use pslocal_graph::algo::clique_cover_bound;
use pslocal_graph::Graph;
use serde::{Deserialize, Serialize};

/// Instance-size threshold below which `α` is computed exactly.
pub const EXACT_ALPHA_THRESHOLD: usize = 40;

/// A certified upper bound on `α(G)` together with its provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlphaBound {
    /// The bound value.
    pub value: usize,
    /// Whether the bound is exact (`value == α`).
    pub exact: bool,
}

/// Computes a certified upper bound on `α(graph)`: exact up to
/// [`EXACT_ALPHA_THRESHOLD`] vertices, clique-cover beyond.
pub fn alpha_upper_bound(graph: &Graph) -> AlphaBound {
    alpha_upper_bound_with_threshold(graph, EXACT_ALPHA_THRESHOLD)
}

/// [`alpha_upper_bound`] with an explicit exact-solve threshold.
pub fn alpha_upper_bound_with_threshold(graph: &Graph, threshold: usize) -> AlphaBound {
    if graph.node_count() <= threshold {
        AlphaBound { value: ExactOracle.independence_number(graph), exact: true }
    } else {
        AlphaBound { value: clique_cover_bound(graph), exact: false }
    }
}

/// The measured quality of one oracle run on one instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RatioMeasurement {
    /// Size of the independent set the oracle produced.
    pub size: usize,
    /// Certified upper bound on `α`.
    pub alpha_bound: AlphaBound,
    /// `alpha_bound / size` — an upper bound on the realized λ (exact
    /// when `alpha_bound.exact`); `None` when the oracle returned an
    /// empty set on a graph with vertices.
    pub realized_lambda: Option<f64>,
}

/// Runs `oracle` on `graph` and measures its realized approximation
/// ratio.
pub fn measure_ratio<O: MaxIsOracle + ?Sized>(oracle: &O, graph: &Graph) -> RatioMeasurement {
    let set = oracle.independent_set(graph);
    let alpha_bound = alpha_upper_bound(graph);
    let realized_lambda = if set.is_empty() {
        (alpha_bound.value == 0).then_some(1.0)
    } else {
        Some(alpha_bound.value as f64 / set.len() as f64)
    };
    RatioMeasurement { size: set.len(), alpha_bound, realized_lambda }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::GreedyOracle;
    use pslocal_graph::generators::classic::{cluster_graph, cycle, path};
    use pslocal_graph::generators::random::gnp;
    use rand::SeedableRng;

    #[test]
    fn small_instances_get_exact_alpha() {
        let g = cycle(9);
        let b = alpha_upper_bound(&g);
        assert!(b.exact);
        assert_eq!(b.value, 4);
    }

    #[test]
    fn large_instances_get_cover_bound() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let g = gnp(&mut rng, 100, 0.1);
        let b = alpha_upper_bound(&g);
        assert!(!b.exact);
        // Any valid upper bound dominates any independent set.
        let greedy = GreedyOracle.independent_set(&g);
        assert!(b.value >= greedy.len());
    }

    #[test]
    fn cover_bound_is_tight_on_cluster_graphs() {
        let g = cluster_graph(7, 5);
        let b = alpha_upper_bound_with_threshold(&g, 0);
        assert!(!b.exact);
        assert_eq!(b.value, 7); // greedy clique cover finds the cliques
    }

    #[test]
    fn ratio_measurement_on_path() {
        let g = path(9); // α = 5, greedy finds 5
        let m = measure_ratio(&GreedyOracle, &g);
        assert_eq!(m.size, 5);
        assert!(m.alpha_bound.exact);
        assert_eq!(m.realized_lambda, Some(1.0));
    }

    #[test]
    fn ratio_on_empty_graph() {
        let g = pslocal_graph::Graph::empty(0);
        let m = measure_ratio(&GreedyOracle, &g);
        assert_eq!(m.size, 0);
        assert_eq!(m.realized_lambda, Some(1.0));
    }

    #[test]
    fn threshold_switch_is_respected() {
        let g = cycle(20);
        assert!(alpha_upper_bound_with_threshold(&g, 30).exact);
        assert!(!alpha_upper_bound_with_threshold(&g, 10).exact);
    }
}
