//! Deterministic fault injection for MaxIS oracles.
//!
//! The hardness proof of Theorem 1.1 *assumes* the λ-approximate
//! oracle honors its contract on every call. This module supplies the
//! adversary that breaks that assumption on purpose: a seeded
//! [`FaultPlan`] decides, per oracle call, whether to misbehave and
//! how ([`FaultKind`]), and [`FaultyOracle`] applies the plan to any
//! inner [`MaxIsOracle`] while still *claiming* the inner oracle's
//! guarantee — exactly the adversarial setting the resilient reduction
//! driver (`pslocal-core::resilient`) must survive.
//!
//! Everything is deterministic: the fault decision for call `i` is a
//! pure function of `(seed, i)`, so two runs against the same plan
//! produce identical fault logs and identical downstream behavior —
//! chaos tests shrink to a seed.

use crate::oracle::{ApproxGuarantee, MaxIsOracle};
use pslocal_graph::{Graph, IndependentSet, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Where, within a reduction phase, a simulated process crash strikes.
///
/// [`FaultKind::CrashAt`] and the recovery layer's driver-side kill
/// points (`pslocal-core::recovery::CrashPlan`) share this vocabulary,
/// so the resume-equivalence suite can sweep every boundary by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum CrashPoint {
    /// Inside the oracle call itself: the set was never returned.
    MidOracle,
    /// After the phase's independent set was acquired, before anything
    /// was committed.
    AfterOracle,
    /// After the phase committed in memory but before the journal
    /// append — the journal is one phase behind the dead process.
    BeforeJournal,
    /// After the journal append was persisted — a clean phase boundary.
    AfterJournal,
}

impl CrashPoint {
    /// Stable kebab-case name (the CLI's `--crash-at PHASE:POINT`
    /// argument and reports).
    pub fn name(self) -> &'static str {
        match self {
            CrashPoint::MidOracle => "mid-oracle",
            CrashPoint::AfterOracle => "after-oracle",
            CrashPoint::BeforeJournal => "before-journal",
            CrashPoint::AfterJournal => "after-journal",
        }
    }

    /// Parses [`name`](Self::name)'s output back.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "mid-oracle" => CrashPoint::MidOracle,
            "after-oracle" => CrashPoint::AfterOracle,
            "before-journal" => CrashPoint::BeforeJournal,
            "after-journal" => CrashPoint::AfterJournal,
            _ => return None,
        })
    }
}

impl fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The panic payload of a simulated process crash.
///
/// Fault-tolerant drivers distinguish *oracle* faults (survivable:
/// retry, fall back) from *process* faults (not survivable in-process:
/// the crash must propagate so the test harness — or reality — kills
/// the run). The resilient driver's `catch_unwind` re-raises any panic
/// whose payload is a `CrashSignal` instead of logging it as an oracle
/// fault; the trusting driver never catches, so the signal propagates
/// naturally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSignal {
    /// The phase the crash was scheduled for.
    pub phase: usize,
    /// The kill point within that phase.
    pub point: CrashPoint,
}

impl fmt::Display for CrashSignal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected process crash at phase {} ({})", self.phase, self.point)
    }
}

/// One way an oracle call can misbehave.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Return a *claimed* independent set containing an adjacent pair
    /// (or an out-of-range vertex on edgeless graphs) — the output the
    /// verified [`IndependentSet::new`] constructor would reject, built
    /// through [`IndependentSet::new_unchecked`].
    InvalidSet,
    /// Silently return only half of the inner oracle's set — typically
    /// below the `|I| ≥ |E|/λ` delivery the claimed λ promises
    /// (Lemma 2.1), starving the reduction's geometric decay.
    UnderDeliver,
    /// Return the empty set: syntactically valid, zero progress.
    EmptySet,
    /// Panic mid-call, as a crashed oracle process would.
    Panic,
    /// Answer correctly, but only after stalling for this many
    /// simulated steps (a slow or partitioned oracle). Resilient
    /// drivers bill the steps against a stall budget.
    Stall(usize),
    /// Die mid-call with a [`CrashSignal`] panic payload — a simulated
    /// *process* crash (OOM kill, preemption), not an oracle fault:
    /// resilient drivers re-raise it instead of retrying. The `phase` /
    /// `point` fields are the signal's metadata, letting crash-recovery
    /// tests label which kill point a scripted plan exercises.
    CrashAt {
        /// The phase this kill point targets (metadata carried into the
        /// [`CrashSignal`]; the plan's call index decides *when*).
        phase: usize,
        /// Which kill point the crash simulates.
        point: CrashPoint,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::InvalidSet => write!(f, "invalid-set"),
            FaultKind::UnderDeliver => write!(f, "under-deliver"),
            FaultKind::EmptySet => write!(f, "empty-set"),
            FaultKind::Panic => write!(f, "panic"),
            FaultKind::Stall(steps) => write!(f, "stall({steps})"),
            FaultKind::CrashAt { phase, point } => write!(f, "crash-at({phase}:{point})"),
        }
    }
}

/// A deterministic, per-call schedule of faults.
///
/// Two constructions:
///
/// * [`FaultPlan::seeded`] — every call is independently faulty with
///   probability `rate`; the fault decision for call `i` is derived
///   from `(seed, i)` alone, so schedules are stable under reordering
///   of *other* calls and identical across runs.
/// * [`FaultPlan::scripted`] — an explicit per-call script (position
///   `i` = call `i`); calls beyond the script behave.
///
/// # Examples
///
/// ```
/// use pslocal_maxis::{FaultKind, FaultPlan};
///
/// let plan = FaultPlan::scripted(vec![None, Some(FaultKind::EmptySet)]);
/// assert_eq!(plan.fault_for(0), None);
/// assert_eq!(plan.fault_for(1), Some(FaultKind::EmptySet));
/// assert_eq!(plan.fault_for(2), None);
///
/// // Seeded plans are pure functions of (seed, call).
/// let a = FaultPlan::seeded(7, 0.5);
/// let b = FaultPlan::seeded(7, 0.5);
/// assert!((0..100).all(|i| a.fault_for(i) == b.fault_for(i)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    schedule: Schedule,
    max_stall: usize,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Schedule {
    Seeded { seed: u64, rate: f64 },
    Scripted(Vec<Option<FaultKind>>),
}

impl FaultPlan {
    /// Default ceiling for the step count of injected stalls.
    pub const DEFAULT_MAX_STALL: usize = 64;

    /// The always-well-behaved plan (fault rate 0).
    pub fn none() -> Self {
        FaultPlan::seeded(0, 0.0)
    }

    /// Random plan: each call faults independently with probability
    /// `rate`, fault kinds uniform.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ rate ≤ 1`.
    pub fn seeded(seed: u64, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "fault rate {rate} outside [0, 1]");
        FaultPlan { schedule: Schedule::Seeded { seed, rate }, max_stall: Self::DEFAULT_MAX_STALL }
    }

    /// Explicit script: entry `i` is the fault injected on call `i`
    /// (`None` = behave); calls past the end behave.
    pub fn scripted(script: Vec<Option<FaultKind>>) -> Self {
        FaultPlan { schedule: Schedule::Scripted(script), max_stall: Self::DEFAULT_MAX_STALL }
    }

    /// Caps the step count seeded plans draw for [`FaultKind::Stall`].
    pub fn with_max_stall(mut self, max_stall: usize) -> Self {
        self.max_stall = max_stall.max(1);
        self
    }

    /// The fault injected on call `call`, if any. Pure in
    /// `(self, call)`.
    pub fn fault_for(&self, call: usize) -> Option<FaultKind> {
        match &self.schedule {
            Schedule::Scripted(script) => script.get(call).copied().flatten(),
            Schedule::Seeded { seed, rate } => {
                if *rate <= 0.0 {
                    return None;
                }
                // Independent stream per call index: stable schedules
                // regardless of how many calls preceded this one.
                let mut rng =
                    StdRng::seed_from_u64(seed ^ (call as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                if !rng.gen_bool(*rate) {
                    return None;
                }
                // Seeded plans draw only the five *survivable* kinds:
                // `CrashAt` kills the process by design, which would
                // make random chaos schedules unfinishable — crash
                // injection is always scripted.
                Some(match rng.gen_range(0..5usize) {
                    0 => FaultKind::InvalidSet,
                    1 => FaultKind::UnderDeliver,
                    2 => FaultKind::EmptySet,
                    3 => FaultKind::Panic,
                    _ => FaultKind::Stall(rng.gen_range(1..=self.max_stall)),
                })
            }
        }
    }
}

/// One injected fault, as recorded by [`FaultyOracle`]'s log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectedFault {
    /// 0-based index of the oracle call the fault was injected into.
    pub call: usize,
    /// What was injected.
    pub kind: FaultKind,
}

/// Wraps any [`MaxIsOracle`] and applies a [`FaultPlan`] to its calls.
///
/// The wrapper *claims* the inner oracle's [`ApproxGuarantee`] — that
/// is the attack: downstream budget math trusts a contract the wrapper
/// deliberately violates. Every injected fault is appended to an
/// internal log ([`fault_log`](Self::fault_log)), which is a pure
/// function of the plan and the call sequence, so identical runs have
/// identical logs.
///
/// # Examples
///
/// ```
/// use pslocal_graph::generators::classic::cycle;
/// use pslocal_maxis::{FaultKind, FaultPlan, FaultyOracle, GreedyOracle, MaxIsOracle};
///
/// let plan = FaultPlan::scripted(vec![Some(FaultKind::EmptySet)]);
/// let oracle = FaultyOracle::new(GreedyOracle, plan);
/// assert!(oracle.independent_set(&cycle(9)).is_empty());
/// assert_eq!(oracle.fault_log().len(), 1);
/// ```
/// State is synchronized (atomics + a mutex-guarded log) rather than
/// `Cell`-based so the wrapper satisfies the [`MaxIsOracle`] trait's
/// `Sync` bound: the component-parallel executor may call one shared
/// wrapper from several worker threads. Under single-threaded use the
/// call sequence — and hence the log — is exactly as deterministic as
/// before; under concurrent use each call still atomically claims a
/// unique call index, so the *multiset* of injected faults is still a
/// pure function of the plan and the call count.
#[derive(Debug)]
pub struct FaultyOracle<O> {
    inner: O,
    plan: FaultPlan,
    calls: AtomicUsize,
    stalled: AtomicUsize,
    log: Mutex<Vec<InjectedFault>>,
}

impl<O: MaxIsOracle> FaultyOracle<O> {
    /// Wraps `inner`, applying `plan` to each call.
    pub fn new(inner: O, plan: FaultPlan) -> Self {
        FaultyOracle {
            inner,
            plan,
            calls: AtomicUsize::new(0),
            stalled: AtomicUsize::new(0),
            log: Mutex::new(Vec::new()),
        }
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Number of calls served so far (faulty or not).
    pub fn calls(&self) -> usize {
        self.calls.load(Ordering::SeqCst)
    }

    /// Snapshot of all faults injected so far, in call order.
    pub fn fault_log(&self) -> Vec<InjectedFault> {
        // Injected panics poison this lock by design; the log stays valid.
        self.log.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// Resets call counter, stall state, and fault log (the plan is
    /// kept), so one wrapper can serve several independent runs.
    pub fn reset(&self) {
        self.calls.store(0, Ordering::SeqCst);
        self.stalled.store(0, Ordering::SeqCst);
        self.log.lock().unwrap_or_else(PoisonError::into_inner).clear();
    }

    fn record(&self, call: usize, kind: FaultKind) {
        self.log.lock().unwrap_or_else(PoisonError::into_inner).push(InjectedFault { call, kind });
    }

    /// A claimed-but-not independent set: an adjacent pair where the
    /// graph has edges, an out-of-range vertex otherwise.
    fn corrupt_set(graph: &Graph) -> IndependentSet {
        if let Some((u, v)) = graph.edges().next() {
            IndependentSet::new_unchecked(vec![u, v])
        } else {
            IndependentSet::new_unchecked(vec![NodeId::new(graph.node_count())])
        }
    }

    fn apply(
        &self,
        graph: &Graph,
        compute: impl FnOnce() -> (IndependentSet, usize),
    ) -> (IndependentSet, usize) {
        let call = self.calls.fetch_add(1, Ordering::SeqCst);
        self.stalled.store(0, Ordering::SeqCst);
        match self.plan.fault_for(call) {
            None => compute(),
            Some(kind) => {
                self.record(call, kind);
                match kind {
                    FaultKind::Panic => {
                        // pslocal: allow(panic-path, "this panic IS the injected fault: the crate exists to exercise the resilient driver's panic isolation")
                        panic!("injected fault: oracle panicked on call {call}")
                    }
                    FaultKind::CrashAt { phase, point } => {
                        // A *process* crash, not an oracle fault: the
                        // typed payload tells resilient drivers to
                        // re-raise instead of retrying.
                        std::panic::panic_any(CrashSignal { phase, point })
                    }
                    FaultKind::EmptySet => (IndependentSet::empty(), 0),
                    FaultKind::InvalidSet => (Self::corrupt_set(graph), 0),
                    FaultKind::UnderDeliver => {
                        let (set, rounds) = compute();
                        let keep: Vec<NodeId> =
                            set.vertices().iter().copied().take(set.len() / 2).collect();
                        let set = IndependentSet::new(graph, keep)
                            // Invariant: a subset of an independent set
                            // is independent.
                            // pslocal: allow(panic-path, "subset of the inner oracle's independent set is independent; a failure means the inner oracle lied")
                            .expect("subset of inner oracle's independent set");
                        (set, rounds)
                    }
                    FaultKind::Stall(steps) => {
                        let out = compute();
                        self.stalled.store(steps, Ordering::SeqCst);
                        out
                    }
                }
            }
        }
    }
}

impl<O: MaxIsOracle> MaxIsOracle for FaultyOracle<O> {
    fn name(&self) -> &'static str {
        "faulty"
    }

    fn independent_set(&self, graph: &Graph) -> IndependentSet {
        self.apply(graph, || (self.inner.independent_set(graph), 1)).0
    }

    fn independent_set_with_rounds(&self, graph: &Graph) -> (IndependentSet, usize) {
        self.apply(graph, || self.inner.independent_set_with_rounds(graph))
    }

    fn stalled_steps(&self) -> usize {
        self.stalled.load(Ordering::SeqCst)
    }

    fn guarantee(&self) -> ApproxGuarantee {
        // Deliberately the inner oracle's claim — the whole point is a
        // contract the wrapper does not honor.
        self.inner.guarantee()
    }

    fn resume_at(&self, calls: usize) {
        // Reposition the per-call fault schedule after a process
        // restart: the plan is a pure function of the call index, so a
        // resumed run re-injects exactly the faults the uninterrupted
        // run would have seen from this point on. The log restarts
        // empty — recovered history lives in the phase journal.
        self.calls.store(calls, Ordering::SeqCst);
        self.stalled.store(0, Ordering::SeqCst);
        self.inner.resume_at(calls);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactOracle;
    use crate::greedy::GreedyOracle;
    use pslocal_graph::generators::classic::{cycle, star};

    #[test]
    fn rate_zero_is_transparent() {
        let g = cycle(12);
        let faulty = FaultyOracle::new(GreedyOracle, FaultPlan::none());
        assert_eq!(faulty.independent_set(&g), GreedyOracle.independent_set(&g));
        assert!(faulty.fault_log().is_empty());
        assert_eq!(faulty.calls(), 1);
        assert_eq!(faulty.stalled_steps(), 0);
    }

    #[test]
    fn scripted_faults_fire_in_order() {
        let g = star(8); // α = 7
        let plan = FaultPlan::scripted(vec![
            Some(FaultKind::EmptySet),
            None,
            Some(FaultKind::UnderDeliver),
            Some(FaultKind::InvalidSet),
        ]);
        let faulty = FaultyOracle::new(ExactOracle, plan);
        assert!(faulty.independent_set(&g).is_empty());
        assert_eq!(faulty.independent_set(&g).len(), 7);
        assert_eq!(faulty.independent_set(&g).len(), 3); // 7 / 2
        let invalid = faulty.independent_set(&g);
        assert!(!g.is_independent_set(invalid.vertices()));
        assert_eq!(
            faulty.fault_log(),
            vec![
                InjectedFault { call: 0, kind: FaultKind::EmptySet },
                InjectedFault { call: 2, kind: FaultKind::UnderDeliver },
                InjectedFault { call: 3, kind: FaultKind::InvalidSet },
            ]
        );
    }

    #[test]
    #[should_panic(expected = "injected fault")]
    fn panic_fault_panics() {
        let g = cycle(5);
        let faulty =
            FaultyOracle::new(ExactOracle, FaultPlan::scripted(vec![Some(FaultKind::Panic)]));
        let _ = faulty.independent_set(&g);
    }

    #[test]
    fn stall_fault_reports_steps_then_clears() {
        let g = cycle(6);
        let plan = FaultPlan::scripted(vec![Some(FaultKind::Stall(17)), None]);
        let faulty = FaultyOracle::new(GreedyOracle, plan);
        let set = faulty.independent_set(&g);
        assert!(!set.is_empty(), "stall still answers correctly");
        assert_eq!(faulty.stalled_steps(), 17);
        let _ = faulty.independent_set(&g);
        assert_eq!(faulty.stalled_steps(), 0, "stall state is per call");
    }

    #[test]
    fn seeded_plans_are_deterministic_and_rate_monotone() {
        let a = FaultPlan::seeded(42, 0.3);
        let b = FaultPlan::seeded(42, 0.3);
        for call in 0..200 {
            assert_eq!(a.fault_for(call), b.fault_for(call));
        }
        let faults = |rate: f64| {
            (0..400).filter(|&c| FaultPlan::seeded(9, rate).fault_for(c).is_some()).count()
        };
        assert_eq!(faults(0.0), 0);
        assert_eq!(faults(1.0), 400);
        let lo = faults(0.1);
        let hi = faults(0.6);
        assert!(lo > 0 && lo < hi && hi < 400, "lo = {lo}, hi = {hi}");
    }

    #[test]
    fn seeded_stall_respects_cap() {
        let plan = FaultPlan::seeded(3, 1.0).with_max_stall(5);
        for call in 0..300 {
            if let Some(FaultKind::Stall(steps)) = plan.fault_for(call) {
                assert!((1..=5).contains(&steps));
            }
        }
    }

    #[test]
    fn reset_clears_state() {
        let g = cycle(7);
        let faulty =
            FaultyOracle::new(GreedyOracle, FaultPlan::scripted(vec![Some(FaultKind::EmptySet)]));
        let _ = faulty.independent_set(&g);
        assert_eq!(faulty.calls(), 1);
        faulty.reset();
        assert_eq!(faulty.calls(), 0);
        assert!(faulty.fault_log().is_empty());
        // After reset the script applies from the top again.
        assert!(faulty.independent_set(&g).is_empty());
    }

    #[test]
    fn crash_at_panics_with_a_typed_signal() {
        let g = cycle(6);
        let signal = CrashSignal { phase: 3, point: CrashPoint::MidOracle };
        let faulty = FaultyOracle::new(
            GreedyOracle,
            FaultPlan::scripted(vec![Some(FaultKind::CrashAt { phase: 3, point: signal.point })]),
        );
        let err =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| faulty.independent_set(&g)))
                .expect_err("crash point must panic");
        let payload = err.downcast_ref::<CrashSignal>().expect("payload is a CrashSignal");
        assert_eq!(*payload, signal);
        assert!(payload.to_string().contains("phase 3"));
        // A crash is still a logged injection and still consumed a call.
        assert_eq!(faulty.calls(), 1);
        assert_eq!(faulty.fault_log().len(), 1);
    }

    #[test]
    fn resume_at_repositions_the_fault_schedule() {
        let g = star(8);
        // Calls 0 and 1 behave, call 2 under-delivers.
        let plan = FaultPlan::scripted(vec![None, None, Some(FaultKind::UnderDeliver)]);
        let faulty = FaultyOracle::new(ExactOracle, plan);
        // A fresh process that fast-forwards to call 2 sees the fault
        // exactly where the uninterrupted run would have.
        faulty.resume_at(2);
        assert_eq!(faulty.independent_set(&g).len(), 3, "call 2 under-delivers (7 / 2)");
        assert_eq!(faulty.calls(), 3);
        assert_eq!(
            faulty.fault_log(),
            vec![InjectedFault { call: 2, kind: FaultKind::UnderDeliver }]
        );
    }

    #[test]
    fn seeded_plans_never_draw_crash_points() {
        let plan = FaultPlan::seeded(11, 1.0);
        for call in 0..500 {
            assert!(!matches!(plan.fault_for(call), Some(FaultKind::CrashAt { .. })));
        }
    }

    #[test]
    fn crash_point_names_round_trip() {
        for point in [
            CrashPoint::MidOracle,
            CrashPoint::AfterOracle,
            CrashPoint::BeforeJournal,
            CrashPoint::AfterJournal,
        ] {
            assert_eq!(CrashPoint::parse(point.name()), Some(point));
        }
        assert_eq!(CrashPoint::parse("nonsense"), None);
    }

    #[test]
    fn corrupt_set_on_edgeless_graph_is_out_of_range() {
        let g = pslocal_graph::Graph::empty(3);
        let faulty =
            FaultyOracle::new(ExactOracle, FaultPlan::scripted(vec![Some(FaultKind::InvalidSet)]));
        let set = faulty.independent_set(&g);
        assert!(set.vertices().iter().any(|v| v.index() >= g.node_count()));
    }
}
