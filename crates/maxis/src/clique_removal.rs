//! Boppana–Halldórsson clique removal: the best known general-graph
//! MaxIS approximation, `O(n / log² n)`.
//!
//! The subroutine `ramsey(S)` returns both an independent set and a
//! clique such that at least one of them is large (the constructive
//! Ramsey argument): pick `v`, recurse on `S ∩ N(v)` (good for cliques)
//! and `S ∖ N[v]` (good for independent sets), combine. Clique removal
//! then repeatedly calls `ramsey`, keeps the best independent set seen,
//! and deletes the returned clique — a clique intersects the optimum in
//! at most one vertex, which is what drives the guarantee.
//!
//! The non-neighbor recursion is converted to a loop (its depth can be
//! `Θ(n)`); the neighbor recursion's depth is bounded by the clique
//! number, which is safe for the instance families in this suite.

use crate::oracle::{ApproxGuarantee, MaxIsOracle};
use pslocal_graph::{Graph, IndependentSet, NodeId};

/// Clique-removal oracle (Boppana–Halldórsson).
///
/// # Examples
///
/// ```
/// use pslocal_graph::generators::classic::cycle;
/// use pslocal_maxis::{CliqueRemovalOracle, MaxIsOracle};
///
/// let g = cycle(9);
/// let is = CliqueRemovalOracle::default().independent_set(&g);
/// assert!(g.is_independent_set(is.vertices()));
/// assert!(is.len() >= 3);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct CliqueRemovalOracle;

impl MaxIsOracle for CliqueRemovalOracle {
    fn name(&self) -> &'static str {
        "clique-removal"
    }

    fn independent_set(&self, graph: &Graph) -> IndependentSet {
        let mut remaining: Vec<NodeId> = graph.nodes().collect();
        let mut best: Vec<NodeId> = Vec::new();
        while !remaining.is_empty() {
            let (is, clique) = ramsey(graph, remaining.clone());
            if is.len() > best.len() {
                best = is;
            }
            debug_assert!(!clique.is_empty(), "ramsey on a non-empty set returns a vertex");
            let mut in_clique = vec![false; graph.node_count()];
            for &v in &clique {
                in_clique[v.index()] = true;
            }
            remaining.retain(|v| !in_clique[v.index()]);
        }
        // Invariant, not a fallible path: the Ramsey recursion grows its
        // independent side only by vertices non-adjacent to all of it.
        // pslocal: allow(panic-path, "invariant stated above: the Ramsey recursion only grows the independent side with non-adjacent vertices")
        IndependentSet::new(graph, best).expect("ramsey independent side is independent")
    }

    fn guarantee(&self) -> ApproxGuarantee {
        ApproxGuarantee::CliqueRemoval
    }
}

/// The constructive Ramsey routine: returns `(independent set, clique)`
/// within the vertex subset `s` (which must be sorted).
fn ramsey(graph: &Graph, s: Vec<NodeId>) -> (Vec<NodeId>, Vec<NodeId>) {
    // Epoch marks shared by the whole recursion: `marks[u] == epoch`
    // means `u` is a neighbor of the current pivot, giving O(1)
    // adjacency tests without clearing the array between pivots.
    let mut marks = vec![0u32; graph.node_count()];
    let mut epoch = 0u32;
    ramsey_inner(graph, s, &mut marks, &mut epoch)
}

fn ramsey_inner(
    graph: &Graph,
    s: Vec<NodeId>,
    marks: &mut [u32],
    epoch: &mut u32,
) -> (Vec<NodeId>, Vec<NodeId>) {
    // Chain of (pivot, is-from-neighbors, clique-from-neighbors) along
    // the iterated non-neighbor branch.
    let mut chain: Vec<(NodeId, Vec<NodeId>, Vec<NodeId>)> = Vec::new();
    let mut current = s;
    while let Some((&v, rest)) = current.split_first() {
        // Split rest into neighbors and non-neighbors of v. Both lists
        // stay sorted because `rest` is sorted. Mark-and-test when the
        // pivot's adjacency list is in the same league as `rest` (cost
        // deg(v) + |rest|); per-element binary search when `rest` is
        // much smaller, so deep recursions on tiny sets never pay a
        // full neighborhood scan.
        let nbrs = graph.neighbors(v);
        let mut neighbors = Vec::new();
        let mut non_neighbors = Vec::with_capacity(rest.len());
        if nbrs.len() <= rest.len().saturating_mul(8) {
            *epoch += 1;
            let e = *epoch;
            for &u in nbrs {
                marks[u.index()] = e;
            }
            for &u in rest {
                if marks[u.index()] == e {
                    neighbors.push(u);
                } else {
                    non_neighbors.push(u);
                }
            }
        } else {
            for &u in rest {
                if nbrs.binary_search(&u).is_ok() {
                    neighbors.push(u);
                } else {
                    non_neighbors.push(u);
                }
            }
        }
        let (i_n, c_n) = ramsey_inner(graph, neighbors, marks, epoch);
        chain.push((v, i_n, c_n));
        current = non_neighbors;
    }
    // Fold the chain backwards:
    //   is(S)     = max(is(N), {v} ∪ is(M))
    //   clique(S) = max({v} ∪ clique(N), clique(M))
    let mut is_acc: Vec<NodeId> = Vec::new();
    let mut clique_acc: Vec<NodeId> = Vec::new();
    for (v, i_n, c_n) in chain.into_iter().rev() {
        let mut with_v_is = Vec::with_capacity(is_acc.len() + 1);
        with_v_is.push(v);
        with_v_is.extend_from_slice(&is_acc);
        is_acc = if i_n.len() > with_v_is.len() { i_n } else { with_v_is };

        let mut with_v_clique = Vec::with_capacity(c_n.len() + 1);
        with_v_clique.push(v);
        with_v_clique.extend_from_slice(&c_n);
        if with_v_clique.len() > clique_acc.len() {
            clique_acc = with_v_clique;
        }
    }
    (is_acc, clique_acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactOracle;
    use pslocal_graph::algo::is_clique;
    use pslocal_graph::generators::classic::{cluster_graph, complete, cycle, path, star};
    use pslocal_graph::generators::random::gnp;
    use rand::SeedableRng;

    fn check(g: &Graph) -> usize {
        let is = CliqueRemovalOracle.independent_set(g);
        assert!(g.is_independent_set(is.vertices()));
        is.len()
    }

    #[test]
    fn ramsey_returns_valid_pair() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..5 {
            let g = gnp(&mut rng, 30, 0.3);
            let all: Vec<NodeId> = g.nodes().collect();
            let (is, clique) = ramsey(&g, all);
            assert!(g.is_independent_set(&is));
            assert!(is_clique(&g, &clique));
            assert!(!is.is_empty() && !clique.is_empty());
            // Ramsey quality: |is| · |clique| ≥ ~log²; at minimum both
            // are nonempty and one of them is ≥ log₂(n)/2.
            let log = (30f64).log2() / 2.0;
            assert!(is.len() as f64 >= log || clique.len() as f64 >= log);
        }
    }

    #[test]
    fn closed_forms() {
        assert_eq!(check(&complete(8)), 1);
        assert_eq!(check(&Graph::empty(6)), 6);
        assert_eq!(check(&star(7)), 6);
        assert!(check(&path(11)) >= 4);
        assert!(check(&cycle(12)) >= 4);
        // Cluster graphs: ramsey finds a full clique each round, and the
        // independent side collects one vertex per clique.
        assert_eq!(check(&cluster_graph(5, 4)), 5);
    }

    #[test]
    fn competitive_with_exact_on_small_instances() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..6 {
            let g = gnp(&mut rng, 24, 0.25);
            let cr = check(&g);
            let alpha = ExactOracle.independence_number(&g);
            // The theoretical factor n/log²n ≈ 24/21 ≈ 1.1 is nearly
            // exact at this size; allow a factor-2 cushion.
            assert!(cr * 2 >= alpha, "clique removal {cr} vs α {alpha}");
        }
    }

    #[test]
    fn handles_dense_graphs_without_stack_overflow() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let g = gnp(&mut rng, 120, 0.7);
        let is = check(&g);
        assert!(is >= 1);
    }

    #[test]
    fn oracle_metadata() {
        assert_eq!(CliqueRemovalOracle.name(), "clique-removal");
        let g = cycle(16);
        assert_eq!(CliqueRemovalOracle.lambda_for(&g), Some(1.0));
    }
}
