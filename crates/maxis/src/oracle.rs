//! The `λ`-approximate MaxIS oracle interface.
//!
//! The hardness proof of Theorem 1.1 begins "Assume that we can compute
//! λ-approximations for MaxIS" — the reduction is generic in the
//! oracle. [`MaxIsOracle`] is that assumption as a trait; every
//! implementation returns a *verified* [`IndependentSet`] and declares
//! the guarantee its theory provides, so the reduction can compute the
//! phase budget `ρ = λ·ln m + 1` from the oracle actually plugged in.

use pslocal_graph::{BitsetGraph, BitsetScratch, Graph, IndependentSet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The approximation guarantee an oracle provides.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ApproxGuarantee {
    /// The output is a maximum independent set (λ = 1).
    Exact,
    /// A fixed factor λ independent of the instance.
    Factor(f64),
    /// λ = Δ + 1 where Δ is the instance's maximum degree (any maximal
    /// independent set achieves this).
    MaxDegreePlusOne,
    /// λ = number of colors of the network decomposition the oracle
    /// computes on the instance (the containment-direction bound
    /// `⌈log₂ n⌉ + 1`).
    DecompositionColors,
    /// Boppana–Halldórsson clique removal: `O(n / log² n)`; the concrete
    /// constant-free bound `n / max(1, ⌊log₂ n⌋²)` is reported.
    CliqueRemoval,
    /// No guarantee is claimed (pure heuristic).
    Heuristic,
}

impl ApproxGuarantee {
    /// The concrete λ this guarantee yields on `graph`, or `None` for
    /// [`Heuristic`](ApproxGuarantee::Heuristic).
    pub fn lambda_for(&self, graph: &Graph) -> Option<f64> {
        let n = graph.node_count().max(1) as f64;
        match self {
            ApproxGuarantee::Exact => Some(1.0),
            ApproxGuarantee::Factor(f) => Some(*f),
            ApproxGuarantee::MaxDegreePlusOne => Some(graph.max_degree() as f64 + 1.0),
            ApproxGuarantee::DecompositionColors => Some(n.log2().ceil().max(1.0) + 1.0),
            ApproxGuarantee::CliqueRemoval => {
                let log = n.log2().floor().max(1.0);
                Some((n / (log * log)).max(1.0))
            }
            ApproxGuarantee::Heuristic => None,
        }
    }
}

impl fmt::Display for ApproxGuarantee {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApproxGuarantee::Exact => write!(f, "exact"),
            ApproxGuarantee::Factor(l) => write!(f, "{l}-approximation"),
            ApproxGuarantee::MaxDegreePlusOne => write!(f, "(Δ+1)-approximation"),
            ApproxGuarantee::DecompositionColors => {
                write!(f, "decomposition-color approximation")
            }
            ApproxGuarantee::CliqueRemoval => write!(f, "clique-removal approximation"),
            ApproxGuarantee::Heuristic => write!(f, "heuristic"),
        }
    }
}

/// A maximum-independent-set approximation algorithm.
///
/// Implementations must return an independent set of the input graph;
/// the [`IndependentSet`] return type re-verifies independence at
/// construction, so a buggy oracle fails loudly instead of corrupting
/// the reduction.
///
/// The trait requires [`Sync`]: the component-parallel phase executor
/// (`pslocal-core::components`) calls one shared oracle from several
/// scoped worker threads — sound because independent sets compose
/// across connected components (Lemma 2.1 applies per component).
/// Oracles are overwhelmingly stateless value types; stateful wrappers
/// ([`FaultyOracle`](crate::FaultyOracle)) synchronize internally.
pub trait MaxIsOracle: Sync {
    /// A short stable name for reports and tables.
    fn name(&self) -> &'static str;

    /// Computes an independent set of `graph`.
    fn independent_set(&self, graph: &Graph) -> IndependentSet;

    /// Computes the set and reports the LOCAL rounds the computation
    /// consumed. Distributed oracles (Luby) override this with their
    /// simulator's round count; sequential oracles bill one round,
    /// modeling a black-box call per the reduction's footnote-2
    /// accounting.
    fn independent_set_with_rounds(&self, graph: &Graph) -> (IndependentSet, usize) {
        (self.independent_set(graph), 1)
    }

    /// Whether this oracle can consume the word-parallel bit-row
    /// representation directly via
    /// [`independent_set_dense`](Self::independent_set_dense).
    ///
    /// Defaults to `false`, so wrappers ([`TracedOracle`](crate::TracedOracle),
    /// [`FaultyOracle`](crate::FaultyOracle)) and oracles without a dense
    /// kernel transparently fall back to the CSR route — the driver
    /// materializes the CSR form and calls [`independent_set`] as before.
    ///
    /// [`independent_set`]: Self::independent_set
    fn supports_dense(&self) -> bool {
        false
    }

    /// Computes an independent set from the dense bit-row form, using
    /// caller-owned scratch so the multi-phase reduction loop allocates
    /// nothing in steady state.
    ///
    /// Called only when [`supports_dense`](Self::supports_dense) returns
    /// `true`. Implementations MUST return exactly the set
    /// [`independent_set`](Self::independent_set) would return on the
    /// CSR form of the same graph — the reduction's replay and recovery
    /// layers rely on the two routes being byte-identical.
    fn independent_set_dense(
        &self,
        bits: &BitsetGraph,
        scratch: &mut BitsetScratch,
    ) -> IndependentSet {
        let _ = (bits, scratch);
        // pslocal: allow(panic-path, "documented default-method contract: callers must check supports_dense() first; reaching this is caller misuse")
        panic!("{}: oracle does not support dense input", self.name())
    }

    /// The concrete λ on the dense form, when computable without
    /// materializing the CSR graph. `None` (the default) tells the
    /// caller to fall back to [`lambda_for`](Self::lambda_for) on the
    /// CSR form; dense-capable oracles override this so the fast path
    /// never touches adjacency lists.
    fn lambda_for_dense(&self, bits: &BitsetGraph) -> Option<f64> {
        let _ = bits;
        None
    }

    /// Simulated steps the most recent [`independent_set`]
    /// (or [`independent_set_with_rounds`]) call stalled for before
    /// answering — `0` for well-behaved oracles. Fault-injection
    /// wrappers ([`FaultyOracle`](crate::FaultyOracle)) override this
    /// so resilient drivers can bill stalls against a step budget and
    /// time out calls that exceed it.
    ///
    /// [`independent_set`]: Self::independent_set
    /// [`independent_set_with_rounds`]: Self::independent_set_with_rounds
    fn stalled_steps(&self) -> usize {
        0
    }

    /// The guarantee this oracle's theory provides.
    fn guarantee(&self) -> ApproxGuarantee;

    /// The concrete λ on `graph` per [`guarantee`](Self::guarantee), or
    /// `None` for heuristics.
    fn lambda_for(&self, graph: &Graph) -> Option<f64> {
        self.guarantee().lambda_for(graph)
    }

    /// Fast-forwards any per-call internal state to the point where
    /// `calls` invocations have already been served — the hook the
    /// crash-recovery layer (`pslocal-core::recovery`) uses to make a
    /// resumed run byte-identical to an uninterrupted one.
    ///
    /// Stateless oracles (all the certified ones: their answer is a
    /// pure function of the input graph and a fixed seed) need nothing,
    /// so the default is a no-op. Stateful wrappers whose behavior
    /// depends on the call *index* — [`FaultyOracle`](crate::FaultyOracle)
    /// consults its [`FaultPlan`](crate::FaultPlan) per call — override
    /// this to reposition their counter after a process restart.
    fn resume_at(&self, _calls: usize) {}
}

/// Boxed oracles delegate every method to the inner oracle — including
/// the ones with non-trivial defaults (`supports_dense`,
/// `stalled_steps`, `resume_at`), so a `Box<dyn MaxIsOracle>` behaves
/// byte-identically to the unboxed value. The batch service and CLI
/// build their per-request oracle chains as boxes; this impl lets
/// wrappers like `FaultyOracle<Box<dyn MaxIsOracle + Send + Sync>>`
/// compose over them.
impl<O: MaxIsOracle + ?Sized> MaxIsOracle for Box<O> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn independent_set(&self, graph: &Graph) -> IndependentSet {
        (**self).independent_set(graph)
    }

    fn independent_set_with_rounds(&self, graph: &Graph) -> (IndependentSet, usize) {
        (**self).independent_set_with_rounds(graph)
    }

    fn supports_dense(&self) -> bool {
        (**self).supports_dense()
    }

    fn independent_set_dense(
        &self,
        bits: &BitsetGraph,
        scratch: &mut BitsetScratch,
    ) -> IndependentSet {
        (**self).independent_set_dense(bits, scratch)
    }

    fn lambda_for_dense(&self, bits: &BitsetGraph) -> Option<f64> {
        (**self).lambda_for_dense(bits)
    }

    fn stalled_steps(&self) -> usize {
        (**self).stalled_steps()
    }

    fn guarantee(&self) -> ApproxGuarantee {
        (**self).guarantee()
    }

    fn lambda_for(&self, graph: &Graph) -> Option<f64> {
        (**self).lambda_for(graph)
    }

    fn resume_at(&self, calls: usize) {
        (**self).resume_at(calls)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pslocal_graph::generators::classic::{complete, cycle};

    #[test]
    fn lambda_computations() {
        let g = cycle(16);
        assert_eq!(ApproxGuarantee::Exact.lambda_for(&g), Some(1.0));
        assert_eq!(ApproxGuarantee::Factor(3.5).lambda_for(&g), Some(3.5));
        assert_eq!(ApproxGuarantee::MaxDegreePlusOne.lambda_for(&g), Some(3.0));
        // log2(16) = 4 → 5 colors.
        assert_eq!(ApproxGuarantee::DecompositionColors.lambda_for(&g), Some(5.0));
        // n / log² = 16/16 = 1.
        assert_eq!(ApproxGuarantee::CliqueRemoval.lambda_for(&g), Some(1.0));
        assert_eq!(ApproxGuarantee::Heuristic.lambda_for(&g), None);
    }

    #[test]
    fn max_degree_guarantee_tracks_instance() {
        let k = complete(9);
        assert_eq!(ApproxGuarantee::MaxDegreePlusOne.lambda_for(&k), Some(9.0));
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(ApproxGuarantee::Exact.to_string(), "exact");
        assert_eq!(ApproxGuarantee::Factor(2.0).to_string(), "2-approximation");
        assert!(ApproxGuarantee::MaxDegreePlusOne.to_string().contains("Δ+1"));
    }
}
