//! # pslocal-maxis
//!
//! The `λ`-approximate **maximum independent set oracle suite** for the
//! executable reproduction of *"P-SLOCAL-Completeness of Maximum
//! Independent Set Approximation"* (Maus, PODC 2019).
//!
//! The paper's hardness proof opens with "Assume that we can compute
//! λ-approximations for MaxIS"; this crate supplies that assumption in
//! five flavors, each a [`MaxIsOracle`]:
//!
//! | oracle | λ | role |
//! |---|---|---|
//! | [`ExactOracle`] | 1 | ground truth / best-case reduction |
//! | [`GreedyOracle`] | Δ+1 | cheap sequential baseline (Turán/Wei) |
//! | [`LubyOracle`] | Δ+1 | *distributed* oracle via the LOCAL simulator |
//! | [`CliqueRemovalOracle`] | O(n/log²n) | best known general approximation |
//! | [`DecompositionOracle`] | ⌈log₂ n⌉+1 | **the containment direction of Theorem 1.1** |
//!
//! [`bounds`] adds certified upper bounds on `α` so experiments can
//! report each oracle's *realized* λ even on instances too large for
//! the exact solver.
//!
//! # Examples
//!
//! ```
//! use pslocal_graph::generators::classic::cycle;
//! use pslocal_maxis::{measure_ratio, DecompositionOracle, MaxIsOracle};
//!
//! let g = cycle(24);
//! let m = measure_ratio(&DecompositionOracle::default(), &g);
//! // The realized ratio is far better than the worst-case λ = log n.
//! assert!(m.realized_lambda.unwrap() <= 2.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod bounds;
pub mod clique_removal;
pub mod decomposition;
pub mod exact;
pub mod faulty;
pub mod greedy;
pub mod local_search;
pub mod luby;
pub mod oracle;
pub mod traced;

pub use adversarial::{PrecisionOracle, WorstWitnessOracle};
pub use bounds::{
    alpha_upper_bound, alpha_upper_bound_with_threshold, measure_ratio, AlphaBound,
    RatioMeasurement,
};
pub use clique_removal::CliqueRemovalOracle;
pub use decomposition::{DecompositionOracle, DecompositionSolve};
pub use exact::ExactOracle;
pub use faulty::{CrashPoint, CrashSignal, FaultKind, FaultPlan, FaultyOracle, InjectedFault};
pub use greedy::{turan_bound, wei_bound, GreedyOracle};
pub use local_search::{improve_by_swaps, LocalSearchOracle};
pub use luby::LubyOracle;
pub use oracle::{ApproxGuarantee, MaxIsOracle};
pub use traced::TracedOracle;

/// All standard oracles, boxed, for sweep experiments.
///
/// # Examples
///
/// ```
/// let oracles = pslocal_maxis::standard_oracles(42);
/// assert_eq!(oracles.len(), 5);
/// ```
pub fn standard_oracles(seed: u64) -> Vec<Box<dyn MaxIsOracle>> {
    vec![
        Box::new(ExactOracle),
        Box::new(GreedyOracle),
        Box::new(LubyOracle::new(seed)),
        Box::new(CliqueRemovalOracle),
        Box::new(DecompositionOracle::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pslocal_graph::generators::classic::cycle;

    #[test]
    fn standard_oracles_all_produce_independent_sets() {
        let g = cycle(14);
        for oracle in standard_oracles(1) {
            let is = oracle.independent_set(&g);
            assert!(g.is_independent_set(is.vertices()), "oracle {}", oracle.name());
            assert!(!is.is_empty());
        }
    }

    #[test]
    fn exact_dominates_all_heuristics() {
        use pslocal_graph::generators::random::gnp;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let g = gnp(&mut rng, 32, 0.2);
        let alpha = ExactOracle.independence_number(&g);
        for oracle in standard_oracles(2) {
            assert!(oracle.independent_set(&g).len() <= alpha, "oracle {}", oracle.name());
        }
    }
}
