//! Bounded live aggregation — the sink a long-running server keeps.
//!
//! [`MemorySink`](crate::MemorySink) buffers **every** event, which is
//! exactly right for a test or a one-shot `trace-report` and exactly
//! wrong for a process that serves traffic for days: its memory grows
//! with uptime. [`AggregateSink`] is the complement — it folds each
//! event into fixed-size aggregates the moment it arrives and keeps
//! nothing else:
//!
//! * **counters** — one running total per [`Counter`] name;
//! * **histograms** — count / min / max / sum plus a bounded ring of
//!   the most recent [`RING_CAPACITY`] samples, from which the
//!   rendered p50/p99 are computed (recent-window percentiles, the
//!   operational quantity — an all-time p99 over millions of requests
//!   says little about the server *now*);
//! * **spans** — per-name count and total duration (matching each
//!   span-end to its start through a capped open-span table, so even a
//!   pathological instrumentation bug cannot grow it past
//!   [`OPEN_SPAN_CAPACITY`]).
//!
//! The sink is cheaply cloneable (clones share state), so a server can
//! hand the telemetry pipeline to its worker pool and keep a handle
//! for rendering the `STATS` command — which is wired up through
//! [`Sink::stats_snapshot`].

use crate::sink::{Counter, Event, Sink};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Local copy of `pslocal-core`'s poison-tolerant lock helper (the
/// crate dependency points the other way). Aggregates are plain
/// integers and maps mutated one entry at a time, so the stats stay
/// serviceable even if a recording thread panicked mid-section.
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Samples kept per histogram for the rendered percentiles (a sliding
/// window of the most recent arrivals).
pub const RING_CAPACITY: usize = 1024;

/// Upper bound on concurrently tracked open spans. Starts beyond the
/// cap are not tracked (their ends are ignored), so a leak elsewhere
/// cannot become a leak here.
pub const OPEN_SPAN_CAPACITY: usize = 4096;

/// Per-histogram aggregate: exact count/min/max/sum over everything
/// ever observed, plus the recent-sample ring for percentiles.
#[derive(Debug, Clone)]
pub struct HistogramSummary {
    /// Samples observed over the sink's lifetime.
    pub count: u64,
    /// Smallest sample ever observed.
    pub min: u64,
    /// Largest sample ever observed.
    pub max: u64,
    /// Sum of every sample (for the mean).
    pub sum: u64,
    /// Nearest-rank 50th percentile of the recent window.
    pub p50: u64,
    /// Nearest-rank 99th percentile of the recent window.
    pub p99: u64,
}

impl HistogramSummary {
    /// Mean over the sink's lifetime (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

#[derive(Debug, Default)]
struct HistAgg {
    count: u64,
    min: u64,
    max: u64,
    sum: u64,
    ring: VecDeque<u64>,
}

impl HistAgg {
    fn observe(&mut self, value: u64) {
        if self.count == 0 || value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        if self.ring.len() == RING_CAPACITY {
            self.ring.pop_front();
        }
        self.ring.push_back(value);
    }

    fn summary(&self) -> HistogramSummary {
        let mut window: Vec<u64> = self.ring.iter().copied().collect();
        window.sort_unstable();
        HistogramSummary {
            count: self.count,
            min: self.min,
            max: self.max,
            sum: self.sum,
            p50: percentile(&window, 50.0),
            p99: percentile(&window, 99.0),
        }
    }
}

/// Nearest-rank percentile over an ascending sample slice.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    // rank clamps into [1, len], so rank - 1 lies in [0, len): in bounds.
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[derive(Debug, Default, Clone, Copy)]
struct SpanAgg {
    count: u64,
    total_ns: u64,
}

#[derive(Debug)]
struct AggregateState {
    started: Instant,
    counters: Mutex<BTreeMap<&'static str, u64>>,
    histograms: Mutex<BTreeMap<&'static str, HistAgg>>,
    spans: Mutex<BTreeMap<&'static str, SpanAgg>>,
    /// span id → (name, start_ns) for spans currently open.
    open: Mutex<HashMap<u64, (&'static str, u64)>>,
}

/// The bounded live-stats sink — see the [module docs](self).
///
/// # Examples
///
/// ```
/// use pslocal_telemetry::{span, AggregateSink, Counter, Sink, Telemetry};
///
/// let stats = AggregateSink::new();
/// let tel = Telemetry::new(stats.clone()); // clones share state
/// {
///     let s = span!(tel, "reduction");
///     s.add(Counter::OracleCalls, 3);
/// }
/// assert_eq!(stats.counter("oracle_calls"), 3);
/// let text = stats.render();
/// assert!(text.contains("counter oracle_calls 3"));
/// assert!(text.contains("span reduction"));
/// assert_eq!(Sink::stats_snapshot(&stats), Some(text));
/// ```
#[derive(Debug, Clone)]
pub struct AggregateSink {
    state: Arc<AggregateState>,
}

impl Default for AggregateSink {
    fn default() -> Self {
        Self::new()
    }
}

impl AggregateSink {
    /// A fresh aggregate with its uptime epoch at "now".
    pub fn new() -> Self {
        AggregateSink {
            state: Arc::new(AggregateState {
                started: Instant::now(),
                counters: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                spans: Mutex::new(BTreeMap::new()),
                open: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// Current total of the counter with the given stable name
    /// ([`Counter::name`]); 0 if never incremented.
    pub fn counter(&self, name: &str) -> u64 {
        lock_unpoisoned(&self.state.counters).get(name).copied().unwrap_or(0)
    }

    /// Summary of the histogram with the given stable name, if any
    /// sample arrived.
    pub fn histogram(&self, name: &str) -> Option<HistogramSummary> {
        lock_unpoisoned(&self.state.histograms).get(name).map(HistAgg::summary)
    }

    /// `(count, total_ns)` of closed spans with the given name.
    pub fn span_totals(&self, name: &str) -> (u64, u64) {
        let spans = lock_unpoisoned(&self.state.spans);
        spans.get(name).map_or((0, 0), |s| (s.count, s.total_ns))
    }

    /// Renders the whole aggregate as stable plain text — the payload
    /// of the server's `STATS` command. One item per line:
    ///
    /// ```text
    /// uptime_s 12.345
    /// counter <name> <total>
    /// histogram <name> count=N min=… p50=… p99=… max=… mean=…
    /// span <name> count=N total_us=… mean_us=…
    /// ```
    ///
    /// Sections are sorted by name, so the output is diffable between
    /// polls.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "uptime_s {:.3}", self.state.started.elapsed().as_secs_f64());
        for (name, total) in lock_unpoisoned(&self.state.counters).iter() {
            let _ = writeln!(out, "counter {name} {total}");
        }
        for (name, agg) in lock_unpoisoned(&self.state.histograms).iter() {
            let s = agg.summary();
            let _ = writeln!(
                out,
                "histogram {name} count={} min={} p50={} p99={} max={} mean={}",
                s.count,
                s.min,
                s.p50,
                s.p99,
                s.max,
                s.mean(),
            );
        }
        for (name, agg) in lock_unpoisoned(&self.state.spans).iter() {
            let mean_us = agg.total_ns.checked_div(agg.count).unwrap_or(0) / 1000;
            let _ = writeln!(
                out,
                "span {name} count={} total_us={} mean_us={mean_us}",
                agg.count,
                agg.total_ns / 1000,
            );
        }
        out
    }
}

impl Sink for AggregateSink {
    fn record(&self, event: Event) {
        match event {
            Event::SpanStart { id, name, start_ns, .. } => {
                let mut open = lock_unpoisoned(&self.state.open);
                if open.len() < OPEN_SPAN_CAPACITY {
                    open.insert(id.0, (name, start_ns));
                }
            }
            Event::SpanEnd { id, end_ns } => {
                let entry = lock_unpoisoned(&self.state.open).remove(&id.0);
                if let Some((name, start_ns)) = entry {
                    let mut spans = lock_unpoisoned(&self.state.spans);
                    let agg = spans.entry(name).or_default();
                    agg.count += 1;
                    agg.total_ns = agg.total_ns.saturating_add(end_ns.saturating_sub(start_ns));
                }
            }
            Event::CounterAdd { counter, delta, .. } => {
                *lock_unpoisoned(&self.state.counters).entry(counter.name()).or_insert(0) += delta;
            }
            Event::Sample { histogram, value, .. } => {
                lock_unpoisoned(&self.state.histograms)
                    .entry(histogram.name())
                    .or_default()
                    .observe(value);
            }
        }
    }

    fn stats_snapshot(&self) -> Option<String> {
        Some(self.render())
    }
}

/// Counters recorded through one sink, readable regardless of the
/// pipeline's sink composition — convenience for asserting over a
/// `(AggregateSink, …)` fan-out.
pub fn counter_of(sink: &AggregateSink, counter: Counter) -> u64 {
    sink.counter(counter.name())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{Histogram, SpanId};

    fn sample(h: Histogram, value: u64) -> Event {
        Event::Sample { histogram: h, value, span: None }
    }

    #[test]
    fn counters_and_histograms_aggregate() {
        let sink = AggregateSink::new();
        sink.record(Event::CounterAdd { counter: Counter::OracleCalls, delta: 2, span: None });
        sink.record(Event::CounterAdd { counter: Counter::OracleCalls, delta: 3, span: None });
        for v in [10, 20, 30, 40] {
            sink.record(sample(Histogram::RequestLatencyNs, v));
        }
        assert_eq!(sink.counter("oracle_calls"), 5);
        assert_eq!(counter_of(&sink, Counter::OracleCalls), 5);
        let h = sink.histogram("request_latency_ns").expect("samples arrived");
        assert_eq!((h.count, h.min, h.max, h.sum), (4, 10, 40, 100));
        assert_eq!(h.mean(), 25);
        assert_eq!(h.p50, 20);
        assert_eq!(h.p99, 40);
        assert!(sink.histogram("queue_depth").is_none());
    }

    #[test]
    fn span_durations_fold_by_name() {
        let sink = AggregateSink::new();
        for (id, start, end) in [(1u64, 0u64, 50u64), (2, 10, 40), (3, 5, 25)] {
            sink.record(Event::SpanStart {
                id: SpanId(id),
                parent: None,
                name: "phase",
                index: None,
                start_ns: start,
            });
            sink.record(Event::SpanEnd { id: SpanId(id), end_ns: end });
        }
        assert_eq!(sink.span_totals("phase"), (3, 50 + 30 + 20));
        // An end without a tracked start is ignored, not a panic.
        sink.record(Event::SpanEnd { id: SpanId(99), end_ns: 1 });
        assert_eq!(sink.span_totals("phase"), (3, 100));
    }

    #[test]
    fn ring_is_bounded_and_percentiles_use_the_recent_window() {
        let sink = AggregateSink::new();
        // Fill the ring with large values, then overwrite with small
        // ones: the percentiles must follow the recent window while
        // min/max stay lifetime-exact.
        for _ in 0..RING_CAPACITY {
            sink.record(sample(Histogram::QueueDepth, 1_000_000));
        }
        for _ in 0..RING_CAPACITY {
            sink.record(sample(Histogram::QueueDepth, 7));
        }
        let h = sink.histogram("queue_depth").unwrap();
        assert_eq!(h.count, 2 * RING_CAPACITY as u64);
        assert_eq!(h.max, 1_000_000);
        assert_eq!((h.p50, h.p99), (7, 7), "window percentiles track recent samples");
    }

    #[test]
    fn render_is_sorted_and_stable() {
        let sink = AggregateSink::new();
        sink.record(Event::CounterAdd { counter: Counter::RequestsAdmitted, delta: 4, span: None });
        sink.record(Event::CounterAdd { counter: Counter::BytesIn, delta: 100, span: None });
        sink.record(sample(Histogram::QueueDepth, 2));
        let text = sink.render();
        let bytes_line = text.lines().position(|l| l.starts_with("counter bytes_in 100"));
        let admitted_line = text.lines().position(|l| l.starts_with("counter requests_admitted 4"));
        assert!(bytes_line.unwrap() < admitted_line.unwrap(), "sorted by name:\n{text}");
        assert!(text.contains("histogram queue_depth count=1"));
        assert!(text.starts_with("uptime_s "));
    }

    #[test]
    fn clones_share_state_and_snapshot_through_compositions() {
        let sink = AggregateSink::new();
        let clone = sink.clone();
        clone.record(Event::CounterAdd { counter: Counter::Phases, delta: 1, span: None });
        assert_eq!(sink.counter("phases"), 1);
        // The tuple composition surfaces the aggregate's snapshot.
        let composed = (crate::NullSink, sink.clone());
        assert!(Sink::stats_snapshot(&composed).is_some());
        let memory_only = crate::MemorySink::new();
        assert!(Sink::stats_snapshot(&memory_only).is_none());
    }
}
