//! Per-reduction phase timelines and the flamegraph-style text
//! renderer behind `pslocal trace-report`.
//!
//! Both consumers work off the [`SpanRecord`]s a
//! [`MemorySink`](crate::MemorySink) reconstructs:
//!
//! * [`PhaseTimeline`] aggregates a Theorem 1.1 reduction's span tree
//!   into the build / oracle / commit cost split per phase (the shape
//!   the paper's ρ-phase analysis induces and `bench-report` tabulates);
//! * [`render_tree`] renders any span forest as an indented tree with
//!   durations, proportional bars, and attributed counters.

use crate::sink::{Counter, SpanRecord};
use crate::{names, SpanId};
use std::fmt::Write as _;

/// Cost attribution of one reduction phase, from its span subtree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseTiming {
    /// The phase index.
    pub phase: u64,
    /// Wall time of the whole phase span, ns.
    pub total_ns: u64,
    /// Time spent restricting the previous conflict graph, ns (0 in
    /// phase 0, whose graph is built under the reduction root).
    pub restrict_ns: u64,
    /// Time spent inside oracle calls, ns (summed over attempts).
    pub oracle_ns: u64,
    /// Time spent committing (decode, palette merge, residual scan), ns.
    pub commit_ns: u64,
    /// Oracle attempts made (1 for a clean phase, more under retries).
    pub oracle_attempts: usize,
    /// Hyperedges removed by the phase.
    pub edges_removed: u64,
}

/// A whole reduction's cost split, aggregated from its span tree.
///
/// `build_ns` covers the initial conflict-graph construction plus all
/// phase-incremental restrictions; `total_ns` is the root reduction
/// span, so `total_ns ≥ build_ns + oracle_ns + commit_ns` (the
/// remainder is driver bookkeeping).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseTimeline {
    /// Wall time of the whole reduction, ns.
    pub total_ns: u64,
    /// Conflict-graph construction + restriction time, ns.
    pub build_ns: u64,
    /// Total oracle time, ns.
    pub oracle_ns: u64,
    /// Total commit time, ns.
    pub commit_ns: u64,
    /// Per-phase breakdown, in phase order.
    pub phases: Vec<PhaseTiming>,
}

impl PhaseTimeline {
    /// Aggregates the first `reduction` span tree found in `spans`, or
    /// `None` if there is none.
    pub fn from_spans(spans: &[SpanRecord]) -> Option<Self> {
        let root = spans.iter().find(|s| s.name == names::REDUCTION)?;
        let children = |id: SpanId| spans.iter().filter(move |s| s.parent == Some(id));
        let subtree_ns = |id: SpanId, name: &'static str| -> u64 {
            children(id).filter(|s| s.name == name).map(|s| s.duration_ns()).sum()
        };

        let mut timeline = PhaseTimeline {
            total_ns: root.duration_ns(),
            build_ns: subtree_ns(root.id, names::CONFLICT_GRAPH),
            oracle_ns: 0,
            commit_ns: 0,
            phases: Vec::new(),
        };
        let mut phases: Vec<&SpanRecord> =
            children(root.id).filter(|s| s.name == names::PHASE).collect();
        phases.sort_by_key(|s| s.index);
        for phase in phases {
            let timing = PhaseTiming {
                phase: phase.index.unwrap_or(0),
                total_ns: phase.duration_ns(),
                restrict_ns: subtree_ns(phase.id, names::RESTRICT),
                oracle_ns: subtree_ns(phase.id, names::ORACLE),
                commit_ns: subtree_ns(phase.id, names::COMMIT),
                oracle_attempts: children(phase.id).filter(|s| s.name == names::ORACLE).count(),
                edges_removed: phase.counter(Counter::EdgesRemoved),
            };
            timeline.build_ns += timing.restrict_ns;
            timeline.oracle_ns += timing.oracle_ns;
            timeline.commit_ns += timing.commit_ns;
            timeline.phases.push(timing);
        }
        Some(timeline)
    }

    /// Renders the per-phase table `trace-report` prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<7} {:>10} {:>10} {:>10} {:>10} {:>9} {:>7}",
            "phase", "total", "restrict", "oracle", "commit", "attempts", "edges-"
        );
        for p in &self.phases {
            let _ = writeln!(
                out,
                "{:<7} {:>10} {:>10} {:>10} {:>10} {:>9} {:>7}",
                p.phase,
                fmt_ns(p.total_ns),
                fmt_ns(p.restrict_ns),
                fmt_ns(p.oracle_ns),
                fmt_ns(p.commit_ns),
                p.oracle_attempts,
                p.edges_removed,
            );
        }
        let _ = writeln!(
            out,
            "{:<7} {:>10} {:>10} {:>10} {:>10}",
            "total",
            fmt_ns(self.total_ns),
            fmt_ns(self.build_ns),
            fmt_ns(self.oracle_ns),
            fmt_ns(self.commit_ns),
        );
        out
    }
}

/// Formats a nanosecond duration with an adaptive unit.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders a span forest as an indented tree: name, duration, a bar
/// proportional to the share of the enclosing root span, and any
/// attributed counters — the flamegraph-style view of `trace-report`.
pub fn render_tree(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    let roots: Vec<&SpanRecord> = spans.iter().filter(|s| s.parent.is_none()).collect();
    for root in roots {
        render_node(spans, root, root.duration_ns().max(1), "", true, true, &mut out);
    }
    out
}

const BAR_WIDTH: usize = 24;

fn render_node(
    spans: &[SpanRecord],
    node: &SpanRecord,
    root_ns: u64,
    prefix: &str,
    is_root: bool,
    is_last: bool,
    out: &mut String,
) {
    let label = match node.index {
        Some(i) => format!("{} {}", node.name, i),
        None => node.name.to_string(),
    };
    let connector = if is_root {
        String::new()
    } else {
        format!("{prefix}{}", if is_last { "└─ " } else { "├─ " })
    };
    let fill = ((node.duration_ns() as u128 * BAR_WIDTH as u128) / root_ns as u128) as usize;
    let bar: String = "#".repeat(fill.min(BAR_WIDTH));
    let mut annotations = String::new();
    for (c, d) in &node.counters {
        let _ = write!(annotations, " {}={}", c.name(), d);
    }
    for (h, v) in &node.samples {
        let _ = write!(annotations, " {}:{}", h.name(), v);
    }
    if node.end_ns.is_none() {
        annotations.push_str(" (open)");
    }
    let head = format!("{connector}{label}");
    let _ = writeln!(
        out,
        "{head:<40} {:>10}  {bar:<BAR_WIDTH$}{annotations}",
        fmt_ns(node.duration_ns())
    );

    let children: Vec<&SpanRecord> = spans.iter().filter(|s| s.parent == Some(node.id)).collect();
    let child_prefix = if is_root {
        String::new()
    } else {
        format!("{prefix}{}", if is_last { "   " } else { "│  " })
    };
    for (i, child) in children.iter().enumerate() {
        let last = i + 1 == children.len();
        render_node(spans, child, root_ns, &child_prefix, false, last, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{Event, Histogram, MemorySink, Sink, SpanId};

    /// Builds the span tree of a synthetic 2-phase reduction.
    fn synthetic() -> MemorySink {
        let sink = MemorySink::new();
        let mut t = 0u64;
        let mut emit_span =
            |id: u64, parent: Option<u64>, name: &'static str, index: Option<u64>, dur: u64| {
                sink.record(Event::SpanStart {
                    id: SpanId(id),
                    parent: parent.map(SpanId),
                    name,
                    index,
                    start_ns: t,
                });
                t += dur;
                sink.record(Event::SpanEnd { id: SpanId(id), end_ns: t });
            };
        // Hand-rolled flat layout (parents closed after children in
        // reality; MemorySink only needs matching start/end pairs).
        emit_span(2, Some(1), names::CONFLICT_GRAPH, None, 400);
        emit_span(4, Some(3), names::ORACLE, Some(0), 300);
        emit_span(5, Some(3), names::ORACLE, Some(1), 200);
        emit_span(6, Some(3), names::COMMIT, None, 100);
        sink.record(Event::SpanStart {
            id: SpanId(3),
            parent: Some(SpanId(1)),
            name: names::PHASE,
            index: Some(0),
            start_ns: 400,
        });
        sink.record(Event::CounterAdd {
            counter: Counter::EdgesRemoved,
            delta: 9,
            span: Some(SpanId(3)),
        });
        sink.record(Event::SpanEnd { id: SpanId(3), end_ns: 1000 });
        emit_span(8, Some(7), names::RESTRICT, None, 50);
        emit_span(9, Some(7), names::ORACLE, Some(0), 150);
        emit_span(10, Some(7), names::COMMIT, None, 60);
        sink.record(Event::SpanStart {
            id: SpanId(7),
            parent: Some(SpanId(1)),
            name: names::PHASE,
            index: Some(1),
            start_ns: 1000,
        });
        sink.record(Event::SpanEnd { id: SpanId(7), end_ns: 1260 });
        sink.record(Event::SpanStart {
            id: SpanId(1),
            parent: None,
            name: names::REDUCTION,
            index: None,
            start_ns: 0,
        });
        sink.record(Event::SpanEnd { id: SpanId(1), end_ns: 1300 });
        sink
    }

    #[test]
    fn timeline_aggregates_the_cost_split() {
        let sink = synthetic();
        let tl = PhaseTimeline::from_spans(&sink.spans()).expect("reduction root present");
        assert_eq!(tl.total_ns, 1300);
        assert_eq!(tl.build_ns, 400 + 50);
        assert_eq!(tl.oracle_ns, 300 + 200 + 150);
        assert_eq!(tl.commit_ns, 100 + 60);
        assert_eq!(tl.phases.len(), 2);
        assert_eq!(tl.phases[0].phase, 0);
        assert_eq!(tl.phases[0].oracle_attempts, 2);
        assert_eq!(tl.phases[0].edges_removed, 9);
        assert_eq!(tl.phases[1].restrict_ns, 50);
        assert_eq!(tl.phases[1].oracle_attempts, 1);
        let table = tl.render();
        assert!(table.contains("phase"));
        assert!(table.contains("total"));
    }

    #[test]
    fn timeline_requires_a_reduction_root() {
        let sink = MemorySink::new();
        sink.record(Event::SpanStart {
            id: SpanId(1),
            parent: None,
            name: names::LOCAL_RUN,
            index: None,
            start_ns: 0,
        });
        sink.record(Event::SpanEnd { id: SpanId(1), end_ns: 10 });
        assert_eq!(PhaseTimeline::from_spans(&sink.spans()), None);
    }

    #[test]
    fn tree_renderer_shows_structure_durations_and_counters() {
        let sink = synthetic();
        let text = render_tree(&sink.spans());
        assert!(text.contains("reduction"));
        assert!(text.contains("├─ "));
        assert!(text.contains("└─ "));
        assert!(text.contains("phase 0"));
        assert!(text.contains("oracle 1"));
        assert!(text.contains("edges_removed=9"));
        assert!(text.contains("1.3us"), "root duration rendered: {text}");
        // Two phases under one root: phase lines are indented.
        let phase_lines: Vec<&str> = text.lines().filter(|l| l.contains("phase ")).collect();
        assert_eq!(phase_lines.len(), 2);
    }

    #[test]
    fn open_spans_are_flagged() {
        let sink = MemorySink::new();
        sink.record(Event::SpanStart {
            id: SpanId(1),
            parent: None,
            name: names::ORACLE,
            index: None,
            start_ns: 5,
        });
        let text = render_tree(&sink.spans());
        assert!(text.contains("(open)"));
    }

    #[test]
    fn durations_format_adaptively() {
        assert_eq!(fmt_ns(17), "17ns");
        assert_eq!(fmt_ns(1_500), "1.5us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_200_000_000), "3.20s");
        let sample = Histogram::ShardBuildNs;
        assert_eq!(sample.name(), "shard_build_ns");
    }
}
