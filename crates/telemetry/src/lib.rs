//! # pslocal-telemetry
//!
//! The workspace-wide observability substrate: nestable spans with
//! monotonic timing, typed counters and histograms, per-reduction
//! phase timelines, and pluggable [`Sink`]s — dependency-free and
//! std-only, so it sits below every other crate in the hermetic
//! workspace.
//!
//! # Design
//!
//! A [`Telemetry<S>`] pipeline owns a sink and a monotonic clock
//! epoch. Instrumented code creates **spans** (RAII guards that emit a
//! start/end event pair), attributes **counters** and **histogram
//! samples** to them, and nests children off parents — either
//! explicitly via [`Instrument::span`]/[`Instrument::span_idx`] or via
//! the [`span!`] macro:
//!
//! ```
//! use pslocal_telemetry::{span, Counter, MemorySink, Telemetry};
//!
//! let tel = Telemetry::new(MemorySink::new());
//! {
//!     let reduction = span!(tel, "reduction");
//!     for i in 0..3u64 {
//!         let phase = span!(reduction, "phase", i);
//!         phase.add(Counter::EdgesRemoved, 2);
//!     }
//! }
//! let spans = tel.sink().spans();
//! assert_eq!(spans.len(), 4);
//! assert!(tel.sink().open_spans().is_empty());
//! assert_eq!(tel.sink().counter_total(Counter::EdgesRemoved), 6);
//! ```
//!
//! The **disabled path is a no-op by construction**: [`Sink::ENABLED`]
//! is an associated `const`, every emission site is guarded by it, and
//! [`Telemetry::disabled`] uses [`NullSink`] (`ENABLED = false`) — so
//! the monomorphized untraced code performs no clock reads, allocates
//! nothing, and emits nothing. Benchmarked overhead of the disabled
//! path on the reduction pipeline is below 1% (see DESIGN.md §9).
//!
//! Span guards close on drop, **including during unwinding**, so a
//! caught panic (the resilient driver isolates oracle panics) never
//! leaves an orphaned span — the chaos suite asserts this on every
//! fault schedule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod sink;
pub mod timeline;

pub use aggregate::{AggregateSink, HistogramSummary};
pub use sink::{
    event_to_json, Counter, Event, Histogram, JsonlSink, MemorySink, NullSink, Sink, SpanId,
    SpanRecord,
};
pub use timeline::{render_tree, PhaseTimeline, PhaseTiming};

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Canonical span names, shared between the instrumented crates and
/// the consumers ([`PhaseTimeline`], `trace-report`) so they cannot
/// drift.
pub mod names {
    /// Whole reduction run (root span of both Theorem 1.1 drivers).
    pub const REDUCTION: &str = "reduction";
    /// Conflict-graph construction kernel.
    pub const CONFLICT_GRAPH: &str = "conflict-graph";
    /// One worker shard of the parallel construction kernel.
    pub const SHARD: &str = "shard";
    /// Phase-incremental restriction of the previous conflict graph.
    pub const RESTRICT: &str = "restrict";
    /// One reduction phase (index = phase number).
    pub const PHASE: &str = "phase";
    /// One oracle invocation (index = attempt number where retried).
    pub const ORACLE: &str = "oracle";
    /// One connected component solved by the component-parallel
    /// executor (index = component id; children are its oracle calls).
    pub const COMPONENT: &str = "component";
    /// Phase commit: decode, merge palette, rescan residual edges.
    pub const COMMIT: &str = "commit";
    /// One LOCAL-model execution.
    pub const LOCAL_RUN: &str = "local-run";
    /// One SLOCAL-model execution.
    pub const SLOCAL_RUN: &str = "slocal-run";
    /// One durable phase-journal append (checkpointing drivers; index =
    /// phase number).
    pub const CHECKPOINT_WRITE: &str = "checkpoint-write";
    /// Journal replay at the start of a resumable run (recovery layer).
    pub const RECOVERY_REPLAY: &str = "recovery-replay";
    /// One batch-service request, dequeue to completion (index =
    /// admission sequence number; children are the request's reduction
    /// spans).
    pub const SERVICE_REQUEST: &str = "service-request";
    /// One request as the TCP server sees it, parse to response write
    /// (index = per-connection request ordinal; wraps the service's
    /// `service-request` span plus socket time).
    pub const SERVER_REQUEST: &str = "server-request";
}

/// A telemetry pipeline: a sink plus the monotonic epoch all event
/// timestamps are relative to.
///
/// Cheap to construct; shared by reference into instrumented code. All
/// methods take `&self` (sinks synchronize internally), so a pipeline
/// is `Sync` and scoped worker threads can record through it.
#[derive(Debug)]
pub struct Telemetry<S: Sink> {
    sink: S,
    next_id: AtomicU64,
    epoch: Instant,
}

impl Telemetry<NullSink> {
    /// The disabled pipeline: statically dispatched no-ops everywhere.
    pub fn disabled() -> Self {
        Telemetry::new(NullSink)
    }
}

impl<S: Sink> Telemetry<S> {
    /// A pipeline feeding `sink`, with its epoch at "now".
    pub fn new(sink: S) -> Self {
        Telemetry { sink, next_id: AtomicU64::new(0), epoch: Instant::now() }
    }

    /// Whether this pipeline records anything (compile-time constant).
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        S::ENABLED
    }

    /// The sink, for draining buffered data after a run.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Consumes the pipeline and returns the sink.
    pub fn into_sink(self) -> S {
        self.sink
    }

    /// Nanoseconds since the pipeline epoch.
    #[inline]
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Increments `counter` without attributing it to a span. Zero
    /// deltas are suppressed (they carry no information).
    #[inline]
    pub fn add(&self, counter: Counter, delta: u64) {
        if S::ENABLED && delta > 0 {
            self.sink.record(Event::CounterAdd { counter, delta, span: None });
        }
    }

    /// Records a histogram sample without attributing it to a span.
    #[inline]
    pub fn sample(&self, histogram: Histogram, value: u64) {
        if S::ENABLED {
            self.sink.record(Event::Sample { histogram, value, span: None });
        }
    }

    fn start_span(
        &self,
        name: &'static str,
        index: Option<u64>,
        parent: Option<SpanId>,
    ) -> Span<'_, S> {
        if !S::ENABLED {
            return Span { tel: self, id: SpanId(0) };
        }
        let id = SpanId(self.next_id.fetch_add(1, Ordering::Relaxed) + 1);
        self.sink.record(Event::SpanStart { id, parent, name, index, start_ns: self.now_ns() });
        Span { tel: self, id }
    }
}

/// Anything a span can be opened under: the pipeline itself (root
/// spans) or another [`Span`] (children). The [`span!`] macro works
/// uniformly over both.
pub trait Instrument<S: Sink> {
    /// Opens a span named `name`.
    fn span(&self, name: &'static str) -> Span<'_, S>;

    /// Opens an indexed span (phase number, attempt number, …).
    fn span_idx(&self, name: &'static str, index: u64) -> Span<'_, S>;
}

impl<S: Sink> Instrument<S> for Telemetry<S> {
    fn span(&self, name: &'static str) -> Span<'_, S> {
        self.start_span(name, None, None)
    }

    fn span_idx(&self, name: &'static str, index: u64) -> Span<'_, S> {
        self.start_span(name, Some(index), None)
    }
}

/// An in-flight span. Ends (emits [`Event::SpanEnd`]) when dropped —
/// also during unwinding, so caught panics cannot orphan spans.
#[derive(Debug)]
pub struct Span<'t, S: Sink> {
    tel: &'t Telemetry<S>,
    id: SpanId,
}

impl<'t, S: Sink> Span<'t, S> {
    /// This span's id (0 on a disabled pipeline).
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// Increments `counter`, attributed to this span. Zero deltas are
    /// suppressed.
    #[inline]
    pub fn add(&self, counter: Counter, delta: u64) {
        if S::ENABLED && delta > 0 {
            self.tel.sink.record(Event::CounterAdd { counter, delta, span: Some(self.id) });
        }
    }

    /// Records a histogram sample, attributed to this span.
    #[inline]
    pub fn sample(&self, histogram: Histogram, value: u64) {
        if S::ENABLED {
            self.tel.sink.record(Event::Sample { histogram, value, span: Some(self.id) });
        }
    }

    /// Ends the span now (sugar for dropping it).
    pub fn close(self) {}
}

impl<'t, S: Sink> Instrument<S> for Span<'t, S> {
    fn span(&self, name: &'static str) -> Span<'_, S> {
        self.tel.start_span(name, None, Some(self.id))
    }

    fn span_idx(&self, name: &'static str, index: u64) -> Span<'_, S> {
        self.tel.start_span(name, Some(index), Some(self.id))
    }
}

impl<S: Sink, I: Instrument<S>> Instrument<S> for &I {
    fn span(&self, name: &'static str) -> Span<'_, S> {
        (**self).span(name)
    }

    fn span_idx(&self, name: &'static str, index: u64) -> Span<'_, S> {
        (**self).span_idx(name, index)
    }
}

impl<S: Sink> Drop for Span<'_, S> {
    fn drop(&mut self) {
        if S::ENABLED {
            self.tel.sink.record(Event::SpanEnd { id: self.id, end_ns: self.tel.now_ns() });
        }
    }
}

/// Opens a span under a [`Telemetry`] pipeline or a parent [`Span`]:
/// `span!(parent, "name")` or `span!(parent, "phase", i)`.
#[macro_export]
macro_rules! span {
    ($parent:expr, $name:expr) => {
        $crate::Instrument::span(&$parent, $name)
    };
    ($parent:expr, $name:expr, $index:expr) => {
        $crate::Instrument::span_idx(&$parent, $name, ($index) as u64)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_close_in_order() {
        let tel = Telemetry::new(MemorySink::new());
        {
            let root = span!(tel, names::REDUCTION);
            let phase = span!(root, names::PHASE, 0);
            let oracle = span!(phase, names::ORACLE, 1);
            oracle.add(Counter::OracleCalls, 1);
        }
        let spans = tel.sink().spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].parent, Some(spans[0].id));
        assert_eq!(spans[1].index, Some(0));
        assert_eq!(spans[2].parent, Some(spans[1].id));
        assert_eq!(spans[2].index, Some(1));
        assert!(tel.sink().open_spans().is_empty());
        // Children close before parents.
        assert!(spans[2].end_ns.unwrap() <= spans[1].end_ns.unwrap());
        assert!(spans[1].end_ns.unwrap() <= spans[0].end_ns.unwrap());
    }

    #[test]
    fn disabled_pipeline_emits_nothing_and_reports_disabled() {
        let tel = Telemetry::disabled();
        assert!(!tel.enabled());
        let root = span!(tel, "anything");
        root.add(Counter::Retries, 3);
        root.sample(Histogram::IndependentSetSize, 9);
        tel.add(Counter::Phases, 1);
        assert_eq!(root.id(), SpanId(0));
    }

    #[test]
    fn panic_inside_a_span_still_closes_it() {
        let tel = Telemetry::new(MemorySink::new());
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _span = span!(tel, names::ORACLE);
            panic!("oracle crashed");
        }));
        assert!(caught.is_err());
        assert!(tel.sink().open_spans().is_empty(), "unwinding must close the guard");
        assert_eq!(tel.sink().spans().len(), 1);
    }

    #[test]
    fn zero_deltas_are_suppressed() {
        let tel = Telemetry::new(MemorySink::new());
        tel.add(Counter::Retries, 0);
        {
            let s = span!(tel, "x");
            s.add(Counter::Retries, 0);
        }
        assert_eq!(tel.sink().counter_total(Counter::Retries), 0);
        assert_eq!(tel.sink().events().len(), 2, "only the span start/end pair");
    }

    #[test]
    fn worker_threads_can_record_through_a_shared_pipeline() {
        let tel = Telemetry::new(MemorySink::new());
        let root = span!(tel, names::CONFLICT_GRAPH);
        std::thread::scope(|s| {
            for i in 0..4u64 {
                let root = &root;
                s.spawn(move || {
                    let shard = span!(root, names::SHARD, i);
                    shard.sample(Histogram::ShardBuildNs, i * 10);
                });
            }
        });
        drop(root);
        let spans = tel.sink().spans();
        assert_eq!(spans.len(), 5);
        assert_eq!(spans.iter().filter(|s| s.name == names::SHARD).count(), 4);
        assert!(tel.sink().open_spans().is_empty());
        let mut samples = tel.sink().samples(Histogram::ShardBuildNs);
        samples.sort_unstable();
        assert_eq!(samples, vec![0, 10, 20, 30]);
    }

    #[test]
    fn timestamps_are_monotone() {
        let tel = Telemetry::new(MemorySink::new());
        let a = span!(tel, "a");
        drop(a);
        let b = span!(tel, "b");
        drop(b);
        let spans = tel.sink().spans();
        assert!(spans[0].start_ns <= spans[0].end_ns.unwrap());
        assert!(spans[0].end_ns.unwrap() <= spans[1].start_ns);
    }
}
