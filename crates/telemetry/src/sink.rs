//! Telemetry events and the pluggable [`Sink`]s that receive them.
//!
//! Everything the instrumented code emits is one of four [`Event`]s:
//! a span starts, a span ends, a typed [`Counter`] is incremented, or a
//! [`Histogram`] sample is recorded. A [`Sink`] is the consumer:
//!
//! * [`NullSink`] — the disabled path. Its [`Sink::ENABLED`] is
//!   `false`, which every instrumentation site checks **at compile
//!   time** (it is an associated `const`), so the monomorphized
//!   null-telemetry code contains no clock reads and no event
//!   construction at all;
//! * [`MemorySink`] — buffers every event behind a mutex and can
//!   reconstruct the span tree ([`SpanRecord`]) — the sink tests and
//!   `trace-report` use;
//! * [`JsonlSink`] — serializes each event as one JSON object per line
//!   to any writer (the `--metrics-out` artifact format).
//!
//! Sinks compose structurally: `&S`, `Option<S>`, and `(A, B)` are all
//! sinks, so "memory plus optional JSONL file" is just a tuple.

use crate::aggregate::lock_unpoisoned;
use std::fmt;
use std::io::Write;
use std::sync::Mutex;

/// Identifier of one span within a [`Telemetry`](crate::Telemetry)
/// pipeline's lifetime. Ids are allocated from 1; they are unique per
/// pipeline, not globally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The typed counters the workspace's instrumentation increments.
///
/// A closed enum (rather than free-form string keys) so that sites and
/// consumers cannot drift: adding a metric is a compile-visible change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Counter {
    /// Hyperedges removed from the residual set (reduction drivers).
    EdgesRemoved,
    /// Edges found happy during a phase commit's residual scan.
    HappyEdges,
    /// Oracle attempts beyond the first within a phase (resilient
    /// driver).
    Retries,
    /// Simulated steps oracle calls stalled for (resilient driver).
    StalledSteps,
    /// Oracle invocations.
    OracleCalls,
    /// Bytes of CSR storage materialized (conflict-graph builder).
    CsrBytes,
    /// Times a resilient driver fell back to a later oracle in its
    /// chain.
    Fallbacks,
    /// Fault events the resilient driver recorded.
    FaultEvents,
    /// Reduction phases committed.
    Phases,
    /// Rounds a LOCAL execution ran for.
    LocalRounds,
    /// Messages a LOCAL execution delivered.
    LocalMessages,
    /// Nodes an SLOCAL run processed (views extracted).
    SlocalViews,
    /// Total vertices across all SLOCAL views (the run's volume).
    SlocalViewVolume,
    /// Connected components a phase's conflict graph decomposed into
    /// (component-parallel executor; only emitted on the parallel
    /// path, so 0 means the serial fast path ran).
    Components,
    /// Conflict-graph nodes of the largest component of a phase
    /// (attributed to the phase span — a gauge recorded once per
    /// decomposed phase).
    LargestComponent,
    /// Oracle invocations issued through the component-parallel
    /// executor (one per component per phase attempt).
    ParallelOracleCalls,
    /// Phases restored from a phase journal instead of being recomputed
    /// (resumable drivers; attributed to the `recovery-replay` span).
    PhasesRecovered,
    /// Bytes of the phase journal persisted by a checkpoint write (a
    /// gauge: each `checkpoint-write` span records the journal's size
    /// after its append).
    JournalBytes,
    /// Phase oracle calls answered from the fingerprint-keyed memo
    /// cache instead of invoking the oracle (drivers with
    /// `oracle_cache` enabled).
    OracleCacheHits,
    /// Phase oracle lookups that missed the memo cache and fell through
    /// to a real oracle call (drivers with `oracle_cache` enabled).
    OracleCacheMisses,
    /// Memo-cache hits whose stored set failed re-verification against
    /// the current conflict graph (a fingerprint collision): the entry
    /// is evicted and the lookup falls through to the oracle. Also
    /// counted as a miss, so hits + misses still equals lookups.
    OracleCacheRejects,
    /// Requests the batch service admitted into its bounded queue.
    RequestsAdmitted,
    /// Requests the batch service refused with `QueueFull` backpressure
    /// (queue at capacity or service draining).
    RequestsRejected,
    /// Requests a batch service worker completed (any outcome except
    /// queue rejection).
    RequestsCompleted,
    /// Requests that hit their deadline at a phase boundary and were
    /// cooperatively cancelled.
    DeadlinesExceeded,
    /// Requests whose reduction failed (driver error or panic).
    RequestsFailed,
    /// Cumulative nanoseconds requests spent waiting in the admission
    /// queue before a worker picked them up.
    QueueWaitNs,
    /// TCP connections the server accepted and handed to a connection
    /// handler.
    ConnectionsAccepted,
    /// TCP connections the server refused with a typed overload
    /// response because the connection cap was reached (or the server
    /// was draining).
    ConnectionsRefused,
    /// Bytes of request stream the server read off its sockets.
    BytesIn,
    /// Bytes of response stream the server wrote to its sockets.
    BytesOut,
    /// Input lines that did not parse as protocol requests and were
    /// answered with a typed `bad_request` line.
    BadRequests,
}

impl Counter {
    /// Stable snake_case name used by the JSONL schema and reports.
    pub fn name(self) -> &'static str {
        match self {
            Counter::EdgesRemoved => "edges_removed",
            Counter::HappyEdges => "happy_edges",
            Counter::Retries => "retries",
            Counter::StalledSteps => "stalled_steps",
            Counter::OracleCalls => "oracle_calls",
            Counter::CsrBytes => "csr_bytes",
            Counter::Fallbacks => "fallbacks",
            Counter::FaultEvents => "fault_events",
            Counter::Phases => "phases",
            Counter::LocalRounds => "local_rounds",
            Counter::LocalMessages => "local_messages",
            Counter::SlocalViews => "slocal_views",
            Counter::SlocalViewVolume => "slocal_view_volume",
            Counter::Components => "components",
            Counter::LargestComponent => "largest_component",
            Counter::ParallelOracleCalls => "parallel_oracle_calls",
            Counter::PhasesRecovered => "phases_recovered",
            Counter::JournalBytes => "journal_bytes",
            Counter::OracleCacheHits => "oracle_cache_hit",
            Counter::OracleCacheMisses => "oracle_cache_miss",
            Counter::OracleCacheRejects => "oracle_cache_reject",
            Counter::RequestsAdmitted => "requests_admitted",
            Counter::RequestsRejected => "requests_rejected",
            Counter::RequestsCompleted => "requests_completed",
            Counter::DeadlinesExceeded => "requests_deadline_exceeded",
            Counter::RequestsFailed => "requests_failed",
            Counter::QueueWaitNs => "queue_wait_total_ns",
            Counter::ConnectionsAccepted => "connections_accepted",
            Counter::ConnectionsRefused => "connections_refused",
            Counter::BytesIn => "bytes_in",
            Counter::BytesOut => "bytes_out",
            Counter::BadRequests => "bad_requests",
        }
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The typed value distributions the instrumentation samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Histogram {
    /// Wall time one conflict-graph builder shard spent emitting, ns.
    ShardBuildNs,
    /// Size of an oracle's returned independent set.
    IndependentSetSize,
    /// Realized locality of an SLOCAL run.
    RealizedLocality,
    /// Admission-queue depth sampled as each batch request is enqueued
    /// (after the push, so an idle service samples 1).
    QueueDepth,
    /// Nanoseconds one batch request waited in the admission queue
    /// before a worker dequeued it.
    QueueWaitNs,
    /// End-to-end nanoseconds for one batch request, submission to
    /// completion (queue wait + execution).
    RequestLatencyNs,
}

impl Histogram {
    /// Stable snake_case name used by the JSONL schema and reports.
    pub fn name(self) -> &'static str {
        match self {
            Histogram::ShardBuildNs => "shard_build_ns",
            Histogram::IndependentSetSize => "independent_set_size",
            Histogram::RealizedLocality => "realized_locality",
            Histogram::QueueDepth => "queue_depth",
            Histogram::QueueWaitNs => "queue_wait_ns",
            Histogram::RequestLatencyNs => "request_latency_ns",
        }
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One telemetry event. Timestamps are nanoseconds since the owning
/// [`Telemetry`](crate::Telemetry) pipeline's construction (monotonic,
/// from [`std::time::Instant`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A span began.
    SpanStart {
        /// The span's id.
        id: SpanId,
        /// The enclosing span, if any.
        parent: Option<SpanId>,
        /// Static span name (see [`crate::names`]).
        name: &'static str,
        /// Optional index distinguishing repeated spans (phase number,
        /// attempt number, shard number).
        index: Option<u64>,
        /// Start time, ns since pipeline construction.
        start_ns: u64,
    },
    /// A span ended.
    SpanEnd {
        /// The span that ended.
        id: SpanId,
        /// End time, ns since pipeline construction.
        end_ns: u64,
    },
    /// A counter was incremented.
    CounterAdd {
        /// Which counter.
        counter: Counter,
        /// The (positive) increment.
        delta: u64,
        /// The span the increment is attributed to, if any.
        span: Option<SpanId>,
    },
    /// A histogram sample was recorded.
    Sample {
        /// Which histogram.
        histogram: Histogram,
        /// The sampled value.
        value: u64,
        /// The span the sample is attributed to, if any.
        span: Option<SpanId>,
    },
}

/// A consumer of telemetry [`Event`]s.
///
/// `Sync` is a supertrait because the conflict-graph builder records
/// per-shard timings from scoped worker threads through a shared
/// reference.
pub trait Sink: Sync {
    /// Compile-time enable flag. Instrumentation sites branch on this
    /// `const`, so with [`NullSink`] (`ENABLED = false`) the whole
    /// telemetry path — including clock reads — monomorphizes away.
    const ENABLED: bool = true;

    /// Receives one event. Must not panic.
    fn record(&self, event: Event);

    /// A live, human-readable snapshot of what this sink has
    /// aggregated so far, or `None` when the sink keeps no queryable
    /// aggregates (the default). The server's `STATS` command renders
    /// whatever the first snapshot-capable sink in the pipeline
    /// returns — see [`AggregateSink`](crate::AggregateSink).
    fn stats_snapshot(&self) -> Option<String> {
        None
    }
}

/// The disabled sink: receives nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl Sink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&self, _event: Event) {}
}

/// Forwarding through a shared reference.
impl<S: Sink> Sink for &S {
    const ENABLED: bool = S::ENABLED;

    #[inline]
    fn record(&self, event: Event) {
        (**self).record(event);
    }

    fn stats_snapshot(&self) -> Option<String> {
        (**self).stats_snapshot()
    }
}

/// `None` drops events at runtime; the compile-time flag follows the
/// inner sink (an `Option` is for runtime-optional outputs like
/// `--metrics-out`, not for disabling telemetry — use [`NullSink`]).
impl<S: Sink> Sink for Option<S> {
    const ENABLED: bool = S::ENABLED;

    #[inline]
    fn record(&self, event: Event) {
        if let Some(sink) = self {
            sink.record(event);
        }
    }

    fn stats_snapshot(&self) -> Option<String> {
        self.as_ref().and_then(Sink::stats_snapshot)
    }
}

/// Fan-out to two sinks (build bigger fans by nesting tuples).
impl<A: Sink, B: Sink> Sink for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    #[inline]
    fn record(&self, event: Event) {
        self.0.record(event);
        self.1.record(event);
    }

    /// The first member with a snapshot wins.
    fn stats_snapshot(&self) -> Option<String> {
        self.0.stats_snapshot().or_else(|| self.1.stats_snapshot())
    }
}

/// One reconstructed span, as [`MemorySink::spans`] reports it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The span's id.
    pub id: SpanId,
    /// The enclosing span, if any.
    pub parent: Option<SpanId>,
    /// Static span name.
    pub name: &'static str,
    /// Optional repetition index (phase/attempt/shard number).
    pub index: Option<u64>,
    /// Start time, ns since pipeline construction.
    pub start_ns: u64,
    /// End time; `None` for a span that never closed (an orphan —
    /// indicates an instrumentation bug, since guards close on drop
    /// even during unwinding).
    pub end_ns: Option<u64>,
    /// Counter increments attributed to this span, in order.
    pub counters: Vec<(Counter, u64)>,
    /// Histogram samples attributed to this span, in order.
    pub samples: Vec<(Histogram, u64)>,
}

impl SpanRecord {
    /// The span's duration, ns (0 for an orphan).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.map_or(0, |end| end.saturating_sub(self.start_ns))
    }

    /// Total of the increments of `counter` attributed to this span.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters.iter().filter(|(c, _)| *c == counter).map(|(_, d)| d).sum()
    }
}

/// An in-memory sink buffering every event, able to reconstruct the
/// span tree — the sink tests assert against and `trace-report` renders.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of every event received so far, in order.
    pub fn events(&self) -> Vec<Event> {
        lock_unpoisoned(&self.events).clone()
    }

    /// Discards all buffered events.
    pub fn clear(&self) {
        lock_unpoisoned(&self.events).clear();
    }

    /// Reconstructs every span (closed or not) in start order, with its
    /// attributed counters and samples.
    pub fn spans(&self) -> Vec<SpanRecord> {
        let events = lock_unpoisoned(&self.events);
        let mut spans: Vec<SpanRecord> = Vec::new();
        for event in events.iter() {
            match *event {
                Event::SpanStart { id, parent, name, index, start_ns } => {
                    spans.push(SpanRecord {
                        id,
                        parent,
                        name,
                        index,
                        start_ns,
                        end_ns: None,
                        counters: Vec::new(),
                        samples: Vec::new(),
                    });
                }
                Event::SpanEnd { id, end_ns } => {
                    if let Some(span) = spans.iter_mut().rev().find(|s| s.id == id) {
                        span.end_ns = Some(end_ns);
                    }
                }
                Event::CounterAdd { counter, delta, span: Some(id) } => {
                    if let Some(span) = spans.iter_mut().rev().find(|s| s.id == id) {
                        span.counters.push((counter, delta));
                    }
                }
                Event::Sample { histogram, value, span: Some(id) } => {
                    if let Some(span) = spans.iter_mut().rev().find(|s| s.id == id) {
                        span.samples.push((histogram, value));
                    }
                }
                Event::CounterAdd { span: None, .. } | Event::Sample { span: None, .. } => {}
            }
        }
        spans
    }

    /// The spans that started but never ended. Always empty after a
    /// correctly instrumented run — span guards close on drop, even
    /// during a caught panic.
    pub fn open_spans(&self) -> Vec<SpanRecord> {
        self.spans().into_iter().filter(|s| s.end_ns.is_none()).collect()
    }

    /// Total of every increment of `counter`, span-attributed or not.
    pub fn counter_total(&self, counter: Counter) -> u64 {
        lock_unpoisoned(&self.events)
            .iter()
            .filter_map(|e| match e {
                Event::CounterAdd { counter: c, delta, .. } if *c == counter => Some(*delta),
                _ => None,
            })
            .sum()
    }

    /// All samples of `histogram`, in arrival order.
    pub fn samples(&self, histogram: Histogram) -> Vec<u64> {
        lock_unpoisoned(&self.events)
            .iter()
            .filter_map(|e| match e {
                Event::Sample { histogram: h, value, .. } if *h == histogram => Some(*value),
                _ => None,
            })
            .collect()
    }
}

impl Sink for MemorySink {
    fn record(&self, event: Event) {
        lock_unpoisoned(&self.events).push(event);
    }
}

/// Serializes `event` as one JSON object (no trailing newline). Span
/// names and metric names are workspace-internal identifiers and are
/// emitted verbatim (they contain no characters needing JSON escaping).
pub fn event_to_json(event: &Event) -> String {
    fn opt(v: Option<u64>) -> String {
        v.map_or_else(|| "null".to_string(), |x| x.to_string())
    }
    match *event {
        Event::SpanStart { id, parent, name, index, start_ns } => format!(
            "{{\"event\":\"span_start\",\"id\":{},\"parent\":{},\"name\":\"{}\",\"index\":{},\"t_ns\":{}}}",
            id.0,
            opt(parent.map(|p| p.0)),
            name,
            opt(index),
            start_ns,
        ),
        Event::SpanEnd { id, end_ns } => {
            format!("{{\"event\":\"span_end\",\"id\":{},\"t_ns\":{}}}", id.0, end_ns)
        }
        Event::CounterAdd { counter, delta, span } => format!(
            "{{\"event\":\"counter\",\"counter\":\"{}\",\"delta\":{},\"span\":{}}}",
            counter.name(),
            delta,
            opt(span.map(|s| s.0)),
        ),
        Event::Sample { histogram, value, span } => format!(
            "{{\"event\":\"sample\",\"histogram\":\"{}\",\"value\":{},\"span\":{}}}",
            histogram.name(),
            value,
            opt(span.map(|s| s.0)),
        ),
    }
}

/// A sink writing one JSON object per event per line — the
/// `--metrics-out` artifact format (schema `pslocal-telemetry/v1`).
///
/// Write errors are deliberately swallowed: telemetry must never take
/// down the pipeline it observes.
///
/// The sink is **crash-safe**: the buffered writer is flushed on every
/// [`Event::SpanEnd`] (span closes are the natural durability
/// boundaries of the stream — a consumer can always reconstruct every
/// *closed* span), on [`flush`](Self::flush), and on drop — including
/// a drop during panic unwinding, so a panicking run loses at most the
/// events since the last span close, never the whole buffered tail.
#[derive(Debug)]
pub struct JsonlSink<W: Write + Send> {
    // `Option` so `into_inner` can move the writer out from under the
    // `Drop` impl; `None` only ever after `into_inner`.
    writer: Mutex<Option<W>>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps `writer`.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer: Mutex::new(Some(writer)) }
    }

    /// Flushes and returns the inner writer.
    pub fn into_inner(self) -> W {
        let mut w = lock_unpoisoned(&self.writer)
            .take()
            // pslocal: allow(panic-path, "the Option is None only after into_inner, which consumes self — a second take is unreachable")
            .expect("writer present until into_inner");
        let _ = w.flush();
        w
    }

    /// Flushes the inner writer.
    pub fn flush(&self) {
        if let Some(w) = lock_unpoisoned(&self.writer).as_mut() {
            let _ = w.flush();
        }
    }
}

impl<W: Write + Send> Sink for JsonlSink<W> {
    fn record(&self, event: Event) {
        let mut guard = lock_unpoisoned(&self.writer);
        if let Some(w) = guard.as_mut() {
            let _ = writeln!(w, "{}", event_to_json(&event));
            // Span closes bound the stream's loss window: flush so a
            // later panic (or abort) cannot lose a closed span.
            if matches!(event, Event::SpanEnd { .. }) {
                let _ = w.flush();
            }
        }
    }
}

impl<W: Write + Send> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        // Best-effort tail flush, also during unwinding — a panicking
        // run must not lose the metrics written before the panic.
        if let Ok(mut guard) = self.writer.lock() {
            if let Some(w) = guard.as_mut() {
                let _ = w.flush();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(id: u64, parent: Option<u64>, name: &'static str, t: u64) -> Event {
        Event::SpanStart {
            id: SpanId(id),
            parent: parent.map(SpanId),
            name,
            index: None,
            start_ns: t,
        }
    }

    #[test]
    fn memory_sink_reconstructs_the_span_tree() {
        let sink = MemorySink::new();
        sink.record(start(1, None, "root", 0));
        sink.record(start(2, Some(1), "child", 10));
        sink.record(Event::CounterAdd {
            counter: Counter::EdgesRemoved,
            delta: 5,
            span: Some(SpanId(2)),
        });
        sink.record(Event::Sample {
            histogram: Histogram::IndependentSetSize,
            value: 7,
            span: Some(SpanId(2)),
        });
        sink.record(Event::SpanEnd { id: SpanId(2), end_ns: 40 });
        sink.record(Event::SpanEnd { id: SpanId(1), end_ns: 100 });

        let spans = sink.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "root");
        assert_eq!(spans[0].duration_ns(), 100);
        assert_eq!(spans[1].parent, Some(SpanId(1)));
        assert_eq!(spans[1].duration_ns(), 30);
        assert_eq!(spans[1].counter(Counter::EdgesRemoved), 5);
        assert_eq!(spans[1].samples, vec![(Histogram::IndependentSetSize, 7)]);
        assert!(sink.open_spans().is_empty());
        assert_eq!(sink.counter_total(Counter::EdgesRemoved), 5);
        assert_eq!(sink.samples(Histogram::IndependentSetSize), vec![7]);
    }

    #[test]
    fn open_spans_are_reported_as_orphans() {
        let sink = MemorySink::new();
        sink.record(start(1, None, "root", 0));
        assert_eq!(sink.open_spans().len(), 1);
        sink.record(Event::SpanEnd { id: SpanId(1), end_ns: 5 });
        assert!(sink.open_spans().is_empty());
        sink.clear();
        assert!(sink.events().is_empty());
    }

    #[test]
    fn composite_sinks_forward_to_every_member() {
        let a = MemorySink::new();
        let b = MemorySink::new();
        let both = (&a, Some(&b));
        both.record(start(1, None, "x", 0));
        assert_eq!(a.events().len(), 1);
        assert_eq!(b.events().len(), 1);
        let none: Option<&MemorySink> = None;
        none.record(start(2, None, "y", 0));
    }

    #[test]
    fn null_sink_is_compile_time_disabled() {
        const { assert!(!NullSink::ENABLED) };
        const { assert!(MemorySink::ENABLED) };
        const { assert!(<(NullSink, MemorySink)>::ENABLED) };
        const { assert!(!<(NullSink, NullSink)>::ENABLED) };
        NullSink.record(start(1, None, "ignored", 0));
    }

    #[test]
    fn jsonl_sink_writes_one_object_per_line() {
        let sink = JsonlSink::new(Vec::new());
        sink.record(Event::SpanStart {
            id: SpanId(1),
            parent: None,
            name: "reduction",
            index: Some(3),
            start_ns: 42,
        });
        sink.record(Event::CounterAdd { counter: Counter::Retries, delta: 2, span: None });
        sink.record(Event::SpanEnd { id: SpanId(1), end_ns: 99 });
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"event\":\"span_start\",\"id\":1,\"parent\":null,\"name\":\"reduction\",\"index\":3,\"t_ns\":42}"
        );
        assert_eq!(
            lines[1],
            "{\"event\":\"counter\",\"counter\":\"retries\",\"delta\":2,\"span\":null}"
        );
        assert_eq!(lines[2], "{\"event\":\"span_end\",\"id\":1,\"t_ns\":99}");
    }

    /// A writer that counts flushes and exposes what reached it.
    #[derive(Default)]
    struct FlushProbe {
        bytes: Vec<u8>,
        flushes: std::sync::Arc<std::sync::atomic::AtomicUsize>,
    }

    impl Write for FlushProbe {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.bytes.write(buf)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            self.flushes.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            Ok(())
        }
    }

    #[test]
    fn jsonl_sink_flushes_on_every_span_close() {
        let flushes = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let sink = JsonlSink::new(FlushProbe { bytes: Vec::new(), flushes: flushes.clone() });
        sink.record(start(1, None, "root", 0));
        sink.record(Event::CounterAdd { counter: Counter::Phases, delta: 1, span: None });
        assert_eq!(flushes.load(std::sync::atomic::Ordering::SeqCst), 0, "no close yet");
        sink.record(Event::SpanEnd { id: SpanId(1), end_ns: 9 });
        assert_eq!(flushes.load(std::sync::atomic::Ordering::SeqCst), 1, "span close flushes");
        sink.flush();
        assert_eq!(flushes.load(std::sync::atomic::Ordering::SeqCst), 2, "explicit flush");
        drop(sink);
        assert!(flushes.load(std::sync::atomic::Ordering::SeqCst) >= 3, "drop flushes the tail");
    }

    #[test]
    fn jsonl_sink_flushes_when_dropped_during_unwinding() {
        let flushes = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let probe_flushes = flushes.clone();
        let result = std::panic::catch_unwind(move || {
            let sink = JsonlSink::new(FlushProbe { bytes: Vec::new(), flushes: probe_flushes });
            sink.record(start(1, None, "doomed", 0));
            panic!("simulated crash mid-run");
        });
        assert!(result.is_err());
        assert!(
            flushes.load(std::sync::atomic::Ordering::SeqCst) >= 1,
            "the drop during unwinding must flush the buffered tail"
        );
    }

    #[test]
    fn counter_and_histogram_names_are_stable() {
        assert_eq!(Counter::CsrBytes.name(), "csr_bytes");
        assert_eq!(Counter::StalledSteps.to_string(), "stalled_steps");
        assert_eq!(Counter::OracleCacheHits.name(), "oracle_cache_hit");
        assert_eq!(Counter::OracleCacheMisses.name(), "oracle_cache_miss");
        assert_eq!(Counter::OracleCacheRejects.name(), "oracle_cache_reject");
        assert_eq!(Counter::RequestsAdmitted.name(), "requests_admitted");
        assert_eq!(Counter::RequestsRejected.name(), "requests_rejected");
        assert_eq!(Counter::DeadlinesExceeded.name(), "requests_deadline_exceeded");
        assert_eq!(Counter::QueueWaitNs.name(), "queue_wait_total_ns");
        assert_eq!(Counter::ConnectionsAccepted.name(), "connections_accepted");
        assert_eq!(Counter::ConnectionsRefused.name(), "connections_refused");
        assert_eq!(Counter::BytesIn.name(), "bytes_in");
        assert_eq!(Counter::BytesOut.name(), "bytes_out");
        assert_eq!(Counter::BadRequests.name(), "bad_requests");
        assert_eq!(Histogram::ShardBuildNs.name(), "shard_build_ns");
        assert_eq!(Histogram::RealizedLocality.to_string(), "realized_locality");
        assert_eq!(Histogram::QueueDepth.name(), "queue_depth");
        assert_eq!(Histogram::QueueWaitNs.name(), "queue_wait_ns");
        assert_eq!(Histogram::RequestLatencyNs.name(), "request_latency_ns");
    }
}
