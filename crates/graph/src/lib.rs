//! # pslocal-graph
//!
//! Graph and hypergraph substrate for the executable reproduction of
//! *"P-SLOCAL-Completeness of Maximum Independent Set Approximation"*
//! (Maus, PODC 2019).
//!
//! Everything in the reproduction stack — the LOCAL/SLOCAL simulators,
//! the MaxIS oracle suite, the conflict-graph construction — consumes
//! the types defined here:
//!
//! * [`Graph`] — immutable simple undirected graphs in CSR form, built
//!   via [`GraphBuilder`].
//! * [`Hypergraph`] — the inputs of conflict-free multicoloring, with
//!   two-way incidence, built via [`HypergraphBuilder`].
//! * [`IndependentSet`] — independence verified at construction, the
//!   return type of every MaxIS oracle.
//! * [`palette::Palette`] — disjoint per-phase color palettes for the
//!   Theorem 1.1 reduction.
//! * [`generators`] — deterministic and seeded random graph families,
//!   and the planted conflict-free hypergraph instances that drive the
//!   experiment suite.
//! * [`algo`] — BFS/ball extraction (the locality primitive), coloring,
//!   components, clique covers.
//!
//! # Examples
//!
//! ```
//! use pslocal_graph::generators::hyper::{
//!     is_conflict_free_single_coloring, planted_cf_instance, PlantedCfParams,
//! };
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let inst = planted_cf_instance(&mut rng, PlantedCfParams::new(64, 32, 4));
//! assert!(is_conflict_free_single_coloring(&inst.hypergraph, &inst.planted_coloring));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
pub mod bitset;
pub mod csr;
pub mod error;
pub mod fingerprint;
pub mod generators;
pub mod graph;
pub mod hypergraph;
pub mod ids;
pub mod independent;
pub mod io;
pub mod ops;
pub mod palette;
pub mod stats;

pub use bitset::{BitsetGraph, BitsetScratch, KernelStrategy};
pub use error::GraphError;
pub use graph::{Edges, Graph, GraphBuilder};
pub use hypergraph::{Hypergraph, HypergraphBuilder};
pub use ids::{Color, EdgeId, HyperedgeId, NodeId};
pub use independent::{IndependentSet, NotIndependentError};
pub use palette::Palette;
pub use stats::{GraphStats, HypergraphStats};
