//! Immutable simple undirected graphs in compressed sparse row form.
//!
//! [`Graph`] is the workhorse of the whole workspace: the LOCAL and
//! SLOCAL simulators run on it, the MaxIS oracles consume it, and the
//! paper's conflict graph `G_k` is materialized as one. Graphs are
//! immutable after construction (via [`GraphBuilder`] or the convenience
//! constructors), which lets every consumer share them freely across
//! threads.

use crate::{EdgeId, GraphError, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An immutable simple undirected graph.
///
/// Vertices are `0..n`; parallel edges and self loops are rejected at
/// construction. Internally stored in compressed sparse row (CSR) form:
/// neighbor lists are sorted, so adjacency tests are `O(log Δ)` and
/// neighborhood scans are cache friendly.
///
/// # Examples
///
/// ```
/// use pslocal_graph::{Graph, NodeId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])?;
/// assert_eq!(g.node_count(), 4);
/// assert_eq!(g.edge_count(), 4);
/// assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
/// assert!(!g.has_edge(NodeId::new(0), NodeId::new(2)));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    /// CSR offsets; `offsets.len() == n + 1`.
    offsets: Vec<u32>,
    /// Concatenated sorted neighbor lists; `targets.len() == 2m`.
    targets: Vec<NodeId>,
}

impl Graph {
    /// Creates the empty graph on `n` isolated vertices.
    ///
    /// # Examples
    ///
    /// ```
    /// use pslocal_graph::Graph;
    /// let g = Graph::empty(5);
    /// assert_eq!(g.node_count(), 5);
    /// assert_eq!(g.edge_count(), 0);
    /// ```
    pub fn empty(n: usize) -> Self {
        Graph { offsets: vec![0; n + 1], targets: Vec::new() }
    }

    /// Builds a graph on `n` vertices from an edge list.
    ///
    /// Duplicate edges (in either orientation) are silently merged.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if an endpoint is `≥ n` and
    /// [`GraphError::SelfLoop`] for an edge `{v, v}`.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let mut builder = GraphBuilder::new(n);
        for (u, v) in edges {
            builder.try_add_edge_indices(u, v)?;
        }
        Ok(builder.build())
    }

    /// Number of vertices.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    /// Returns `true` when the graph has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.node_count() == 0
    }

    /// Iterator over all vertex identifiers.
    pub fn nodes(&self) -> crate::ids::NodeIds {
        crate::ids::node_ids(self.node_count())
    }

    /// The sorted neighbor list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let i = v.index();
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let i = v.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Maximum degree Δ of the graph (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Average degree `2m / n` (0.0 for the empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.node_count() == 0 {
            0.0
        } else {
            2.0 * self.edge_count() as f64 / self.node_count() as f64
        }
    }

    /// Tests adjacency in `O(log deg(u))`.
    ///
    /// Returns `false` for `u == v` (simple graphs have no loops).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        // Search from the smaller adjacency list.
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterator over the canonical edge list; each edge appears once as
    /// `(u, v)` with `u < v`, in lexicographic order.
    ///
    /// The list is not stored: because every neighbor row is sorted, the
    /// `v > u` partners of `u` form a contiguous row suffix, and the
    /// iterator streams those suffixes in row order — which *is*
    /// lexicographic order. One `partition_point` per row, `O(1)` per
    /// edge thereafter.
    pub fn edges(&self) -> Edges<'_> {
        Edges { graph: self, node: 0, idx: 0, row_end: 0, remaining: self.edge_count() }
    }

    /// The canonical endpoints of edge `e`.
    ///
    /// Edge identifiers index the lexicographically sorted canonical edge
    /// list, i.e. `edge_endpoints(EdgeId::new(i))` is the `i`-th element
    /// of [`edges`](Self::edges). Linear in the position (the list is
    /// streamed, not stored); intended for diagnostics and tests.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    pub fn edge_endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        // pslocal: allow(panic-path, "documented panic: EdgeIds are only minted by this graph, so an out-of-range id is caller misuse")
        self.edges().nth(e.index()).expect("edge id out of range")
    }

    /// The induced subgraph on `keep`, together with the mapping from new
    /// vertex ids to original ids.
    ///
    /// Vertices are renumbered `0..keep.len()` in the order given;
    /// duplicate entries in `keep` are rejected.
    ///
    /// # Panics
    ///
    /// Panics if `keep` contains an out-of-range or duplicate vertex.
    pub fn induced_subgraph(&self, keep: &[NodeId]) -> (Graph, Vec<NodeId>) {
        // Strictly increasing keep sets (the common case: reduction
        // residuals, conflict-graph restrictions) take the sort-free
        // CSR path.
        if keep.windows(2).all(|w| w[0] < w[1]) {
            return (crate::csr::induced_sorted(self, keep), keep.to_vec());
        }
        let n = self.node_count();
        let mut position = vec![u32::MAX; n];
        for (new, &old) in keep.iter().enumerate() {
            assert!(old.index() < n, "vertex {old} out of range");
            assert!(position[old.index()] == u32::MAX, "duplicate vertex {old} in keep set");
            position[old.index()] = new as u32;
        }
        let mut builder = GraphBuilder::new(keep.len());
        for (new_u, &old_u) in keep.iter().enumerate() {
            for &old_v in self.neighbors(old_u) {
                let new_v = position[old_v.index()];
                if new_v != u32::MAX && (new_u as u32) < new_v {
                    builder.add_edge(NodeId::new(new_u), NodeId::from(new_v));
                }
            }
        }
        (builder.build(), keep.to_vec())
    }

    /// The complement graph (edges exactly where `self` has none).
    ///
    /// Quadratic in `n`; intended for the small instances used by exact
    /// solvers and tests.
    pub fn complement(&self) -> Graph {
        let n = self.node_count();
        let mut builder = GraphBuilder::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                let (u, v) = (NodeId::new(u), NodeId::new(v));
                if !self.has_edge(u, v) {
                    builder.add_edge(u, v);
                }
            }
        }
        builder.build()
    }

    /// Checks whether `set` is an independent set (pairwise non-adjacent).
    ///
    /// Runs in `O(Σ_{v ∈ set} deg(v))`.
    ///
    /// # Panics
    ///
    /// Panics if `set` contains an out-of-range vertex.
    pub fn is_independent_set(&self, set: &[NodeId]) -> bool {
        let mut member = vec![false; self.node_count()];
        for &v in set {
            if member[v.index()] {
                continue;
            }
            member[v.index()] = true;
        }
        for &v in set {
            if self.neighbors(v).iter().any(|&u| u != v && member[u.index()]) {
                return false;
            }
        }
        true
    }

    /// Checks whether `set` is a *maximal* independent set: independent,
    /// and every vertex outside has a neighbor inside.
    pub fn is_maximal_independent_set(&self, set: &[NodeId]) -> bool {
        if !self.is_independent_set(set) {
            return false;
        }
        let mut member = vec![false; self.node_count()];
        for &v in set {
            member[v.index()] = true;
        }
        self.nodes()
            .all(|v| member[v.index()] || self.neighbors(v).iter().any(|&u| member[u.index()]))
    }

    /// Validates a proper vertex coloring: every edge bichromatic.
    ///
    /// `colors[v]` is the color of vertex `v`; the slice must have length
    /// `n`.
    ///
    /// # Panics
    ///
    /// Panics if `colors.len() != n`.
    pub fn is_proper_coloring(&self, colors: &[crate::Color]) -> bool {
        assert_eq!(colors.len(), self.node_count(), "color slice length mismatch");
        self.edges().all(|(u, v)| colors[u.index()] != colors[v.index()])
    }

    /// Sum of all vertex degrees (`2m`); exposed because several
    /// complexity accountings in the paper charge per degree.
    pub fn degree_sum(&self) -> usize {
        self.targets.len()
    }

    /// Assembles a graph from finished CSR parts. The `csr` module is
    /// the only producer; it guarantees the invariants (offsets
    /// monotone, rows sorted and loop-free, every edge present in both
    /// orientations), which debug builds re-check.
    pub(crate) fn from_csr_parts(offsets: Vec<u32>, targets: Vec<NodeId>) -> Self {
        debug_assert!(!offsets.is_empty());
        // pslocal: allow(panic-path, "debug_assert-only path: the preceding line has already asserted offsets is non-empty")
        debug_assert_eq!(*offsets.last().unwrap() as usize, targets.len());
        debug_assert_eq!(targets.len() % 2, 0);
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        let graph = Graph { offsets, targets };
        debug_assert!(graph.nodes().all(|v| graph.neighbors(v).windows(2).all(|w| w[0] < w[1])));
        debug_assert!(graph.nodes().all(|v| !graph.neighbors(v).contains(&v)));
        graph
    }

    /// Disassembles the graph into its CSR parts so the buffers can be
    /// recycled (see `csr::InducedArena`).
    pub(crate) fn into_csr_parts(self) -> (Vec<u32>, Vec<NodeId>) {
        (self.offsets, self.targets)
    }
}

/// Streaming iterator over a graph's canonical edge list; see
/// [`Graph::edges`].
pub struct Edges<'a> {
    graph: &'a Graph,
    /// Current row (vertex `u`); `node_count` once exhausted.
    node: usize,
    /// Cursor into `targets`, positioned inside the current row's
    /// `v > u` suffix.
    idx: usize,
    /// End of the current row in `targets`.
    row_end: usize,
    remaining: usize,
}

impl Iterator for Edges<'_> {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<(NodeId, NodeId)> {
        if self.remaining == 0 {
            return None;
        }
        while self.idx >= self.row_end {
            let row = self.graph.neighbors(NodeId::new(self.node));
            let start = self.graph.offsets[self.node] as usize;
            self.idx = start + row.partition_point(|&b| b.index() <= self.node);
            self.row_end = self.graph.offsets[self.node + 1] as usize;
            self.node += 1;
        }
        let u = NodeId::new(self.node - 1);
        let v = self.graph.targets[self.idx];
        self.idx += 1;
        self.remaining -= 1;
        Some((u, v))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for Edges<'_> {}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.node_count())
            .field("edges", &self.edge_count())
            .field("max_degree", &self.max_degree())
            .finish()
    }
}

/// Incremental builder for [`Graph`].
///
/// Collects edges (duplicates in any orientation allowed; merged on
/// [`build`](Self::build)) and produces the immutable CSR graph.
///
/// # Examples
///
/// ```
/// use pslocal_graph::{GraphBuilder, NodeId};
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(NodeId::new(0), NodeId::new(1));
/// b.add_edge(NodeId::new(1), NodeId::new(0)); // duplicate, merged
/// let g = b.build();
/// assert_eq!(g.edge_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    pairs: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        GraphBuilder { n, pairs: Vec::new() }
    }

    /// Creates a builder with capacity for `m` edges.
    pub fn with_edge_capacity(n: usize, m: usize) -> Self {
        GraphBuilder { n, pairs: Vec::with_capacity(m) }
    }

    /// Number of vertices the built graph will have.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `u == v`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        // pslocal: allow(panic-path, "documented panicking convenience over try_add_edge for builder-style literals; fallible form is public")
        self.try_add_edge(u, v).expect("invalid edge");
        self
    }

    /// Adds the undirected edge `{u, v}`, reporting failures.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] or [`GraphError::SelfLoop`].
    pub fn try_add_edge(&mut self, u: NodeId, v: NodeId) -> Result<&mut Self, GraphError> {
        if u.index() >= self.n {
            return Err(GraphError::NodeOutOfRange { node: u, node_count: self.n });
        }
        if v.index() >= self.n {
            return Err(GraphError::NodeOutOfRange { node: v, node_count: self.n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        let pair = if u < v { (u, v) } else { (v, u) };
        self.pairs.push(pair);
        Ok(self)
    }

    /// Adds an edge given raw indices; used by deserializers and
    /// generators.
    ///
    /// # Errors
    ///
    /// Same as [`try_add_edge`](Self::try_add_edge).
    pub fn try_add_edge_indices(&mut self, u: usize, v: usize) -> Result<&mut Self, GraphError> {
        // Range-check before constructing NodeIds so that huge indices
        // report NodeOutOfRange rather than panicking in NodeId::new.
        if u >= self.n {
            return Err(GraphError::NodeOutOfRange {
                node: NodeId::new(u.min(u32::MAX as usize)),
                node_count: self.n,
            });
        }
        if v >= self.n {
            return Err(GraphError::NodeOutOfRange {
                node: NodeId::new(v.min(u32::MAX as usize)),
                node_count: self.n,
            });
        }
        self.try_add_edge(NodeId::new(u), NodeId::new(v))
    }

    /// Finalizes the builder into an immutable [`Graph`].
    ///
    /// Duplicate edges are merged; neighbor lists come out sorted.
    /// Assembly is the counting-sort CSR path of [`crate::csr`]
    /// (`O(pairs + n)`, no comparison sorts).
    pub fn build(self) -> Graph {
        crate::csr::from_pairs(self.n, self.pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, (0..n.saturating_sub(1)).map(|i| (i, i + 1))).unwrap()
    }

    #[test]
    fn empty_graph_has_no_edges() {
        let g = Graph::empty(7);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.average_degree(), 0.0);
        for v in g.nodes() {
            assert!(g.neighbors(v).is_empty());
        }
    }

    #[test]
    fn zero_node_graph_is_fine() {
        let g = Graph::empty(0);
        assert!(g.is_empty());
        assert_eq!(g.nodes().count(), 0);
    }

    #[test]
    fn from_edges_builds_expected_adjacency() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert_eq!(g.neighbors(NodeId::new(0)), &[NodeId::new(1), NodeId::new(3)]);
        assert_eq!(g.neighbors(NodeId::new(2)), &[NodeId::new(1), NodeId::new(3)]);
        assert_eq!(g.degree(NodeId::new(1)), 2);
        assert_eq!(g.degree_sum(), 8);
    }

    #[test]
    fn duplicate_edges_merge() {
        let g = Graph::from_edges(3, [(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(NodeId::new(0)), 1);
    }

    #[test]
    fn self_loop_is_rejected() {
        let err = Graph::from_edges(3, [(1, 1)]).unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { node: NodeId::new(1) });
    }

    #[test]
    fn out_of_range_is_rejected() {
        let err = Graph::from_edges(3, [(0, 5)]).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfRange { .. }));
    }

    #[test]
    fn has_edge_agrees_with_edge_list() {
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (1, 3), (2, 4), (3, 4)]).unwrap();
        for u in g.nodes() {
            for v in g.nodes() {
                let listed = g.edges().any(|(a, b)| (a, b) == (u.min(v), u.max(v)));
                assert_eq!(g.has_edge(u, v), listed && u != v, "mismatch at ({u}, {v})");
            }
        }
    }

    #[test]
    fn edges_are_canonical_and_sorted() {
        let g = Graph::from_edges(4, [(3, 2), (1, 0), (2, 0)]).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(
            edges,
            vec![
                (NodeId::new(0), NodeId::new(1)),
                (NodeId::new(0), NodeId::new(2)),
                (NodeId::new(2), NodeId::new(3)),
            ]
        );
        assert_eq!(g.edge_endpoints(EdgeId::new(1)), (NodeId::new(0), NodeId::new(2)));
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let keep = [NodeId::new(0), NodeId::new(1), NodeId::new(3)];
        let (sub, map) = g.induced_subgraph(&keep);
        assert_eq!(sub.node_count(), 3);
        // Only {0,1} survives; {1,2},{2,3},{3,4},{4,0} all touch removed
        // vertices except none between 0/1/3 other than (0,1).
        assert_eq!(sub.edge_count(), 1);
        assert!(sub.has_edge(NodeId::new(0), NodeId::new(1)));
        assert_eq!(map, keep.to_vec());
    }

    #[test]
    #[should_panic(expected = "duplicate vertex")]
    fn induced_subgraph_rejects_duplicates() {
        let g = path(3);
        let _ = g.induced_subgraph(&[NodeId::new(0), NodeId::new(0)]);
    }

    #[test]
    fn complement_of_path3_is_single_edge() {
        let g = path(3); // 0-1-2
        let c = g.complement();
        assert_eq!(c.edge_count(), 1);
        assert!(c.has_edge(NodeId::new(0), NodeId::new(2)));
    }

    #[test]
    fn complement_is_involutive() {
        let g = Graph::from_edges(6, [(0, 1), (2, 3), (4, 5), (1, 4)]).unwrap();
        assert_eq!(g.complement().complement(), g);
    }

    #[test]
    fn independence_checks() {
        let g = path(4); // 0-1-2-3
        assert!(g.is_independent_set(&[NodeId::new(0), NodeId::new(2)]));
        assert!(g.is_independent_set(&[]));
        assert!(!g.is_independent_set(&[NodeId::new(0), NodeId::new(1)]));
        // duplicates in the set are tolerated
        assert!(g.is_independent_set(&[NodeId::new(0), NodeId::new(0)]));
        assert!(g.is_maximal_independent_set(&[NodeId::new(0), NodeId::new(2)]));
        assert!(!g.is_maximal_independent_set(&[NodeId::new(1)])); // 3 uncovered
        assert!(g.is_maximal_independent_set(&[NodeId::new(1), NodeId::new(3)]));
    }

    #[test]
    fn proper_coloring_check() {
        use crate::Color;
        let g = path(3);
        let good = vec![Color::new(0), Color::new(1), Color::new(0)];
        let bad = vec![Color::new(0), Color::new(0), Color::new(1)];
        assert!(g.is_proper_coloring(&good));
        assert!(!g.is_proper_coloring(&bad));
    }

    #[test]
    fn average_degree_of_cycle_is_two() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn debug_output_is_compact() {
        let g = path(3);
        let s = format!("{g:?}");
        assert!(s.contains("nodes: 3") && s.contains("edges: 2"));
    }
}
