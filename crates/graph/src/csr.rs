//! Counting-sort CSR assembly — the fast backing store of [`Graph`].
//!
//! [`GraphBuilder`](crate::GraphBuilder) historically comparison-sorted
//! its pair list (`O(m log m)`) and then re-sorted every neighbor run.
//! Both sorts are unnecessary: a two-pass LSD counting sort (radix by
//! minor then major endpoint, each pass `O(m + n)`) produces the
//! lexicographically sorted canonical edge list, and scattering that
//! sorted list into rows yields *already sorted* neighbor runs — for a
//! node `w`, smaller neighbors arrive while the scan's primary key is
//! still `< w` (in increasing order, since the primary key increases)
//! and larger neighbors arrive while the primary key equals `w` (in
//! increasing order of the minor key), so each run is the concatenation
//! of two increasing, correctly ordered halves.
//!
//! The module exposes three entry points, all `O(edges + n)`:
//!
//! * [`from_pairs`] / [`from_pair_shards`] — duplicate-tolerant
//!   assembly from unordered endpoint pairs, the merge point of the
//!   parallel conflict-graph kernel's per-shard edge buffers;
//! * [`from_sorted_unique_edges`] — zero-copy finalization when the
//!   caller already holds the canonical sorted edge list;
//! * [`induced_sorted`] — induced subgraphs on a *sorted* keep set
//!   without re-sorting anything (the vertex renumbering is monotone,
//!   so filtered rows stay sorted). This is the engine of the
//!   phase-incremental conflict-graph pipeline in `pslocal-core`.

use crate::{Graph, NodeId};

/// Builds a graph from undirected endpoint pairs via counting sort.
///
/// Pairs may appear in either orientation and duplicated; they are
/// canonicalized, radix-sorted, and deduplicated in `O(pairs + n)`.
///
/// # Panics
///
/// Panics if a pair is a self loop or references a node `≥ n` (callers
/// validate; this is the trusted fast path).
///
/// # Examples
///
/// ```
/// use pslocal_graph::{csr, NodeId};
///
/// let pairs = vec![
///     (NodeId::new(2), NodeId::new(0)),
///     (NodeId::new(0), NodeId::new(1)),
///     (NodeId::new(1), NodeId::new(0)), // duplicate, merged
/// ];
/// let g = csr::from_pairs(3, pairs);
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(g.neighbors(NodeId::new(0)), &[NodeId::new(1), NodeId::new(2)]);
/// ```
pub fn from_pairs(n: usize, pairs: Vec<(NodeId, NodeId)>) -> Graph {
    from_pair_shards(n, vec![pairs])
}

/// Builds a graph by merging per-shard pair buffers (the output of a
/// parallel edge enumeration) via counting sort, without concatenating
/// the shards first.
///
/// Semantics are identical to [`from_pairs`] on the concatenation of
/// `shards`.
///
/// # Panics
///
/// Panics if a pair is a self loop or references a node `≥ n`.
pub fn from_pair_shards(n: usize, shards: Vec<Vec<(NodeId, NodeId)>>) -> Graph {
    let total: usize = shards.iter().map(Vec::len).sum();
    // Pass 1: stable counting sort by the minor (larger) endpoint.
    let mut count = vec![0u32; n + 1];
    for shard in &shards {
        for &(u, v) in shard {
            assert!(u != v, "self loop {u} in CSR pair buffer");
            assert!(u.index() < n && v.index() < n, "pair ({u}, {v}) out of range 0..{n}");
            let hi = if u < v { v } else { u };
            count[hi.index()] += 1;
        }
    }
    let mut start = 0u32;
    for c in count.iter_mut() {
        let here = *c;
        *c = start;
        start += here;
    }
    let mut by_minor = vec![(NodeId::new(0), NodeId::new(0)); total];
    for shard in &shards {
        for &(u, v) in shard {
            let pair = if u < v { (u, v) } else { (v, u) };
            let slot = &mut count[pair.1.index()];
            by_minor[*slot as usize] = pair;
            *slot += 1;
        }
    }
    drop(shards);
    // Pass 2: stable counting sort by the major (smaller) endpoint;
    // stability preserves the minor order within each major run, so the
    // result is lexicographically sorted.
    let mut count = vec![0u32; n + 1];
    for &(u, _) in &by_minor {
        count[u.index()] += 1;
    }
    let mut start = 0u32;
    for c in count.iter_mut() {
        let here = *c;
        *c = start;
        start += here;
    }
    let mut edges = vec![(NodeId::new(0), NodeId::new(0)); total];
    for &pair in &by_minor {
        let slot = &mut count[pair.0.index()];
        edges[*slot as usize] = pair;
        *slot += 1;
    }
    drop(by_minor);
    edges.dedup();
    from_sorted_unique_edges(n, edges)
}

/// Finalizes a graph from its canonical edge list: each edge once as
/// `(u, v)` with `u < v`, lexicographically sorted, no duplicates.
///
/// Runs a single scatter pass; neighbor runs come out sorted by the
/// argument in the module docs, so no per-row sort happens.
///
/// # Panics
///
/// Debug builds assert canonical order and uniqueness; release builds
/// trust the caller (the pair-based entry points above establish the
/// invariant themselves).
pub fn from_sorted_unique_edges(n: usize, edges: Vec<(NodeId, NodeId)>) -> Graph {
    debug_assert!(
        edges.windows(2).all(|w| w[0] < w[1]),
        "edge list must be strictly lexicographically sorted"
    );
    debug_assert!(edges.iter().all(|&(u, v)| u < v && v.index() < n), "edges must be canonical");
    let mut degree = vec![0u32; n];
    for &(u, v) in &edges {
        degree[u.index()] += 1;
        degree[v.index()] += 1;
    }
    let mut offsets = vec![0u32; n + 1];
    for i in 0..n {
        offsets[i + 1] = offsets[i] + degree[i];
    }
    let mut cursor: Vec<u32> = offsets[..n].to_vec();
    let mut targets = vec![NodeId::new(0); 2 * edges.len()];
    for &(u, v) in &edges {
        targets[cursor[u.index()] as usize] = v;
        cursor[u.index()] += 1;
        targets[cursor[v.index()] as usize] = u;
        cursor[v.index()] += 1;
    }
    Graph::from_csr_parts(offsets, targets)
}

/// Assembles a graph from caller-built CSR arrays: `offsets` of length
/// `n + 1` and `targets` holding each row's sorted neighbor list (each
/// edge present in both orientations). This is the zero-copy
/// finalization for producers that emit rows directly in sorted order —
/// the conflict-graph kernel streams its rows block by block and never
/// materializes a pair list at all.
///
/// # Panics
///
/// Debug builds assert all CSR invariants; release builds trust the
/// caller.
pub fn from_raw_parts(offsets: Vec<u32>, targets: Vec<NodeId>) -> Graph {
    Graph::from_csr_parts(offsets, targets)
}

/// The induced subgraph of `graph` on a **strictly increasing** keep
/// set, renumbered `0..keep.len()` in order.
///
/// Because the renumbering is monotone, every filtered neighbor run is
/// already sorted and the canonical edge list falls out of a row scan
/// in lexicographic order — the whole construction is one pass over the
/// kept rows, `O(Σ_{v ∈ keep} deg(v) + n)`, with no sorting.
///
/// # Panics
///
/// Panics if `keep` is not strictly increasing or contains an
/// out-of-range vertex.
pub fn induced_sorted(graph: &Graph, keep: &[NodeId]) -> Graph {
    induced_sorted_in(graph, keep, &mut InducedArena::new())
}

/// Reusable buffers for [`induced_sorted_in`]: the vertex-renumbering
/// scratch plus a recycled pair of CSR output buffers, so a loop that
/// repeatedly restricts graphs (the per-phase reduction pipeline) does
/// no steady-state allocation — each finished graph's buffers are
/// [`recycle`](InducedArena::recycle)d and reused for the next build.
#[derive(Debug, Default, Clone)]
pub struct InducedArena {
    position: Vec<u32>,
    offsets_pool: Vec<u32>,
    targets_pool: Vec<NodeId>,
}

impl InducedArena {
    /// A fresh, empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a no-longer-needed graph's CSR buffers to the pool; the
    /// next [`induced_sorted_in`] through this arena builds into them.
    pub fn recycle(&mut self, graph: Graph) {
        let (offsets, targets) = graph.into_csr_parts();
        self.offsets_pool = offsets;
        self.targets_pool = targets;
    }
}

/// [`induced_sorted`] through caller-owned buffers — identical output,
/// zero allocation once the arena's pools are warm.
///
/// # Panics
///
/// Panics if `keep` is not strictly increasing or contains an
/// out-of-range vertex.
pub fn induced_sorted_in(graph: &Graph, keep: &[NodeId], arena: &mut InducedArena) -> Graph {
    assert!(keep.windows(2).all(|w| w[0] < w[1]), "keep set must be strictly increasing");
    let n = graph.node_count();
    let position = &mut arena.position;
    position.clear();
    position.resize(n, u32::MAX);
    for (new, &old) in keep.iter().enumerate() {
        assert!(old.index() < n, "vertex {old} out of range");
        position[old.index()] = new as u32;
    }
    let mut offsets = std::mem::take(&mut arena.offsets_pool);
    offsets.clear();
    offsets.resize(keep.len() + 1, 0);
    for (new, &old) in keep.iter().enumerate() {
        let kept = graph.neighbors(old).iter().filter(|u| position[u.index()] != u32::MAX).count();
        offsets[new + 1] = offsets[new] + kept as u32;
    }
    let mut targets = std::mem::take(&mut arena.targets_pool);
    targets.clear();
    targets.resize(offsets[keep.len()] as usize, NodeId::new(0));
    let mut write = 0usize;
    for &old in keep {
        for &u in graph.neighbors(old) {
            let mapped = position[u.index()];
            if mapped != u32::MAX {
                targets[write] = NodeId::from(mapped);
                write += 1;
            }
        }
    }
    Graph::from_csr_parts(offsets, targets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::random::gnp;
    use crate::GraphBuilder;
    use rand::SeedableRng;

    fn reference(n: usize, pairs: &[(NodeId, NodeId)]) -> Graph {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in pairs {
            b.add_edge(u, v);
        }
        b.build()
    }

    #[test]
    fn from_pairs_matches_builder_on_random_input() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for trial in 0..20 {
            let g = gnp(&mut rng, 30 + trial, 0.15);
            let mut pairs: Vec<(NodeId, NodeId)> = g.edges().collect();
            // Duplicate and flip a few pairs to exercise canonicalization.
            let extra: Vec<_> = pairs.iter().step_by(3).map(|&(u, v)| (v, u)).collect();
            pairs.extend(extra);
            assert_eq!(from_pairs(g.node_count(), pairs.clone()), g);
            assert_eq!(
                from_pairs(g.node_count(), pairs.clone()),
                reference(g.node_count(), &pairs)
            );
        }
    }

    #[test]
    fn shards_concatenate() {
        let a = vec![(NodeId::new(0), NodeId::new(1)), (NodeId::new(2), NodeId::new(1))];
        let b = vec![(NodeId::new(3), NodeId::new(0)), (NodeId::new(1), NodeId::new(0))];
        let merged = from_pair_shards(4, vec![a.clone(), b.clone()]);
        let mut all = a;
        all.extend(b);
        assert_eq!(merged, from_pairs(4, all));
        assert_eq!(merged.edge_count(), 3);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(from_pairs(5, Vec::new()), Graph::empty(5));
        assert_eq!(from_pair_shards(0, Vec::new()), Graph::empty(0));
        assert_eq!(from_sorted_unique_edges(3, Vec::new()), Graph::empty(3));
    }

    #[test]
    #[should_panic(expected = "self loop")]
    fn self_loop_panics() {
        let _ = from_pairs(3, vec![(NodeId::new(1), NodeId::new(1))]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let _ = from_pairs(3, vec![(NodeId::new(0), NodeId::new(7))]);
    }

    #[test]
    fn induced_sorted_matches_general_induced() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        for trial in 0..10 {
            let g = gnp(&mut rng, 40, 0.2);
            let keep: Vec<NodeId> = g.nodes().step_by(2 + trial % 3).collect();
            let (general, _) = g.induced_subgraph(&keep);
            assert_eq!(induced_sorted(&g, &keep), general);
        }
    }

    #[test]
    fn induced_sorted_keeps_rows_sorted() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let g = gnp(&mut rng, 50, 0.3);
        let keep: Vec<NodeId> = g.nodes().filter(|v| v.index() % 3 != 1).collect();
        let sub = induced_sorted(&g, &keep);
        for v in sub.nodes() {
            assert!(sub.neighbors(v).windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn induced_sorted_rejects_unsorted_keep() {
        let g = Graph::empty(4);
        let _ = induced_sorted(&g, &[NodeId::new(2), NodeId::new(1)]);
    }
}
