//! Strongly-typed identifiers for graph entities.
//!
//! All identifiers are thin newtypes over `u32` (graphs in this workspace
//! comfortably fit in 32-bit index space; the conflict graphs built by
//! `pslocal-core` have `Σ|e|·k` vertices which stays far below `u32::MAX`
//! for every experiment in the suite). The newtypes exist to prevent the
//! classic index-confusion bugs: a [`NodeId`] of a hypergraph cannot be
//! used where a [`HyperedgeId`] is expected, and a conflict-graph vertex
//! index cannot silently be mistaken for a base-graph vertex index.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a vertex in a [`Graph`](crate::Graph) or
/// [`Hypergraph`](crate::Hypergraph).
///
/// # Examples
///
/// ```
/// use pslocal_graph::NodeId;
/// let v = NodeId::new(3);
/// assert_eq!(v.index(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

/// Identifier of an (undirected) edge in a [`Graph`](crate::Graph).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(u32);

/// Identifier of a hyperedge in a [`Hypergraph`](crate::Hypergraph).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HyperedgeId(u32);

/// A color drawn from some palette.
///
/// The paper's conflict-free colorings use palettes `{1, …, k}`; phases of
/// the Theorem 1.1 reduction use *disjoint* palettes, which this crate
/// models by offsetting color values (see
/// [`Palette`](crate::palette::Palette)). A `Color` is just an opaque
/// value; equality is what matters.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Color(u32);

macro_rules! id_impl {
    ($ty:ident, $pretty:literal) => {
        impl $ty {
            /// Creates an identifier with the given index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn new(index: usize) -> Self {
                assert!(
                    index <= u32::MAX as usize,
                    concat!($pretty, " index {} exceeds u32 range"),
                    index
                );
                Self(index as u32)
            }

            /// Returns the identifier as a `usize` suitable for indexing.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw `u32` value.
            #[inline]
            pub fn raw(self) -> u32 {
                self.0
            }
        }

        impl From<u32> for $ty {
            #[inline]
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<$ty> for u32 {
            #[inline]
            fn from(id: $ty) -> u32 {
                id.0
            }
        }

        impl fmt::Debug for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($pretty, "({})"), self.0)
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

id_impl!(NodeId, "NodeId");
id_impl!(EdgeId, "EdgeId");
id_impl!(HyperedgeId, "HyperedgeId");
id_impl!(Color, "Color");

/// Iterator over the node identifiers `0..n`.
///
/// Produced by [`node_ids`].
#[derive(Debug, Clone)]
pub struct NodeIds {
    range: std::ops::Range<u32>,
}

impl Iterator for NodeIds {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        self.range.next().map(NodeId)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.range.size_hint()
    }
}

impl ExactSizeIterator for NodeIds {}
impl DoubleEndedIterator for NodeIds {
    #[inline]
    fn next_back(&mut self) -> Option<NodeId> {
        self.range.next_back().map(NodeId)
    }
}

/// Returns an iterator over the `n` node identifiers `0, 1, …, n - 1`.
///
/// # Examples
///
/// ```
/// use pslocal_graph::ids::node_ids;
/// let ids: Vec<_> = node_ids(3).map(|v| v.index()).collect();
/// assert_eq!(ids, vec![0, 1, 2]);
/// ```
pub fn node_ids(n: usize) -> NodeIds {
    assert!(n <= u32::MAX as usize, "node count {n} exceeds u32 range");
    NodeIds { range: 0..n as u32 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips_through_index() {
        let v = NodeId::new(42);
        assert_eq!(v.index(), 42);
        assert_eq!(v.raw(), 42);
        assert_eq!(NodeId::from(42u32), v);
        assert_eq!(u32::from(v), 42);
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(HyperedgeId::new(0) < HyperedgeId::new(7));
        assert!(Color::new(3) > Color::new(1));
    }

    #[test]
    fn display_is_bare_number_and_debug_is_tagged() {
        assert_eq!(NodeId::new(5).to_string(), "5");
        assert_eq!(format!("{:?}", NodeId::new(5)), "NodeId(5)");
        assert_eq!(format!("{:?}", Color::new(2)), "Color(2)");
    }

    #[test]
    fn node_ids_iterator_yields_exact_range() {
        let ids: Vec<_> = node_ids(4).collect();
        assert_eq!(ids, vec![NodeId::new(0), NodeId::new(1), NodeId::new(2), NodeId::new(3)]);
        assert_eq!(node_ids(4).len(), 4);
        let rev: Vec<_> = node_ids(3).rev().map(|v| v.index()).collect();
        assert_eq!(rev, vec![2, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "exceeds u32 range")]
    fn oversized_id_panics() {
        let _ = NodeId::new(usize::MAX);
    }

    #[test]
    fn distinct_id_types_do_not_compare() {
        // This is a compile-time property; the test documents intent by
        // exercising each type independently.
        let n = NodeId::new(1);
        let e = HyperedgeId::new(1);
        assert_eq!(n.index(), e.index());
    }
}
