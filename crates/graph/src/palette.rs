//! Color palettes.
//!
//! The Theorem 1.1 reduction runs `ρ` phases and insists that each phase
//! colors with a *distinct* palette of size `k` ("using a distinct
//! palette of size k for each phase"). [`Palette`] models a contiguous
//! block of `k` colors starting at some offset, so phase `i` simply uses
//! `Palette::phase(k, i)` and disjointness is guaranteed by
//! construction.

use crate::Color;
use serde::{Deserialize, Serialize};

/// A contiguous palette of `size` colors `{offset, …, offset + size - 1}`.
///
/// # Examples
///
/// ```
/// use pslocal_graph::palette::Palette;
///
/// let p0 = Palette::phase(3, 0);
/// let p1 = Palette::phase(3, 1);
/// assert!(p0.is_disjoint(&p1));
/// assert_eq!(p0.colors().count(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Palette {
    offset: u32,
    size: u32,
}

impl Palette {
    /// The palette `{0, …, size - 1}`.
    pub fn base(size: usize) -> Self {
        Palette::with_offset(size, 0)
    }

    /// A palette of `size` colors starting at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset + size` overflows `u32`.
    pub fn with_offset(size: usize, offset: usize) -> Self {
        // pslocal: allow(panic-path, "documented panic: a palette beyond u32 colors cannot be represented, and no caller constructs one")
        let size = u32::try_from(size).expect("palette size exceeds u32");
        // pslocal: allow(panic-path, "documented panic: a palette beyond u32 colors cannot be represented, and no caller constructs one")
        let offset = u32::try_from(offset).expect("palette offset exceeds u32");
        assert!(offset.checked_add(size).is_some(), "palette range overflows u32");
        Palette { offset, size }
    }

    /// The `phase`-th disjoint palette of size `k`: colors
    /// `{phase·k, …, phase·k + k - 1}`. This is how the reduction gets
    /// its fresh palette per phase.
    pub fn phase(k: usize, phase: usize) -> Self {
        // pslocal: allow(panic-path, "checked_mul makes the overflow loud instead of wrapping into a colliding palette; phases are bounded by log n in practice")
        Palette::with_offset(k, k.checked_mul(phase).expect("palette offset overflows"))
    }

    /// Number of colors in the palette.
    #[inline]
    pub fn size(&self) -> usize {
        self.size as usize
    }

    /// The smallest color value of the palette.
    #[inline]
    pub fn offset(&self) -> usize {
        self.offset as usize
    }

    /// The `i`-th color of the palette (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `i >= size`.
    #[inline]
    pub fn color(&self, i: usize) -> Color {
        assert!(i < self.size as usize, "color index {i} out of palette of size {}", self.size);
        Color::new(self.offset as usize + i)
    }

    /// Whether `c` belongs to this palette.
    #[inline]
    pub fn contains(&self, c: Color) -> bool {
        let v = c.raw();
        v >= self.offset && v < self.offset + self.size
    }

    /// The 0-based index of `c` within the palette, if it belongs.
    #[inline]
    pub fn index_of(&self, c: Color) -> Option<usize> {
        self.contains(c).then(|| (c.raw() - self.offset) as usize)
    }

    /// Iterator over the palette's colors in increasing order.
    pub fn colors(&self) -> impl ExactSizeIterator<Item = Color> + DoubleEndedIterator {
        (self.offset..self.offset + self.size).map(Color::from)
    }

    /// Whether two palettes share no color.
    pub fn is_disjoint(&self, other: &Palette) -> bool {
        self.offset + self.size <= other.offset || other.offset + other.size <= self.offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_palette_enumerates_colors() {
        let p = Palette::base(4);
        let cs: Vec<_> = p.colors().collect();
        assert_eq!(cs, vec![Color::new(0), Color::new(1), Color::new(2), Color::new(3)]);
        assert_eq!(p.color(2), Color::new(2));
        assert_eq!(p.size(), 4);
        assert_eq!(p.offset(), 0);
    }

    #[test]
    fn phase_palettes_are_pairwise_disjoint() {
        let k = 5;
        for i in 0..6 {
            for j in 0..6 {
                let (pi, pj) = (Palette::phase(k, i), Palette::phase(k, j));
                assert_eq!(pi.is_disjoint(&pj), i != j, "phases {i} vs {j}");
            }
        }
    }

    #[test]
    fn contains_and_index_of() {
        let p = Palette::phase(3, 2); // {6, 7, 8}
        assert!(p.contains(Color::new(6)));
        assert!(p.contains(Color::new(8)));
        assert!(!p.contains(Color::new(5)));
        assert!(!p.contains(Color::new(9)));
        assert_eq!(p.index_of(Color::new(7)), Some(1));
        assert_eq!(p.index_of(Color::new(9)), None);
    }

    #[test]
    fn empty_palette_contains_nothing() {
        let p = Palette::base(0);
        assert_eq!(p.colors().count(), 0);
        assert!(!p.contains(Color::new(0)));
        // Empty palettes are disjoint from everything, including themselves.
        assert!(p.is_disjoint(&p));
    }

    #[test]
    #[should_panic(expected = "out of palette")]
    fn color_out_of_range_panics() {
        let _ = Palette::base(2).color(2);
    }
}
