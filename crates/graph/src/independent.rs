//! Verified independent sets.
//!
//! Every MaxIS oracle in the workspace returns an [`IndependentSet`]
//! rather than a bare vertex list: the constructor verifies independence
//! against the host graph, so downstream code (in particular the
//! Theorem 1.1 reduction, whose correctness argument leans on Lemma 2.1
//! applying to *actual* independent sets) never has to re-check.

use crate::{Graph, NodeId};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Error returned when a claimed independent set is not independent (or
/// refers to vertices outside the graph).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotIndependentError {
    /// An offending adjacent pair, if independence failed; `None` when a
    /// vertex was out of range instead.
    pub conflicting_pair: Option<(NodeId, NodeId)>,
    /// An out-of-range vertex, if any.
    pub out_of_range: Option<NodeId>,
}

impl fmt::Display for NotIndependentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(v) = self.out_of_range {
            write!(f, "vertex {v} is outside the graph")
        } else if let Some((u, v)) = self.conflicting_pair {
            write!(f, "vertices {u} and {v} are adjacent")
        } else {
            write!(f, "set is not independent")
        }
    }
}

impl Error for NotIndependentError {}

/// An independent set of some [`Graph`], verified at construction.
///
/// The vertex list is sorted and duplicate free. The set remembers only
/// the vertices, not the graph; pair it with the graph it was built
/// from.
///
/// # Examples
///
/// ```
/// use pslocal_graph::{Graph, IndependentSet, NodeId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
/// let is = IndependentSet::new(&g, vec![NodeId::new(0), NodeId::new(2)])?;
/// assert_eq!(is.len(), 2);
/// assert!(is.contains(NodeId::new(0)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndependentSet {
    vertices: Vec<NodeId>,
}

impl IndependentSet {
    /// Verifies `vertices` against `graph` and wraps them.
    ///
    /// Duplicates are merged; the stored list is sorted.
    ///
    /// # Errors
    ///
    /// Returns [`NotIndependentError`] if two members are adjacent or a
    /// member is out of range.
    pub fn new(graph: &Graph, mut vertices: Vec<NodeId>) -> Result<Self, NotIndependentError> {
        vertices.sort_unstable();
        vertices.dedup();
        if let Some(&v) = vertices.iter().find(|v| v.index() >= graph.node_count()) {
            return Err(NotIndependentError { conflicting_pair: None, out_of_range: Some(v) });
        }
        let mut member = vec![false; graph.node_count()];
        for &v in &vertices {
            member[v.index()] = true;
        }
        for &v in &vertices {
            for &u in graph.neighbors(v) {
                if member[u.index()] {
                    return Err(NotIndependentError {
                        conflicting_pair: Some((v, u)),
                        out_of_range: None,
                    });
                }
            }
        }
        Ok(IndependentSet { vertices })
    }

    /// The empty independent set.
    pub fn empty() -> Self {
        IndependentSet { vertices: Vec::new() }
    }

    /// Wraps `vertices` **without** verifying independence or range.
    ///
    /// This is the escape hatch for fault injection: chaos testing must
    /// be able to hand downstream consumers a *claimed* independent set
    /// that is actually broken, so that their own re-validation (e.g.
    /// the resilient reduction driver's per-phase independence check)
    /// can be exercised. The list is still sorted and deduplicated so
    /// accessor invariants ([`contains`](Self::contains) binary search,
    /// ordered iteration) keep holding.
    ///
    /// Outside fault-injection code, use [`IndependentSet::new`].
    pub fn new_unchecked(mut vertices: Vec<NodeId>) -> Self {
        vertices.sort_unstable();
        vertices.dedup();
        IndependentSet { vertices }
    }

    /// Number of vertices in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Sorted member vertices.
    #[inline]
    pub fn vertices(&self) -> &[NodeId] {
        &self.vertices
    }

    /// Membership test in `O(log |I|)`.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        self.vertices.binary_search(&v).is_ok()
    }

    /// Iterator over the members in increasing order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        self.vertices.iter().copied()
    }

    /// Consumes the set, returning the sorted vertex list.
    pub fn into_vertices(self) -> Vec<NodeId> {
        self.vertices
    }

    /// Whether the set is maximal in `graph` (no vertex can be added).
    pub fn is_maximal(&self, graph: &Graph) -> bool {
        graph.is_maximal_independent_set(&self.vertices)
    }
}

impl<'a> IntoIterator for &'a IndependentSet {
    type Item = NodeId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, NodeId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.vertices.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn accepts_independent_vertices() {
        let g = path4();
        let is = IndependentSet::new(&g, vec![NodeId::new(3), NodeId::new(0)]).unwrap();
        assert_eq!(is.vertices(), &[NodeId::new(0), NodeId::new(3)]);
        assert!(is.contains(NodeId::new(3)));
        assert!(!is.contains(NodeId::new(1)));
    }

    #[test]
    fn rejects_adjacent_vertices() {
        let g = path4();
        let err = IndependentSet::new(&g, vec![NodeId::new(1), NodeId::new(2)]).unwrap_err();
        assert!(err.conflicting_pair.is_some());
        assert!(err.to_string().contains("adjacent"));
    }

    #[test]
    fn rejects_out_of_range() {
        let g = path4();
        let err = IndependentSet::new(&g, vec![NodeId::new(9)]).unwrap_err();
        assert_eq!(err.out_of_range, Some(NodeId::new(9)));
        assert!(err.to_string().contains("outside"));
    }

    #[test]
    fn duplicates_are_merged() {
        let g = path4();
        let is = IndependentSet::new(&g, vec![NodeId::new(0), NodeId::new(0)]).unwrap();
        assert_eq!(is.len(), 1);
    }

    #[test]
    fn empty_set_is_valid_but_not_maximal_on_nonempty_graph() {
        let g = path4();
        let is = IndependentSet::empty();
        assert!(is.is_empty());
        assert!(!is.is_maximal(&g));
        let maximal = IndependentSet::new(&g, vec![NodeId::new(0), NodeId::new(2)]).unwrap();
        assert!(maximal.is_maximal(&g));
    }

    #[test]
    fn new_unchecked_skips_validation_but_normalizes() {
        let g = path4();
        // An adjacent pair the checked constructor would reject.
        let bad =
            IndependentSet::new_unchecked(vec![NodeId::new(2), NodeId::new(1), NodeId::new(2)]);
        assert_eq!(bad.vertices(), &[NodeId::new(1), NodeId::new(2)]);
        assert!(!g.is_independent_set(bad.vertices()));
        assert!(bad.contains(NodeId::new(2)));
    }

    #[test]
    fn iteration_and_into_vertices() {
        let g = path4();
        let is = IndependentSet::new(&g, vec![NodeId::new(2), NodeId::new(0)]).unwrap();
        let via_iter: Vec<_> = is.iter().collect();
        let via_ref: Vec<_> = (&is).into_iter().collect();
        assert_eq!(via_iter, via_ref);
        assert_eq!(is.into_vertices(), vec![NodeId::new(0), NodeId::new(2)]);
    }
}
