//! Summary statistics of graphs and hypergraphs, used by the experiment
//! harnesses to annotate table rows.

use crate::{Graph, Hypergraph};
use serde::{Deserialize, Serialize};

/// Degree and size statistics of a [`Graph`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Vertex count `n`.
    pub nodes: usize,
    /// Edge count `m`.
    pub edges: usize,
    /// Minimum degree.
    pub min_degree: usize,
    /// Maximum degree Δ.
    pub max_degree: usize,
    /// Average degree `2m/n`.
    pub average_degree: f64,
    /// Number of connected components.
    pub components: usize,
}

impl GraphStats {
    /// Computes statistics for `graph` (one BFS sweep plus a degree
    /// scan).
    pub fn of(graph: &Graph) -> Self {
        let (_, components) = crate::algo::connected_components(graph);
        GraphStats {
            nodes: graph.node_count(),
            edges: graph.edge_count(),
            min_degree: graph.nodes().map(|v| graph.degree(v)).min().unwrap_or(0),
            max_degree: graph.max_degree(),
            average_degree: graph.average_degree(),
            components,
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} m={} deg=[{},{}] avg={:.2} comps={}",
            self.nodes,
            self.edges,
            self.min_degree,
            self.max_degree,
            self.average_degree,
            self.components
        )
    }
}

/// Size statistics of a [`Hypergraph`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HypergraphStats {
    /// Vertex count `n`.
    pub nodes: usize,
    /// Hyperedge count `m`.
    pub edges: usize,
    /// Smallest hyperedge size (0 when edgeless).
    pub min_edge_size: usize,
    /// Largest hyperedge size (0 when edgeless).
    pub max_edge_size: usize,
    /// Total incidence `Σ|e|`.
    pub incidence: usize,
    /// Maximum vertex degree (hyperedges per vertex).
    pub max_vertex_degree: usize,
}

impl HypergraphStats {
    /// Computes statistics for `h`.
    pub fn of(h: &Hypergraph) -> Self {
        HypergraphStats {
            nodes: h.node_count(),
            edges: h.edge_count(),
            min_edge_size: h.min_edge_size().unwrap_or(0),
            max_edge_size: h.max_edge_size().unwrap_or(0),
            incidence: h.incidence_size(),
            max_vertex_degree: h.nodes().map(|v| h.vertex_degree(v)).max().unwrap_or(0),
        }
    }
}

impl std::fmt::Display for HypergraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} m={} rank=[{},{}] inc={} maxdeg={}",
            self.nodes,
            self.edges,
            self.min_edge_size,
            self.max_edge_size,
            self.incidence,
            self.max_vertex_degree
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{classic, hyper::random_uniform_hypergraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn graph_stats_of_cycle() {
        let s = GraphStats::of(&classic::cycle(8));
        assert_eq!(s.nodes, 8);
        assert_eq!(s.edges, 8);
        assert_eq!(s.min_degree, 2);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.components, 1);
        assert!(s.to_string().contains("n=8"));
    }

    #[test]
    fn graph_stats_of_empty() {
        let s = GraphStats::of(&crate::Graph::empty(3));
        assert_eq!(s.components, 3);
        assert_eq!(s.min_degree, 0);
        assert_eq!(s.average_degree, 0.0);
    }

    #[test]
    fn hypergraph_stats() {
        let mut rng = StdRng::seed_from_u64(0);
        let h = random_uniform_hypergraph(&mut rng, 20, 10, 4);
        let s = HypergraphStats::of(&h);
        assert_eq!(s.nodes, 20);
        assert_eq!(s.edges, 10);
        assert_eq!(s.min_edge_size, 4);
        assert_eq!(s.max_edge_size, 4);
        assert_eq!(s.incidence, 40);
        assert!(s.max_vertex_degree >= 2); // pigeonhole: 40 slots over 20 vertices
        assert!(s.to_string().contains("rank=[4,4]"));
    }
}
