//! Error types for graph construction and validation.

use crate::{HyperedgeId, NodeId};
use std::error::Error;
use std::fmt;

/// Errors produced while building or validating graphs and hypergraphs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GraphError {
    /// An endpoint referred to a node outside `0..n`.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// The number of nodes in the graph.
        node_count: usize,
    },
    /// A self loop `{v, v}` was inserted into a simple graph.
    SelfLoop {
        /// The looping node.
        node: NodeId,
    },
    /// A hyperedge was empty.
    EmptyHyperedge {
        /// The offending hyperedge.
        edge: HyperedgeId,
    },
    /// A hyperedge contained the same vertex twice.
    DuplicateVertexInHyperedge {
        /// The offending hyperedge.
        edge: HyperedgeId,
        /// The repeated vertex.
        node: NodeId,
    },
    /// A graph exceeded a representation limit of the requested
    /// encoding (e.g. the bitset kernel's `u32` half-edge offsets).
    TooLarge {
        /// What overflowed, e.g. `"bitset half-edge offsets"`.
        what: &'static str,
        /// The limit the encoding can represent.
        limit: u64,
    },
    /// A hypergraph violated the almost-uniformity requirement
    /// `k ≤ |e| ≤ (1 + ε)·k` of the paper's Theorem 1.2 instances.
    NotAlmostUniform {
        /// The smallest hyperedge size present.
        min_size: usize,
        /// The largest hyperedge size present.
        max_size: usize,
        /// The tolerance ε that was requested.
        epsilon: f64,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(f, "node {node} out of range for graph with {node_count} nodes")
            }
            GraphError::SelfLoop { node } => {
                write!(f, "self loop at node {node} not allowed in a simple graph")
            }
            GraphError::EmptyHyperedge { edge } => {
                write!(f, "hyperedge {edge} is empty")
            }
            GraphError::DuplicateVertexInHyperedge { edge, node } => {
                write!(f, "hyperedge {edge} contains node {node} more than once")
            }
            GraphError::TooLarge { what, limit } => {
                write!(f, "graph too large for {what} (limit {limit})")
            }
            GraphError::NotAlmostUniform { min_size, max_size, epsilon } => {
                write!(
                    f,
                    "hyperedge sizes in [{min_size}, {max_size}] violate almost-uniformity \
                     with epsilon {epsilon}"
                )
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = GraphError::NodeOutOfRange { node: NodeId::new(9), node_count: 4 };
        assert_eq!(e.to_string(), "node 9 out of range for graph with 4 nodes");
        let e = GraphError::SelfLoop { node: NodeId::new(2) };
        assert!(e.to_string().contains("self loop at node 2"));
        let e = GraphError::EmptyHyperedge { edge: HyperedgeId::new(1) };
        assert!(e.to_string().contains("hyperedge 1 is empty"));
        let e = GraphError::TooLarge { what: "bitset half-edge offsets", limit: u32::MAX as u64 };
        assert_eq!(
            e.to_string(),
            format!("graph too large for bitset half-edge offsets (limit {})", u32::MAX)
        );
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<GraphError>();
    }
}
