//! Word-parallel dense adjacency kernels.
//!
//! CSR rows are the right representation for sparse graphs, but the
//! conflict graphs `G_k` of the Theorem 1.1 reduction are *dense* —
//! every hyperedge block is a clique and the color families connect
//! blocks wholesale — and there pointer-chasing through `u32` targets
//! loses to flat bit rows processed 64 vertices per word. This module
//! provides that dense representation ([`BitsetGraph`]) plus the four
//! kernels the reduction hot path needs:
//!
//! * [`BitsetGraph::is_independent_set`] — membership mask AND row,
//! * [`BitsetGraph::delete_closed_neighborhood`] — one masked word
//!   sweep per deletion,
//! * [`BitsetGraph::recount_degrees`] — degree recount via
//!   `count_ones`,
//! * [`BitsetGraph::min_degree_greedy`] — the minimum-degree greedy
//!   with **batched bucket pushes**, byte-identical to the CSR greedy's
//!   pick sequence (see the proof sketch at the function).
//!
//! [`KernelStrategy`] is the knob callers thread through their options
//! structs: `Auto` resolves to the bitset route exactly when the
//! density heuristic says the flat rows pay for themselves.

use crate::{Graph, GraphError, NodeId};

/// Which adjacency kernel a dense-capable consumer should run.
///
/// Threaded through `ConflictGraphOptions` (conflict-graph build and
/// the per-phase oracle fast path) and usable by any oracle that wants
/// the same dispatch. `Auto` applies [`KernelStrategy::use_bitset`]'s
/// density heuristic; the explicit variants force a route (useful for
/// equivalence tests and ablations — every route produces identical
/// output, only the constants differ).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelStrategy {
    /// Decide per graph from node count and density (the default).
    #[default]
    Auto,
    /// Always take the CSR (sparse) route.
    Csr,
    /// Always take the bitset (dense) route.
    Bitset,
}

/// `Auto` resolves to the bitset route only below this node count —
/// bit rows cost `n²/8` bytes, and past ~32k nodes (128 MiB) the
/// quadratic footprint stops fitting anything cache-like.
pub const BITSET_MAX_NODES: usize = 1 << 15;

/// `Auto` requires at least this average (undirected) degree — below
/// it, scanning mostly-zero words loses to CSR pointer chasing. Larger
/// graphs additionally need the degree to scale with the row length
/// (see [`KernelStrategy::use_bitset`]).
pub const BITSET_MIN_AVG_DEGREE: usize = 32;

/// The largest half-edge count (`Σ_v deg(v) = 2·|E|`) the bitset
/// representation can index: its degree prefix array is `u32`, so
/// `Auto` must route anything beyond this to the CSR path and
/// [`BitsetGraph::try_from_graph`] rejects it with
/// [`GraphError::TooLarge`] instead of silently truncating.
pub const BITSET_MAX_HALF_EDGES: u64 = u32::MAX as u64;

impl KernelStrategy {
    /// Resolves the strategy for a graph with `nodes` vertices and
    /// `edges` undirected edges: `true` means take the bitset route.
    ///
    /// The heuristic behind `Auto`: bit rows win when the graph is
    /// small enough for `n²/8` bytes of rows to stay cache-resident
    /// ([`BITSET_MAX_NODES`]) *and* dense enough that scanning a row's
    /// `⌈n/64⌉` words beats walking the CSR neighbor list — which
    /// needs both a floor on the average degree
    /// ([`BITSET_MIN_AVG_DEGREE`]) and, because the word scan is
    /// `O(n)` while the CSR walk is `O(deg)`, an average degree that
    /// keeps up with the row length (at least half a neighbor per
    /// row word).
    pub fn use_bitset(self, nodes: usize, edges: usize) -> bool {
        match self {
            KernelStrategy::Csr => false,
            KernelStrategy::Bitset => true,
            KernelStrategy::Auto => {
                nodes > 0
                    && nodes <= BITSET_MAX_NODES
                    // The half-edge count 2·|E| must fit the u32 degree
                    // prefix array; beyond it only the CSR path is sound.
                    && (edges as u64).saturating_mul(2) <= BITSET_MAX_HALF_EDGES
                    && edges / nodes >= BITSET_MIN_AVG_DEGREE.div_euclid(2)
                    && edges / nodes >= nodes.div_ceil(64).div_euclid(2)
            }
        }
    }
}

/// Sets bits `lo..hi` (half-open) in a flat word buffer — the masked
/// word fill dense row builders use for contiguous neighbor ranges
/// (block cliques, color slot runs), `O(words touched)` instead of one
/// store per bit.
///
/// # Panics
///
/// Panics if `hi` exceeds the buffer's bit capacity.
pub fn set_bit_range(words: &mut [u64], lo: u32, hi: u32) {
    if lo >= hi {
        return;
    }
    let (lw, hw) = ((lo / 64) as usize, ((hi - 1) / 64) as usize);
    let lmask = u64::MAX << (lo % 64);
    let hmask = u64::MAX >> (63 - ((hi - 1) % 64));
    if lw == hw {
        words[lw] |= lmask & hmask;
    } else {
        words[lw] |= lmask;
        for w in &mut words[lw + 1..hw] {
            *w = u64::MAX;
        }
        words[hw] |= hmask;
    }
}

/// Dense adjacency: row `v` is `words` consecutive `u64`s in which bit
/// `u` is set iff `{u, v}` is an edge. Degrees are kept as a CSR-style
/// prefix array so consumers can read them without popcounting.
///
/// # Examples
///
/// ```
/// use pslocal_graph::{bitset::BitsetGraph, Graph, NodeId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
/// let b = BitsetGraph::from_graph(&g);
/// assert_eq!(b.degree(NodeId::new(1)), 2);
/// assert!(b.is_independent_set(&[NodeId::new(0), NodeId::new(2)]).is_none());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitsetGraph {
    n: usize,
    words: usize,
    rows: Vec<u64>,
    /// Prefix degree sums, `offsets[v+1] - offsets[v] = deg(v)`.
    offsets: Vec<u32>,
}

/// Builds the `u32` degree prefix array from a degree sequence,
/// rejecting any running half-edge total beyond
/// [`BITSET_MAX_HALF_EDGES`] with [`GraphError::TooLarge`] instead of
/// wrapping. Extracted from [`BitsetGraph::try_from_graph`] so the
/// overflow path is testable without materializing a multi-gigabyte
/// graph.
fn checked_prefix_offsets(degrees: impl Iterator<Item = usize>) -> Result<Vec<u32>, GraphError> {
    let too_large =
        || GraphError::TooLarge { what: "bitset half-edge offsets", limit: BITSET_MAX_HALF_EDGES };
    let mut offsets = Vec::with_capacity(degrees.size_hint().0 + 1);
    offsets.push(0u32);
    let mut total = 0u32;
    for deg in degrees {
        let deg = u32::try_from(deg).map_err(|_| too_large())?;
        total = total.checked_add(deg).ok_or_else(too_large)?;
        offsets.push(total);
    }
    Ok(offsets)
}

impl BitsetGraph {
    /// Converts a CSR graph into bit rows (`O(n·words + m)`).
    ///
    /// # Panics
    ///
    /// Panics if the half-edge count exceeds
    /// [`BITSET_MAX_HALF_EDGES`]; use
    /// [`try_from_graph`](Self::try_from_graph) to handle that case.
    pub fn from_graph(g: &Graph) -> Self {
        // pslocal: allow(panic-path, "documented panicking convenience over try_from_graph; callers with untrusted sizes use the fallible form")
        Self::try_from_graph(g).expect("graph fits the bitset representation")
    }

    /// Fallible [`from_graph`](Self::from_graph): returns
    /// [`GraphError::TooLarge`] when the half-edge count overflows the
    /// `u32` degree prefix array (the offsets are computed *before* the
    /// quadratic row buffer is allocated, so the error path is cheap).
    pub fn try_from_graph(g: &Graph) -> Result<Self, GraphError> {
        let n = g.node_count();
        let offsets = checked_prefix_offsets(g.nodes().map(|v| g.degree(v)))?;
        let words = n.div_ceil(64);
        let mut rows = vec![0u64; n * words];
        for v in g.nodes() {
            let row = &mut rows[v.index() * words..(v.index() + 1) * words];
            for &u in g.neighbors(v) {
                row[u.index() / 64] |= 1u64 << (u.index() % 64);
            }
        }
        Ok(BitsetGraph { n, words, rows, offsets })
    }

    /// Assembles a bitset graph from finished parts. The caller
    /// guarantees symmetry and loop-freeness (debug builds re-check) —
    /// this is the entry point for builders that emit bit rows
    /// directly instead of converting from CSR.
    ///
    /// # Panics
    ///
    /// Panics if the buffer shapes are inconsistent.
    pub fn from_raw_parts(n: usize, rows: Vec<u64>, offsets: Vec<u32>) -> Self {
        let words = n.div_ceil(64);
        assert_eq!(rows.len(), n * words, "row buffer shape mismatch");
        assert_eq!(offsets.len(), n + 1, "offsets length mismatch");
        let b = BitsetGraph { n, words, rows, offsets };
        debug_assert!((0..n).all(|v| {
            b.row(NodeId::new(v)).iter().map(|w| w.count_ones()).sum::<u32>()
                == b.degree(NodeId::new(v)) as u32
        }));
        debug_assert!((0..n).all(|v| b.row(NodeId::new(v))[v / 64] & (1 << (v % 64)) == 0));
        b
    }

    /// Number of vertices.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        *self.offsets.last().unwrap_or(&0) as usize / 2
    }

    /// Words per row (`⌈n/64⌉`).
    #[inline]
    pub fn words(&self) -> usize {
        self.words
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    /// Maximum degree over all vertices (`0` for the empty graph).
    pub fn max_degree(&self) -> usize {
        (1..=self.n).map(|v| (self.offsets[v] - self.offsets[v - 1]) as usize).max().unwrap_or(0)
    }

    /// The bit row of `v`.
    #[inline]
    pub fn row(&self, v: NodeId) -> &[u64] {
        &self.rows[v.index() * self.words..(v.index() + 1) * self.words]
    }

    /// Adjacency test in `O(1)`.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.row(u)[v.index() / 64] & (1u64 << (v.index() % 64)) != 0
    }

    /// A fresh all-alive mask (`n` low bits set) for the deletion and
    /// recount kernels.
    pub fn full_alive_mask(&self) -> Vec<u64> {
        let mut alive = vec![u64::MAX; self.words];
        if !self.n.is_multiple_of(64) {
            if let Some(last) = alive.last_mut() {
                *last = (1u64 << (self.n % 64)) - 1;
            }
        }
        alive
    }

    /// Word-parallel independence check: returns a conflicting adjacent
    /// pair if one exists, `None` when `vs` is independent.
    ///
    /// Out-of-range vertices are reported as self-conflicts `(v, v)`.
    /// `O(|vs|·words)` after building the membership mask.
    pub fn is_independent_set(&self, vs: &[NodeId]) -> Option<(NodeId, NodeId)> {
        let mut member = vec![0u64; self.words];
        for &v in vs {
            if v.index() >= self.n {
                return Some((v, v));
            }
            member[v.index() / 64] |= 1u64 << (v.index() % 64);
        }
        for &v in vs {
            for (wi, (&rw, &mw)) in self.row(v).iter().zip(&member).enumerate() {
                let hit = rw & mw;
                if hit != 0 {
                    let u = NodeId::new(wi * 64 + hit.trailing_zeros() as usize);
                    return Some((v, u));
                }
            }
        }
        None
    }

    /// Deletes `v` and its alive neighbors from `alive` in one masked
    /// word sweep, appending the dying *neighbors* (ascending) to
    /// `dying`. Returns the number of neighbors killed.
    ///
    /// # Panics
    ///
    /// Panics if `alive` is not `words` long.
    pub fn delete_closed_neighborhood(
        &self,
        v: NodeId,
        alive: &mut [u64],
        dying: &mut Vec<u32>,
    ) -> usize {
        assert_eq!(alive.len(), self.words, "alive mask shape mismatch");
        let before = dying.len();
        alive[v.index() / 64] &= !(1u64 << (v.index() % 64));
        for (wi, (&rw, aw)) in self.row(v).iter().zip(alive.iter_mut()).enumerate() {
            let mut m = rw & *aw;
            *aw &= !rw;
            while m != 0 {
                dying.push((wi * 64) as u32 + m.trailing_zeros());
                m &= m - 1;
            }
        }
        dying.len() - before
    }

    /// Recounts residual degrees under `alive` via `count_ones`,
    /// writing `popcount(row(v) ∩ alive)` for every vertex (dead
    /// vertices included — their rows are recounted like any other).
    ///
    /// # Panics
    ///
    /// Panics if `alive` is not `words` long.
    pub fn recount_degrees(&self, alive: &[u64], out: &mut Vec<u32>) {
        assert_eq!(alive.len(), self.words, "alive mask shape mismatch");
        out.clear();
        out.reserve(self.n);
        for v in 0..self.n {
            let row = &self.rows[v * self.words..(v + 1) * self.words];
            out.push(row.iter().zip(alive).map(|(&r, &a)| (r & a).count_ones()).sum());
        }
    }

    /// Minimum-degree greedy over the bit rows, **byte-identical** to
    /// the CSR degree-bucket greedy (`pslocal-maxis`' `GreedyOracle`).
    ///
    /// The CSR greedy pushes a bucket entry per degree decrement; only
    /// the *final* push per survivor per kill phase can ever be popped
    /// valid (earlier entries are stale by the time the bucket drains,
    /// and the cursor never skips a bucket holding a valid entry), so
    /// this kernel batches: per chosen vertex it deletes the closed
    /// neighborhood up front, walks the dying list top-down marking
    /// each survivor at its *largest* dying neighbor (the `news` sets),
    /// applies all decrements, then emits exactly one push per touched
    /// survivor in the CSR kill-loop's final-push order — ascending
    /// dying neighbor, then ascending survivor. The equivalence suite
    /// (`tests/bitset_equivalence.rs`) checks the full pick sequence
    /// against the CSR reference on random and planted instances.
    ///
    /// Returns the chosen vertices in pick order.
    pub fn min_degree_greedy(&self, scratch: &mut BitsetScratch) -> Vec<NodeId> {
        let mut chosen = Vec::new();
        self.min_degree_greedy_into(scratch, &mut chosen);
        chosen
    }

    /// [`min_degree_greedy`](Self::min_degree_greedy) writing into a
    /// caller-owned vector — the zero-allocation entry point used by
    /// the phase workspace.
    pub fn min_degree_greedy_into(&self, s: &mut BitsetScratch, chosen: &mut Vec<NodeId>) {
        chosen.clear();
        let (n, words) = (self.n, self.words);
        if n == 0 {
            return;
        }
        s.alive.clear();
        s.alive.resize(words, u64::MAX);
        if !n.is_multiple_of(64) {
            s.alive[words - 1] = (1u64 << (n % 64)) - 1;
        }
        s.degree.clear();
        s.degree.extend(self.offsets.windows(2).map(|w| w[1] - w[0]));
        let maxdeg = s.degree.iter().copied().max().unwrap_or(0) as usize;
        for b in s.buckets.iter_mut() {
            b.clear();
        }
        s.buckets.resize(maxdeg + 1, Vec::new());
        for v in 0..n {
            s.buckets[s.degree[v] as usize].push(v as u32);
        }
        s.seen.resize(words, 0);
        s.news.resize(words * (maxdeg + 1), 0);
        let mut cursor = 0usize;
        while cursor <= maxdeg {
            let Some(v) = s.buckets[cursor].pop() else {
                cursor += 1;
                continue;
            };
            let v = v as usize;
            if s.alive[v / 64] & (1 << (v % 64)) == 0 || s.degree[v] as usize != cursor {
                continue; // stale entry
            }
            chosen.push(NodeId::new(v));
            s.dlist.clear();
            self.delete_closed_neighborhood(NodeId::new(v), &mut s.alive, &mut s.dlist);
            for w in s.seen.iter_mut() {
                *w = 0;
            }
            // Top-down: mark each survivor in the news set of its
            // largest dying neighbor and apply every decrement. Words
            // with no alive neighbors are skipped outright; words that
            // gained news bits are recorded (per dying vertex) so the
            // push pass below touches only them.
            s.pairs.clear();
            s.ranges.clear();
            s.ranges.resize(s.dlist.len(), (0, 0));
            for (idx, &u) in s.dlist.iter().enumerate().rev() {
                let row_u = &self.rows[u as usize * words..(u as usize + 1) * words];
                let dst = &mut s.news[idx * words..(idx + 1) * words];
                let start = s.pairs.len() as u32;
                for wi in 0..words {
                    let rw = row_u[wi] & s.alive[wi];
                    if rw == 0 {
                        continue;
                    }
                    let nw = rw & !s.seen[wi];
                    if nw != 0 {
                        dst[wi] = nw;
                        s.seen[wi] |= nw;
                        s.pairs.push(wi as u32);
                    }
                    let mut m = rw;
                    while m != 0 {
                        s.degree[(wi * 64) + m.trailing_zeros() as usize] -= 1;
                        m &= m - 1;
                    }
                }
                s.ranges[idx] = (start, s.pairs.len() as u32);
            }
            // Bottom-up: the one final push per touched survivor, in
            // the CSR greedy's final-push order (ascending dying
            // vertex, then ascending survivor — the recorded words of
            // each dying vertex are already in ascending order).
            for idx in 0..s.dlist.len() {
                let (start, end) = s.ranges[idx];
                for &wi in &s.pairs[start as usize..end as usize] {
                    let wi = wi as usize;
                    let mut m = s.news[idx * words + wi];
                    while m != 0 {
                        let w = (wi * 64) + m.trailing_zeros() as usize;
                        let d = s.degree[w] as usize;
                        s.buckets[d].push(w as u32);
                        cursor = cursor.min(d);
                        m &= m - 1;
                    }
                }
            }
        }
    }
}

/// Reusable buffers for [`BitsetGraph::min_degree_greedy`]. One
/// instance serves any number of runs on graphs of any size — every
/// buffer is (re)sized on entry, so holding the scratch across phases
/// makes the greedy allocation-free in steady state.
#[derive(Debug, Default, Clone)]
pub struct BitsetScratch {
    alive: Vec<u64>,
    degree: Vec<u32>,
    buckets: Vec<Vec<u32>>,
    seen: Vec<u64>,
    news: Vec<u64>,
    dlist: Vec<u32>,
    /// Word indices with nonzero news bits, grouped per dying vertex —
    /// lets the bottom-up push pass visit only populated words instead
    /// of rescanning every `dying × words` cell.
    pairs: Vec<u32>,
    /// `ranges[idx]` = the `pairs` span recorded for dying vertex `idx`.
    ranges: Vec<(u32, u32)>,
}

impl BitsetScratch {
    /// A fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Graph {
    /// Converts to the dense bit-row representation; see
    /// [`BitsetGraph::from_graph`].
    pub fn to_bitset(&self) -> BitsetGraph {
        BitsetGraph::from_graph(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic::{complete, cycle, star};
    use crate::generators::random::gnp;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_preserves_structure() {
        let g = cycle(10);
        let b = g.to_bitset();
        assert_eq!(b.node_count(), 10);
        assert_eq!(b.edge_count(), 10);
        for v in g.nodes() {
            assert_eq!(b.degree(v), g.degree(v));
            for &u in g.neighbors(v) {
                assert!(b.has_edge(v, u));
            }
        }
    }

    #[test]
    fn from_raw_parts_matches_from_graph() {
        let g = complete(9);
        let b = g.to_bitset();
        let rebuilt =
            BitsetGraph::from_raw_parts(b.node_count(), b.rows.clone(), b.offsets.clone());
        assert_eq!(rebuilt, b);
    }

    #[test]
    #[should_panic(expected = "row buffer shape mismatch")]
    fn from_raw_parts_rejects_bad_shape() {
        BitsetGraph::from_raw_parts(65, vec![0u64; 65], vec![0u32; 66]);
    }

    #[test]
    fn independence_check_matches_csr() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let g = gnp(&mut rng, 70, 0.1);
            let b = g.to_bitset();
            let is = crate::IndependentSet::new(&g, g.nodes().step_by(7).collect());
            match is {
                Ok(set) => assert!(b.is_independent_set(set.vertices()).is_none()),
                Err(e) => {
                    let (u, v) = b
                        .is_independent_set(&g.nodes().step_by(7).collect::<Vec<_>>())
                        .expect("bitset check must also reject");
                    assert!(g.neighbors(u).contains(&v));
                    let _ = e;
                }
            }
        }
    }

    #[test]
    fn independence_check_flags_out_of_range() {
        let b = cycle(5).to_bitset();
        assert_eq!(b.is_independent_set(&[NodeId::new(7)]), Some((NodeId::new(7), NodeId::new(7))));
    }

    #[test]
    fn closed_neighborhood_deletion_and_recount() {
        let g = star(6); // hub 0 plus 5 leaves
        let b = g.to_bitset();
        let mut alive = b.full_alive_mask();
        let mut dying = Vec::new();
        let killed = b.delete_closed_neighborhood(NodeId::new(0), &mut alive, &mut dying);
        assert_eq!(killed, g.node_count() - 1);
        assert_eq!(alive, vec![0u64]);
        let mut deg = Vec::new();
        b.recount_degrees(&alive, &mut deg);
        assert!(deg.iter().all(|&d| d == 0));
    }

    #[test]
    fn greedy_handles_edge_cases() {
        let mut s = BitsetScratch::new();
        assert!(Graph::empty(0).to_bitset().min_degree_greedy(&mut s).is_empty());
        let picks = Graph::empty(5).to_bitset().min_degree_greedy(&mut s);
        assert_eq!(picks.len(), 5);
        let picks = complete(7).to_bitset().min_degree_greedy(&mut s);
        assert_eq!(picks.len(), 1);
        // Word-boundary sizes.
        for n in [63, 64, 65, 128, 129] {
            let picks = cycle(n).to_bitset().min_degree_greedy(&mut s);
            assert!(picks.len() >= n / 3);
        }
    }

    #[test]
    fn set_bit_range_matches_per_bit_reference() {
        for (lo, hi) in [(0, 0), (0, 1), (3, 3), (0, 64), (63, 65), (5, 190), (64, 128), (190, 192)]
        {
            let mut fast = vec![0u64; 3];
            set_bit_range(&mut fast, lo, hi);
            let mut slow = vec![0u64; 3];
            for b in lo..hi {
                slow[(b / 64) as usize] |= 1u64 << (b % 64);
            }
            assert_eq!(fast, slow, "range {lo}..{hi}");
        }
    }

    #[test]
    fn checked_offsets_match_unchecked_in_range() {
        let degs = [0usize, 3, 1, 64, 2];
        let offsets = checked_prefix_offsets(degs.iter().copied()).unwrap();
        assert_eq!(offsets, vec![0, 0, 3, 4, 68, 70]);
    }

    #[test]
    fn offsets_overflow_is_typed_not_truncated() {
        // Pre-fix, `deg as u32` wrapped and the prefix sums silently
        // truncated; now any half-edge total past u32::MAX is a typed
        // error. A single oversized degree...
        let huge = u32::MAX as usize + 2;
        let err = checked_prefix_offsets([huge].into_iter()).unwrap_err();
        assert!(matches!(err, GraphError::TooLarge { limit, .. } if limit == u32::MAX as u64));
        // ...and an in-range sequence whose *running total* overflows.
        let step = (u32::MAX / 2) as usize + 1;
        let err = checked_prefix_offsets([step, step].into_iter()).unwrap_err();
        assert!(matches!(err, GraphError::TooLarge { .. }));
        assert!(err.to_string().contains("bitset half-edge offsets"));
        // The exact boundary still fits.
        let ok = checked_prefix_offsets([step, step - 1].into_iter()).unwrap();
        assert_eq!(*ok.last().unwrap(), u32::MAX);
    }

    #[test]
    fn try_from_graph_accepts_ordinary_graphs() {
        let g = cycle(10);
        assert_eq!(BitsetGraph::try_from_graph(&g).unwrap(), g.to_bitset());
    }

    #[test]
    fn auto_strategy_resolves_by_density_and_size() {
        assert!(!KernelStrategy::Auto.use_bitset(0, 0));
        assert!(!KernelStrategy::Auto.use_bitset(1000, 100)); // too sparse
        assert!(KernelStrategy::Auto.use_bitset(5136, 529_064)); // the dense bench graph
        assert!(!KernelStrategy::Auto.use_bitset(BITSET_MAX_NODES + 1, usize::MAX / 4));
        // Half-edge counts past the u32 offset limit must route to CSR
        // even when the node count and density would pick the bitset
        // (pre-fix this resolved to the bitset and truncated).
        assert!(!KernelStrategy::Auto.use_bitset(BITSET_MAX_NODES, u32::MAX as usize));
        assert!(!KernelStrategy::Auto.use_bitset(BITSET_MAX_NODES, usize::MAX));
        // Degree clears the flat floor but not the per-row-word scaling
        // requirement (avg degree 24 against 61 row words).
        assert!(!KernelStrategy::Auto.use_bitset(3856, 92_776));
        assert!(KernelStrategy::Bitset.use_bitset(10, 0));
        assert!(!KernelStrategy::Csr.use_bitset(5136, 529_064));
    }
}
