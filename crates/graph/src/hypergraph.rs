//! Hypergraphs: the input objects of conflict-free multicoloring.
//!
//! The paper's Theorem 1.2 instances are *almost uniform* hypergraphs —
//! every hyperedge size lies in `[k, (1+ε)k]` for some `k` — with
//! polynomially many hyperedges. [`Hypergraph`] stores vertex/edge
//! incidence both ways so that the conflict-graph construction of
//! `pslocal-core` (which needs, per hyperedge, all member vertices, and
//! per vertex, all containing hyperedges) runs in linear time.

use crate::{GraphError, HyperedgeId, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An immutable hypergraph `H = (V, E)` with `V = 0..n`.
///
/// Hyperedges are non-empty, duplicate-vertex-free, stored with sorted
/// member lists. Two hyperedges *may* contain exactly the same vertex
/// set — the reduction treats them as distinct constraints, exactly as
/// the paper does.
///
/// # Examples
///
/// ```
/// use pslocal_graph::{Hypergraph, NodeId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let h = Hypergraph::from_edges(4, [vec![0, 1, 2], vec![1, 2, 3]])?;
/// assert_eq!(h.node_count(), 4);
/// assert_eq!(h.edge_count(), 2);
/// assert_eq!(h.edge_size(pslocal_graph::HyperedgeId::new(0)), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hypergraph {
    n: usize,
    /// `edge_offsets.len() == m + 1`; members of edge `e` are
    /// `edge_members[edge_offsets[e]..edge_offsets[e+1]]`, sorted.
    edge_offsets: Vec<u32>,
    edge_members: Vec<NodeId>,
    /// Reverse incidence: hyperedges containing vertex `v` are
    /// `vertex_edges[vertex_offsets[v]..vertex_offsets[v+1]]`, sorted.
    vertex_offsets: Vec<u32>,
    vertex_edges: Vec<HyperedgeId>,
}

impl Hypergraph {
    /// Builds a hypergraph on `n` vertices from an iterator of member
    /// lists (raw indices).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EmptyHyperedge`],
    /// [`GraphError::DuplicateVertexInHyperedge`] or
    /// [`GraphError::NodeOutOfRange`].
    pub fn from_edges<I, E>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = E>,
        E: IntoIterator<Item = usize>,
    {
        let mut builder = HypergraphBuilder::new(n);
        for edge in edges {
            builder.try_add_edge_indices(edge)?;
        }
        Ok(builder.build())
    }

    /// Number of vertices `n = |V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of hyperedges `m = |E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_offsets.len() - 1
    }

    /// Returns `true` when there are no hyperedges.
    #[inline]
    pub fn has_no_edges(&self) -> bool {
        self.edge_count() == 0
    }

    /// Iterator over all hyperedge identifiers.
    pub fn edge_ids(&self) -> impl ExactSizeIterator<Item = HyperedgeId> + DoubleEndedIterator {
        (0..self.edge_count() as u32).map(HyperedgeId::from)
    }

    /// Iterator over all vertex identifiers.
    pub fn nodes(&self) -> crate::ids::NodeIds {
        crate::ids::node_ids(self.n)
    }

    /// The sorted member vertices of hyperedge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    pub fn edge(&self, e: HyperedgeId) -> &[NodeId] {
        let i = e.index();
        &self.edge_members[self.edge_offsets[i] as usize..self.edge_offsets[i + 1] as usize]
    }

    /// Number of vertices in hyperedge `e` (its *rank*).
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    pub fn edge_size(&self, e: HyperedgeId) -> usize {
        let i = e.index();
        (self.edge_offsets[i + 1] - self.edge_offsets[i]) as usize
    }

    /// The sorted hyperedges containing vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn edges_of(&self, v: NodeId) -> &[HyperedgeId] {
        let i = v.index();
        &self.vertex_edges[self.vertex_offsets[i] as usize..self.vertex_offsets[i + 1] as usize]
    }

    /// Vertex degree: the number of hyperedges containing `v`.
    #[inline]
    pub fn vertex_degree(&self, v: NodeId) -> usize {
        self.edges_of(v).len()
    }

    /// Whether hyperedge `e` contains vertex `v` (`O(log |e|)`).
    #[inline]
    pub fn edge_contains(&self, e: HyperedgeId, v: NodeId) -> bool {
        self.edge(e).binary_search(&v).is_ok()
    }

    /// Total incidence size `Σ_e |e|`; the conflict graph of
    /// `pslocal-core` has exactly `k` times this many vertices.
    #[inline]
    pub fn incidence_size(&self) -> usize {
        self.edge_members.len()
    }

    /// Minimum hyperedge size, or `None` when edgeless.
    pub fn min_edge_size(&self) -> Option<usize> {
        self.edge_ids().map(|e| self.edge_size(e)).min()
    }

    /// Maximum hyperedge size, or `None` when edgeless.
    pub fn max_edge_size(&self) -> Option<usize> {
        self.edge_ids().map(|e| self.edge_size(e)).max()
    }

    /// Checks the paper's almost-uniformity condition: there exists `k`
    /// with `k ≤ |e| ≤ (1 + ε)·k` for all hyperedges — equivalently,
    /// `max ≤ (1 + ε)·min`. Edgeless hypergraphs are vacuously almost
    /// uniform.
    ///
    /// # Examples
    ///
    /// ```
    /// use pslocal_graph::Hypergraph;
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let h = Hypergraph::from_edges(6, [vec![0, 1, 2], vec![2, 3, 4, 5]])?;
    /// assert!(h.is_almost_uniform(0.5)); // 4 ≤ 1.5 · 3
    /// assert!(!h.is_almost_uniform(0.1));
    /// # Ok(())
    /// # }
    /// ```
    pub fn is_almost_uniform(&self, epsilon: f64) -> bool {
        match (self.min_edge_size(), self.max_edge_size()) {
            (Some(lo), Some(hi)) => hi as f64 <= (1.0 + epsilon) * lo as f64,
            _ => true,
        }
    }

    /// Validates almost-uniformity, returning a descriptive error.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotAlmostUniform`] when violated.
    pub fn require_almost_uniform(&self, epsilon: f64) -> Result<(), GraphError> {
        if self.is_almost_uniform(epsilon) {
            Ok(())
        } else {
            Err(GraphError::NotAlmostUniform {
                min_size: self.min_edge_size().unwrap_or(0),
                max_size: self.max_edge_size().unwrap_or(0),
                epsilon,
            })
        }
    }

    /// Restriction of the hypergraph to a subset of hyperedges, keeping
    /// the vertex set intact (the paper's `H_i = (V, E_i)` residual
    /// hypergraphs between reduction phases).
    ///
    /// Returns the new hypergraph and, for each new hyperedge, the id it
    /// had in `self`.
    ///
    /// # Panics
    ///
    /// Panics if `keep` contains an out-of-range hyperedge.
    pub fn restrict_edges(&self, keep: &[HyperedgeId]) -> (Hypergraph, Vec<HyperedgeId>) {
        let mut builder = HypergraphBuilder::new(self.n);
        for &e in keep {
            builder.add_edge(self.edge(e).iter().copied());
        }
        (builder.build(), keep.to_vec())
    }

    /// The *primal graph* (2-section): vertices of `H`, an edge between
    /// every pair of vertices that co-occur in some hyperedge. Used by
    /// tests and by locality accounting (distance in `H` is measured in
    /// its primal graph, which is how the LOCAL simulation of the
    /// conflict graph communicates).
    pub fn primal_graph(&self) -> crate::Graph {
        let mut builder = crate::GraphBuilder::new(self.n);
        for e in self.edge_ids() {
            let members = self.edge(e);
            for (i, &u) in members.iter().enumerate() {
                for &v in &members[i + 1..] {
                    builder.add_edge(u, v);
                }
            }
        }
        builder.build()
    }
}

impl fmt::Debug for Hypergraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Hypergraph")
            .field("nodes", &self.node_count())
            .field("edges", &self.edge_count())
            .field("min_edge_size", &self.min_edge_size())
            .field("max_edge_size", &self.max_edge_size())
            .finish()
    }
}

/// Incremental builder for [`Hypergraph`].
#[derive(Debug, Clone)]
pub struct HypergraphBuilder {
    n: usize,
    edge_offsets: Vec<u32>,
    edge_members: Vec<NodeId>,
}

impl HypergraphBuilder {
    /// Creates a builder for a hypergraph on `n` vertices.
    pub fn new(n: usize) -> Self {
        HypergraphBuilder { n, edge_offsets: vec![0], edge_members: Vec::new() }
    }

    /// Number of hyperedges added so far.
    pub fn edge_count(&self) -> usize {
        self.edge_offsets.len() - 1
    }

    /// Adds a hyperedge from typed vertex ids.
    ///
    /// # Panics
    ///
    /// Panics on empty edges, duplicate members, or out-of-range
    /// vertices.
    pub fn add_edge<I: IntoIterator<Item = NodeId>>(&mut self, members: I) -> HyperedgeId {
        // pslocal: allow(panic-path, "documented panicking convenience over try_add_edge for builder-style literals; fallible form is public")
        self.try_add_edge(members).expect("invalid hyperedge")
    }

    /// Adds a hyperedge from typed vertex ids, reporting failures.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EmptyHyperedge`],
    /// [`GraphError::DuplicateVertexInHyperedge`] or
    /// [`GraphError::NodeOutOfRange`]. On error the builder is left
    /// unchanged.
    pub fn try_add_edge<I: IntoIterator<Item = NodeId>>(
        &mut self,
        members: I,
    ) -> Result<HyperedgeId, GraphError> {
        let id = HyperedgeId::new(self.edge_count());
        let start = self.edge_members.len();
        self.edge_members.extend(members);
        let slice = &mut self.edge_members[start..];
        slice.sort_unstable();
        if slice.is_empty() {
            return Err(GraphError::EmptyHyperedge { edge: id });
        }
        for w in slice.windows(2) {
            if w[0] == w[1] {
                let node = w[0];
                self.edge_members.truncate(start);
                return Err(GraphError::DuplicateVertexInHyperedge { edge: id, node });
            }
        }
        if let Some(&max) = slice.last() {
            if max.index() >= self.n {
                self.edge_members.truncate(start);
                return Err(GraphError::NodeOutOfRange { node: max, node_count: self.n });
            }
        }
        self.edge_offsets.push(self.edge_members.len() as u32);
        Ok(id)
    }

    /// Adds a hyperedge from raw vertex indices.
    ///
    /// # Errors
    ///
    /// Same as [`try_add_edge`](Self::try_add_edge).
    pub fn try_add_edge_indices<I: IntoIterator<Item = usize>>(
        &mut self,
        members: I,
    ) -> Result<HyperedgeId, GraphError> {
        let mut collected = Vec::new();
        for i in members {
            if i >= self.n {
                return Err(GraphError::NodeOutOfRange {
                    node: NodeId::new(i.min(u32::MAX as usize)),
                    node_count: self.n,
                });
            }
            collected.push(NodeId::new(i));
        }
        self.try_add_edge(collected)
    }

    /// Finalizes into an immutable [`Hypergraph`], building the reverse
    /// incidence index.
    pub fn build(self) -> Hypergraph {
        let n = self.n;
        let mut vdeg = vec![0u32; n];
        for &v in &self.edge_members {
            vdeg[v.index()] += 1;
        }
        let mut vertex_offsets = vec![0u32; n + 1];
        for i in 0..n {
            vertex_offsets[i + 1] = vertex_offsets[i] + vdeg[i];
        }
        let mut cursor: Vec<u32> = vertex_offsets[..n].to_vec();
        let mut vertex_edges = vec![HyperedgeId::new(0); self.edge_members.len()];
        let m = self.edge_offsets.len() - 1;
        for e in 0..m {
            let (lo, hi) = (self.edge_offsets[e] as usize, self.edge_offsets[e + 1] as usize);
            for &v in &self.edge_members[lo..hi] {
                vertex_edges[cursor[v.index()] as usize] = HyperedgeId::new(e);
                cursor[v.index()] += 1;
            }
        }
        // Edges were appended in increasing id order per vertex, so each
        // run is already sorted.
        Hypergraph {
            n,
            edge_offsets: self.edge_offsets,
            edge_members: self.edge_members,
            vertex_offsets,
            vertex_edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Hypergraph {
        Hypergraph::from_edges(5, [vec![0, 1, 2], vec![1, 2, 3], vec![3, 4, 0]]).unwrap()
    }

    #[test]
    fn counts_and_sizes() {
        let h = sample();
        assert_eq!(h.node_count(), 5);
        assert_eq!(h.edge_count(), 3);
        assert_eq!(h.incidence_size(), 9);
        assert_eq!(h.min_edge_size(), Some(3));
        assert_eq!(h.max_edge_size(), Some(3));
        assert!(!h.has_no_edges());
    }

    #[test]
    fn members_are_sorted() {
        let h = Hypergraph::from_edges(5, [vec![4, 0, 2]]).unwrap();
        assert_eq!(h.edge(HyperedgeId::new(0)), &[NodeId::new(0), NodeId::new(2), NodeId::new(4)]);
    }

    #[test]
    fn reverse_incidence_matches_forward() {
        let h = sample();
        for v in h.nodes() {
            for &e in h.edges_of(v) {
                assert!(h.edge_contains(e, v), "edge {e} should contain {v}");
            }
        }
        for e in h.edge_ids() {
            for &v in h.edge(e) {
                assert!(h.edges_of(v).contains(&e));
            }
        }
        assert_eq!(h.vertex_degree(NodeId::new(1)), 2);
        assert_eq!(h.vertex_degree(NodeId::new(4)), 1);
    }

    #[test]
    fn empty_edge_rejected() {
        let err = Hypergraph::from_edges(3, [Vec::<usize>::new()]).unwrap_err();
        assert!(matches!(err, GraphError::EmptyHyperedge { .. }));
    }

    #[test]
    fn duplicate_member_rejected() {
        let err = Hypergraph::from_edges(3, [vec![0, 1, 0]]).unwrap_err();
        assert!(matches!(err, GraphError::DuplicateVertexInHyperedge { .. }));
    }

    #[test]
    fn out_of_range_member_rejected() {
        let err = Hypergraph::from_edges(3, [vec![0, 3]]).unwrap_err();
        assert!(!matches!(err, GraphError::NotAlmostUniform { .. }));
        assert!(matches!(err, GraphError::NodeOutOfRange { .. }));
    }

    #[test]
    fn builder_survives_failed_edge() {
        let mut b = HypergraphBuilder::new(4);
        b.add_edge([NodeId::new(0), NodeId::new(1)]);
        assert!(b.try_add_edge([NodeId::new(2), NodeId::new(2)]).is_err());
        b.add_edge([NodeId::new(2), NodeId::new(3)]);
        let h = b.build();
        assert_eq!(h.edge_count(), 2);
        assert_eq!(h.edge(HyperedgeId::new(1)), &[NodeId::new(2), NodeId::new(3)]);
    }

    #[test]
    fn almost_uniformity() {
        let h = Hypergraph::from_edges(8, [vec![0, 1, 2, 3], vec![4, 5, 6, 7, 0]]).unwrap();
        assert!(h.is_almost_uniform(0.25)); // 5 ≤ 1.25 · 4
        assert!(!h.is_almost_uniform(0.2));
        assert!(h.require_almost_uniform(0.25).is_ok());
        let err = h.require_almost_uniform(0.1).unwrap_err();
        assert!(matches!(err, GraphError::NotAlmostUniform { min_size: 4, max_size: 5, .. }));
        // Edgeless hypergraphs are vacuously almost uniform.
        let empty = HypergraphBuilder::new(3).build();
        assert!(empty.is_almost_uniform(0.0));
        assert!(empty.has_no_edges());
    }

    #[test]
    fn duplicate_edge_sets_are_allowed() {
        let h = Hypergraph::from_edges(3, [vec![0, 1], vec![0, 1]]).unwrap();
        assert_eq!(h.edge_count(), 2);
        assert_eq!(h.edges_of(NodeId::new(0)).len(), 2);
    }

    #[test]
    fn restrict_edges_keeps_vertex_set() {
        let h = sample();
        let (r, map) = h.restrict_edges(&[HyperedgeId::new(2), HyperedgeId::new(0)]);
        assert_eq!(r.node_count(), 5);
        assert_eq!(r.edge_count(), 2);
        assert_eq!(r.edge(HyperedgeId::new(0)), h.edge(HyperedgeId::new(2)));
        assert_eq!(map, vec![HyperedgeId::new(2), HyperedgeId::new(0)]);
    }

    #[test]
    fn primal_graph_of_triangle_edge() {
        let h = Hypergraph::from_edges(4, [vec![0, 1, 2], vec![2, 3]]).unwrap();
        let g = h.primal_graph();
        assert_eq!(g.edge_count(), 4); // {01,02,12} + {23}
        assert!(g.has_edge(NodeId::new(0), NodeId::new(2)));
        assert!(g.has_edge(NodeId::new(2), NodeId::new(3)));
        assert!(!g.has_edge(NodeId::new(0), NodeId::new(3)));
    }
}
