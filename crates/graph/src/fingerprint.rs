//! Structural fingerprints (order-sensitive FNV-1a).
//!
//! One shared 64-bit FNV-1a stream underlies every fingerprint in the
//! workspace: the crash-recovery journal pins conflict graphs and
//! instances with them, the oracle memoization cache keys phase graphs
//! with them, and the Luby oracle derives its per-component RNG stream
//! from them (so component-parallel and serial runs draw identical
//! randomness). The byte layout is therefore **frozen**: changing it
//! silently invalidates on-disk journals.

use crate::{bitset::BitsetGraph, Graph, Hypergraph};

/// FNV-1a 64-bit running hash over `u64` words, one byte at a time in
/// little-endian order.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub(crate) fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    pub(crate) fn word(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

impl Graph {
    /// Order-sensitive FNV-1a fingerprint of the CSR structure: vertex
    /// count, edge count, and every adjacency row in order.
    ///
    /// Identical to the fingerprint the crash-recovery journal stores
    /// per phase record (`pslocal-core`'s `fingerprint_graph` delegates
    /// here), so the value is stable across releases.
    pub fn fingerprint(&self) -> u64 {
        let mut f = Fnv1a::new();
        f.word(self.node_count() as u64);
        f.word(self.edge_count() as u64);
        for v in self.nodes() {
            let row = self.neighbors(v);
            f.word(row.len() as u64);
            for &u in row {
                f.word(u.index() as u64);
            }
        }
        f.finish()
    }
}

impl Hypergraph {
    /// Order-sensitive FNV-1a fingerprint of the instance: vertex
    /// count, edge count, and every hyperedge's members in order.
    ///
    /// Identical to the instance fingerprint in the crash-recovery
    /// journal header (`pslocal-core`'s `fingerprint_hypergraph`
    /// delegates here).
    pub fn fingerprint(&self) -> u64 {
        let mut f = Fnv1a::new();
        f.word(self.node_count() as u64);
        f.word(self.edge_count() as u64);
        for e in self.edge_ids() {
            let members = self.edge(e);
            f.word(members.len() as u64);
            for &v in members {
                f.word(v.index() as u64);
            }
        }
        f.finish()
    }
}

impl BitsetGraph {
    /// Fingerprint of the dense representation, **equal to**
    /// [`Graph::fingerprint`] of the CSR graph it mirrors: the bit rows
    /// are walked in ascending vertex order, reproducing the adjacency
    /// rows without materializing them.
    pub fn fingerprint(&self) -> u64 {
        let mut f = Fnv1a::new();
        f.word(self.node_count() as u64);
        f.word(self.edge_count() as u64);
        for v in 0..self.node_count() {
            f.word(self.degree(crate::NodeId::new(v)) as u64);
            for (wi, &w) in self.row(crate::NodeId::new(v)).iter().enumerate() {
                let mut m = w;
                while m != 0 {
                    f.word((wi * 64) as u64 + m.trailing_zeros() as u64);
                    m &= m - 1;
                }
            }
        }
        f.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic::cycle;
    use crate::generators::random::gnp;
    use rand::SeedableRng;

    #[test]
    fn graph_fingerprint_is_structure_sensitive() {
        let a = cycle(8).fingerprint();
        let b = cycle(9).fingerprint();
        assert_ne!(a, b);
        assert_eq!(a, cycle(8).fingerprint());
    }

    #[test]
    fn bitset_fingerprint_matches_csr_fingerprint() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for _ in 0..10 {
            let g = gnp(&mut rng, 90, 0.15);
            assert_eq!(g.fingerprint(), g.to_bitset().fingerprint());
        }
        let g = Graph::empty(0);
        assert_eq!(g.fingerprint(), g.to_bitset().fingerprint());
    }

    #[test]
    fn hypergraph_fingerprint_distinguishes_instances() {
        let h1 = Hypergraph::from_edges(3, [vec![0, 1], vec![1, 2]]).unwrap();
        let h2 = Hypergraph::from_edges(3, [vec![0, 1], vec![0, 2]]).unwrap();
        assert_ne!(h1.fingerprint(), h2.fingerprint());
        assert_eq!(h1.fingerprint(), h1.clone().fingerprint());
    }
}
