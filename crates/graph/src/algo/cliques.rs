//! Clique machinery used to *bound* the independence number.
//!
//! The paper's reduction consumes a `λ`-approximate MaxIS oracle. To
//! *measure* an oracle's realized λ on instances too large for the exact
//! solver, the experiment suite needs upper bounds on `α(G)`. A clique
//! cover of size `t` proves `α(G) ≤ t` (an independent set meets each
//! clique at most once), and greedy clique covers are cheap.

use crate::{Graph, NodeId};

/// Verifies that `clique` is a clique of `graph` (pairwise adjacent,
/// duplicates rejected).
pub fn is_clique(graph: &Graph, clique: &[NodeId]) -> bool {
    for (i, &u) in clique.iter().enumerate() {
        for &v in &clique[i + 1..] {
            if u == v || !graph.has_edge(u, v) {
                return false;
            }
        }
    }
    true
}

/// Greedily partitions the vertex set into cliques: repeatedly grow a
/// clique from the smallest unused vertex by adding any unused vertex
/// adjacent to all current members.
///
/// The number of cliques returned is an upper bound on `α(G)`.
///
/// # Examples
///
/// ```
/// use pslocal_graph::Graph;
/// use pslocal_graph::algo::greedy_clique_cover;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Two disjoint triangles: cover of size 2, and indeed α = 2.
/// let g = Graph::from_edges(6, [(0,1),(1,2),(0,2),(3,4),(4,5),(3,5)])?;
/// assert_eq!(greedy_clique_cover(&g).len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn greedy_clique_cover(graph: &Graph) -> Vec<Vec<NodeId>> {
    let n = graph.node_count();
    let mut used = vec![false; n];
    let mut cover = Vec::new();
    for s in 0..n {
        if used[s] {
            continue;
        }
        let seed = NodeId::new(s);
        used[s] = true;
        let mut clique = vec![seed];
        // Candidates: unused neighbors of the seed; refine as we grow.
        let mut candidates: Vec<NodeId> =
            graph.neighbors(seed).iter().copied().filter(|v| !used[v.index()]).collect();
        while let Some(&v) = candidates.first() {
            used[v.index()] = true;
            clique.push(v);
            candidates.retain(|&u| u != v && graph.has_edge(u, v) && !used[u.index()]);
        }
        cover.push(clique);
    }
    cover
}

/// Upper bound on the independence number via a greedy clique cover.
///
/// Always `≥ α(G)`; equal to `α` on cluster graphs (disjoint unions of
/// cliques).
pub fn clique_cover_bound(graph: &Graph) -> usize {
    greedy_clique_cover(graph).len()
}

/// Maximum clique of small graphs by branch and bound (for tests and for
/// calibrating the clique-removal oracle). Practical up to a few dozen
/// vertices on dense graphs.
pub fn max_clique(graph: &Graph) -> Vec<NodeId> {
    fn extend(
        graph: &Graph,
        current: &mut Vec<NodeId>,
        candidates: &[NodeId],
        best: &mut Vec<NodeId>,
    ) {
        if current.len() + candidates.len() <= best.len() {
            return; // bound
        }
        if candidates.is_empty() {
            if current.len() > best.len() {
                *best = current.clone();
            }
            return;
        }
        for (i, &v) in candidates.iter().enumerate() {
            if current.len() + (candidates.len() - i) <= best.len() {
                break;
            }
            current.push(v);
            let next: Vec<NodeId> =
                candidates[i + 1..].iter().copied().filter(|&u| graph.has_edge(u, v)).collect();
            extend(graph, current, &next, best);
            current.pop();
        }
    }

    let all: Vec<NodeId> = graph.nodes().collect();
    let mut best = Vec::new();
    let mut current = Vec::new();
    extend(graph, &mut current, &all, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(n: usize) -> Graph {
        Graph::from_edges(n, (0..n).flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))).unwrap()
    }

    #[test]
    fn is_clique_checks_pairs() {
        let g = complete(4);
        assert!(is_clique(&g, &[NodeId::new(0), NodeId::new(1), NodeId::new(2)]));
        assert!(is_clique(&g, &[])); // vacuous
        assert!(is_clique(&g, &[NodeId::new(3)]));
        let p = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        assert!(!is_clique(&p, &[NodeId::new(0), NodeId::new(2)]));
        assert!(!is_clique(&p, &[NodeId::new(0), NodeId::new(0)])); // duplicate
    }

    #[test]
    fn cover_of_complete_graph_is_one_clique() {
        let g = complete(5);
        let cover = greedy_clique_cover(&g);
        assert_eq!(cover.len(), 1);
        assert_eq!(cover[0].len(), 5);
        assert!(is_clique(&g, &cover[0]));
    }

    #[test]
    fn cover_of_empty_graph_is_singletons() {
        let g = Graph::empty(4);
        let cover = greedy_clique_cover(&g);
        assert_eq!(cover.len(), 4);
        assert_eq!(clique_cover_bound(&g), 4); // α = 4 exactly
    }

    #[test]
    fn cover_is_a_partition_of_cliques() {
        let g = Graph::from_edges(
            8,
            [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5), (5, 6), (6, 7)],
        )
        .unwrap();
        let cover = greedy_clique_cover(&g);
        let mut seen = [false; 8];
        for clique in &cover {
            assert!(is_clique(&g, clique));
            for &v in clique {
                assert!(!seen[v.index()], "vertex {v} covered twice");
                seen[v.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bound_dominates_alpha_on_path() {
        // Path on 5 vertices: α = 3; any clique cover needs ≥ ⌈5/2⌉ = 3.
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        assert!(clique_cover_bound(&g) >= 3);
    }

    #[test]
    fn max_clique_finds_planted_clique() {
        // Plant K4 on {0,1,2,3} plus a pendant path.
        let mut edges = vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        edges.extend([(3, 4), (4, 5)]);
        let g = Graph::from_edges(6, edges).unwrap();
        let clique = max_clique(&g);
        assert_eq!(clique.len(), 4);
        assert!(is_clique(&g, &clique));
    }

    #[test]
    fn max_clique_of_triangle_free_graph_is_edge() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        assert_eq!(max_clique(&g).len(), 2);
    }

    #[test]
    fn max_clique_of_empty_graph() {
        assert_eq!(max_clique(&Graph::empty(3)).len(), 1);
        assert!(max_clique(&Graph::empty(0)).is_empty());
    }
}
