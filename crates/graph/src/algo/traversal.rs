//! Breadth-first traversal primitives: distances, balls, components.
//!
//! The `r`-hop ball extraction here is the geometric core of the SLOCAL
//! model — when a node is processed with locality `r` it "sees" exactly
//! [`ball`] of radius `r` around itself — and of the LOCAL model, where
//! after `r` rounds a node's state can depend only on that same ball.

use crate::{Graph, NodeId};
use std::collections::VecDeque;

/// Distance value for unreachable vertices in [`bfs_distances`].
pub const UNREACHABLE: u32 = u32::MAX;

/// Single-source BFS distances from `source`.
///
/// Returns a vector of length `n` with hop distances; unreachable
/// vertices get [`UNREACHABLE`].
///
/// # Panics
///
/// Panics if `source` is out of range.
///
/// # Examples
///
/// ```
/// use pslocal_graph::{Graph, NodeId};
/// use pslocal_graph::algo::bfs_distances;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = Graph::from_edges(4, [(0, 1), (1, 2)])?;
/// let d = bfs_distances(&g, NodeId::new(0));
/// assert_eq!(&d[..3], &[0, 1, 2]);
/// assert_eq!(d[3], pslocal_graph::algo::UNREACHABLE);
/// # Ok(())
/// # }
/// ```
pub fn bfs_distances(graph: &Graph, source: NodeId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; graph.node_count()];
    dist[source.index()] = 0;
    let mut queue = VecDeque::from([source]);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()];
        for &u in graph.neighbors(v) {
            if dist[u.index()] == UNREACHABLE {
                dist[u.index()] = dv + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// A ball of radius `r` around a center vertex: the vertices at hop
/// distance `≤ r`, with their distances, in BFS (distance-sorted) order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ball {
    /// The center vertex.
    pub center: NodeId,
    /// The requested radius.
    pub radius: usize,
    /// Vertices of the ball in nondecreasing distance order; the first
    /// entry is always the center.
    pub vertices: Vec<NodeId>,
    /// `distances[i]` is the hop distance of `vertices[i]` from the
    /// center.
    pub distances: Vec<u32>,
}

impl Ball {
    /// Number of vertices in the ball.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// A ball always contains its center, so it is never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The vertices at exactly the boundary distance `r`.
    pub fn boundary(&self) -> impl Iterator<Item = NodeId> + '_ {
        let r = self.radius as u32;
        self.vertices.iter().zip(&self.distances).filter(move |(_, &d)| d == r).map(|(&v, _)| v)
    }
}

/// Extracts the ball of radius `r` around `center`.
///
/// Runs in time proportional to the edges inside the ball; the rest of
/// the graph is not touched (important: SLOCAL executions extract many
/// balls and must not pay `O(n)` each — we reuse a scratch buffer via
/// [`BallExtractor`] for that; this standalone function allocates).
///
/// # Panics
///
/// Panics if `center` is out of range.
pub fn ball(graph: &Graph, center: NodeId, r: usize) -> Ball {
    BallExtractor::new(graph.node_count()).extract(graph, center, r)
}

/// Reusable scratch state for repeated ball extractions on graphs of a
/// fixed size, avoiding an `O(n)` allocation per extraction.
///
/// # Examples
///
/// ```
/// use pslocal_graph::{Graph, NodeId};
/// use pslocal_graph::algo::BallExtractor;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])?;
/// let mut ex = BallExtractor::new(g.node_count());
/// let b = ex.extract(&g, NodeId::new(2), 1);
/// assert_eq!(b.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BallExtractor {
    /// `mark[v]` holds the distance of `v` in the *current* extraction,
    /// or `UNREACHABLE`.
    mark: Vec<u32>,
    /// Vertices touched by the current extraction (for O(ball) reset).
    touched: Vec<NodeId>,
}

impl BallExtractor {
    /// Creates an extractor for graphs with `n` vertices.
    pub fn new(n: usize) -> Self {
        BallExtractor { mark: vec![UNREACHABLE; n], touched: Vec::new() }
    }

    /// Extracts the ball of radius `r` around `center`.
    ///
    /// # Panics
    ///
    /// Panics if `center` is out of range or the extractor was sized for
    /// a smaller graph.
    pub fn extract(&mut self, graph: &Graph, center: NodeId, r: usize) -> Ball {
        assert!(
            graph.node_count() <= self.mark.len(),
            "extractor sized for {} nodes, graph has {}",
            self.mark.len(),
            graph.node_count()
        );
        // Reset only what the previous extraction touched.
        for &v in &self.touched {
            self.mark[v.index()] = UNREACHABLE;
        }
        self.touched.clear();

        let mut vertices = vec![center];
        let mut distances = vec![0u32];
        self.mark[center.index()] = 0;
        self.touched.push(center);
        let mut head = 0;
        while head < vertices.len() {
            let v = vertices[head];
            let dv = distances[head];
            head += 1;
            if dv as usize >= r {
                continue;
            }
            for &u in graph.neighbors(v) {
                if self.mark[u.index()] == UNREACHABLE {
                    self.mark[u.index()] = dv + 1;
                    self.touched.push(u);
                    vertices.push(u);
                    distances.push(dv + 1);
                }
            }
        }
        Ball { center, radius: r, vertices, distances }
    }
}

/// Connected components; `components[v]` is the 0-based component index
/// of `v`, components numbered in order of their smallest vertex.
///
/// Returns `(component_of, component_count)`.
pub fn connected_components(graph: &Graph) -> (Vec<u32>, usize) {
    let n = graph.node_count();
    let mut comp = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue = VecDeque::new();
    for s in 0..n {
        if comp[s] != u32::MAX {
            continue;
        }
        comp[s] = next;
        queue.push_back(NodeId::new(s));
        while let Some(v) = queue.pop_front() {
            for &u in graph.neighbors(v) {
                if comp[u.index()] == u32::MAX {
                    comp[u.index()] = next;
                    queue.push_back(u);
                }
            }
        }
        next += 1;
    }
    (comp, next as usize)
}

/// The vertex sets of all connected components, ordered by smallest
/// member.
pub fn component_vertex_sets(graph: &Graph) -> Vec<Vec<NodeId>> {
    let (comp, count) = connected_components(graph);
    let mut sets = vec![Vec::new(); count];
    for v in graph.nodes() {
        sets[comp[v.index()] as usize].push(v);
    }
    sets
}

/// Whether the graph is connected (vacuously true for `n ≤ 1`).
pub fn is_connected(graph: &Graph) -> bool {
    graph.node_count() <= 1 || connected_components(graph).1 == 1
}

/// Eccentricity of `v`: maximum distance to a reachable vertex.
pub fn eccentricity(graph: &Graph, v: NodeId) -> u32 {
    bfs_distances(graph, v).into_iter().filter(|&d| d != UNREACHABLE).max().unwrap_or(0)
}

/// Exact diameter by all-pairs BFS (`O(n·m)`), ignoring unreachable
/// pairs. Returns 0 for graphs with fewer than two vertices.
///
/// Intended for test/benchmark instances; experiment harnesses use it on
/// clusters whose *weak diameter* the network decomposition bounds.
pub fn diameter(graph: &Graph) -> u32 {
    graph.nodes().map(|v| eccentricity(graph, v)).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1))).unwrap()
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path(5);
        let d = bfs_distances(&g, NodeId::new(2));
        assert_eq!(d, vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_handles_disconnection() {
        let g = Graph::from_edges(4, [(0, 1)]).unwrap();
        let d = bfs_distances(&g, NodeId::new(0));
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn ball_radius_zero_is_center_only() {
        let g = path(4);
        let b = ball(&g, NodeId::new(1), 0);
        assert_eq!(b.vertices, vec![NodeId::new(1)]);
        assert_eq!(b.distances, vec![0]);
        assert!(!b.is_empty());
    }

    #[test]
    fn ball_grows_with_radius() {
        let g = path(7); // 0-1-2-3-4-5-6
        let b1 = ball(&g, NodeId::new(3), 1);
        let b2 = ball(&g, NodeId::new(3), 2);
        assert_eq!(b1.len(), 3);
        assert_eq!(b2.len(), 5);
        assert!(b2.vertices.contains(&NodeId::new(1)));
        assert!(!b2.vertices.contains(&NodeId::new(0)));
        let boundary: Vec<_> = b2.boundary().collect();
        assert_eq!(boundary.len(), 2);
        assert!(boundary.contains(&NodeId::new(1)) && boundary.contains(&NodeId::new(5)));
    }

    #[test]
    fn ball_distances_are_nondecreasing() {
        let g = Graph::from_edges(6, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5)]).unwrap();
        let b = ball(&g, NodeId::new(0), 3);
        for w in b.distances.windows(2) {
            assert!(w[0] <= w[1]);
        }
        // Distances agree with a full BFS.
        let d = bfs_distances(&g, NodeId::new(0));
        for (v, dist) in b.vertices.iter().zip(&b.distances) {
            assert_eq!(d[v.index()], *dist);
        }
    }

    #[test]
    fn extractor_reuse_is_clean() {
        let g = path(6);
        let mut ex = BallExtractor::new(g.node_count());
        let b1 = ex.extract(&g, NodeId::new(0), 2);
        let b2 = ex.extract(&g, NodeId::new(5), 2);
        assert_eq!(b1.len(), 3);
        assert_eq!(b2.len(), 3);
        assert!(!b2.vertices.contains(&NodeId::new(0)));
        // A third extraction over the same region still works.
        let b3 = ex.extract(&g, NodeId::new(0), 5);
        assert_eq!(b3.len(), 6);
    }

    #[test]
    fn components_of_two_paths() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)]).unwrap();
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        let sets = component_vertex_sets(&g);
        assert_eq!(sets.len(), 2);
        assert_eq!(sets[0].len(), 3);
        assert!(!is_connected(&g));
        assert!(is_connected(&path(4)));
    }

    #[test]
    fn isolated_vertices_are_their_own_components() {
        let g = Graph::empty(3);
        let (_, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert!(is_connected(&Graph::empty(1)));
        assert!(is_connected(&Graph::empty(0)));
    }

    #[test]
    fn diameter_and_eccentricity() {
        let g = path(5);
        assert_eq!(eccentricity(&g, NodeId::new(2)), 2);
        assert_eq!(eccentricity(&g, NodeId::new(0)), 4);
        assert_eq!(diameter(&g), 4);
        assert_eq!(diameter(&Graph::empty(1)), 0);
        assert_eq!(diameter(&Graph::empty(0)), 0);
    }
}
