//! Graph algorithms shared across the workspace.
//!
//! Three families live here:
//!
//! * [`traversal`] — BFS distances, `r`-hop [`Ball`] extraction (the
//!   geometric primitive behind both the LOCAL and SLOCAL simulators),
//!   connected components, eccentricity/diameter.
//! * [`coloring`] — greedy coloring along arbitrary orders and the
//!   degeneracy (smallest-last) order.
//! * [`cliques`] — clique covers for upper-bounding the independence
//!   number, plus an exact max-clique for tiny instances.

pub mod cliques;
pub mod coloring;
pub mod traversal;

pub use cliques::{clique_cover_bound, greedy_clique_cover, is_clique, max_clique};
pub use coloring::{
    color_count, degeneracy_coloring, degeneracy_ordering, greedy_coloring,
    greedy_coloring_identity,
};
pub use traversal::{
    ball, bfs_distances, component_vertex_sets, connected_components, diameter, eccentricity,
    is_connected, Ball, BallExtractor, UNREACHABLE,
};
