//! Sequential vertex-coloring primitives.
//!
//! Greedy coloring along an order is the sequential shadow of the SLOCAL
//! locality-1 coloring algorithm, and the degeneracy (smallest-last)
//! order gives the classic `degeneracy + 1` color bound — both are used
//! as baselines and as building blocks by the oracle suite.

use crate::{Color, Graph, NodeId};

/// Greedily colors the graph in the given vertex order, assigning each
/// vertex the smallest color (0-based) unused by already-colored
/// neighbors.
///
/// Returns one color per vertex. Uses at most `Δ + 1` colors.
///
/// # Panics
///
/// Panics if `order` is not a permutation of the vertex set.
pub fn greedy_coloring(graph: &Graph, order: &[NodeId]) -> Vec<Color> {
    let n = graph.node_count();
    assert_eq!(order.len(), n, "order must list every vertex exactly once");
    let mut seen = vec![false; n];
    for &v in order {
        assert!(!seen[v.index()], "vertex {v} repeated in order");
        seen[v.index()] = true;
    }

    const UNCOLORED: u32 = u32::MAX;
    let mut colors = vec![UNCOLORED; n];
    let mut forbidden: Vec<u32> = Vec::new(); // stamp per color
    let mut stamp = 0u32;
    for &v in order {
        stamp += 1;
        let deg = graph.degree(v);
        if forbidden.len() < deg + 1 {
            forbidden.resize(deg + 1, 0);
        }
        for &u in graph.neighbors(v) {
            let cu = colors[u.index()];
            if cu != UNCOLORED && (cu as usize) < forbidden.len() {
                forbidden[cu as usize] = stamp;
            }
        }
        let c = (0..).find(|&c| c >= forbidden.len() as u32 || forbidden[c as usize] != stamp);
        // pslocal: allow(panic-path, "pigeonhole: deg(v) neighbors cannot forbid all deg(v)+1 candidate colors, so find() always yields")
        colors[v.index()] = c.expect("some color below deg+1 is free");
    }
    colors.into_iter().map(Color::from).collect()
}

/// Greedy coloring in identity vertex order.
pub fn greedy_coloring_identity(graph: &Graph) -> Vec<Color> {
    let order: Vec<NodeId> = graph.nodes().collect();
    greedy_coloring(graph, &order)
}

/// Number of distinct colors used by a coloring.
pub fn color_count(colors: &[Color]) -> usize {
    let mut seen: Vec<Color> = colors.to_vec();
    seen.sort_unstable();
    seen.dedup();
    seen.len()
}

/// Smallest-last (degeneracy) ordering together with the graph's
/// degeneracy `d`: repeatedly remove a minimum-degree vertex; the
/// returned order is the *reverse* removal order, so greedy coloring
/// along it uses at most `d + 1` colors.
///
/// Runs in `O((n + m) log n)` via a lazily-updated min-heap.
pub fn degeneracy_ordering(graph: &Graph) -> (Vec<NodeId>, usize) {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let n = graph.node_count();
    let mut degree: Vec<usize> = graph.nodes().map(|v| graph.degree(v)).collect();
    let mut heap: BinaryHeap<Reverse<(usize, NodeId)>> =
        graph.nodes().map(|v| Reverse((degree[v.index()], v))).collect();
    let mut removed = vec![false; n];
    let mut removal_order = Vec::with_capacity(n);
    let mut degeneracy = 0usize;
    while let Some(Reverse((d, v))) = heap.pop() {
        if removed[v.index()] || d != degree[v.index()] {
            continue; // stale heap entry
        }
        removed[v.index()] = true;
        degeneracy = degeneracy.max(d);
        removal_order.push(v);
        for &u in graph.neighbors(v) {
            if !removed[u.index()] {
                degree[u.index()] -= 1;
                heap.push(Reverse((degree[u.index()], u)));
            }
        }
    }
    removal_order.reverse();
    (removal_order, degeneracy)
}

/// Greedy coloring along the degeneracy order; uses at most
/// `degeneracy + 1` colors.
pub fn degeneracy_coloring(graph: &Graph) -> Vec<Color> {
    let (order, _) = degeneracy_ordering(graph);
    greedy_coloring(graph, &order)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Graph {
        Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n))).unwrap()
    }

    #[test]
    fn greedy_coloring_is_proper_and_small() {
        let g = cycle(6);
        let colors = greedy_coloring_identity(&g);
        assert!(g.is_proper_coloring(&colors));
        assert!(color_count(&colors) <= g.max_degree() + 1);
        // Even cycle: identity order 2-colors it.
        assert_eq!(color_count(&colors), 2);
    }

    #[test]
    fn odd_cycle_needs_three_colors() {
        let g = cycle(5);
        let colors = greedy_coloring_identity(&g);
        assert!(g.is_proper_coloring(&colors));
        assert_eq!(color_count(&colors), 3);
    }

    #[test]
    fn empty_graph_uses_one_color() {
        let g = Graph::empty(4);
        let colors = greedy_coloring_identity(&g);
        assert_eq!(color_count(&colors), 1);
        assert!(colors.iter().all(|&c| c == Color::new(0)));
    }

    #[test]
    fn zero_vertex_graph() {
        let g = Graph::empty(0);
        assert!(greedy_coloring_identity(&g).is_empty());
        let (order, d) = degeneracy_ordering(&g);
        assert!(order.is_empty());
        assert_eq!(d, 0);
    }

    #[test]
    #[should_panic(expected = "order must list every vertex")]
    fn short_order_panics() {
        let g = cycle(4);
        let _ = greedy_coloring(&g, &[NodeId::new(0)]);
    }

    #[test]
    #[should_panic(expected = "repeated in order")]
    fn repeated_order_panics() {
        let g = Graph::empty(2);
        let _ = greedy_coloring(&g, &[NodeId::new(0), NodeId::new(0)]);
    }

    #[test]
    fn degeneracy_of_tree_is_one() {
        // star K_{1,4}
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        let (order, d) = degeneracy_ordering(&g);
        assert_eq!(d, 1);
        assert_eq!(order.len(), 5);
        let colors = degeneracy_coloring(&g);
        assert!(g.is_proper_coloring(&colors));
        assert_eq!(color_count(&colors), 2);
    }

    #[test]
    fn degeneracy_of_complete_graph() {
        let n = 6;
        let g =
            Graph::from_edges(n, (0..n).flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))).unwrap();
        let (_, d) = degeneracy_ordering(&g);
        assert_eq!(d, n - 1);
        let colors = degeneracy_coloring(&g);
        assert!(g.is_proper_coloring(&colors));
        assert_eq!(color_count(&colors), n);
    }

    #[test]
    fn degeneracy_of_cycle_is_two() {
        let g = cycle(9);
        let (_, d) = degeneracy_ordering(&g);
        assert_eq!(d, 2);
        let colors = degeneracy_coloring(&g);
        assert!(g.is_proper_coloring(&colors));
        assert!(color_count(&colors) <= 3);
    }

    #[test]
    fn degeneracy_order_is_permutation() {
        let g =
            Graph::from_edges(7, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 0), (1, 4)])
                .unwrap();
        let (order, _) = degeneracy_ordering(&g);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        let expect: Vec<_> = g.nodes().collect();
        assert_eq!(sorted, expect);
    }
}
