//! Derived-graph operators: power graphs and line graphs.
//!
//! * [`power_graph`] `G^t` — edges between vertices at distance `≤ t`.
//!   The SLOCAL→LOCAL simulation of locality-`r` algorithms decomposes
//!   `G^{2r}` so that same-color clusters have non-overlapping `r`-balls
//!   (see `pslocal-slocal::simulate`).
//! * [`line_graph`] `L(G)` — vertices are the edges of `G`, adjacent
//!   when they share an endpoint. An independent set of `L(G)` is a
//!   matching of `G`, so the MIS machinery doubles as maximal-matching
//!   machinery.

use crate::algo::BallExtractor;
use crate::{EdgeId, Graph, GraphBuilder, NodeId};

/// The `t`-th power `G^t`: same vertex set, an edge `{u, v}` whenever
/// `1 ≤ dist_G(u, v) ≤ t`.
///
/// Runs one truncated BFS per vertex (`O(n · ball_t)`).
///
/// # Panics
///
/// Panics if `t == 0` (the 0th power has no edges and is almost surely
/// a caller bug; use [`Graph::empty`] explicitly instead).
///
/// # Examples
///
/// ```
/// use pslocal_graph::generators::classic::path;
/// use pslocal_graph::ops::power_graph;
///
/// let g = path(4); // 0-1-2-3
/// let g2 = power_graph(&g, 2);
/// assert_eq!(g2.edge_count(), 5); // all pairs except {0,3}
/// ```
pub fn power_graph(graph: &Graph, t: usize) -> Graph {
    assert!(t >= 1, "the 0th power is edgeless; construct it explicitly if intended");
    let n = graph.node_count();
    let mut builder = GraphBuilder::new(n);
    let mut extractor = BallExtractor::new(n);
    for v in graph.nodes() {
        let ball = extractor.extract(graph, v, t);
        for &u in &ball.vertices {
            if u > v {
                builder.add_edge(v, u);
            }
        }
    }
    builder.build()
}

/// The line graph `L(G)`: one vertex per edge of `G` (indexed by
/// [`EdgeId`], i.e. position in `G`'s canonical edge list), adjacent
/// when the edges share an endpoint.
///
/// Returns the line graph together with the edge list it indexes (the
/// `i`-th line-graph vertex is `edges[i]`).
///
/// # Examples
///
/// ```
/// use pslocal_graph::generators::classic::star;
/// use pslocal_graph::ops::line_graph;
///
/// // Edges of a star all share the hub: L(K_{1,4}) = K_4.
/// let (lg, _) = line_graph(&star(5));
/// assert_eq!(lg.node_count(), 4);
/// assert_eq!(lg.edge_count(), 6);
/// ```
pub fn line_graph(graph: &Graph) -> (Graph, Vec<(NodeId, NodeId)>) {
    let edges: Vec<(NodeId, NodeId)> = graph.edges().collect();
    let mut builder = GraphBuilder::new(edges.len());
    // Bucket edge ids by endpoint; each bucket forms a clique in L(G).
    let mut incident: Vec<Vec<u32>> = vec![Vec::new(); graph.node_count()];
    for (i, &(u, v)) in edges.iter().enumerate() {
        incident[u.index()].push(i as u32);
        incident[v.index()].push(i as u32);
    }
    for bucket in &incident {
        for (a, &i) in bucket.iter().enumerate() {
            for &j in &bucket[a + 1..] {
                builder.add_edge(NodeId::from(i), NodeId::from(j));
            }
        }
    }
    (builder.build(), edges)
}

/// Translates an independent set of `L(G)` (given as line-graph
/// vertices) back to the matching of `G` it represents.
///
/// # Panics
///
/// Panics if an index is out of range for the edge list.
pub fn matching_from_line_graph_set(
    edges: &[(NodeId, NodeId)],
    set: &[NodeId],
) -> Vec<(NodeId, NodeId)> {
    set.iter().map(|&i| edges[i.index()]).collect()
}

/// Whether `matching` is a matching of `graph` (edges exist and are
/// pairwise disjoint).
pub fn is_matching(graph: &Graph, matching: &[(NodeId, NodeId)]) -> bool {
    let mut used = vec![false; graph.node_count()];
    for &(u, v) in matching {
        if u == v || !graph.has_edge(u, v) || used[u.index()] || used[v.index()] {
            return false;
        }
        used[u.index()] = true;
        used[v.index()] = true;
    }
    true
}

/// Whether `matching` is a *maximal* matching (no edge can be added).
pub fn is_maximal_matching(graph: &Graph, matching: &[(NodeId, NodeId)]) -> bool {
    if !is_matching(graph, matching) {
        return false;
    }
    let mut used = vec![false; graph.node_count()];
    for &(u, v) in matching {
        used[u.index()] = true;
        used[v.index()] = true;
    }
    graph.edges().all(|(u, v)| used[u.index()] || used[v.index()])
}

/// The `t`-th power's relation to edge ids: convenience check used by
/// tests — whether `{u, v}` are within distance `t` in `graph`.
pub fn within_distance(graph: &Graph, u: NodeId, v: NodeId, t: usize) -> bool {
    let ball = crate::algo::ball(graph, u, t);
    ball.vertices.contains(&v)
}

/// Maps a graph edge to its [`EdgeId`] in the canonical list, if
/// present.
pub fn edge_id_of(graph: &Graph, u: NodeId, v: NodeId) -> Option<EdgeId> {
    let key = (u.min(v), u.max(v));
    let edges: Vec<(NodeId, NodeId)> = graph.edges().collect();
    edges.binary_search(&key).ok().map(EdgeId::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic::{complete, cycle, path, star};
    use crate::generators::random::gnp;
    use rand::SeedableRng;

    #[test]
    fn power_of_path_matches_distance_predicate() {
        let g = path(6);
        for t in 1..=4 {
            let gt = power_graph(&g, t);
            for u in g.nodes() {
                for v in g.nodes() {
                    if u < v {
                        let expect = within_distance(&g, u, v, t);
                        assert_eq!(gt.has_edge(u, v), expect, "t={t}, pair ({u},{v})");
                    }
                }
            }
        }
    }

    #[test]
    fn high_power_is_complete_per_component() {
        let g = cycle(7);
        let gt = power_graph(&g, 3); // diameter 3
        assert_eq!(gt.edge_count(), 21);
        let two = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let p = power_graph(&two, 5);
        assert_eq!(p.edge_count(), 2, "components stay separate");
    }

    #[test]
    fn first_power_is_identity() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let g = gnp(&mut rng, 30, 0.15);
        assert_eq!(power_graph(&g, 1), g);
    }

    #[test]
    #[should_panic(expected = "0th power")]
    fn zeroth_power_panics() {
        let _ = power_graph(&path(3), 0);
    }

    #[test]
    fn line_graph_of_path_is_path() {
        let (lg, edges) = line_graph(&path(5)); // 4 edges in a row
        assert_eq!(lg.node_count(), 4);
        assert_eq!(lg.edge_count(), 3);
        assert_eq!(edges.len(), 4);
    }

    #[test]
    fn line_graph_of_triangle_is_triangle() {
        let (lg, _) = line_graph(&complete(3));
        assert_eq!(lg.node_count(), 3);
        assert_eq!(lg.edge_count(), 3);
    }

    #[test]
    fn line_graph_independent_sets_are_matchings() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let g = gnp(&mut rng, 24, 0.2);
        let (lg, edges) = line_graph(&g);
        // Greedy MIS on L(G) → maximal matching of G.
        let mut blocked = vec![false; lg.node_count()];
        let mut set = Vec::new();
        for v in lg.nodes() {
            if !blocked[v.index()] {
                set.push(v);
                blocked[v.index()] = true;
                for &u in lg.neighbors(v) {
                    blocked[u.index()] = true;
                }
            }
        }
        let matching = matching_from_line_graph_set(&edges, &set);
        assert!(is_maximal_matching(&g, &matching));
    }

    #[test]
    fn matching_predicates() {
        let g = path(5);
        let m1 = [(NodeId::new(0), NodeId::new(1)), (NodeId::new(2), NodeId::new(3))];
        assert!(is_matching(&g, &m1));
        assert!(is_maximal_matching(&g, &m1));
        let overlapping = [(NodeId::new(0), NodeId::new(1)), (NodeId::new(1), NodeId::new(2))];
        assert!(!is_matching(&g, &overlapping));
        let sparse = [(NodeId::new(0), NodeId::new(1))];
        assert!(is_matching(&g, &sparse));
        assert!(!is_maximal_matching(&g, &sparse)); // {2,3} addable
        let non_edge = [(NodeId::new(0), NodeId::new(2))];
        assert!(!is_matching(&g, &non_edge));
        assert!(is_maximal_matching(&star(1), &[])); // single vertex, no edges
    }

    #[test]
    fn edge_id_lookup() {
        let g = path(4);
        let id = edge_id_of(&g, NodeId::new(2), NodeId::new(1)).unwrap();
        assert_eq!(g.edge_endpoints(id), (NodeId::new(1), NodeId::new(2)));
        assert!(edge_id_of(&g, NodeId::new(0), NodeId::new(3)).is_none());
    }
}
