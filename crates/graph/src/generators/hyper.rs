//! Hypergraph generators, most importantly the **planted conflict-free
//! instance** family.
//!
//! The hardness proof of Theorem 1.1 reduces from conflict-free
//! multicoloring on hypergraphs that "admit a conflict-free k-coloring
//! where each node only has a single color and k = polylog n". The
//! paper never constructs such hypergraphs (it inherits them from
//! \[GKM17\]); experiments need concrete ones with a *known* k, so
//! [`planted_cf_instance`] plants a hidden coloring `f : V → {0..k-1}`
//! and only emits hyperedges that `f` makes happy. Because `f` is
//! conflict-free for the whole edge set, it is conflict-free for every
//! residual subset `E_i` the reduction produces — exactly the property
//! the proof of Theorem 1.1 uses ("as H and also H_i ⊆ H admit a
//! conflictfree k-coloring").

use crate::palette::Palette;
use crate::{Color, Hypergraph, HypergraphBuilder, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// A hypergraph with a planted (hidden) conflict-free `k`-coloring.
#[derive(Debug, Clone)]
pub struct PlantedCfInstance {
    /// The generated hypergraph `H = (V, E)`.
    pub hypergraph: Hypergraph,
    /// The planted coloring; `planted_coloring[v]` is the color of
    /// vertex `v`, drawn from [`Palette::base`]`(k)`.
    pub planted_coloring: Vec<Color>,
    /// Palette size of the planted coloring.
    pub k: usize,
    /// Almost-uniformity slack used during generation.
    pub epsilon: f64,
}

/// Parameters for [`planted_cf_instance`].
#[derive(Debug, Clone, Copy)]
pub struct PlantedCfParams {
    /// Number of vertices.
    pub n: usize,
    /// Number of hyperedges.
    pub m: usize,
    /// Palette size of the planted coloring (edge sizes start at `k`).
    pub k: usize,
    /// Almost-uniformity slack: edge sizes lie in `[k, (1+ε)·k]`.
    pub epsilon: f64,
}

impl PlantedCfParams {
    /// Convenient constructor with the paper's "small ε" default of 0.5.
    pub fn new(n: usize, m: usize, k: usize) -> Self {
        PlantedCfParams { n, m, k, epsilon: 0.5 }
    }

    /// Largest edge size the parameters allow: `⌊(1+ε)·k⌋`, clamped to
    /// `n`.
    pub fn max_edge_size(&self) -> usize {
        (((1.0 + self.epsilon) * self.k as f64).floor() as usize).clamp(self.k, self.n)
    }
}

/// Generates an almost-uniform hypergraph together with a planted
/// conflict-free `k`-coloring (see module docs).
///
/// Vertex colors are balanced (round-robin over a random permutation) so
/// every color class has `⌊n/k⌋` or `⌈n/k⌉` members. Each hyperedge
/// picks a uniform size `s ∈ [k, (1+ε)k]`, a uniform *witness* vertex
/// `w`, and `s - 1` further members whose planted color differs from
/// `f(w)` — hence `w`'s color is unique in the edge and the planted
/// coloring is conflict-free.
///
/// # Panics
///
/// Panics if the parameters are infeasible: `k` must be at least 1, and
/// there must be enough off-color vertices, i.e.
/// `max_edge_size - 1 ≤ n - ⌈n/k⌉`, which for `k ≥ 2` holds whenever
/// `n ≥ 4k` (a debug-friendly message reports the violated condition).
pub fn planted_cf_instance<R: Rng + ?Sized>(
    rng: &mut R,
    params: PlantedCfParams,
) -> PlantedCfInstance {
    let PlantedCfParams { n, m, k, epsilon } = params;
    assert!(k >= 1, "palette size k must be positive");
    assert!(n >= k, "need at least k = {k} vertices, got {n}");
    let max_size = params.max_edge_size();
    let largest_class = n.div_ceil(k);
    assert!(
        max_size - 1 <= n - largest_class,
        "infeasible planted instance: edges of size up to {max_size} need {} off-color \
         vertices but only {} exist (n = {n}, k = {k})",
        max_size - 1,
        n - largest_class,
    );

    // Balanced color assignment over a random permutation.
    let palette = Palette::base(k);
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(rng);
    let mut coloring = vec![Color::new(0); n];
    for (i, &v) in perm.iter().enumerate() {
        coloring[v] = palette.color(i % k);
    }

    // Index vertices by color class for fast off-color sampling.
    let mut classes: Vec<Vec<NodeId>> = vec![Vec::new(); k];
    for v in 0..n {
        // pslocal: allow(panic-path, "the loop above drew every color from this same palette, so index_of cannot miss")
        classes[palette.index_of(coloring[v]).expect("color from palette")].push(NodeId::new(v));
    }

    let mut builder = HypergraphBuilder::new(n);
    let mut scratch: Vec<NodeId> = Vec::with_capacity(n);
    for _ in 0..m {
        let size = rng.gen_range(k..=max_size);
        let witness = NodeId::new(rng.gen_range(0..n));
        // pslocal: allow(panic-path, "witness colors were drawn from this same palette during planting, so index_of cannot miss")
        let witness_class = palette.index_of(coloring[witness.index()]).expect("in palette");
        scratch.clear();
        for (c, class) in classes.iter().enumerate() {
            if c != witness_class {
                scratch.extend_from_slice(class);
            }
        }
        let (others, _) = scratch.partial_shuffle(rng, size - 1);
        let mut members = others.to_vec();
        members.push(witness);
        builder.add_edge(members);
    }

    PlantedCfInstance { hypergraph: builder.build(), planted_coloring: coloring, k, epsilon }
}

/// A disjoint union of `copies` independent planted instances: copy
/// `j` occupies vertices `j·n .. (j+1)·n` and contributes `m`
/// hyperedges drawn only from its own vertex block. The union is again
/// a planted conflict-free instance (the concatenated colorings
/// witness it), but hyperedges of different copies share no vertex, so
/// the Section 2 conflict graph `G_k` splits into **at least `copies`
/// connected components** (`E_vertex`/`E_edge`/`E_color` edges all
/// stay within one hyperedge's copy) — the workload the
/// component-parallel reduction drivers scale on.
///
/// # Panics
///
/// Panics if `copies == 0` or `params` are infeasible for a single
/// copy (see [`planted_cf_instance`]).
pub fn multi_component_cf_instance<R: Rng + ?Sized>(
    rng: &mut R,
    params: PlantedCfParams,
    copies: usize,
) -> PlantedCfInstance {
    assert!(copies >= 1, "need at least one planted copy");
    let PlantedCfParams { n, k, epsilon, .. } = params;
    let mut builder = HypergraphBuilder::new(n * copies);
    let mut coloring = Vec::with_capacity(n * copies);
    for j in 0..copies {
        let inst = planted_cf_instance(rng, params);
        let offset = j * n;
        for e in inst.hypergraph.edge_ids() {
            builder
                .add_edge(inst.hypergraph.edge(e).iter().map(|v| NodeId::new(v.index() + offset)));
        }
        coloring.extend(inst.planted_coloring);
    }
    PlantedCfInstance { hypergraph: builder.build(), planted_coloring: coloring, k, epsilon }
}

/// A random `s`-uniform hypergraph: `m` hyperedges, each a uniform
/// `s`-subset of the vertices.
///
/// # Panics
///
/// Panics if `s > n` or `s == 0`.
pub fn random_uniform_hypergraph<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    m: usize,
    s: usize,
) -> Hypergraph {
    assert!(s >= 1 && s <= n, "edge size {s} invalid for {n} vertices");
    let mut builder = HypergraphBuilder::new(n);
    let mut pool: Vec<NodeId> = (0..n).map(NodeId::new).collect();
    for _ in 0..m {
        let (chosen, _) = pool.partial_shuffle(rng, s);
        let members = chosen.to_vec();
        builder.add_edge(members);
    }
    builder.build()
}

/// A random **interval hypergraph**: vertices `0..n` on a line, each
/// hyperedge a contiguous interval `[a, a + len - 1]` with
/// `len ∈ [min_len, max_len]`.
///
/// Returns the hypergraph and the interval bounds `(a, b)` (inclusive)
/// per hyperedge, in hyperedge-id order. Interval hypergraphs are the
/// \[DN18\] setting whose MaxIS-based conflict-free coloring the paper
/// adapts.
///
/// # Panics
///
/// Panics unless `1 ≤ min_len ≤ max_len ≤ n`.
pub fn interval_hypergraph<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    m: usize,
    min_len: usize,
    max_len: usize,
) -> (Hypergraph, Vec<(usize, usize)>) {
    assert!(
        1 <= min_len && min_len <= max_len && max_len <= n,
        "interval lengths [{min_len}, {max_len}] invalid for {n} vertices"
    );
    let mut builder = HypergraphBuilder::new(n);
    let mut bounds = Vec::with_capacity(m);
    for _ in 0..m {
        let len = rng.gen_range(min_len..=max_len);
        let a = rng.gen_range(0..=n - len);
        let b = a + len - 1;
        builder.add_edge((a..=b).map(NodeId::new));
        bounds.push((a, b));
    }
    (builder.build(), bounds)
}

/// Checks that `coloring` assigns to every hyperedge of `h` at least one
/// uniquely-colored vertex (i.e. is conflict-free), treating the slice
/// as a total single-coloring. Stand-alone helper so the generator can
/// be validated without depending on `pslocal-cfcolor`.
pub fn is_conflict_free_single_coloring(h: &Hypergraph, coloring: &[Color]) -> bool {
    assert_eq!(coloring.len(), h.node_count(), "coloring length mismatch");
    h.edge_ids().all(|e| {
        let members = h.edge(e);
        members.iter().any(|&v| {
            let cv = coloring[v.index()];
            members.iter().filter(|&&u| coloring[u.index()] == cv).count() == 1
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn planted_instance_is_conflict_free() {
        for seed in 0..5 {
            let inst = planted_cf_instance(&mut rng(seed), PlantedCfParams::new(60, 40, 4));
            assert_eq!(inst.hypergraph.edge_count(), 40);
            assert_eq!(inst.hypergraph.node_count(), 60);
            assert!(is_conflict_free_single_coloring(&inst.hypergraph, &inst.planted_coloring));
        }
    }

    #[test]
    fn planted_instance_is_almost_uniform() {
        let params = PlantedCfParams { n: 100, m: 50, k: 6, epsilon: 0.5 };
        let inst = planted_cf_instance(&mut rng(9), params);
        assert!(inst.hypergraph.require_almost_uniform(0.5).is_ok());
        assert!(inst.hypergraph.min_edge_size().unwrap() >= 6);
        assert!(inst.hypergraph.max_edge_size().unwrap() <= 9);
    }

    #[test]
    fn planted_coloring_is_balanced() {
        let inst = planted_cf_instance(&mut rng(3), PlantedCfParams::new(20, 10, 4));
        let mut counts = vec![0usize; 4];
        for c in &inst.planted_coloring {
            counts[c.index()] += 1;
        }
        assert!(counts.iter().all(|&c| c == 5), "counts = {counts:?}");
    }

    #[test]
    fn planted_generation_is_seed_deterministic() {
        let p = PlantedCfParams::new(50, 30, 5);
        let a = planted_cf_instance(&mut rng(11), p);
        let b = planted_cf_instance(&mut rng(11), p);
        assert_eq!(a.hypergraph, b.hypergraph);
        assert_eq!(a.planted_coloring, b.planted_coloring);
    }

    #[test]
    fn planted_k1_means_singleton_edges() {
        // k = 1 forces edges of size exactly 1 (max_size = 1): every
        // edge is trivially happy.
        let inst =
            planted_cf_instance(&mut rng(1), PlantedCfParams { n: 10, m: 5, k: 1, epsilon: 0.0 });
        assert!(inst.hypergraph.edge_ids().all(|e| inst.hypergraph.edge_size(e) == 1));
    }

    #[test]
    #[should_panic(expected = "infeasible planted instance")]
    fn infeasible_parameters_panic() {
        // max edge size 6 needs 5 off-color vertices, but with n = 6 and
        // k = 3 only 4 vertices lie outside the largest color class.
        let _ =
            planted_cf_instance(&mut rng(0), PlantedCfParams { n: 6, m: 1, k: 3, epsilon: 1.0 });
    }

    #[test]
    fn multi_component_instance_is_a_vertex_disjoint_union() {
        let params = PlantedCfParams::new(20, 8, 3);
        let inst = multi_component_cf_instance(&mut rng(7), params, 4);
        assert_eq!(inst.hypergraph.node_count(), 80);
        assert_eq!(inst.hypergraph.edge_count(), 32);
        assert!(is_conflict_free_single_coloring(&inst.hypergraph, &inst.planted_coloring));
        // Edge j·8 + i belongs to copy j: all members in its block.
        for (i, e) in inst.hypergraph.edge_ids().enumerate() {
            let copy = i / 8;
            assert!(
                inst.hypergraph.edge(e).iter().all(|v| (v.index() / 20) == copy),
                "edge {i} leaks out of copy {copy}"
            );
        }
    }

    #[test]
    fn multi_component_generation_is_seed_deterministic() {
        let params = PlantedCfParams::new(16, 6, 2);
        let a = multi_component_cf_instance(&mut rng(13), params, 3);
        let b = multi_component_cf_instance(&mut rng(13), params, 3);
        assert_eq!(a.hypergraph, b.hypergraph);
        assert_eq!(a.planted_coloring, b.planted_coloring);
    }

    #[test]
    #[should_panic(expected = "at least one planted copy")]
    fn multi_component_rejects_zero_copies() {
        let _ = multi_component_cf_instance(&mut rng(0), PlantedCfParams::new(16, 6, 2), 0);
    }

    #[test]
    fn uniform_hypergraph_shapes() {
        let h = random_uniform_hypergraph(&mut rng(2), 30, 12, 5);
        assert_eq!(h.edge_count(), 12);
        assert!(h.edge_ids().all(|e| h.edge_size(e) == 5));
        assert!(h.is_almost_uniform(0.0));
    }

    #[test]
    fn interval_hypergraph_edges_are_contiguous() {
        let (h, bounds) = interval_hypergraph(&mut rng(4), 40, 15, 3, 8);
        assert_eq!(h.edge_count(), 15);
        for (e, &(a, b)) in h.edge_ids().zip(&bounds) {
            let members = h.edge(e);
            assert_eq!(members.len(), b - a + 1);
            for (i, &v) in members.iter().enumerate() {
                assert_eq!(v.index(), a + i, "members must be the contiguous run");
            }
            assert!(b < 40);
        }
    }

    #[test]
    fn interval_lengths_respect_range() {
        let (h, _) = interval_hypergraph(&mut rng(5), 25, 20, 2, 4);
        assert!(h.edge_ids().all(|e| (2..=4).contains(&h.edge_size(e))));
    }
}
