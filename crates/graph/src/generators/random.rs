//! Seeded random graph generators.
//!
//! All generators take an explicit `&mut impl Rng`; the experiment
//! harnesses thread a seeded `StdRng` through so that every table in
//! EXPERIMENTS.md regenerates bit-identically.

use crate::{Graph, GraphBuilder, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Erdős–Rényi `G(n, p)`: each of the `n·(n-1)/2` potential edges is
/// present independently with probability `p`.
///
/// # Panics
///
/// Panics unless `0 ≤ p ≤ 1`.
pub fn gnp<R: Rng + ?Sized>(rng: &mut R, n: usize, p: f64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "edge probability {p} outside [0, 1]");
    let mut b = GraphBuilder::new(n);
    if p == 0.0 {
        return b.build();
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if p >= 1.0 || rng.gen_bool(p) {
                b.add_edge(NodeId::new(i), NodeId::new(j));
            }
        }
    }
    b.build()
}

/// `G(n, m)`: exactly `m` distinct edges sampled uniformly.
///
/// # Panics
///
/// Panics if `m` exceeds the number of vertex pairs.
pub fn gnm<R: Rng + ?Sized>(rng: &mut R, n: usize, m: usize) -> Graph {
    let max = n * n.saturating_sub(1) / 2;
    assert!(m <= max, "requested {m} edges but only {max} pairs exist");
    // For the densities used in the suite, rejection sampling is fine.
    let mut chosen = std::collections::HashSet::with_capacity(m);
    let mut b = GraphBuilder::with_edge_capacity(n, m);
    while chosen.len() < m {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i == j {
            continue;
        }
        let pair = (i.min(j), i.max(j));
        if chosen.insert(pair) {
            b.add_edge(NodeId::new(pair.0), NodeId::new(pair.1));
        }
    }
    b.build()
}

/// A uniformly random labelled tree on `n` vertices (random attachment:
/// vertex `i` connects to a uniformly chosen earlier vertex — a random
/// recursive tree, connected by construction).
pub fn random_tree<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Graph {
    let mut b = GraphBuilder::with_edge_capacity(n, n.saturating_sub(1));
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        b.add_edge(NodeId::new(parent), NodeId::new(i));
    }
    b.build()
}

/// A random `d`-regular(ish) graph via the configuration model with
/// retries: pairs up `d` stubs per vertex, rejecting loops and parallel
/// edges; after `max_attempts` full restarts it returns the best
/// (possibly slightly irregular) result by dropping conflicting pairs.
///
/// # Panics
///
/// Panics if `n·d` is odd or `d ≥ n`.
pub fn random_regular<R: Rng + ?Sized>(rng: &mut R, n: usize, d: usize) -> Graph {
    assert!((n * d).is_multiple_of(2), "n·d must be even (n = {n}, d = {d})");
    assert!(d < n, "degree {d} must be below n = {n}");
    const MAX_ATTEMPTS: usize = 50;
    let mut best: Option<Graph> = None;
    for _ in 0..MAX_ATTEMPTS {
        let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
        stubs.shuffle(rng);
        let mut b = GraphBuilder::with_edge_capacity(n, n * d / 2);
        let mut seen = std::collections::HashSet::with_capacity(n * d / 2);
        let mut clean = true;
        for pair in stubs.chunks(2) {
            let (u, v) = (pair[0], pair[1]);
            if u == v || !seen.insert((u.min(v), u.max(v))) {
                clean = false;
                continue;
            }
            b.add_edge(NodeId::new(u), NodeId::new(v));
        }
        let g = b.build();
        if clean {
            return g;
        }
        if best.as_ref().is_none_or(|bg| g.edge_count() > bg.edge_count()) {
            best = Some(g);
        }
    }
    // pslocal: allow(panic-path, "the attempt loop runs at least once for any parameter values, so best is always Some")
    best.expect("at least one attempt ran")
}

/// A random bipartite graph: sides `0..a` and `a..a+b`, each cross pair
/// present with probability `p`.
///
/// # Panics
///
/// Panics unless `0 ≤ p ≤ 1`.
pub fn random_bipartite<R: Rng + ?Sized>(rng: &mut R, a: usize, b: usize, p: f64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "edge probability {p} outside [0, 1]");
    let mut builder = GraphBuilder::new(a + b);
    for i in 0..a {
        for j in 0..b {
            if p >= 1.0 || (p > 0.0 && rng.gen_bool(p)) {
                builder.add_edge(NodeId::new(i), NodeId::new(a + j));
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn gnp_extremes() {
        let mut r = rng(1);
        assert_eq!(gnp(&mut r, 10, 0.0).edge_count(), 0);
        assert_eq!(gnp(&mut r, 10, 1.0).edge_count(), 45);
    }

    #[test]
    fn gnp_is_deterministic_under_seed() {
        let g1 = gnp(&mut rng(7), 30, 0.2);
        let g2 = gnp(&mut rng(7), 30, 0.2);
        assert_eq!(g1, g2);
        let g3 = gnp(&mut rng(8), 30, 0.2);
        assert_ne!(g1, g3, "different seeds should (overwhelmingly) differ");
    }

    #[test]
    fn gnp_density_is_plausible() {
        let g = gnp(&mut rng(2), 100, 0.3);
        let expected = 0.3 * (100.0 * 99.0 / 2.0);
        let m = g.edge_count() as f64;
        assert!((m - expected).abs() < 0.2 * expected, "m = {m}, expected ≈ {expected}");
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn gnp_bad_probability_panics() {
        let _ = gnp(&mut rng(0), 5, 1.5);
    }

    #[test]
    fn gnm_has_exact_edge_count() {
        let g = gnm(&mut rng(3), 20, 37);
        assert_eq!(g.edge_count(), 37);
        assert_eq!(gnm(&mut rng(3), 5, 0).edge_count(), 0);
        assert_eq!(gnm(&mut rng(3), 5, 10).edge_count(), 10); // complete K5
    }

    #[test]
    #[should_panic(expected = "only")]
    fn gnm_too_many_edges_panics() {
        let _ = gnm(&mut rng(0), 4, 7);
    }

    #[test]
    fn random_tree_is_spanning_tree() {
        for seed in 0..5 {
            let g = random_tree(&mut rng(seed), 40);
            assert_eq!(g.edge_count(), 39);
            assert!(is_connected(&g));
        }
        assert_eq!(random_tree(&mut rng(0), 1).edge_count(), 0);
        assert_eq!(random_tree(&mut rng(0), 0).node_count(), 0);
    }

    #[test]
    fn random_regular_degrees() {
        let g = random_regular(&mut rng(4), 24, 3);
        // With retries this should be exactly regular almost always.
        let irregular = g.nodes().filter(|&v| g.degree(v) != 3).count();
        assert!(irregular <= 2, "too many irregular vertices: {irregular}");
        assert!(g.edge_count() >= 24 * 3 / 2 - 1);
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn random_regular_odd_product_panics() {
        let _ = random_regular(&mut rng(0), 5, 3);
    }

    #[test]
    fn random_bipartite_respects_sides() {
        let g = random_bipartite(&mut rng(5), 6, 7, 0.5);
        for (u, v) in g.edges() {
            let side_u = u.index() < 6;
            let side_v = v.index() < 6;
            assert_ne!(side_u, side_v, "edge inside one side: ({u}, {v})");
        }
        assert_eq!(random_bipartite(&mut rng(5), 3, 3, 1.0).edge_count(), 9);
    }
}
