//! Graph and hypergraph generators.
//!
//! * [`classic`] — deterministic families (paths, cycles, grids, cliques,
//!   cluster graphs with known independence number, …).
//! * [`random`] — seeded random families (`G(n,p)`, `G(n,m)`, random
//!   trees, near-regular graphs, bipartite).
//! * [`hyper`] — hypergraph families, headlined by
//!   [`planted_cf_instance`]: almost-uniform
//!   hypergraphs with a *planted* conflict-free `k`-coloring, the input
//!   family of the Theorem 1.1 reduction experiments.

pub mod classic;
pub mod hyper;
pub mod random;

pub use classic::{
    binary_tree, cluster_graph, complete, complete_bipartite, cycle, grid, path, star,
};
pub use hyper::{
    interval_hypergraph, is_conflict_free_single_coloring, planted_cf_instance,
    random_uniform_hypergraph, PlantedCfInstance, PlantedCfParams,
};
pub use random::{gnm, gnp, random_bipartite, random_regular, random_tree};
