//! Deterministic graph families used throughout tests and experiments.

use crate::{Graph, GraphBuilder, NodeId};

/// The path `P_n`: vertices `0..n`, edges `{i, i+1}`.
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::with_edge_capacity(n, n.saturating_sub(1));
    for i in 1..n {
        b.add_edge(NodeId::new(i - 1), NodeId::new(i));
    }
    b.build()
}

/// The cycle `C_n` (requires `n ≥ 3`).
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 vertices, got {n}");
    let mut b = GraphBuilder::with_edge_capacity(n, n);
    for i in 0..n {
        b.add_edge(NodeId::new(i), NodeId::new((i + 1) % n));
    }
    b.build()
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::with_edge_capacity(n, n * n.saturating_sub(1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_edge(NodeId::new(i), NodeId::new(j));
        }
    }
    b.build()
}

/// The star `K_{1,n-1}` with center 0.
pub fn star(n: usize) -> Graph {
    let mut b = GraphBuilder::with_edge_capacity(n, n.saturating_sub(1));
    for i in 1..n {
        b.add_edge(NodeId::new(0), NodeId::new(i));
    }
    b.build()
}

/// The complete bipartite graph `K_{a,b}`; side A is `0..a`, side B is
/// `a..a+b`.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut builder = GraphBuilder::with_edge_capacity(a + b, a * b);
    for i in 0..a {
        for j in 0..b {
            builder.add_edge(NodeId::new(i), NodeId::new(a + j));
        }
    }
    builder.build()
}

/// The `rows × cols` grid graph; vertex `(r, c)` has index `r·cols + c`.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let mut b = GraphBuilder::new(n);
    for r in 0..rows {
        for c in 0..cols {
            let v = NodeId::new(r * cols + c);
            if c + 1 < cols {
                b.add_edge(v, NodeId::new(r * cols + c + 1));
            }
            if r + 1 < rows {
                b.add_edge(v, NodeId::new((r + 1) * cols + c));
            }
        }
    }
    b.build()
}

/// A complete binary tree on `n` vertices; vertex `i`'s children are
/// `2i + 1` and `2i + 2` (heap layout).
pub fn binary_tree(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for child in [2 * i + 1, 2 * i + 2] {
            if child < n {
                b.add_edge(NodeId::new(i), NodeId::new(child));
            }
        }
    }
    b.build()
}

/// Disjoint union of `count` cliques of `size` vertices each — a *cluster
/// graph*, whose independence number is exactly `count`. Used to
/// calibrate oracles (the optimum is known in closed form).
pub fn cluster_graph(count: usize, size: usize) -> Graph {
    assert!(size >= 1, "cliques must be non-empty");
    let n = count * size;
    let mut b = GraphBuilder::new(n);
    for c in 0..count {
        let base = c * size;
        for i in 0..size {
            for j in (i + 1)..size {
                b.add_edge(NodeId::new(base + i), NodeId::new(base + j));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{diameter, is_connected};

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.degree(NodeId::new(0)), 1);
        assert!(is_connected(&g));
        assert_eq!(diameter(&g), 4);
        assert_eq!(path(0).node_count(), 0);
        assert_eq!(path(1).edge_count(), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6);
        assert_eq!(g.edge_count(), 6);
        assert!(g.nodes().all(|v| g.degree(v) == 2));
        assert_eq!(diameter(&g), 3);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_cycle_panics() {
        let _ = cycle(2);
    }

    #[test]
    fn complete_shape() {
        let g = complete(5);
        assert_eq!(g.edge_count(), 10);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert_eq!(complete(1).edge_count(), 0);
        assert_eq!(complete(0).node_count(), 0);
    }

    #[test]
    fn star_shape() {
        let g = star(6);
        assert_eq!(g.degree(NodeId::new(0)), 5);
        assert!((1..6).all(|i| g.degree(NodeId::new(i)) == 1));
    }

    #[test]
    fn bipartite_shape() {
        let g = complete_bipartite(2, 3);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 6);
        assert!(!g.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(g.has_edge(NodeId::new(0), NodeId::new(2)));
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        // edges: 3*3 horizontal + 2*4 vertical = 17
        assert_eq!(g.edge_count(), 17);
        assert_eq!(g.degree(NodeId::new(0)), 2); // corner
        assert_eq!(g.degree(NodeId::new(5)), 4); // interior (1,1)
        assert_eq!(diameter(&g), 5);
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(7);
        assert_eq!(g.edge_count(), 6);
        assert!(is_connected(&g));
        assert_eq!(g.degree(NodeId::new(0)), 2);
        assert_eq!(g.degree(NodeId::new(1)), 3);
        assert_eq!(g.degree(NodeId::new(6)), 1);
    }

    #[test]
    fn cluster_graph_alpha_is_clique_count() {
        let g = cluster_graph(4, 3);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 4 * 3);
        // One vertex per clique is independent and maximal.
        let set: Vec<_> = (0..4).map(|c| NodeId::new(c * 3)).collect();
        assert!(g.is_maximal_independent_set(&set));
    }
}
