//! Plain-text serialization of graphs and hypergraphs (DIMACS-flavored).
//!
//! A release-quality reproduction needs shareable instances: the CLI
//! and the experiment harnesses read and write these formats, and the
//! formats are deliberately trivial to produce from other tooling.
//!
//! Graphs (`p graph n m`, then one `e u v` line per edge, 0-based):
//!
//! ```text
//! c an optional comment
//! p graph 4 3
//! e 0 1
//! e 1 2
//! e 2 3
//! ```
//!
//! Hypergraphs (`p hypergraph n m`, then one `h v1 v2 …` per edge):
//!
//! ```text
//! p hypergraph 4 2
//! h 0 1 2
//! h 1 2 3
//! ```

use crate::{Graph, GraphBuilder, Hypergraph, HypergraphBuilder};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Errors produced while parsing the text formats.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseError {
    /// The `p` header line is missing or malformed.
    BadHeader {
        /// What was found instead.
        found: String,
    },
    /// The header declares one object kind but another was requested.
    WrongKind {
        /// Kind in the header.
        found: String,
        /// Kind the caller asked for.
        expected: &'static str,
    },
    /// A data line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// The body disagrees with the header's edge count.
    CountMismatch {
        /// Edges declared in the header.
        declared: usize,
        /// Edges actually present.
        found: usize,
    },
    /// A structural error from the graph builder (range, loops, …).
    Structural {
        /// The builder's message.
        message: String,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadHeader { found } => write!(f, "missing or bad header line: {found:?}"),
            ParseError::WrongKind { found, expected } => {
                write!(f, "expected a {expected}, found a {found}")
            }
            ParseError::BadLine { line, content } => {
                write!(f, "cannot parse line {line}: {content:?}")
            }
            ParseError::CountMismatch { declared, found } => {
                write!(f, "header declares {declared} edges but body has {found}")
            }
            ParseError::Structural { message } => write!(f, "invalid structure: {message}"),
        }
    }
}

impl Error for ParseError {}

/// Serializes a graph to the text format.
pub fn write_graph(graph: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p graph {} {}", graph.node_count(), graph.edge_count());
    for (u, v) in graph.edges() {
        let _ = writeln!(out, "e {u} {v}");
    }
    out
}

/// Parses a graph from the text format.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first problem found.
pub fn read_graph(text: &str) -> Result<Graph, ParseError> {
    let (kind, n, m, data) = parse_header(text)?;
    if kind != "graph" {
        return Err(ParseError::WrongKind { found: kind, expected: "graph" });
    }
    let mut builder = GraphBuilder::with_edge_capacity(n, m);
    let mut edges = 0usize;
    for (line_no, line) in data {
        let mut parts = line.split_whitespace();
        let tag = parts.next();
        if tag != Some("e") {
            return Err(ParseError::BadLine { line: line_no, content: line.to_string() });
        }
        let (u, v) = match (parts.next(), parts.next(), parts.next()) {
            (Some(u), Some(v), None) => (
                u.parse::<usize>().map_err(|_| ParseError::BadLine {
                    line: line_no,
                    content: line.to_string(),
                })?,
                v.parse::<usize>().map_err(|_| ParseError::BadLine {
                    line: line_no,
                    content: line.to_string(),
                })?,
            ),
            _ => return Err(ParseError::BadLine { line: line_no, content: line.to_string() }),
        };
        builder
            .try_add_edge_indices(u, v)
            .map_err(|e| ParseError::Structural { message: e.to_string() })?;
        edges += 1;
    }
    if edges != m {
        return Err(ParseError::CountMismatch { declared: m, found: edges });
    }
    Ok(builder.build())
}

/// Serializes a hypergraph to the text format.
pub fn write_hypergraph(h: &Hypergraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p hypergraph {} {}", h.node_count(), h.edge_count());
    for e in h.edge_ids() {
        let members: Vec<String> = h.edge(e).iter().map(|v| v.to_string()).collect();
        let _ = writeln!(out, "h {}", members.join(" "));
    }
    out
}

/// Parses a hypergraph from the text format.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first problem found.
pub fn read_hypergraph(text: &str) -> Result<Hypergraph, ParseError> {
    let (kind, n, m, data) = parse_header(text)?;
    if kind != "hypergraph" {
        return Err(ParseError::WrongKind { found: kind, expected: "hypergraph" });
    }
    let mut builder = HypergraphBuilder::new(n);
    for (line_no, line) in data {
        let mut parts = line.split_whitespace();
        if parts.next() != Some("h") {
            return Err(ParseError::BadLine { line: line_no, content: line.to_string() });
        }
        let members: Result<Vec<usize>, _> = parts.map(|p| p.parse::<usize>()).collect();
        let members = members
            .map_err(|_| ParseError::BadLine { line: line_no, content: line.to_string() })?;
        builder
            .try_add_edge_indices(members)
            .map_err(|e| ParseError::Structural { message: e.to_string() })?;
    }
    if builder.edge_count() != m {
        return Err(ParseError::CountMismatch { declared: m, found: builder.edge_count() });
    }
    Ok(builder.build())
}

/// Splits off the header, returning `(kind, n, m, data lines)` where
/// data lines carry their original 1-based numbers. Comment (`c …`)
/// and blank lines are skipped everywhere.
#[allow(clippy::type_complexity)]
fn parse_header(text: &str) -> Result<(String, usize, usize, Vec<(usize, &str)>), ParseError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('c'));
    let Some((_, header)) = lines.next() else {
        return Err(ParseError::BadHeader { found: "<empty input>".into() });
    };
    let parts: Vec<&str> = header.split_whitespace().collect();
    match parts.as_slice() {
        ["p", kind, n, m] => {
            let n = n
                .parse::<usize>()
                .map_err(|_| ParseError::BadHeader { found: header.to_string() })?;
            let m = m
                .parse::<usize>()
                .map_err(|_| ParseError::BadHeader { found: header.to_string() })?;
            Ok((kind.to_string(), n, m, lines.collect()))
        }
        _ => Err(ParseError::BadHeader { found: header.to_string() }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic::{cycle, grid};
    use crate::generators::hyper::random_uniform_hypergraph;
    use rand::SeedableRng;

    #[test]
    fn graph_round_trip() {
        for g in [cycle(9), grid(4, 5), Graph::empty(3), Graph::empty(0)] {
            let text = write_graph(&g);
            let back = read_graph(&text).unwrap();
            assert_eq!(back, g);
        }
    }

    #[test]
    fn hypergraph_round_trip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let h = random_uniform_hypergraph(&mut rng, 20, 10, 4);
        let text = write_hypergraph(&h);
        let back = read_hypergraph(&text).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "c a comment\n\np graph 3 1\nc another\ne 0 2\n\n";
        let g = read_graph(text).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(crate::NodeId::new(0), crate::NodeId::new(2)));
    }

    #[test]
    fn header_errors() {
        assert!(matches!(read_graph(""), Err(ParseError::BadHeader { .. })));
        assert!(matches!(read_graph("p graph x 1"), Err(ParseError::BadHeader { .. })));
        assert!(matches!(
            read_graph("p hypergraph 3 0"),
            Err(ParseError::WrongKind { expected: "graph", .. })
        ));
        assert!(matches!(
            read_hypergraph("p graph 3 0"),
            Err(ParseError::WrongKind { expected: "hypergraph", .. })
        ));
    }

    #[test]
    fn body_errors() {
        assert!(matches!(
            read_graph("p graph 3 1\nx 0 1"),
            Err(ParseError::BadLine { line: 2, .. })
        ));
        assert!(matches!(read_graph("p graph 3 1\ne 0"), Err(ParseError::BadLine { .. })));
        assert!(matches!(
            read_graph("p graph 3 2\ne 0 1"),
            Err(ParseError::CountMismatch { declared: 2, found: 1 })
        ));
        assert!(matches!(read_graph("p graph 3 1\ne 0 9"), Err(ParseError::Structural { .. })));
        assert!(matches!(read_graph("p graph 3 1\ne 1 1"), Err(ParseError::Structural { .. })));
        assert!(matches!(
            read_hypergraph("p hypergraph 3 1\nh 0 0"),
            Err(ParseError::Structural { .. })
        ));
    }

    #[test]
    fn error_messages_are_informative() {
        let err = read_graph("p graph 3 2\ne 0 1").unwrap_err();
        assert!(err.to_string().contains("declares 2 edges"));
        let err = read_graph("nonsense").unwrap_err();
        assert!(err.to_string().contains("bad header"));
    }
}
