//! Network decomposition by sequential ball carving.
//!
//! `(poly log n, poly log n)`-network decomposition is one of the
//! P-SLOCAL-complete problems the paper lists (\[GKM17\]), and it is the
//! engine of the *containment* direction of Theorem 1.1: given a
//! decomposition with `c` colors, an SLOCAL algorithm obtains a
//! `c`-approximate maximum independent set by sweeping the color
//! classes (see `pslocal-maxis::decomposition`).
//!
//! The construction here is the classic sequential ball carving:
//!
//! 1. While unclustered vertices remain, open a new **color class**.
//! 2. Sweep the vertices in order; around each vertex `v` still
//!    *available* in this class, grow a ball in the available subgraph,
//!    incrementing the radius while the ball at radius `r+1` is more
//!    than twice the ball at radius `r` (so `r ≤ log₂ n`).
//! 3. The radius-`r` ball becomes a cluster of the current color; the
//!    radius-`r+1` ball is removed from availability, so same-color
//!    clusters are never adjacent. The shell is at most the cluster
//!    size, hence each class clusters at least half of what it touches
//!    and `⌈log₂ n⌉ + 1` colors always suffice.
//!
//! The result is a `(⌈log₂ n⌉+1, 2·⌊log₂ n⌋)` weak-diameter network
//! decomposition — exactly the "polylog/polylog" object the paper's
//! completeness landscape revolves around.

use pslocal_graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// A weak-diameter network decomposition: a partition of the vertex set
/// into clusters, each cluster carrying a color, such that clusters of
/// the same color are non-adjacent.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkDecomposition {
    /// `cluster_of[v]` is the cluster index of vertex `v`.
    cluster_of: Vec<u32>,
    /// Per-cluster color.
    cluster_colors: Vec<u32>,
    /// Per-cluster carving center.
    cluster_centers: Vec<NodeId>,
    /// Per-cluster carving radius (distance from center within the
    /// availability subgraph at carve time; an upper bound on the
    /// distance in `G`).
    cluster_radii: Vec<u32>,
    /// Number of colors used.
    colors: usize,
}

impl NetworkDecomposition {
    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.cluster_centers.len()
    }

    /// Number of colors used.
    pub fn color_count(&self) -> usize {
        self.colors
    }

    /// The cluster index of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn cluster_of(&self, v: NodeId) -> usize {
        self.cluster_of[v.index()] as usize
    }

    /// The color of cluster `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn color_of_cluster(&self, c: usize) -> usize {
        self.cluster_colors[c] as usize
    }

    /// The carving center of cluster `c`.
    pub fn center_of_cluster(&self, c: usize) -> NodeId {
        self.cluster_centers[c]
    }

    /// The carving radius of cluster `c`.
    pub fn radius_of_cluster(&self, c: usize) -> usize {
        self.cluster_radii[c] as usize
    }

    /// The largest carving radius over all clusters (the realized
    /// SLOCAL locality of one carving step, minus the +1 shell peek).
    pub fn max_radius(&self) -> usize {
        self.cluster_radii.iter().map(|&r| r as usize).max().unwrap_or(0)
    }

    /// Vertex sets per cluster, indexed by cluster id.
    pub fn cluster_vertex_sets(&self) -> Vec<Vec<NodeId>> {
        let mut sets = vec![Vec::new(); self.cluster_count()];
        for (i, &c) in self.cluster_of.iter().enumerate() {
            sets[c as usize].push(NodeId::new(i));
        }
        sets
    }

    /// Cluster ids grouped by color.
    pub fn clusters_by_color(&self) -> Vec<Vec<usize>> {
        let mut by_color = vec![Vec::new(); self.colors];
        for (c, &col) in self.cluster_colors.iter().enumerate() {
            by_color[col as usize].push(c);
        }
        by_color
    }

    /// Verifies the decomposition against `graph`.
    ///
    /// # Errors
    ///
    /// Returns the first violated property: every vertex clustered,
    /// same-color clusters non-adjacent, every member within the
    /// cluster's radius of its center **in G** (weak diameter
    /// `≤ 2·radius`).
    pub fn verify(&self, graph: &Graph) -> Result<(), DecompositionError> {
        if self.cluster_of.len() != graph.node_count() {
            return Err(DecompositionError::WrongSize {
                expected: graph.node_count(),
                found: self.cluster_of.len(),
            });
        }
        for (u, v) in graph.edges() {
            let (cu, cv) = (self.cluster_of(u), self.cluster_of(v));
            if cu != cv && self.cluster_colors[cu] == self.cluster_colors[cv] {
                return Err(DecompositionError::AdjacentSameColor { u, v });
            }
        }
        for (c, set) in self.cluster_vertex_sets().iter().enumerate() {
            if set.is_empty() {
                return Err(DecompositionError::EmptyCluster { cluster: c });
            }
            let dist = pslocal_graph::algo::bfs_distances(graph, self.cluster_centers[c]);
            for &v in set {
                let d = dist[v.index()];
                if d == pslocal_graph::algo::UNREACHABLE || d > self.cluster_radii[c] {
                    return Err(DecompositionError::MemberTooFar {
                        cluster: c,
                        member: v,
                        distance: d,
                        radius: self.cluster_radii[c],
                    });
                }
            }
        }
        Ok(())
    }
}

/// Violations reported by [`NetworkDecomposition::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecompositionError {
    /// The decomposition was built for a different vertex count.
    WrongSize {
        /// Vertices in the graph.
        expected: usize,
        /// Vertices in the decomposition.
        found: usize,
    },
    /// Two adjacent vertices lie in distinct clusters of equal color.
    AdjacentSameColor {
        /// First endpoint.
        u: NodeId,
        /// Second endpoint.
        v: NodeId,
    },
    /// A cluster has no members.
    EmptyCluster {
        /// The empty cluster's id.
        cluster: usize,
    },
    /// A member is farther from its cluster center than the radius.
    MemberTooFar {
        /// The cluster id.
        cluster: usize,
        /// The offending member.
        member: NodeId,
        /// Its distance in `G` ([`u32::MAX`] if unreachable).
        distance: u32,
        /// The cluster's claimed radius.
        radius: u32,
    },
}

impl fmt::Display for DecompositionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecompositionError::WrongSize { expected, found } => {
                write!(f, "decomposition covers {found} vertices, graph has {expected}")
            }
            DecompositionError::AdjacentSameColor { u, v } => {
                write!(f, "adjacent vertices {u} and {v} lie in distinct same-color clusters")
            }
            DecompositionError::EmptyCluster { cluster } => {
                write!(f, "cluster {cluster} is empty")
            }
            DecompositionError::MemberTooFar { cluster, member, distance, radius } => {
                write!(
                    f,
                    "member {member} of cluster {cluster} at distance {distance} exceeds \
                     radius {radius}"
                )
            }
        }
    }
}

impl Error for DecompositionError {}

/// Carves a network decomposition processing vertices in identity order.
pub fn carve_decomposition(graph: &Graph) -> NetworkDecomposition {
    let order: Vec<NodeId> = graph.nodes().collect();
    carve_decomposition_with_order(graph, &order)
}

/// Carves a network decomposition, sweeping each color class in the
/// given vertex order (the SLOCAL processing order).
///
/// Guarantees (see module docs): at most `⌈log₂ n⌉ + 1` colors, carving
/// radius at most `⌊log₂ n⌋`.
///
/// # Panics
///
/// Panics if `order` is not a permutation of the vertex set.
pub fn carve_decomposition_with_order(graph: &Graph, order: &[NodeId]) -> NetworkDecomposition {
    let n = graph.node_count();
    assert_eq!(order.len(), n, "order must list every vertex exactly once");

    const UNCLUSTERED: u32 = u32::MAX;
    let mut cluster_of = vec![UNCLUSTERED; n];
    let mut cluster_colors = Vec::new();
    let mut cluster_centers = Vec::new();
    let mut cluster_radii = Vec::new();

    // `available[v]`: v can still join a cluster of the current color.
    let mut available = vec![false; n];
    // BFS scratch.
    let mut dist = vec![u32::MAX; n];
    let mut touched: Vec<NodeId> = Vec::new();
    let mut queue: VecDeque<NodeId> = VecDeque::new();

    let mut color = 0u32;
    let mut remaining = n;
    while remaining > 0 {
        for v in 0..n {
            available[v] = cluster_of[v] == UNCLUSTERED;
        }
        for &v in order {
            if !available[v.index()] || cluster_of[v.index()] != UNCLUSTERED {
                continue;
            }
            // BFS in the available subgraph from v, level by level,
            // growing the radius while the ball more than doubles.
            for &u in &touched {
                dist[u.index()] = u32::MAX;
            }
            touched.clear();
            queue.clear();
            dist[v.index()] = 0;
            touched.push(v);
            queue.push_back(v);
            // levels[r] = number of vertices at distance exactly r.
            let mut frontier = vec![v];
            let mut ball_size = 1usize;
            let mut radius = 0u32;
            loop {
                // Expand one more level.
                let mut next = Vec::new();
                for &u in &frontier {
                    for &w in graph.neighbors(u) {
                        if available[w.index()] && dist[w.index()] == u32::MAX {
                            dist[w.index()] = radius + 1;
                            touched.push(w);
                            next.push(w);
                        }
                    }
                }
                let grown = ball_size + next.len();
                if next.is_empty() || grown <= 2 * ball_size {
                    // Carve B(v, radius); remove B(v, radius+1) from
                    // availability.
                    let cluster_id = cluster_centers.len() as u32;
                    for &u in &touched {
                        if dist[u.index()] <= radius {
                            cluster_of[u.index()] = cluster_id;
                            remaining -= 1;
                        }
                        available[u.index()] = false;
                    }
                    cluster_centers.push(v);
                    cluster_colors.push(color);
                    cluster_radii.push(radius);
                    break;
                }
                ball_size = grown;
                radius += 1;
                frontier = next;
            }
        }
        color += 1;
    }

    NetworkDecomposition {
        cluster_of,
        cluster_colors,
        cluster_centers,
        cluster_radii,
        colors: color as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pslocal_graph::generators::classic::{complete, cycle, grid, path, star};
    use pslocal_graph::generators::random::{gnp, random_tree};
    use rand::SeedableRng;

    fn log2_ceil(n: usize) -> usize {
        (usize::BITS - n.saturating_sub(1).leading_zeros()) as usize
    }

    fn check(graph: &Graph) -> NetworkDecomposition {
        let d = carve_decomposition(graph);
        d.verify(graph).expect("invalid decomposition");
        let n = graph.node_count().max(2);
        assert!(
            d.color_count() <= log2_ceil(n) + 1,
            "colors {} exceed bound for n = {n}",
            d.color_count()
        );
        assert!(
            d.max_radius() <= log2_ceil(n),
            "radius {} exceeds log2 bound for n = {n}",
            d.max_radius()
        );
        d
    }

    #[test]
    fn decomposes_classic_families() {
        check(&path(33));
        check(&cycle(64));
        check(&grid(8, 9));
        check(&star(17));
        let d = check(&complete(12));
        // A clique is one cluster of radius ≤ 1.
        assert_eq!(d.cluster_count(), 1);
        assert!(d.max_radius() <= 1);
    }

    #[test]
    fn decomposes_random_graphs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..4 {
            check(&gnp(&mut rng, 120, 0.05));
            check(&random_tree(&mut rng, 90));
        }
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let d = carve_decomposition(&Graph::empty(0));
        assert_eq!(d.cluster_count(), 0);
        assert_eq!(d.color_count(), 0);
        d.verify(&Graph::empty(0)).unwrap();

        let d = check(&Graph::empty(5));
        // Isolated vertices: each its own radius-0 cluster, one color.
        assert_eq!(d.cluster_count(), 5);
        assert_eq!(d.color_count(), 1);
        assert_eq!(d.max_radius(), 0);
    }

    #[test]
    fn clusters_partition_the_vertex_set() {
        let g = grid(6, 6);
        let d = check(&g);
        let sets = d.cluster_vertex_sets();
        let total: usize = sets.iter().map(Vec::len).sum();
        assert_eq!(total, 36);
        for (c, set) in sets.iter().enumerate() {
            for &v in set {
                assert_eq!(d.cluster_of(v), c);
            }
        }
    }

    #[test]
    fn clusters_by_color_covers_all_clusters() {
        let g = cycle(40);
        let d = check(&g);
        let by_color = d.clusters_by_color();
        assert_eq!(by_color.len(), d.color_count());
        let total: usize = by_color.iter().map(Vec::len).sum();
        assert_eq!(total, d.cluster_count());
    }

    #[test]
    fn verify_rejects_corrupted_decompositions() {
        let g = path(4);
        let good = carve_decomposition(&g);
        good.verify(&g).unwrap();
        // Wrong size.
        let bad = NetworkDecomposition {
            cluster_of: vec![0, 0],
            cluster_colors: vec![0],
            cluster_centers: vec![NodeId::new(0)],
            cluster_radii: vec![3],
            colors: 1,
        };
        assert!(matches!(bad.verify(&g), Err(DecompositionError::WrongSize { .. })));
        // Same-color adjacent clusters: split the path 0-1|2-3 into two
        // clusters both colored 0 — vertices 1 and 2 are adjacent.
        let bad = NetworkDecomposition {
            cluster_of: vec![0, 0, 1, 1],
            cluster_colors: vec![0, 0],
            cluster_centers: vec![NodeId::new(0), NodeId::new(3)],
            cluster_radii: vec![1, 1],
            colors: 1,
        };
        assert!(matches!(bad.verify(&g), Err(DecompositionError::AdjacentSameColor { .. })));
        // Radius violation: one cluster claiming radius 1 spanning the
        // whole path of diameter 3.
        let bad = NetworkDecomposition {
            cluster_of: vec![0, 0, 0, 0],
            cluster_colors: vec![0],
            cluster_centers: vec![NodeId::new(0)],
            cluster_radii: vec![1],
            colors: 1,
        };
        assert!(matches!(bad.verify(&g), Err(DecompositionError::MemberTooFar { .. })));
    }

    #[test]
    fn order_changes_decomposition_but_not_validity() {
        let g = cycle(30);
        let id_order: Vec<NodeId> = g.nodes().collect();
        let rev_order: Vec<NodeId> = g.nodes().rev().collect();
        let a = carve_decomposition_with_order(&g, &id_order);
        let b = carve_decomposition_with_order(&g, &rev_order);
        a.verify(&g).unwrap();
        b.verify(&g).unwrap();
        assert_ne!(a.cluster_centers, b.cluster_centers);
    }
}
