//! The `r`-hop view an SLOCAL algorithm gets when a node is processed.
//!
//! Quoting the paper: *"When a node v is processed it can see the
//! current state of all nodes in its r-hop neighborhood (including all
//! topological information of this neighborhood) and its output can be
//! an arbitrary function of this neighborhood. Additionally, it can
//! store information that can be read by later nodes as part of v's
//! state."*
//!
//! [`View`] enforces exactly that interface: topology queries and state
//! reads are restricted to the extracted ball (out-of-ball access
//! panics), and every access records the distance at which it happened,
//! so the runtime can report the *realized* locality of an execution —
//! the quantity Theorems 1.1/1.2 are about.
//!
//! One standard convenience is allowed: a processed node may *write*
//! state anywhere inside its view (not only at itself). This is the
//! usual "clustering writes membership into the ball" convention; it is
//! equivalent to the strict model up to a constant factor in locality,
//! because a later node could recompute the writer's decision from the
//! writer's own state within the same radius.

use pslocal_graph::algo::Ball;
use pslocal_graph::{Graph, NodeId};
use std::cell::Cell;

/// The mutable view of a ball handed to
/// [`SlocalAlgorithm::process`](crate::SlocalAlgorithm::process).
#[derive(Debug)]
pub struct View<'a, S> {
    graph: &'a Graph,
    ball: &'a Ball,
    /// Dense position map: `position[v] = index in ball + 1`, 0 = absent.
    position: &'a [u32],
    /// Full state array (indexed by global node); access is gated.
    states: &'a mut [S],
    /// Which nodes have been processed already (globally indexed).
    processed: &'a [bool],
    /// Largest distance at which any read/write happened.
    max_access_radius: Cell<u32>,
}

impl<'a, S> View<'a, S> {
    pub(crate) fn new(
        graph: &'a Graph,
        ball: &'a Ball,
        position: &'a [u32],
        states: &'a mut [S],
        processed: &'a [bool],
    ) -> Self {
        View { graph, ball, position, states, processed, max_access_radius: Cell::new(0) }
    }

    /// The node being processed.
    #[inline]
    pub fn center(&self) -> NodeId {
        self.ball.center
    }

    /// The view radius `r` (the algorithm's declared locality).
    #[inline]
    pub fn radius(&self) -> usize {
        self.ball.radius
    }

    /// Number of vertices visible in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.ball.vertices.len()
    }

    /// A view always contains its center.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Vertices of the view in nondecreasing distance order (the first
    /// is the center).
    #[inline]
    pub fn vertices(&self) -> &[NodeId] {
        &self.ball.vertices
    }

    /// Whether `v` is inside the view.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        self.position.get(v.index()).is_some_and(|&p| p != 0)
    }

    /// Hop distance of `v` from the center.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the view — that read would violate the
    /// SLOCAL model.
    #[inline]
    pub fn distance(&self, v: NodeId) -> u32 {
        let p = self.require(v);
        self.ball.distances[p]
    }

    /// Neighbors of `v` that lie inside the view. For `v` at distance
    /// `< r` this is the full neighborhood of `v`; at the boundary it is
    /// truncated, exactly like the topological information an SLOCAL
    /// node legitimately has.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the view.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let _ = self.require(v);
        self.graph.neighbors(v).iter().copied().filter(|u| self.contains(*u))
    }

    /// Degree of `v` **in the underlying graph** — a node always knows
    /// its own degree and, within the view, the degrees of visible
    /// nodes (degrees are part of the topological information of the
    /// neighborhood in the LOCAL/SLOCAL models).
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the view.
    pub fn degree(&self, v: NodeId) -> usize {
        let _ = self.require(v);
        self.graph.degree(v)
    }

    /// Whether `v` has already been processed by the SLOCAL schedule.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the view.
    #[inline]
    pub fn is_processed(&self, v: NodeId) -> bool {
        let _ = self.require(v);
        self.processed[v.index()]
    }

    /// Reads the current state of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the view.
    #[inline]
    pub fn state(&self, v: NodeId) -> &S {
        let _ = self.require(v);
        &self.states[v.index()]
    }

    /// Writes the state of `v` (the center or any view member — see the
    /// module docs for why in-ball writes are permitted).
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the view.
    #[inline]
    pub fn set_state(&mut self, v: NodeId, state: S) {
        let _ = self.require(v);
        self.states[v.index()] = state;
    }

    /// Mutable access to the state of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the view.
    #[inline]
    pub fn state_mut(&mut self, v: NodeId) -> &mut S {
        let p = self.require(v);
        let _ = p;
        &mut self.states[v.index()]
    }

    /// The largest distance at which this view was actually read or
    /// written — the realized locality of this process step.
    pub fn realized_radius(&self) -> u32 {
        self.max_access_radius.get()
    }

    /// Validates membership, records the access radius, and returns the
    /// ball-internal index.
    #[inline]
    fn require(&self, v: NodeId) -> usize {
        let p = self.position.get(v.index()).copied().filter(|&p| p != 0).unwrap_or_else(|| {
            // pslocal: allow(panic-path, "deliberate loud failure: an out-of-ball access is an SLOCAL locality violation the runtime must surface, not mask")
            panic!(
                "SLOCAL violation: node {v} is outside the radius-{} view of {}",
                self.ball.radius, self.ball.center
            )
        }) as usize
            - 1;
        let d = self.ball.distances[p];
        if d > self.max_access_radius.get() {
            self.max_access_radius.set(d);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pslocal_graph::algo::BallExtractor;
    use pslocal_graph::generators::classic::path;

    fn make_view_fixture(
        g: &Graph,
        center: usize,
        r: usize,
    ) -> (Ball, Vec<u32>, Vec<i32>, Vec<bool>) {
        let mut ex = BallExtractor::new(g.node_count());
        let ball = ex.extract(g, NodeId::new(center), r);
        let mut position = vec![0u32; g.node_count()];
        for (i, &v) in ball.vertices.iter().enumerate() {
            position[v.index()] = i as u32 + 1;
        }
        let states = vec![0i32; g.node_count()];
        let processed = vec![false; g.node_count()];
        (ball, position, states, processed)
    }

    #[test]
    fn reads_inside_ball_work_and_track_radius() {
        let g = path(7);
        let (ball, position, mut states, processed) = make_view_fixture(&g, 3, 2);
        let view = View::new(&g, &ball, &position, &mut states, &processed);
        assert_eq!(view.center(), NodeId::new(3));
        assert_eq!(view.len(), 5);
        assert_eq!(view.realized_radius(), 0);
        assert_eq!(view.distance(NodeId::new(4)), 1);
        assert_eq!(view.realized_radius(), 1);
        assert_eq!(view.distance(NodeId::new(1)), 2);
        assert_eq!(view.realized_radius(), 2);
        assert_eq!(view.degree(NodeId::new(3)), 2);
    }

    #[test]
    #[should_panic(expected = "SLOCAL violation")]
    fn out_of_ball_read_panics() {
        let g = path(7);
        let (ball, position, mut states, processed) = make_view_fixture(&g, 3, 1);
        let view = View::new(&g, &ball, &position, &mut states, &processed);
        let _ = view.state(NodeId::new(6));
    }

    #[test]
    fn neighbors_are_truncated_at_boundary() {
        let g = path(7);
        let (ball, position, mut states, processed) = make_view_fixture(&g, 3, 1);
        let view = View::new(&g, &ball, &position, &mut states, &processed);
        // Node 4 is at the boundary: its neighbor 5 is invisible.
        let nbrs: Vec<_> = view.neighbors(NodeId::new(4)).collect();
        assert_eq!(nbrs, vec![NodeId::new(3)]);
        // Center sees both neighbors.
        let nbrs: Vec<_> = view.neighbors(NodeId::new(3)).collect();
        assert_eq!(nbrs.len(), 2);
    }

    #[test]
    fn writes_inside_ball_take_effect() {
        let g = path(5);
        let (ball, position, mut states, processed) = make_view_fixture(&g, 2, 1);
        {
            let mut view = View::new(&g, &ball, &position, &mut states, &processed);
            view.set_state(NodeId::new(2), 10);
            *view.state_mut(NodeId::new(1)) = 20;
            assert_eq!(*view.state(NodeId::new(1)), 20);
        }
        assert_eq!(states[2], 10);
        assert_eq!(states[1], 20);
        assert_eq!(states[3], 0);
    }

    #[test]
    fn contains_is_nonpanicking_membership() {
        let g = path(5);
        let (ball, position, mut states, processed) = make_view_fixture(&g, 0, 1);
        let view = View::new(&g, &ball, &position, &mut states, &processed);
        assert!(view.contains(NodeId::new(0)));
        assert!(view.contains(NodeId::new(1)));
        assert!(!view.contains(NodeId::new(2)));
        assert!(!view.contains(NodeId::new(99)));
        // contains() does not advance the realized radius.
        assert_eq!(view.realized_radius(), 0);
    }
}
