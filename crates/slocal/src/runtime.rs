//! The SLOCAL executor: processes nodes in an arbitrary order, handing
//! each one a radius-`r` [`View`] of the current global state.
//!
//! The model (\[GKM17\], recalled in the paper's introduction) measures an
//! algorithm solely by its *locality* `r`. The runtime therefore
//! reports, besides the declared `r`, the **realized** locality — the
//! largest radius any process step actually touched — plus volume
//! statistics (ball sizes), which is what experiment T6 tabulates.

use crate::view::View;
use pslocal_graph::algo::BallExtractor;
use pslocal_graph::{Graph, NodeId};
use pslocal_telemetry::{Counter, Histogram, Sink, Telemetry};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An algorithm in the SLOCAL model.
///
/// The runtime processes nodes in a caller-chosen order; for each node
/// it extracts the radius-[`locality`](Self::locality) ball and calls
/// [`process`](Self::process) with a [`View`] of it. All persistent
/// information lives in the per-node `State`, which later-processed
/// nodes can read (this is exactly the model's "it can store information
/// that can be read by later nodes").
pub trait SlocalAlgorithm {
    /// Per-node public state.
    type State: Clone + fmt::Debug;

    /// The declared locality `r` for a graph with `n` nodes.
    fn locality(&self, n: usize) -> usize;

    /// The initial state every node starts with.
    fn initial_state(&self, node: NodeId) -> Self::State;

    /// Processes the view's center node.
    fn process(&self, view: &mut View<'_, Self::State>);
}

/// Statistics of an SLOCAL execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlocalTrace {
    /// The declared locality the run used.
    pub declared_locality: usize,
    /// The largest radius any process step actually read or wrote.
    pub realized_locality: usize,
    /// The largest ball (in vertices) any step saw.
    pub max_view_size: usize,
    /// Total vertices across all views (the "volume" of the run).
    pub total_view_volume: usize,
    /// Number of nodes processed.
    pub processed: usize,
}

/// Result of an SLOCAL run: final states plus the trace.
#[derive(Debug, Clone)]
pub struct SlocalRun<S> {
    /// Final per-node states, indexed by node.
    pub states: Vec<S>,
    /// Locality/volume statistics.
    pub trace: SlocalTrace,
}

/// Executes `algorithm` on `graph`, processing nodes in `order`.
///
/// # Panics
///
/// Panics if `order` is not a permutation of the vertex set, or if the
/// algorithm accesses a node outside its declared view (an SLOCAL-model
/// violation, reported by [`View`]).
///
/// # Examples
///
/// ```
/// use pslocal_graph::generators::classic::cycle;
/// use pslocal_slocal::{algorithms::GreedyMis, orders, run};
///
/// let g = cycle(9);
/// let order = orders::identity(g.node_count());
/// let outcome = run(&g, &GreedyMis, &order);
/// let mis = GreedyMis::members(&outcome.states);
/// assert!(g.is_maximal_independent_set(&mis));
/// assert_eq!(outcome.trace.realized_locality, 1);
/// ```
pub fn run<A: SlocalAlgorithm>(
    graph: &Graph,
    algorithm: &A,
    order: &[NodeId],
) -> SlocalRun<A::State> {
    run_traced(graph, algorithm, order, &Telemetry::disabled())
}

/// [`run`] under a telemetry pipeline: the execution is wrapped in an
/// `slocal-run` span carrying the processed-node count and view volume
/// as `slocal_views` / `slocal_view_volume` counters, plus a
/// `realized_locality` sample. With a disabled pipeline this is exactly
/// `run`.
///
/// # Panics
///
/// Same contract as [`run`].
pub fn run_traced<A: SlocalAlgorithm, S: Sink>(
    graph: &Graph,
    algorithm: &A,
    order: &[NodeId],
    tel: &Telemetry<S>,
) -> SlocalRun<A::State> {
    let span = pslocal_telemetry::span!(tel, pslocal_telemetry::names::SLOCAL_RUN);
    let outcome = run_inner(graph, algorithm, order);
    span.add(Counter::SlocalViews, outcome.trace.processed as u64);
    span.add(Counter::SlocalViewVolume, outcome.trace.total_view_volume as u64);
    span.sample(Histogram::RealizedLocality, outcome.trace.realized_locality as u64);
    outcome
}

fn run_inner<A: SlocalAlgorithm>(
    graph: &Graph,
    algorithm: &A,
    order: &[NodeId],
) -> SlocalRun<A::State> {
    let n = graph.node_count();
    assert_eq!(order.len(), n, "order must list every vertex exactly once");
    let mut seen = vec![false; n];
    for &v in order {
        assert!(!seen[v.index()], "vertex {v} repeated in order");
        seen[v.index()] = true;
    }

    let r = algorithm.locality(n);
    let mut states: Vec<A::State> = graph.nodes().map(|v| algorithm.initial_state(v)).collect();
    let mut processed = vec![false; n];
    let mut extractor = BallExtractor::new(n);
    let mut position = vec![0u32; n];
    let mut trace = SlocalTrace {
        declared_locality: r,
        realized_locality: 0,
        max_view_size: 0,
        total_view_volume: 0,
        processed: 0,
    };

    for &v in order {
        let ball = extractor.extract(graph, v, r);
        for (i, &u) in ball.vertices.iter().enumerate() {
            position[u.index()] = i as u32 + 1;
        }
        let realized = {
            let mut view = View::new(graph, &ball, &position, &mut states, &processed);
            algorithm.process(&mut view);
            view.realized_radius() as usize
        };
        for &u in &ball.vertices {
            position[u.index()] = 0;
        }
        processed[v.index()] = true;
        trace.realized_locality = trace.realized_locality.max(realized);
        trace.max_view_size = trace.max_view_size.max(ball.len());
        trace.total_view_volume += ball.len();
        trace.processed += 1;
    }

    SlocalRun { states, trace }
}

/// Standard processing orders for SLOCAL executions. The model promises
/// correctness for *arbitrary* orders; tests exercise several.
pub mod orders {
    use pslocal_graph::{Graph, NodeId};
    use rand::seq::SliceRandom;
    use rand::Rng;

    /// The identity order `0, 1, …, n-1`.
    pub fn identity(n: usize) -> Vec<NodeId> {
        (0..n).map(NodeId::new).collect()
    }

    /// The reverse order `n-1, …, 0`.
    pub fn reverse(n: usize) -> Vec<NodeId> {
        (0..n).rev().map(NodeId::new).collect()
    }

    /// A uniformly random order.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<NodeId> {
        let mut order = identity(n);
        order.shuffle(rng);
        order
    }

    /// Nodes sorted by decreasing degree (a natural adversarial order
    /// for greedy algorithms).
    pub fn by_decreasing_degree(graph: &Graph) -> Vec<NodeId> {
        let mut order = identity(graph.node_count());
        order.sort_by_key(|&v| std::cmp::Reverse(graph.degree(v)));
        order
    }

    /// Nodes sorted by increasing degree.
    pub fn by_increasing_degree(graph: &Graph) -> Vec<NodeId> {
        let mut order = identity(graph.node_count());
        order.sort_by_key(|&v| graph.degree(v));
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pslocal_graph::generators::classic::{cycle, path};

    /// Records, for every node, the number of already-processed nodes in
    /// its 1-ball — a pure bookkeeping algorithm for runtime testing.
    struct CountProcessed;

    impl SlocalAlgorithm for CountProcessed {
        type State = u32;

        fn locality(&self, _n: usize) -> usize {
            1
        }

        fn initial_state(&self, _node: NodeId) -> u32 {
            u32::MAX
        }

        fn process(&self, view: &mut View<'_, u32>) {
            let center = view.center();
            let count = view
                .vertices()
                .to_vec()
                .into_iter()
                .filter(|&u| u != center && view.is_processed(u))
                .count() as u32;
            view.set_state(center, count);
        }
    }

    #[test]
    fn processing_order_is_respected() {
        let g = path(4); // 0-1-2-3
        let outcome = run(&g, &CountProcessed, &orders::identity(4));
        // node 0 first: no processed neighbors; node 1: neighbor 0
        // processed; node 2: neighbor 1 processed; node 3: neighbor 2.
        assert_eq!(outcome.states, vec![0, 1, 1, 1]);
        let outcome = run(&g, &CountProcessed, &orders::reverse(4));
        assert_eq!(outcome.states, vec![1, 1, 1, 0]);
    }

    #[test]
    fn trace_accounts_views() {
        let g = cycle(6);
        let outcome = run(&g, &CountProcessed, &orders::identity(6));
        assert_eq!(outcome.trace.declared_locality, 1);
        assert_eq!(outcome.trace.realized_locality, 1);
        assert_eq!(outcome.trace.max_view_size, 3);
        assert_eq!(outcome.trace.total_view_volume, 18);
        assert_eq!(outcome.trace.processed, 6);
    }

    #[test]
    fn traced_run_reports_views_and_locality() {
        use pslocal_telemetry::MemorySink;
        let g = cycle(6);
        let tel = Telemetry::new(MemorySink::new());
        let outcome = run_traced(&g, &CountProcessed, &orders::identity(6), &tel);
        let sink = tel.into_sink();
        assert!(sink.open_spans().is_empty());
        assert_eq!(sink.counter_total(Counter::SlocalViews), outcome.trace.processed as u64);
        assert_eq!(
            sink.counter_total(Counter::SlocalViewVolume),
            outcome.trace.total_view_volume as u64
        );
        assert_eq!(
            sink.samples(Histogram::RealizedLocality),
            vec![outcome.trace.realized_locality as u64]
        );
        assert_eq!(sink.spans()[0].name, pslocal_telemetry::names::SLOCAL_RUN);
    }

    #[test]
    #[should_panic(expected = "repeated in order")]
    fn bad_order_panics() {
        let g = path(3);
        let order = vec![NodeId::new(0), NodeId::new(0), NodeId::new(1)];
        let _ = run(&g, &CountProcessed, &order);
    }

    #[test]
    fn order_helpers() {
        use rand::SeedableRng;
        let g = pslocal_graph::generators::classic::star(5);
        assert_eq!(orders::identity(3), vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
        assert_eq!(orders::reverse(3), vec![NodeId::new(2), NodeId::new(1), NodeId::new(0)]);
        let dec = orders::by_decreasing_degree(&g);
        assert_eq!(dec[0], NodeId::new(0)); // the hub
        let inc = orders::by_increasing_degree(&g);
        assert_eq!(*inc.last().unwrap(), NodeId::new(0));
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let a = orders::random(&mut rng, 10);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orders::identity(10));
    }

    /// A deliberately cheating algorithm that reads outside its ball.
    struct Cheater;

    impl SlocalAlgorithm for Cheater {
        type State = u32;

        fn locality(&self, _n: usize) -> usize {
            1
        }
        fn initial_state(&self, _node: NodeId) -> u32 {
            0
        }
        fn process(&self, view: &mut View<'_, u32>) {
            // Try to read a far-away node.
            let _ = view.state(NodeId::new(9));
        }
    }

    #[test]
    #[should_panic(expected = "SLOCAL violation")]
    fn cheating_is_detected() {
        let g = path(10);
        let _ = run(&g, &Cheater, &orders::identity(10));
    }
}
