//! Constant-locality SLOCAL algorithms.
//!
//! The paper's introduction uses greedy MIS as *the* example: "The
//! maximal independent set problem admits an SLOCAL algorithm with
//! locality r = 1 by iterating through the nodes in an arbitrary order
//! and joining the independent set if none of the already processed
//! neighbors is already contained in the set." [`GreedyMis`] is that
//! algorithm, word for word; [`GreedyColoring`] is the analogous
//! locality-1 `(Δ+1)`-coloring.

use crate::runtime::SlocalAlgorithm;
use crate::view::View;
use pslocal_graph::{Color, NodeId};

/// The locality-1 greedy MIS from the paper's introduction.
///
/// # Examples
///
/// ```
/// use pslocal_graph::generators::classic::path;
/// use pslocal_slocal::{algorithms::GreedyMis, orders, run};
///
/// let g = path(6);
/// let outcome = run(&g, &GreedyMis, &orders::identity(6));
/// let mis = GreedyMis::members(&outcome.states);
/// assert!(g.is_maximal_independent_set(&mis));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyMis;

/// State of [`GreedyMis`]: `None` before processing, then membership.
pub type MisState = Option<bool>;

impl GreedyMis {
    /// Extracts MIS membership from final states.
    ///
    /// # Panics
    ///
    /// Panics if some node was never processed.
    pub fn members(states: &[MisState]) -> Vec<NodeId> {
        states
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                Some(true) => Some(NodeId::new(i)),
                Some(false) => None,
                // pslocal: allow(panic-path, "the sequential SLOCAL schedule visits every node exactly once; an unprocessed node is a scheduler bug")
                None => panic!("node {i} never processed"),
            })
            .collect()
    }
}

impl SlocalAlgorithm for GreedyMis {
    type State = MisState;

    fn locality(&self, _n: usize) -> usize {
        1
    }

    fn initial_state(&self, _node: NodeId) -> MisState {
        None
    }

    fn process(&self, view: &mut View<'_, MisState>) {
        let center = view.center();
        let neighbor_in_mis = view
            .neighbors(center)
            .collect::<Vec<_>>()
            .into_iter()
            .any(|u| *view.state(u) == Some(true));
        view.set_state(center, Some(!neighbor_in_mis));
    }
}

/// The locality-1 greedy `(Δ+1)`-coloring: each processed node takes
/// the smallest color not used by an already-colored neighbor.
///
/// # Examples
///
/// ```
/// use pslocal_graph::generators::classic::cycle;
/// use pslocal_slocal::{algorithms::GreedyColoring, orders, run};
///
/// let g = cycle(8);
/// let outcome = run(&g, &GreedyColoring, &orders::identity(8));
/// let colors = GreedyColoring::colors(&outcome.states);
/// assert!(g.is_proper_coloring(&colors));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyColoring;

/// State of [`GreedyColoring`]: `None` before processing, then a color.
pub type ColorState = Option<Color>;

impl GreedyColoring {
    /// Extracts the coloring from final states.
    ///
    /// # Panics
    ///
    /// Panics if some node was never processed.
    pub fn colors(states: &[ColorState]) -> Vec<Color> {
        states
            .iter()
            .enumerate()
            // pslocal: allow(panic-path, "the sequential SLOCAL schedule visits every node exactly once; an unprocessed node is a scheduler bug")
            .map(|(i, s)| s.unwrap_or_else(|| panic!("node {i} never processed")))
            .collect()
    }
}

impl SlocalAlgorithm for GreedyColoring {
    type State = ColorState;

    fn locality(&self, _n: usize) -> usize {
        1
    }

    fn initial_state(&self, _node: NodeId) -> ColorState {
        None
    }

    fn process(&self, view: &mut View<'_, ColorState>) {
        let center = view.center();
        let mut used: Vec<u32> = view
            .neighbors(center)
            .collect::<Vec<_>>()
            .into_iter()
            .filter_map(|u| view.state(u).map(|c| c.raw()))
            .collect();
        used.sort_unstable();
        used.dedup();
        // Smallest non-negative integer missing from `used`.
        let mut c = 0u32;
        for &u in &used {
            if u == c {
                c += 1;
            } else if u > c {
                break;
            }
        }
        view.set_state(center, Some(Color::from(c)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{orders, run};
    use pslocal_graph::algo::color_count;
    use pslocal_graph::generators::classic::{complete, cycle, path, star};
    use pslocal_graph::generators::random::gnp;
    use rand::SeedableRng;

    #[test]
    fn greedy_mis_is_correct_on_every_order() {
        let g = cycle(10);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let orders = [
            orders::identity(10),
            orders::reverse(10),
            orders::random(&mut rng, 10),
            orders::by_decreasing_degree(&g),
        ];
        for order in orders {
            let outcome = run(&g, &GreedyMis, &order);
            let mis = GreedyMis::members(&outcome.states);
            assert!(g.is_maximal_independent_set(&mis), "order {order:?}");
            assert_eq!(outcome.trace.realized_locality, 1);
        }
    }

    #[test]
    fn greedy_mis_on_clique_is_first_processed() {
        let g = complete(7);
        let order = orders::reverse(7);
        let outcome = run(&g, &GreedyMis, &order);
        let mis = GreedyMis::members(&outcome.states);
        assert_eq!(mis, vec![NodeId::new(6)]);
    }

    #[test]
    fn greedy_mis_identity_on_path_takes_alternating() {
        let g = path(6);
        let outcome = run(&g, &GreedyMis, &orders::identity(6));
        let mis = GreedyMis::members(&outcome.states);
        assert_eq!(mis, vec![NodeId::new(0), NodeId::new(2), NodeId::new(4)]);
    }

    #[test]
    fn greedy_coloring_uses_at_most_delta_plus_one() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..4 {
            let g = gnp(&mut rng, 50, 0.15);
            let order = orders::random(&mut rng, 50);
            let outcome = run(&g, &GreedyColoring, &order);
            let colors = GreedyColoring::colors(&outcome.states);
            assert!(g.is_proper_coloring(&colors));
            assert!(color_count(&colors) <= g.max_degree() + 1);
        }
    }

    #[test]
    fn greedy_coloring_of_star_is_two_colors() {
        let g = star(9);
        let outcome = run(&g, &GreedyColoring, &orders::identity(9));
        let colors = GreedyColoring::colors(&outcome.states);
        assert_eq!(color_count(&colors), 2);
    }

    #[test]
    fn empty_graph_cases() {
        let g = pslocal_graph::Graph::empty(3);
        let mis = GreedyMis::members(&run(&g, &GreedyMis, &orders::identity(3)).states);
        assert_eq!(mis.len(), 3);
        let colors = GreedyColoring::colors(&run(&g, &GreedyColoring, &orders::identity(3)).states);
        assert!(colors.iter().all(|&c| c == Color::new(0)));
    }
}
