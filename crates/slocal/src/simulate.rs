//! Simulating SLOCAL algorithms in the LOCAL model via network
//! decomposition — the mechanism behind the paper's punchline.
//!
//! The paper: *"If any P-SLOCAL-complete problem can be solved
//! efficiently by a deterministic algorithm in the LOCAL model all
//! problems in the class P-SLOCAL can be solved efficiently by
//! deterministic algorithms."* The engine of that implication (from
//! \[GKM17\]) is the classic simulation: given a `(c, d)`-network
//! decomposition of the power graph `G^{2r}`, a locality-`r` SLOCAL
//! algorithm runs in LOCAL by sweeping the `c` color classes; clusters
//! of one class are pairwise at distance `≥ 2r + 1` in `G`, so their
//! members' `r`-balls are disjoint and the clusters can be processed
//! simultaneously — each cluster center gathers its cluster's
//! `(d + r)`-neighborhood, replays the sequential algorithm locally,
//! and distributes the results, costing `O(d + r)` rounds per class,
//! `O(c·(d + r))` in total: polylog · polylog = polylog.
//!
//! [`simulate_in_local`] executes exactly this schedule (sequentially,
//! with faithful round accounting) and returns both the states and the
//! LOCAL round bill. [`interleaving_is_irrelevant`] checks the
//! disjointness property that makes the parallel slots sound.

use crate::decomposition::{carve_decomposition, NetworkDecomposition};
use crate::runtime::{run, SlocalAlgorithm, SlocalRun};
use pslocal_graph::ops::power_graph;
use pslocal_graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};

/// The LOCAL-model bill of a simulated SLOCAL run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimulationBill {
    /// Locality `r` of the simulated algorithm.
    pub locality: usize,
    /// Colors `c` of the decomposition of `G^{2r}`.
    pub colors: usize,
    /// Maximum carving radius `d` (in `G^{2r}` hops).
    pub power_radius: usize,
    /// Accounted LOCAL rounds: `Σ_class 2·(d_class·2r + r)` — each
    /// `G^{2r}`-hop of cluster radius costs up to `2r` `G`-hops.
    pub local_rounds: usize,
}

/// Result of simulating an SLOCAL algorithm in LOCAL.
#[derive(Debug, Clone)]
pub struct SimulatedRun<S> {
    /// Final states (identical to a sequential SLOCAL run under
    /// [`induced_order`](Self::induced_order)).
    pub states: Vec<S>,
    /// The sequential order the simulation's schedule induces.
    pub induced_order: Vec<NodeId>,
    /// The decomposition of `G^{2r}` that was used.
    pub decomposition: NetworkDecomposition,
    /// The LOCAL-model cost accounting.
    pub bill: SimulationBill,
}

/// Simulates `algorithm` on `graph` through the decomposition schedule
/// (see module docs) and returns the states plus the LOCAL round bill.
///
/// The induced processing order is: decomposition color classes in
/// increasing order; within a class, clusters in id order; within a
/// cluster, vertices in id order. Because same-class clusters are
/// `≥ 2r + 1` apart, any interleaving of their members produces the
/// same states — checked by [`interleaving_is_irrelevant`] and by the
/// tests.
///
/// Locality-0 algorithms are clamped to `r = 1` (they need no real
/// simulation; the clamp keeps the schedule uniform).
pub fn simulate_in_local<A: SlocalAlgorithm>(
    graph: &Graph,
    algorithm: &A,
) -> SimulatedRun<A::State> {
    let n = graph.node_count();
    let r = algorithm.locality(n).max(1);
    let power = power_graph_or_self(graph, 2 * r);
    let decomposition = carve_decomposition(&power);

    // Induced order: (color, cluster, vertex id).
    let cluster_sets = decomposition.cluster_vertex_sets();
    let mut induced_order: Vec<NodeId> = Vec::with_capacity(n);
    let mut per_class_radius: Vec<usize> = vec![0; decomposition.color_count()];
    for (color, radius) in per_class_radius.iter_mut().enumerate() {
        for (c, set) in cluster_sets.iter().enumerate() {
            if decomposition.color_of_cluster(c) == color {
                induced_order.extend(set.iter().copied());
                *radius = (*radius).max(decomposition.radius_of_cluster(c));
            }
        }
    }

    let SlocalRun { states, trace } = run(graph, algorithm, &induced_order);
    debug_assert!(trace.realized_locality <= r);

    // LOCAL bill: per class, gather + scatter over the cluster radius
    // (in G-hops: one G^{2r}-hop ≤ 2r G-hops) plus the r-ball fringe.
    let local_rounds: usize = per_class_radius.iter().map(|&d| 2 * (d * 2 * r + r)).sum();

    SimulatedRun {
        states,
        induced_order,
        bill: SimulationBill {
            locality: r,
            colors: decomposition.color_count(),
            power_radius: decomposition.max_radius(),
            local_rounds,
        },
        decomposition,
    }
}

fn power_graph_or_self(graph: &Graph, t: usize) -> Graph {
    if t <= 1 {
        graph.clone()
    } else {
        power_graph(graph, t)
    }
}

/// Checks the property that justifies processing same-color clusters in
/// parallel: for every pair of same-color clusters, all cross-pairs of
/// members are at distance `> 2r` in `graph` (so their `r`-balls are
/// disjoint).
pub fn interleaving_is_irrelevant(
    graph: &Graph,
    decomposition: &NetworkDecomposition,
    r: usize,
) -> bool {
    let sets = decomposition.cluster_vertex_sets();
    let by_color = decomposition.clusters_by_color();
    for class in &by_color {
        for (i, &a) in class.iter().enumerate() {
            for &b in &class[i + 1..] {
                // Any member of a within distance 2r of any member of b?
                for &u in &sets[a] {
                    let ball = pslocal_graph::algo::ball(graph, u, 2 * r);
                    if sets[b].iter().any(|v| ball.vertices.contains(v)) {
                        return false;
                    }
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{GreedyColoring, GreedyMis};
    use pslocal_graph::generators::classic::{cycle, grid, path};
    use pslocal_graph::generators::random::gnp;
    use rand::SeedableRng;

    #[test]
    fn simulated_mis_is_valid_and_matches_induced_order() {
        let g = grid(6, 7);
        let sim = simulate_in_local(&g, &GreedyMis);
        let mis = GreedyMis::members(&sim.states);
        assert!(g.is_maximal_independent_set(&mis));
        // Re-running sequentially under the induced order reproduces it.
        let seq = run(&g, &GreedyMis, &sim.induced_order);
        assert_eq!(sim.states, seq.states);
    }

    #[test]
    fn simulated_coloring_is_proper() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let g = gnp(&mut rng, 60, 0.08);
        let sim = simulate_in_local(&g, &GreedyColoring);
        let colors = GreedyColoring::colors(&sim.states);
        assert!(g.is_proper_coloring(&colors));
    }

    #[test]
    fn same_class_clusters_have_disjoint_balls() {
        let g = cycle(48);
        let sim = simulate_in_local(&g, &GreedyMis);
        assert!(interleaving_is_irrelevant(&g, &sim.decomposition, sim.bill.locality));
    }

    #[test]
    fn interleaving_same_class_clusters_changes_nothing() {
        // Build an alternative order that reverses each same-color
        // batch; outputs must be identical because the balls are
        // disjoint.
        let g = path(40);
        let sim = simulate_in_local(&g, &GreedyMis);
        let sets = sim.decomposition.cluster_vertex_sets();
        let mut alt: Vec<NodeId> = Vec::new();
        for color in 0..sim.decomposition.color_count() {
            // Same clusters, same intra-cluster order, but the clusters
            // of this class are emitted in REVERSE order — a different
            // interleaving of the "parallel" slot.
            let clusters_in_class: Vec<Vec<NodeId>> = sets
                .iter()
                .enumerate()
                .filter(|(c, _)| sim.decomposition.color_of_cluster(*c) == color)
                .map(|(_, set)| set.clone())
                .collect();
            for cluster in clusters_in_class.into_iter().rev() {
                alt.extend(cluster);
            }
        }
        let a = run(&g, &GreedyMis, &sim.induced_order);
        let b = run(&g, &GreedyMis, &alt);
        assert_eq!(a.states, b.states, "same-class interleaving must not matter");
    }

    #[test]
    fn bill_is_polylog_for_locality_one() {
        for n in [32usize, 128, 512] {
            let g = cycle(n);
            let sim = simulate_in_local(&g, &GreedyMis);
            let log = (n as f64).log2();
            // c ≤ log+1 classes, each costing O(d·r) with d, r = O(log).
            let budget = 8.0 * (log + 1.0) * (log + 1.0);
            assert!(
                (sim.bill.local_rounds as f64) <= budget,
                "n = {n}: {} rounds > {budget}",
                sim.bill.local_rounds
            );
        }
    }

    #[test]
    fn bill_reports_consistent_parameters() {
        let g = grid(5, 5);
        let sim = simulate_in_local(&g, &GreedyMis);
        assert_eq!(sim.bill.locality, 1);
        assert_eq!(sim.bill.colors, sim.decomposition.color_count());
        assert_eq!(sim.bill.power_radius, sim.decomposition.max_radius());
        assert_eq!(sim.induced_order.len(), 25);
    }
}
