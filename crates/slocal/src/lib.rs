//! # pslocal-slocal
//!
//! A simulator of the **SLOCAL model** of \[GKM17\], the model in which
//! *"P-SLOCAL-Completeness of Maximum Independent Set Approximation"*
//! (Maus, PODC 2019) states its result.
//!
//! In an SLOCAL algorithm with locality `r`, nodes are processed in an
//! arbitrary order; a processed node sees the current state of its
//! `r`-hop neighborhood (topology included), outputs an arbitrary
//! function of it, and may store state that later nodes read. The class
//! **P-SLOCAL** collects the problems solvable with polylogarithmic
//! locality; the paper proves polylog MaxIS approximation complete for
//! it.
//!
//! * [`run`] / [`SlocalAlgorithm`] — the executor; the [`View`] type
//!   structurally enforces the model (out-of-ball access panics) and
//!   records realized locality.
//! * [`algorithms`] — the paper's locality-1 greedy MIS and greedy
//!   `(Δ+1)`-coloring.
//! * [`decomposition`] — `(⌈log₂ n⌉+1, 2⌊log₂ n⌋)` network decomposition
//!   by sequential ball carving: the P-SLOCAL workhorse behind the
//!   containment direction of Theorem 1.1.
//! * [`problems`] — problem verifiers and the [`LocalityBudget`]
//!   accounting of local reductions.
//!
//! # Examples
//!
//! ```
//! use pslocal_graph::generators::classic::cycle;
//! use pslocal_slocal::{algorithms::GreedyMis, orders, run};
//!
//! let g = cycle(12);
//! let outcome = run(&g, &GreedyMis, &orders::reverse(12));
//! assert!(g.is_maximal_independent_set(&GreedyMis::members(&outcome.states)));
//! assert_eq!(outcome.trace.realized_locality, 1); // the paper's r = 1
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod checkable;
pub mod decomposition;
pub mod problems;
pub mod runtime;
pub mod simulate;
pub mod view;

pub use checkable::{locally_verify, ColoringLabeling, LocallyCheckable, MisLabeling};
pub use decomposition::{
    carve_decomposition, carve_decomposition_with_order, DecompositionError, NetworkDecomposition,
};
pub use problems::{
    ColoringProblem, GraphProblem, LocalityBudget, MaxIsApproxProblem, MisProblem,
    NetworkDecompositionProblem, Violation,
};
pub use runtime::{orders, run, run_traced, SlocalAlgorithm, SlocalRun, SlocalTrace};
pub use simulate::{interleaving_is_irrelevant, simulate_in_local, SimulatedRun, SimulationBill};
pub use view::View;
