//! Problem definitions, verifiers, and locality accounting for local
//! reductions.
//!
//! The class **P-SLOCAL** (\[GKM17\]) contains the problems solvable with
//! polylogarithmic locality in the SLOCAL model; a problem is
//! P-SLOCAL-complete if it is in the class and every problem of the
//! class locally reduces to it. This module gives the reproduction's
//! executable handle on those notions:
//!
//! * [`GraphProblem`] — a named problem with an output verifier, so
//!   every experiment can *check* solutions rather than trust them.
//! * [`LocalityBudget`] — the bookkeeping of a local reduction: its own
//!   locality plus the locality consumed by oracle calls. The paper's
//!   footnote 2 describes reductions as algorithms that "use an
//!   algorithm for problem A to solve problem B while only incurring a
//!   polylogarithmic overhead"; a budget makes that overhead a number.

use pslocal_graph::{Color, Graph, IndependentSet, NodeId};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// A verification failure, carrying the problem name and a description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Name of the violated problem.
    pub problem: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} violated: {}", self.problem, self.message)
    }
}

impl Error for Violation {}

/// A graph problem with a checkable output.
///
/// Verifiers run in time polynomial in the graph; efficiency of
/// verification is what places randomized-LOCAL-solvable problems in
/// P-SLOCAL (\[GHK18\], as cited by the paper).
pub trait GraphProblem {
    /// The output type a solution assigns to the graph.
    type Output;

    /// A short stable name for reports.
    fn name(&self) -> &'static str;

    /// Checks `output` against `graph`.
    ///
    /// # Errors
    ///
    /// Returns a [`Violation`] describing the first broken property.
    fn verify(&self, graph: &Graph, output: &Self::Output) -> Result<(), Violation>;
}

/// The maximal independent set problem (the paper's MIS).
#[derive(Debug, Clone, Copy, Default)]
pub struct MisProblem;

impl GraphProblem for MisProblem {
    type Output = Vec<NodeId>;

    fn name(&self) -> &'static str {
        "maximal-independent-set"
    }

    fn verify(&self, graph: &Graph, output: &Vec<NodeId>) -> Result<(), Violation> {
        if !graph.is_independent_set(output) {
            return Err(Violation {
                problem: self.name(),
                message: "set is not independent".into(),
            });
        }
        if !graph.is_maximal_independent_set(output) {
            return Err(Violation {
                problem: self.name(),
                message: "independent set is not maximal".into(),
            });
        }
        Ok(())
    }
}

/// Proper vertex coloring with a bounded palette (e.g. `Δ+1`).
#[derive(Debug, Clone, Copy)]
pub struct ColoringProblem {
    /// Maximum number of distinct colors allowed.
    pub max_colors: usize,
}

impl GraphProblem for ColoringProblem {
    type Output = Vec<Color>;

    fn name(&self) -> &'static str {
        "vertex-coloring"
    }

    fn verify(&self, graph: &Graph, output: &Vec<Color>) -> Result<(), Violation> {
        if output.len() != graph.node_count() {
            return Err(Violation {
                problem: self.name(),
                message: format!(
                    "coloring has {} entries for {} vertices",
                    output.len(),
                    graph.node_count()
                ),
            });
        }
        if !graph.is_proper_coloring(output) {
            return Err(Violation {
                problem: self.name(),
                message: "coloring is not proper".into(),
            });
        }
        let used = pslocal_graph::algo::color_count(output);
        if used > self.max_colors {
            return Err(Violation {
                problem: self.name(),
                message: format!("{used} colors exceed the allowed {}", self.max_colors),
            });
        }
        Ok(())
    }
}

/// λ-approximate maximum independent set: the output must be an
/// independent set of size at least `alpha_upper_bound / λ` — the
/// verifier takes a certified upper bound on `α(G)` (exact `α` on small
/// instances, a clique-cover bound on larger ones), so that *passing*
/// the check genuinely certifies the approximation.
#[derive(Debug, Clone, Copy)]
pub struct MaxIsApproxProblem {
    /// The approximation factor λ ≥ 1.
    pub lambda: f64,
    /// A certified upper bound on the independence number.
    pub alpha_upper_bound: usize,
}

impl GraphProblem for MaxIsApproxProblem {
    type Output = IndependentSet;

    fn name(&self) -> &'static str {
        "maxis-approximation"
    }

    fn verify(&self, graph: &Graph, output: &IndependentSet) -> Result<(), Violation> {
        // Re-verify independence against this graph (the set may have
        // been built elsewhere).
        if !graph.is_independent_set(output.vertices()) {
            return Err(Violation {
                problem: self.name(),
                message: "set is not independent in this graph".into(),
            });
        }
        let need = self.alpha_upper_bound as f64 / self.lambda;
        if (output.len() as f64) < need {
            return Err(Violation {
                problem: self.name(),
                message: format!(
                    "size {} below α/λ = {}/{} = {need:.2}",
                    output.len(),
                    self.alpha_upper_bound,
                    self.lambda
                ),
            });
        }
        Ok(())
    }
}

/// `(c, d)`-network decomposition: at most `max_colors` colors, carving
/// radius at most `max_radius` (weak diameter `≤ 2·max_radius`).
#[derive(Debug, Clone, Copy)]
pub struct NetworkDecompositionProblem {
    /// Color budget `c`.
    pub max_colors: usize,
    /// Radius budget `d/2`.
    pub max_radius: usize,
}

impl GraphProblem for NetworkDecompositionProblem {
    type Output = crate::decomposition::NetworkDecomposition;

    fn name(&self) -> &'static str {
        "network-decomposition"
    }

    fn verify(&self, graph: &Graph, output: &Self::Output) -> Result<(), Violation> {
        output
            .verify(graph)
            .map_err(|e| Violation { problem: self.name(), message: e.to_string() })?;
        if output.color_count() > self.max_colors {
            return Err(Violation {
                problem: self.name(),
                message: format!(
                    "{} colors exceed budget {}",
                    output.color_count(),
                    self.max_colors
                ),
            });
        }
        if output.max_radius() > self.max_radius {
            return Err(Violation {
                problem: self.name(),
                message: format!(
                    "radius {} exceeds budget {}",
                    output.max_radius(),
                    self.max_radius
                ),
            });
        }
        Ok(())
    }
}

/// Locality bookkeeping of a local reduction (paper, footnote 2).
///
/// A reduction solving problem B with its own locality `own_locality`
/// while making `oracle_calls` calls to an algorithm of locality
/// `oracle_locality` yields a B-algorithm of locality at most
/// `own_locality + oracle_calls · oracle_locality` (each oracle answer
/// about a node depends on that node's `oracle_locality`-ball, and the
/// calls compose sequentially). The reduction is a *polylog* (efficient)
/// reduction when this composition stays polylogarithmic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocalityBudget {
    /// Locality of the reduction's own pre/post-processing.
    pub own_locality: usize,
    /// Number of oracle invocations.
    pub oracle_calls: usize,
    /// Locality of each oracle invocation.
    pub oracle_locality: usize,
}

impl LocalityBudget {
    /// A budget with no oracle calls.
    pub fn local_only(own_locality: usize) -> Self {
        LocalityBudget { own_locality, oracle_calls: 0, oracle_locality: 0 }
    }

    /// The composed locality bound.
    pub fn composed_locality(&self) -> usize {
        self.own_locality + self.oracle_calls * self.oracle_locality
    }

    /// Whether the composed locality is within `c · log₂(n)^e` — the
    /// "polylogarithmic" test used by experiment reports.
    pub fn is_polylog(&self, n: usize, c: f64, e: u32) -> bool {
        let log = (n.max(2) as f64).log2();
        (self.composed_locality() as f64) <= c * log.powi(e as i32)
    }
}

impl fmt::Display for LocalityBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "locality {} (+{} own, {} calls × {})",
            self.composed_locality(),
            self.own_locality,
            self.oracle_calls,
            self.oracle_locality
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::carve_decomposition;
    use pslocal_graph::generators::classic::{cycle, path};

    #[test]
    fn mis_problem_verifies() {
        let g = path(4);
        let p = MisProblem;
        assert!(p.verify(&g, &vec![NodeId::new(0), NodeId::new(2)]).is_ok());
        let err = p.verify(&g, &vec![NodeId::new(0), NodeId::new(1)]).unwrap_err();
        assert!(err.message.contains("not independent"));
        let err = p.verify(&g, &vec![NodeId::new(0)]).unwrap_err();
        assert!(err.message.contains("not maximal"));
        assert!(err.to_string().contains("maximal-independent-set"));
    }

    #[test]
    fn coloring_problem_verifies() {
        let g = cycle(4);
        let p = ColoringProblem { max_colors: 2 };
        let good = vec![Color::new(0), Color::new(1), Color::new(0), Color::new(1)];
        assert!(p.verify(&g, &good).is_ok());
        let improper = vec![Color::new(0), Color::new(0), Color::new(1), Color::new(1)];
        assert!(p.verify(&g, &improper).is_err());
        let too_many = vec![Color::new(0), Color::new(1), Color::new(2), Color::new(1)];
        assert!(p.verify(&g, &too_many).unwrap_err().message.contains("exceed"));
        assert!(p.verify(&g, &vec![Color::new(0)]).unwrap_err().message.contains("entries"));
    }

    #[test]
    fn maxis_approx_problem_verifies() {
        let g = path(5); // α = 3
        let p = MaxIsApproxProblem { lambda: 2.0, alpha_upper_bound: 3 };
        let big = IndependentSet::new(&g, vec![NodeId::new(0), NodeId::new(2)]).unwrap();
        assert!(p.verify(&g, &big).is_ok()); // 2 ≥ 3/2
        let small = IndependentSet::new(&g, vec![NodeId::new(4)]).unwrap();
        assert!(p.verify(&g, &small).unwrap_err().message.contains("below"));
    }

    #[test]
    fn decomposition_problem_verifies() {
        let g = cycle(32);
        let d = carve_decomposition(&g);
        let p = NetworkDecompositionProblem { max_colors: 6, max_radius: 5 };
        assert!(p.verify(&g, &d).is_ok());
        let strict = NetworkDecompositionProblem { max_colors: 1, max_radius: 5 };
        assert!(strict.verify(&g, &d).is_err());
    }

    #[test]
    fn locality_budget_composition() {
        let b = LocalityBudget { own_locality: 2, oracle_calls: 10, oracle_locality: 3 };
        assert_eq!(b.composed_locality(), 32);
        assert_eq!(LocalityBudget::local_only(5).composed_locality(), 5);
        // 32 ≤ 2 · log2(1024)^2 = 200.
        assert!(b.is_polylog(1024, 2.0, 2));
        // but not within 1 · log2(1024)^1 = 10.
        assert!(!b.is_polylog(1024, 1.0, 1));
        assert!(b.to_string().contains("locality 32"));
    }
}
