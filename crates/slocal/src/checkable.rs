//! Locally checkable labelings — the verification side of the paper's
//! class membership argument.
//!
//! The paper cites \[GHK18\]: P-SLOCAL "contains all problems that can be
//! solved efficiently by randomized algorithms in the LOCAL model as
//! long as a solution of the problem can be verified efficiently".
//! "Verified efficiently" means *locally*: there is a radius `r` such
//! that a labeling is globally correct iff every node's `r`-ball looks
//! correct. [`LocallyCheckable`] captures that notion; the generic
//! [`locally_verify`] runs the per-ball check through the same
//! access-controlled [`View`] the SLOCAL runtime uses, so a checker
//! physically cannot peek outside its radius.

use crate::view::View;
use pslocal_graph::algo::BallExtractor;
use pslocal_graph::{Color, Graph, NodeId};
use std::fmt;

/// A problem whose solutions are labelings checkable within a fixed
/// radius.
pub trait LocallyCheckable {
    /// Per-node output label.
    type Label: Clone + fmt::Debug;

    /// A short stable name.
    fn name(&self) -> &'static str;

    /// The verification radius `r`.
    fn radius(&self) -> usize;

    /// Checks the ball around `view.center()`; must return `true` at
    /// every node iff the labeling is globally valid.
    fn check(&self, view: &View<'_, Self::Label>) -> bool;
}

/// Verifies `labels` by running the local check at every node.
///
/// Returns the first failing center, if any. The per-node views are
/// radius-limited, so this really is a *local* verification: total work
/// is `Σ_v |ball(v, r)|`.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the vertex count.
pub fn locally_verify<P: LocallyCheckable>(
    graph: &Graph,
    problem: &P,
    labels: &[P::Label],
) -> Result<(), NodeId> {
    assert_eq!(labels.len(), graph.node_count(), "one label per node required");
    let n = graph.node_count();
    let r = problem.radius();
    let mut extractor = BallExtractor::new(n);
    let mut position = vec![0u32; n];
    let processed = vec![true; n];
    let mut scratch: Vec<P::Label> = labels.to_vec();
    for v in graph.nodes() {
        let ball = extractor.extract(graph, v, r);
        for (i, &u) in ball.vertices.iter().enumerate() {
            position[u.index()] = i as u32 + 1;
        }
        let ok = {
            let view = View::new(graph, &ball, &position, &mut scratch, &processed);
            problem.check(&view)
        };
        for &u in &ball.vertices {
            position[u.index()] = 0;
        }
        if !ok {
            return Err(v);
        }
    }
    Ok(())
}

/// MIS as a locally checkable labeling (radius 1): `true` labels form
/// an independent set, and every `false` node has a `true` neighbor.
#[derive(Debug, Clone, Copy, Default)]
pub struct MisLabeling;

impl LocallyCheckable for MisLabeling {
    type Label = bool;

    fn name(&self) -> &'static str {
        "mis-labeling"
    }

    fn radius(&self) -> usize {
        1
    }

    fn check(&self, view: &View<'_, bool>) -> bool {
        let c = view.center();
        let neighbors: Vec<NodeId> = view.neighbors(c).collect();
        if *view.state(c) {
            neighbors.iter().all(|&u| !*view.state(u))
        } else {
            neighbors.iter().any(|&u| *view.state(u))
        }
    }
}

/// Proper coloring as a locally checkable labeling (radius 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct ColoringLabeling;

impl LocallyCheckable for ColoringLabeling {
    type Label = Color;

    fn name(&self) -> &'static str {
        "coloring-labeling"
    }

    fn radius(&self) -> usize {
        1
    }

    fn check(&self, view: &View<'_, Color>) -> bool {
        let c = view.center();
        let mine = *view.state(c);
        view.neighbors(c).collect::<Vec<_>>().into_iter().all(|u| *view.state(u) != mine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{GreedyColoring, GreedyMis};
    use crate::runtime::{orders, run};
    use pslocal_graph::generators::classic::{cycle, grid};
    use pslocal_graph::generators::random::gnp;
    use rand::SeedableRng;

    #[test]
    fn mis_outputs_verify_locally() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..3 {
            let g = gnp(&mut rng, 50, 0.1);
            let outcome = run(&g, &GreedyMis, &orders::identity(50));
            let labels: Vec<bool> = outcome.states.iter().map(|s| s.expect("processed")).collect();
            assert!(locally_verify(&g, &MisLabeling, &labels).is_ok());
        }
    }

    #[test]
    fn local_verification_catches_violations_at_the_right_node() {
        let g = cycle(8);
        // All false: every node lacks a dominating neighbor.
        let labels = vec![false; 8];
        let failing = locally_verify(&g, &MisLabeling, &labels).unwrap_err();
        assert_eq!(failing, NodeId::new(0), "first center fails");
        // Two adjacent members: independence violated at node 0.
        let mut labels = vec![false; 8];
        labels[0] = true;
        labels[1] = true;
        assert!(locally_verify(&g, &MisLabeling, &labels).is_err());
        // A valid MIS passes.
        let mut labels = vec![false; 8];
        for i in [0, 2, 4, 6] {
            labels[i] = true;
        }
        assert!(locally_verify(&g, &MisLabeling, &labels).is_ok());
    }

    #[test]
    fn coloring_outputs_verify_locally() {
        let g = grid(5, 6);
        let outcome = run(&g, &GreedyColoring, &orders::reverse(30));
        let labels = GreedyColoring::colors(&outcome.states);
        assert!(locally_verify(&g, &ColoringLabeling, &labels).is_ok());
        // Corrupt one label to equal its neighbor's.
        let mut bad = labels.clone();
        let (u, v) = g.edges().next().unwrap();
        bad[u.index()] = bad[v.index()];
        let failing = locally_verify(&g, &ColoringLabeling, &bad).unwrap_err();
        assert!(failing == u || failing == v);
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let g = Graph::empty(0);
        assert!(locally_verify(&g, &MisLabeling, &[]).is_ok());
        let g = Graph::empty(1);
        assert!(locally_verify(&g, &MisLabeling, &[true]).is_ok());
        // A lone false node has no dominating neighbor: invalid MIS.
        assert!(locally_verify(&g, &MisLabeling, &[false]).is_err());
    }

    #[test]
    #[should_panic(expected = "one label per node")]
    fn wrong_label_count_panics() {
        let g = cycle(4);
        let _ = locally_verify(&g, &MisLabeling, &[true]);
    }
}
