//! Component-parallel phase execution: connected components of the
//! conflict graph, a deterministic scoped-thread executor, and the
//! disjointness-checked independent-set merge.
//!
//! Independent sets compose across connected components: if
//! `G = C_0 ⊎ C_1 ⊎ …` and `I_j` is an independent set of `C_j`, then
//! `⋃_j I_j` is an independent set of `G` (no edge crosses components),
//! and `α(G) = Σ_j α(C_j)`. A λ-approximation obtained per component is
//! therefore a λ-approximation of the whole graph, and Lemma 2.1's
//! delivery bound `|I| ≥ |E_i|/λ` holds per component (each hyperedge's
//! triple block is an `E_edge` clique, so blocks never split across
//! components and the hyperedges of a phase *partition* across the
//! conflict graph's components). The Theorem 1.1 phase budget
//! `ρ = ⌈λ·ln m⌉ + 1` is unaffected — the reduction drivers may solve
//! components concurrently inside a phase without changing what the
//! phase commits.
//!
//! Three pieces implement that:
//!
//! * [`ComponentPartition`] — connected components off the sorted CSR
//!   rows in `O(V + E)` (iterative BFS; component ids are ordered by
//!   smallest member node, so the labeling is canonical);
//! * [`ComponentExecutor`] — runs one job per component on up to `N`
//!   scoped worker threads, **largest component first** (classic
//!   longest-processing-time scheduling to bound the makespan), with
//!   results slotted by component id, so the output is independent of
//!   the worker count and bit-reproducible;
//! * [`ComponentExecutor::merge`] — maps per-component independent sets
//!   back to global vertex ids and re-verifies both disjointness (a
//!   machine-checked invariant: every global vertex claimed exactly
//!   once, by its own component) and independence
//!   ([`IndependentSet::new`]).
//!
//! [`ParallelismOptions`] is the opt-in knob shared by
//! [`ReductionConfig`](crate::ReductionConfig) (and, through its `base`
//! field, the resilient driver): the default of one thread keeps both
//! drivers on their exact historical serial path.

use pslocal_graph::{csr, Graph, IndependentSet, NodeId};
use pslocal_maxis::MaxIsOracle;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How many worker threads a reduction driver may use inside a phase.
///
/// `threads == 1` (the default) is the serial path: one oracle call on
/// the whole conflict graph, byte-identical to the drivers' historical
/// behavior. `threads > 1` opts into component decomposition; phases
/// whose conflict graph is connected (or empty) still take the serial
/// fast path with no thread spawned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelismOptions {
    /// Upper bound on concurrent component solves per phase (≥ 1).
    pub threads: usize,
}

impl Default for ParallelismOptions {
    fn default() -> Self {
        ParallelismOptions::serial()
    }
}

impl ParallelismOptions {
    /// The serial default: whole-graph oracle calls, no decomposition.
    pub fn serial() -> Self {
        ParallelismOptions { threads: 1 }
    }

    /// Component-parallel execution on up to `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads >= 1, "thread count must be positive");
        ParallelismOptions { threads }
    }

    /// Whether component decomposition is enabled at all.
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }
}

/// The connected components of a [`Graph`], extracted in `O(V + E)`.
///
/// Component ids are canonical: component `c` is the one containing the
/// `c`-th smallest "first" node, i.e. ids increase with each
/// component's minimum member. Member lists are sorted ascending (they
/// are collected by a scan over `0..n`), which is exactly the strictly
/// increasing keep-set [`csr::induced_sorted`] requires.
#[derive(Debug, Clone)]
pub struct ComponentPartition {
    /// `comp[v]` = component id of node `v`.
    comp: Vec<u32>,
    /// Per-component sorted member lists.
    members: Vec<Vec<NodeId>>,
}

impl ComponentPartition {
    /// Labels `graph`'s connected components with an iterative
    /// breadth-first search over the CSR rows.
    pub fn of(graph: &Graph) -> Self {
        let n = graph.node_count();
        let mut comp = vec![u32::MAX; n];
        let mut queue: Vec<usize> = Vec::new();
        let mut count = 0u32;
        for start in 0..n {
            if comp[start] != u32::MAX {
                continue;
            }
            comp[start] = count;
            queue.push(start);
            while let Some(v) = queue.pop() {
                for &u in graph.neighbors(NodeId::new(v)) {
                    if comp[u.index()] == u32::MAX {
                        comp[u.index()] = count;
                        queue.push(u.index());
                    }
                }
            }
            count += 1;
        }
        let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); count as usize];
        for v in 0..n {
            members[comp[v] as usize].push(NodeId::new(v));
        }
        ComponentPartition { comp, members }
    }

    /// Number of components (0 for the empty graph).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the underlying graph had no nodes at all.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The component id of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn component_of(&self, v: NodeId) -> usize {
        self.comp[v.index()] as usize
    }

    /// The sorted member nodes of component `c`.
    pub fn members(&self, c: usize) -> &[NodeId] {
        &self.members[c]
    }

    /// Node count of the largest component (0 if there are none).
    pub fn largest_size(&self) -> usize {
        self.members.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The induced subgraph of component `c`, renumbered
    /// `0..members(c).len()` in ascending global-node order (the
    /// renumbering is monotone, so per-component solutions map back via
    /// `members(c)[local.index()]`).
    pub fn subgraph(&self, graph: &Graph, c: usize) -> Graph {
        csr::induced_sorted(graph, &self.members[c])
    }
}

/// Runs one job per connected component on up to `N` scoped worker
/// threads, deterministically.
///
/// Scheduling is **largest component first** (ties broken by component
/// id): workers atomically claim the next unclaimed component from that
/// fixed order, so big components start as early as possible and the
/// wall clock approaches `max(largest component, total / N)`. Results
/// are slotted by component id, so the returned vector — and anything
/// merged from it — is identical for every worker count, including 1:
/// runs are bit-reproducible and a thread-count sweep is a pure
/// performance experiment.
#[derive(Debug)]
pub struct ComponentExecutor<'g> {
    graph: &'g Graph,
    partition: ComponentPartition,
    threads: usize,
}

impl<'g> ComponentExecutor<'g> {
    /// Partitions `graph` and prepares an executor honoring `options`.
    pub fn new(graph: &'g Graph, options: ParallelismOptions) -> Self {
        ComponentExecutor {
            graph,
            partition: ComponentPartition::of(graph),
            threads: options.threads,
        }
    }

    /// The component partition driving the executor.
    pub fn partition(&self) -> &ComponentPartition {
        &self.partition
    }

    /// Whether running per component is worthwhile at all: more than
    /// one worker is allowed *and* there is more than one component.
    /// When `false`, callers should take their serial whole-graph path
    /// (single-component and empty inputs never spawn a thread).
    pub fn should_decompose(&self) -> bool {
        self.threads > 1 && self.partition.len() > 1
    }

    /// Runs `job(c, subgraph_of_c)` for every component `c`, largest
    /// first, on up to the configured number of workers; returns the
    /// results indexed by component id. Subgraph extraction happens
    /// inside the claiming worker, so it parallelizes with the solves.
    ///
    /// A panic inside `job` propagates to the caller once all workers
    /// have been joined (resilient callers wrap their jobs in
    /// [`std::panic::catch_unwind`] instead).
    pub fn run<T, F>(&self, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &Graph) -> T + Sync,
    {
        let jobs = self.partition.len();
        let mut order: Vec<usize> = (0..jobs).collect();
        order.sort_by_key(|&c| (std::cmp::Reverse(self.partition.members(c).len()), c));
        let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
        let run_one = |c: usize| {
            let sub = self.partition.subgraph(self.graph, c);
            let out = job(c, &sub);
            // pslocal: allow(panic-path, "each slot is written exactly once by one worker, so the lock can only poison if job() already panicked on this thread")
            *slots[c].lock().expect("component result slot") = Some(out);
        };
        let workers = self.threads.min(jobs);
        if workers <= 1 {
            for &c in &order {
                run_one(c);
            }
        } else {
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = cursor.fetch_add(1, Ordering::SeqCst);
                        let Some(&c) = order.get(i) else { break };
                        run_one(c);
                    });
                }
            });
        }
        slots
            .into_iter()
            .map(|slot| {
                // pslocal: allow(panic-path, "all workers joined before collection: a None slot or poisoned lock means a scheduling bug that must not be silently dropped")
                slot.into_inner().expect("slot lock").expect("every scheduled component ran")
            })
            .collect()
    }

    /// Merges per-component independent sets (local vertex ids, indexed
    /// by component id) into one verified independent set of the whole
    /// graph.
    ///
    /// # Panics
    ///
    /// Panics if the merge violates its machine-checked invariants: a
    /// local vertex out of its component's range, a global vertex
    /// claimed twice, or — impossible for genuinely disjoint components
    /// — a cross-component adjacency surfacing in the final
    /// [`IndependentSet::new`] re-verification.
    pub fn merge(&self, locals: Vec<IndependentSet>) -> IndependentSet {
        assert_eq!(locals.len(), self.partition.len(), "one set per component");
        let mut claimed = vec![false; self.graph.node_count()];
        let mut global: Vec<NodeId> = Vec::with_capacity(locals.iter().map(|s| s.len()).sum());
        for (c, local) in locals.iter().enumerate() {
            let members = self.partition.members(c);
            for v in local.iter() {
                let g = *members
                    .get(v.index())
                    // pslocal: allow(panic-path, "a subgraph vertex outside its component's member list is a partition-construction bug; merging it would corrupt the global set")
                    .unwrap_or_else(|| panic!("component {c}: local vertex {v} out of range"));
                assert!(
                    !claimed[g.index()],
                    "disjointness violated: vertex {g} claimed twice during merge"
                );
                claimed[g.index()] = true;
                global.push(g);
            }
        }
        IndependentSet::new(self.graph, global)
            // pslocal: allow(panic-path, "invariant: components are vertex-disjoint with no cross edges, so the union stays independent; a violation is a partition bug")
            .expect("union of per-component independent sets is independent")
    }

    /// Convenience composition of [`run`](Self::run) and
    /// [`merge`](Self::merge): one plain oracle call per component.
    /// (The reduction drivers inline this to attach telemetry spans;
    /// the CLI's `maxis --threads N` uses it directly.)
    pub fn independent_set<O: MaxIsOracle + ?Sized>(&self, oracle: &O) -> IndependentSet {
        let locals = self.run(|_, sub| oracle.independent_set(sub));
        self.merge(locals)
    }
}

/// Computes an independent set of `graph` with `oracle`, solving
/// connected components concurrently on up to `options.threads`
/// workers. With one thread, a connected graph, or an empty graph this
/// is exactly `oracle.independent_set(graph)` — no partition survives
/// and no thread is spawned on the fast path.
///
/// For oracles whose output on a disconnected graph is the union of
/// their per-component outputs (e.g. the degree-bucket greedy, whose
/// global pick sequence restricted to a component equals the local pick
/// sequence), the result is *identical* to the serial call; for all
/// oracles it is a verified independent set with the same per-component
/// approximation guarantee.
pub fn parallel_independent_set<O: MaxIsOracle + ?Sized>(
    graph: &Graph,
    oracle: &O,
    options: ParallelismOptions,
) -> IndependentSet {
    if !options.is_parallel() {
        return oracle.independent_set(graph);
    }
    let exec = ComponentExecutor::new(graph, options);
    if !exec.should_decompose() {
        return oracle.independent_set(graph);
    }
    exec.independent_set(oracle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pslocal_graph::generators::classic::cycle;
    use pslocal_graph::GraphBuilder;
    use pslocal_maxis::{ExactOracle, GreedyOracle};

    /// A graph with three components: C_5 on 0..5, K_4 on 5..9, and the
    /// isolated vertex 9.
    fn three_components() -> Graph {
        let mut b = GraphBuilder::new(10);
        for i in 0..5 {
            b.add_edge(NodeId::new(i), NodeId::new((i + 1) % 5));
        }
        for u in 5..9 {
            for v in (u + 1)..9 {
                b.add_edge(NodeId::new(u), NodeId::new(v));
            }
        }
        b.build()
    }

    #[test]
    fn partition_labels_components_canonically() {
        let g = three_components();
        let p = ComponentPartition::of(&g);
        assert_eq!(p.len(), 3);
        assert_eq!(p.largest_size(), 5);
        // Component ids ordered by smallest member: cycle first.
        assert_eq!(p.members(0), (0..5).map(NodeId::new).collect::<Vec<_>>());
        assert_eq!(p.members(1), (5..9).map(NodeId::new).collect::<Vec<_>>());
        assert_eq!(p.members(2), &[NodeId::new(9)]);
        for v in 0..5 {
            assert_eq!(p.component_of(NodeId::new(v)), 0);
        }
        assert_eq!(p.component_of(NodeId::new(9)), 2);
    }

    #[test]
    fn partition_of_empty_and_connected_graphs() {
        assert!(ComponentPartition::of(&Graph::empty(0)).is_empty());
        let edgeless = ComponentPartition::of(&Graph::empty(4));
        assert_eq!(edgeless.len(), 4, "every isolated vertex is its own component");
        assert_eq!(ComponentPartition::of(&cycle(7)).len(), 1);
    }

    #[test]
    fn subgraphs_preserve_structure() {
        let g = three_components();
        let p = ComponentPartition::of(&g);
        let c0 = p.subgraph(&g, 0);
        assert_eq!((c0.node_count(), c0.edge_count()), (5, 5)); // C_5
        let c1 = p.subgraph(&g, 1);
        assert_eq!((c1.node_count(), c1.edge_count()), (4, 6)); // K_4
        let c2 = p.subgraph(&g, 2);
        assert_eq!((c2.node_count(), c2.edge_count()), (1, 0));
    }

    #[test]
    fn executor_results_are_thread_count_independent() {
        let g = three_components();
        let mut baseline: Option<Vec<(usize, usize)>> = None;
        for threads in [1, 2, 4, 8] {
            let exec = ComponentExecutor::new(&g, ParallelismOptions::with_threads(threads));
            let out = exec.run(|c, sub| (c, sub.node_count()));
            assert_eq!(out, vec![(0, 5), (1, 4), (2, 1)]);
            match &baseline {
                None => baseline = Some(out),
                Some(b) => assert_eq!(&out, b, "threads = {threads}"),
            }
        }
    }

    #[test]
    fn merge_reassembles_and_verifies() {
        let g = three_components();
        let exec = ComponentExecutor::new(&g, ParallelismOptions::with_threads(4));
        let set = exec.independent_set(&ExactOracle);
        // α(C_5) + α(K_4) + α(K_1) = 2 + 1 + 1.
        assert_eq!(set.len(), 4);
        assert!(g.is_independent_set(set.vertices()));
    }

    #[test]
    fn parallel_matches_serial_for_greedy_on_disjoint_unions() {
        let g = three_components();
        let serial = GreedyOracle.independent_set(&g);
        for threads in [2, 3, 8] {
            let par = parallel_independent_set(
                &g,
                &GreedyOracle,
                ParallelismOptions::with_threads(threads),
            );
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn fast_paths_skip_decomposition() {
        let connected = cycle(9);
        let exec = ComponentExecutor::new(&connected, ParallelismOptions::with_threads(8));
        assert!(!exec.should_decompose(), "one component: serial fast path");
        let disconnected = three_components();
        let serial = ComponentExecutor::new(&disconnected, ParallelismOptions::serial());
        assert!(!serial.should_decompose(), "one thread: serial fast path");
        assert!(!ParallelismOptions::serial().is_parallel());
        assert!(ParallelismOptions::default() == ParallelismOptions::serial());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn merge_rejects_out_of_range_local_vertex() {
        let g = Graph::empty(2);
        let exec = ComponentExecutor::new(&g, ParallelismOptions::with_threads(2));
        // Component 0 = {0} has exactly one local vertex; local id 5 is
        // out of range and must trip the merge invariant.
        let locals =
            vec![IndependentSet::new_unchecked(vec![NodeId::new(5)]), IndependentSet::empty()];
        let _ = exec.merge(locals);
    }
}
