//! The TCP serving front end: the [`Service`] worker pool behind a
//! hand-rolled `std::net` socket layer.
//!
//! The workspace is hermetic (no tokio, no mio), so the server is
//! built from `std` primitives only: one **acceptor** thread polling a
//! non-blocking [`TcpListener`], and per connection a **reader** thread
//! plus a **writer** thread around the shared worker pool. The request
//! lifecycle is
//!
//! ```text
//! accept → parse (protocol) → admit (Service) → worker → respond → drain
//! ```
//!
//! with explicit, typed degradation at every stage:
//!
//! * **Connection cap.** Sockets beyond
//!   [`ServerConfig::max_connections`] are answered with one
//!   `{"outcome":"overloaded",...}` line and closed — load shedding at
//!   the accept boundary ([`Counter::ConnectionsRefused`]), never
//!   unbounded buffering.
//! * **Admission backpressure.** A request the bounded queue refuses
//!   ([`QueueFull`](crate::QueueFull)) becomes a
//!   `{"outcome":"rejected"}` line on the same connection; the server
//!   never queues beyond [`ServiceConfig`]'s bound.
//! * **Deadline passthrough.** A request's `deadline_ms` (or the
//!   server's [`ServerConfig::default_deadline`]) rides into the
//!   service unchanged; a request that expires while queued or at a
//!   phase boundary answers `deadline_exceeded` exactly as `pslocal
//!   batch` would.
//! * **Timeouts.** Reads poll in short slices so a connection idle
//!   past [`ServerConfig::read_timeout`] is closed instead of pinning
//!   its thread; writes carry [`ServerConfig::write_timeout`] so a
//!   stalled client cannot wedge the writer.
//! * **Graceful drain.** [`Server::shutdown`] (or a client `SHUTDOWN`
//!   command, or the CLI's signal handler via [`ShutdownHandle`])
//!   stops the acceptor, unblocks every reader at its next poll slice,
//!   lets the worker pool finish **everything already admitted**, and
//!   delivers each finished response to its connection before the
//!   socket closes — the writer thread exits only when every response
//!   channel sender (one per in-flight request) is gone.
//!
//! # Wire protocol
//!
//! Lines in, lines out — exactly the `pslocal batch` JSONL schema
//! ([`crate::protocol`]), so sorted response streams are
//! byte-comparable between the two front ends (pinned by the
//! equivalence suite). Responses arrive in completion order, each
//! carrying its request `id`. Four plain-text commands ride on the
//! same line stream:
//!
//! | command    | reply                                             |
//! |------------|---------------------------------------------------|
//! | `PING`     | `PONG`                                            |
//! | `STATS`    | live metrics ([`Sink::stats_snapshot`]), then `OK`|
//! | `SHUTDOWN` | `DRAINING`, then a graceful server-wide drain     |
//! | `QUIT`     | closes this connection                            |
//!
//! `STATS` renders whatever the telemetry pipeline's sink aggregates —
//! wire an [`AggregateSink`](pslocal_telemetry::AggregateSink) (the
//! CLI's `serve` does) to get live counters, p50/p99 latencies, and
//! span totals without unbounded buffering. All outbound lines of a
//! connection — result lines and command replies alike — are written
//! by its single writer thread from one queue, so a multi-line `STATS`
//! block is always contiguous on the wire, never interleaved with
//! concurrently completing result lines.
//!
//! # Observability
//!
//! Each request gets a `server-request` span
//! ([`names::SERVER_REQUEST`], covering parse + admission; execution
//! is the service's `service-request` span), and the server feeds
//! [`Counter::ConnectionsAccepted`]/[`Counter::ConnectionsRefused`],
//! [`Counter::BytesIn`]/[`Counter::BytesOut`] and
//! [`Counter::BadRequests`] through the same pipeline the service and
//! reduction layers record into — one sink sees the whole path.

use crate::protocol::{
    bad_request_line, overloaded_line, parse_request, rejected_line, response_line,
};
use crate::service::{Service, ServiceConfig, ServiceReport, ServiceResponse};
use crate::sync::lock_unpoisoned;
use pslocal_telemetry::{names, span, Counter, Sink, Telemetry};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default bound on concurrently served connections.
pub const DEFAULT_MAX_CONNECTIONS: usize = 64;

/// How often blocking points (accept, reads) wake to check the drain
/// flag — the upper bound on shutdown-notice latency per thread.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Shape of a [`Server`]: the worker pool underneath plus the
/// socket-layer limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Worker pool + admission queue configuration.
    pub service: ServiceConfig,
    /// Concurrent-connection cap; sockets beyond it get one typed
    /// `overloaded` line and are closed.
    pub max_connections: usize,
    /// A connection idle (no bytes) longer than this is closed.
    pub read_timeout: Duration,
    /// Per-write socket timeout; a write that cannot complete within
    /// it drops the connection.
    pub write_timeout: Duration,
    /// Deadline applied to requests that carry no `deadline_ms` of
    /// their own; `None` = unlimited.
    pub default_deadline: Option<Duration>,
}

impl Default for ServerConfig {
    /// Two workers, [`DEFAULT_MAX_CONNECTIONS`] connections, 30 s idle
    /// reads, 10 s writes, no default deadline.
    fn default() -> Self {
        ServerConfig {
            service: ServiceConfig::new(2),
            max_connections: DEFAULT_MAX_CONNECTIONS,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            default_deadline: None,
        }
    }
}

impl ServerConfig {
    /// Replaces the service (worker pool) configuration.
    pub fn with_service(mut self, service: ServiceConfig) -> Self {
        self.service = service;
        self
    }

    /// Replaces the connection cap (clamped to ≥ 1).
    pub fn with_max_connections(mut self, max: usize) -> Self {
        self.max_connections = max.max(1);
        self
    }

    /// Replaces the idle read timeout.
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Replaces the per-write timeout.
    pub fn with_write_timeout(mut self, timeout: Duration) -> Self {
        self.write_timeout = timeout;
        self
    }

    /// Sets the deadline applied to requests without their own.
    pub fn with_default_deadline(mut self, deadline: Duration) -> Self {
        self.default_deadline = Some(deadline);
        self
    }
}

/// A cloneable handle that requests a graceful drain from outside the
/// server — the CLI's signal handler path, and anything else that
/// cannot own the [`Server`] itself.
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    draining: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Flags the server as draining: the acceptor stops accepting and
    /// every reader stops taking requests at its next poll slice.
    /// Someone must still call [`Server::shutdown`] to join the
    /// threads and recover the report.
    pub fn request_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }
}

/// What [`Server::shutdown`] hands back once every thread is joined.
#[derive(Debug)]
pub struct ServerReport<S: Sink> {
    /// Responses that finished during the drain without a connection
    /// to deliver to (requests submitted through the server always
    /// deliver to their connection, so this is empty unless the
    /// service was also used directly).
    pub drained: Vec<ServiceResponse>,
    /// The telemetry pipeline, recovered for final reporting.
    pub telemetry: Telemetry<S>,
}

/// The TCP front end — see the [module docs](self).
///
/// # Examples
///
/// One request over a real socket, end to end:
///
/// ```
/// use pslocal_core::{Server, ServerConfig};
/// use pslocal_telemetry::Telemetry;
/// use std::io::{BufRead, BufReader, Write};
/// use std::net::{Shutdown, TcpStream};
///
/// # fn main() -> std::io::Result<()> {
/// let server = Server::start("127.0.0.1:0", ServerConfig::default(), Telemetry::disabled())?;
/// let mut conn = TcpStream::connect(server.local_addr())?;
/// conn.write_all(b"{\"id\":\"doc\",\"n\":32,\"m\":16,\"k\":3,\"seed\":1}\n")?;
/// conn.shutdown(Shutdown::Write)?; // half-close: "no more requests"
/// let mut line = String::new();
/// BufReader::new(conn).read_line(&mut line)?;
/// assert!(line.contains("\"id\":\"doc\""));
/// assert!(line.contains("\"outcome\":\"ok\""));
/// let report = server.shutdown();
/// assert!(report.drained.is_empty());
/// # Ok(())
/// # }
/// ```
pub struct Server<S: Sink + Send + Sync + 'static> {
    local_addr: SocketAddr,
    draining: Arc<AtomicBool>,
    acceptor: JoinHandle<()>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
    service: Arc<Service<S>>,
}

impl<S: Sink + Send + Sync + 'static> Server<S> {
    /// Binds `addr`, spawns the worker pool and the acceptor, and
    /// starts serving. Bind to port 0 for an ephemeral port and read
    /// it back with [`local_addr`](Self::local_addr).
    ///
    /// # Errors
    ///
    /// Any I/O error from binding or inspecting the listener.
    pub fn start(
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        tel: Telemetry<S>,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let service = Arc::new(Service::start(config.service, tel));
        let draining = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let service = Arc::clone(&service);
            let draining = Arc::clone(&draining);
            let connections = Arc::clone(&connections);
            std::thread::Builder::new()
                .name("pslocal-acceptor".to_string())
                .spawn(move || acceptor_loop(listener, service, draining, connections, config))?
        };
        Ok(Server { local_addr, draining, acceptor, connections, service })
    }

    /// The bound address (the real port when started on port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle that can request a drain from another thread.
    pub fn handle(&self) -> ShutdownHandle {
        ShutdownHandle { draining: Arc::clone(&self.draining) }
    }

    /// Whether a drain has been requested (by [`shutdown`], a
    /// [`ShutdownHandle`], or a client `SHUTDOWN` command).
    ///
    /// [`shutdown`]: Self::shutdown
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Graceful drain: stops accepting, lets every connection finish
    /// its in-flight requests and deliver their responses, joins all
    /// threads (acceptor, readers, writers, workers), and hands back
    /// the telemetry pipeline.
    ///
    /// # Panics
    ///
    /// Panics if a server thread died of an unexpected panic — the
    /// handlers isolate per-connection I/O errors, so this indicates a
    /// bug.
    pub fn shutdown(self) -> ServerReport<S> {
        self.draining.store(true, Ordering::SeqCst);
        // pslocal: allow(panic-path, "documented contract: handlers isolate per-connection I/O errors, so a dead server thread is a bug that must surface at shutdown")
        self.acceptor.join().expect("acceptor panicked");
        // The acceptor has exited, so no new handles can appear; the
        // workers are still alive, so every connection's in-flight
        // responses complete and its writer drains before the join.
        loop {
            let handle = lock_unpoisoned(&self.connections).pop();
            let Some(handle) = handle else { break };
            // pslocal: allow(panic-path, "documented contract: handlers isolate per-connection I/O errors, so a dead server thread is a bug that must surface at shutdown")
            handle.join().expect("connection handler panicked");
        }
        let service = Arc::try_unwrap(self.service)
            // pslocal: allow(panic-path, "acceptor and every connection thread joined above, so no Arc clone can remain; a failure here is unreachable by construction")
            .unwrap_or_else(|_| unreachable!("all connection threads joined, no clones remain"));
        let ServiceReport { drained, telemetry } = service.shutdown();
        ServerReport { drained, telemetry }
    }
}

/// Accept loop: poll the non-blocking listener, shed connections past
/// the cap with a typed line, spawn a handler per admitted socket.
fn acceptor_loop<S: Sink + Send + Sync + 'static>(
    listener: TcpListener,
    service: Arc<Service<S>>,
    draining: Arc<AtomicBool>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
    config: ServerConfig,
) {
    // Live = spawned minus finished; the counter is decremented by the
    // handler's drop guard so a panicking handler still releases its
    // slot.
    let live = Arc::new(AtomicUsize::new(0));
    let mut next_conn: u64 = 0;
    while !draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Accepted sockets must not inherit the listener's
                // non-blocking mode (platform-dependent).
                let _ = stream.set_nonblocking(false);
                if live.load(Ordering::SeqCst) >= config.max_connections.max(1) {
                    service.telemetry().add(Counter::ConnectionsRefused, 1);
                    refuse(stream, &service, config);
                    continue;
                }
                service.telemetry().add(Counter::ConnectionsAccepted, 1);
                live.fetch_add(1, Ordering::SeqCst);
                let conn_id = next_conn;
                next_conn += 1;
                let handle = {
                    let service = Arc::clone(&service);
                    let draining = Arc::clone(&draining);
                    let live = Arc::clone(&live);
                    std::thread::Builder::new()
                        .name(format!("pslocal-conn-{conn_id}"))
                        .spawn(move || connection_loop(stream, service, draining, live, config))
                        // pslocal: allow(panic-path, "thread spawn fails only on OS resource exhaustion; there is no degraded mode for an accepted socket")
                        .expect("spawn connection handler")
                };
                lock_unpoisoned(&connections).push(handle);
            }
            // Nothing pending (or a transient accept error): sleep one
            // poll slice and re-check the drain flag.
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

/// Sheds one connection: best-effort typed overload line, then close.
fn refuse<S: Sink + Send + Sync + 'static>(
    mut stream: TcpStream,
    service: &Arc<Service<S>>,
    config: ServerConfig,
) {
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let line = overloaded_line(config.max_connections);
    if stream.write_all(line.as_bytes()).and_then(|()| stream.write_all(b"\n")).is_ok() {
        service.telemetry().add(Counter::BytesOut, line.len() as u64 + 1);
    }
}

/// Decrements the live-connection counter when the handler exits, even
/// by panic.
struct ConnectionGuard(Arc<AtomicUsize>);

impl Drop for ConnectionGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// One connection: this thread reads and parses lines; a paired writer
/// thread exclusively owns the write half and delivers every outbound
/// line — responses and command replies alike — from one queue. The
/// reader holds one queue sender and every in-flight request's
/// delivery closure holds a clone, so the writer's channel disconnects
/// — and the connection closes — only after every admitted request's
/// response has been written: the zero-lost-responses drain property,
/// by construction.
fn connection_loop<S: Sink + Send + Sync + 'static>(
    stream: TcpStream,
    service: Arc<Service<S>>,
    draining: Arc<AtomicBool>,
    live: Arc<AtomicUsize>,
    config: ServerConfig,
) {
    let _guard = ConnectionGuard(live);
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else { return };
    let _ = write_half.set_write_timeout(Some(config.write_timeout));
    // Every outbound line — responses AND command replies — flows
    // through one queue into a writer thread that exclusively owns the
    // write half. Each message is written whole before the next is
    // dequeued, so a multi-line STATS block can never interleave with
    // in-flight result lines; there is no lock to order against.
    let (writer_tx, writer_rx) = mpsc::channel::<WriterMsg>();
    let writer = {
        let service = Arc::clone(&service);
        std::thread::Builder::new()
            .name("pslocal-conn-writer".to_string())
            .spawn(move || {
                let mut stream = write_half;
                while let Ok(msg) = writer_rx.recv() {
                    let line = match msg {
                        WriterMsg::Response(response) => response_line(&response),
                        WriterMsg::Block(text) => text,
                    };
                    if write_line(&service, &mut stream, &line).is_err() {
                        // Client gone: stop writing. Remaining sends
                        // into the channel fail and the reader breaks.
                        break;
                    }
                }
            })
            // pslocal: allow(panic-path, "thread spawn fails only on OS resource exhaustion; the acceptor cannot serve this socket without its writer")
            .expect("spawn connection writer")
    };

    let mut reader = LineReader::new(stream, config.read_timeout);
    let mut ordinal: u64 = 0;
    while let Ok(event) = reader.read_line(&draining) {
        service.telemetry().add(Counter::BytesIn, reader.take_bytes());
        let line = match event {
            ReadEvent::Line(line) => line,
            // Draining: stop reading; in-flight responses still drain
            // through the writer below. Idle timeout and EOF likewise
            // just stop intake.
            ReadEvent::Eof | ReadEvent::Draining | ReadEvent::IdleTimeout => break,
        };
        let line = line.trim();
        match line {
            "" => {}
            "PING" => {
                if writer_tx.send(WriterMsg::Block("PONG".to_string())).is_err() {
                    break;
                }
            }
            "STATS" => {
                let snapshot = service
                    .telemetry()
                    .sink()
                    .stats_snapshot()
                    .unwrap_or_else(|| "no aggregating sink configured\n".to_string());
                // One Block = one contiguous write: the whole snapshot
                // plus its OK terminator, atomic w.r.t. result lines.
                if writer_tx.send(WriterMsg::Block(format!("{snapshot}OK"))).is_err() {
                    break;
                }
            }
            "SHUTDOWN" => {
                let _ = writer_tx.send(WriterMsg::Block("DRAINING".to_string()));
                draining.store(true, Ordering::SeqCst);
                // The next read_line observes the flag and exits.
            }
            "QUIT" => break,
            request_line => {
                let tel = service.telemetry();
                let req_span = span!(tel, names::SERVER_REQUEST, ordinal);
                ordinal += 1;
                match parse_request(request_line, config.default_deadline) {
                    Err(error) => {
                        service.telemetry().add(Counter::BadRequests, 1);
                        req_span.close();
                        if writer_tx.send(WriterMsg::Block(bad_request_line(&error))).is_err() {
                            break;
                        }
                    }
                    Ok(request) => {
                        let deliver_tx = writer_tx.clone();
                        let submitted = service.submit_with(request, move |response| {
                            let _ = deliver_tx.send(WriterMsg::Response(response));
                        });
                        match submitted {
                            Ok(()) => req_span.close(),
                            Err(full) => {
                                // Typed load shedding: the request is
                                // answered and dropped, never buffered.
                                req_span.close();
                                let line = rejected_line(&full.request.id);
                                if writer_tx.send(WriterMsg::Block(line)).is_err() {
                                    break;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    // Drop our sender: once the in-flight requests' clones are gone
    // too (their responses delivered), the writer disconnects and
    // exits.
    drop(writer_tx);
    let _ = writer.join();
}

/// One unit of outbound work for a connection's writer thread.
enum WriterMsg {
    /// A completed request, rendered to its result line by the writer.
    Response(ServiceResponse),
    /// A pre-rendered command reply — possibly multi-line (`STATS`),
    /// written contiguously as one block.
    Block(String),
}

/// Writes one line or block (appending `\n`) on the writer thread's
/// exclusively-owned write half and counts the bytes.
fn write_line<S: Sink + Send + Sync + 'static>(
    service: &Arc<Service<S>>,
    stream: &mut TcpStream,
    line: &str,
) -> io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    service.telemetry().add(Counter::BytesOut, line.len() as u64 + 1);
    Ok(())
}

/// What one [`LineReader::read_line`] call produced.
enum ReadEvent {
    /// A complete line (without its terminator).
    Line(String),
    /// The peer closed (or half-closed) its write side.
    Eof,
    /// The server-wide drain flag was observed.
    Draining,
    /// No bytes arrived within the configured idle timeout.
    IdleTimeout,
}

/// A poll-based line reader over a raw [`TcpStream`].
///
/// Deliberately not `BufReader::read_line`: with a socket read timeout
/// set, `read_line`'s error path can drop bytes that were already
/// consumed into its buffer, silently corrupting the stream. This
/// reader owns its buffer across timeouts, so a line split across poll
/// slices is reassembled intact.
struct LineReader {
    stream: TcpStream,
    idle_timeout: Duration,
    buf: Vec<u8>,
    bytes: u64,
}

impl LineReader {
    fn new(stream: TcpStream, idle_timeout: Duration) -> Self {
        // Short read timeout = the poll slice; the real idle timeout
        // is enforced across slices in `read_line`.
        let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
        LineReader { stream, idle_timeout, buf: Vec::new(), bytes: 0 }
    }

    /// Bytes read since the last call (for the `bytes_in` counter).
    fn take_bytes(&mut self) -> u64 {
        std::mem::take(&mut self.bytes)
    }

    fn read_line(&mut self, draining: &AtomicBool) -> io::Result<ReadEvent> {
        let mut idle_since = Instant::now();
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                line.pop();
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(ReadEvent::Line(String::from_utf8_lossy(&line).into_owned()));
            }
            if draining.load(Ordering::SeqCst) {
                return Ok(ReadEvent::Draining);
            }
            if idle_since.elapsed() >= self.idle_timeout {
                return Ok(ReadEvent::IdleTimeout);
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    if self.buf.is_empty() {
                        return Ok(ReadEvent::Eof);
                    }
                    // A final line without a terminator still counts.
                    let line = String::from_utf8_lossy(&self.buf).into_owned();
                    self.buf.clear();
                    return Ok(ReadEvent::Line(line));
                }
                Ok(n) => {
                    self.bytes += n as u64;
                    // read() returned n, so n <= chunk.len(): in bounds.
                    self.buf.extend_from_slice(&chunk[..n]);
                    idle_since = Instant::now();
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock
                            | io::ErrorKind::TimedOut
                            | io::ErrorKind::Interrupted
                    ) => {}
                Err(e) => return Err(e),
            }
        }
    }
}
